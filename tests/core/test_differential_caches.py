"""Differential cache-soundness harness.

The paper's Definition 1 makes invalidation the soundness linchpin of
just-in-time checking: a stale cached judgment is an unsound one.  The
dependency-tracked invalidation subsystem (``repro.core.deps``) is
therefore verified *differentially*: every scenario here runs twice —
once on a normal engine (plans, check cache, subtype/linearization
memos) and once on a cache-free oracle (``Engine(disable_caches=True)``,
the same configuration ``REPRO_DISABLE_CACHES=1`` forces globally) —
and the two runs must produce **identical type errors and identical
check outcomes**.  Any stale-cache bug shows up as a divergence.

Scenarios: the representative app workloads (pubs, cct, talks) run
twice each (cold load + warm steady state), plus redefinition/retype
churn sequences where the cached engine has every opportunity to replay
a stale judgment.
"""

import pytest

from repro import Engine, StaticTypeError
from repro.apps import all_builders

APP_CFG = {
    "pubs": {"publications": 15},
    "cct": {"repeats": 4},
    "talks": {},
}


def outcome_of(fn, *args, **kwargs):
    """Run ``fn`` and normalize its result or error for comparison."""
    try:
        return ("ok", repr(fn(*args, **kwargs)))
    except Exception as exc:  # noqa: BLE001 - the *error identity* is the point
        return ("err", type(exc).__name__, str(exc))


def run_app(name, *, disable):
    engine = Engine(disable_caches=disable)
    world = all_builders()[name](engine, **APP_CFG[name])
    outcomes = []
    world.seed()
    outcomes.append(outcome_of(world.workload))  # cold: annotations + checks
    world.seed()
    outcomes.append(outcome_of(world.workload))  # warm steady state
    return outcomes


@pytest.mark.parametrize("app", sorted(APP_CFG))
def test_app_workloads_identical_in_both_modes(app):
    """Cached and cache-free engines agree on every response and error."""
    cached = run_app(app, disable=False)
    oracle = run_app(app, disable=True)
    assert cached == oracle


def _churn_scenario(engine):
    """A redefinition-heavy sequence with every invalidation edge kind:
    body redefinition, dependent recheck, ancestor retype, subclassing,
    field retype, and mixin inclusion."""
    hb = engine.api()
    outcomes = []

    class DBase:
        @hb.typed("() -> Integer")
        def base(self):
            return 1

        @hb.typed("() -> Integer")
        def double(self):
            return self.base() * 2

    class DSub(DBase):
        pass

    engine.register_class(DSub)

    d = DSub()
    outcomes.append(outcome_of(d.double))
    outcomes.append(outcome_of(d.double))  # warm

    # Body redefinition to a broken body: the next call must re-check
    # and raise, never replay the memoized success.
    def base(self):
        return "broken"

    engine.define_method(DBase, "base", base)
    outcomes.append(outcome_of(d.base))
    outcomes.append(outcome_of(d.double))

    # Repair it, then retype the *ancestor* signature: the receiver-keyed
    # derivation for DSub must fall via the explicit ancestor edge.
    def base2(self):
        return 7

    engine.define_method(DBase, "base", base2)
    outcomes.append(outcome_of(d.double))
    engine.types.replace("DBase", "base", "() -> String", check=True)
    outcomes.append(outcome_of(d.double))  # double's body now ill-typed

    # Field retype invalidating a reader.
    class FBox:
        def __init__(self):
            self.value = 1

        @hb.typed("() -> Integer")
        def get(self):
            return self.value

    hb.field_type(FBox, "value", "Integer")
    b = FBox()
    outcomes.append(outcome_of(b.get))
    hb.field_type(FBox, "value", "String")
    outcomes.append(outcome_of(b.get))

    # Late, more-specific signature on the receiver class shadows the
    # ancestor's: the warm argument profile must not survive.
    class SBase:
        @hb.typed("(Integer) -> Integer")
        def twice(self, n):
            return n * 2

    class SSub(SBase):
        pass

    engine.register_class(SSub)
    s = SSub()
    outcomes.append(outcome_of(s.twice, 3))
    hb.annotate(SSub, "twice", "(String) -> Integer")
    outcomes.append(outcome_of(s.twice, 3))
    return outcomes


def test_churn_scenario_identical_in_both_modes():
    cached = _churn_scenario(Engine(disable_caches=False))
    oracle = _churn_scenario(Engine(disable_caches=True))
    assert cached == oracle


def test_churn_errors_are_real_type_errors():
    """Sanity on the scenario itself: it actually exercises errors (a
    vacuously green differential harness would prove nothing)."""
    outcomes = _churn_scenario(Engine(disable_caches=False))
    kinds = [o[1] for o in outcomes if o[0] == "err"]
    assert StaticTypeError.__name__ in kinds
    assert "ArgumentTypeError" in kinds


def test_env_switch_builds_oracle_engines(monkeypatch):
    """REPRO_DISABLE_CACHES=1 must flip every default-config engine into
    the oracle (this is what the CI cache-disabled job relies on)."""
    monkeypatch.setenv("REPRO_DISABLE_CACHES", "1")
    engine = Engine()
    assert engine.caches_disabled
    assert engine.config.caching is False
    assert engine.config.call_plans is False
    assert engine.hier.subtype_cache.enabled is False
    assert engine.hier.memo_enabled is False
    monkeypatch.setenv("REPRO_DISABLE_CACHES", "0")
    assert not Engine().caches_disabled
