"""The dependency-tracked invalidation subsystem: per-key plan flushing,
ancestor-retype edges, hierarchy edges, and the new observability
counters.

The headline regression pinned here: redefining ONE method of a class
must not evict the call plans of its other methods (nor plans for the
same method name on unrelated classes) — the old version-counter guards
flushed everything, which is what made dev-mode reload churn cold.
"""

import pytest

from repro import Engine, EngineConfig, ReturnTypeError, StaticTypeError
from repro.core.deps import DepGraph

pytestmark = pytest.mark.requires_caches


def fresh():
    engine = Engine()
    return engine, engine.api()


# -- DepGraph unit -----------------------------------------------------------


class TestDepGraph:
    def test_record_and_invalidate(self):
        g = DepGraph()
        g.record("t1", [("sig", "A", "m"), ("lin", "A")])
        g.record("t2", [("sig", "A", "m")])
        assert g.dependents(("sig", "A", "m")) == {"t1", "t2"}
        assert g.invalidate(("lin", "A")) == {"t1"}
        # t1's other edges were severed with it:
        assert g.dependents(("sig", "A", "m")) == {"t2"}

    def test_record_replaces_edges(self):
        g = DepGraph()
        g.record("t", [("sig", "A", "m")])
        g.record("t", [("sig", "B", "m")])
        assert g.dependents(("sig", "A", "m")) == set()
        assert g.dependents(("sig", "B", "m")) == {"t"}

    def test_forget_and_clear(self):
        g = DepGraph()
        g.record("t", [("sig", "A", "m")])
        g.forget("t")
        assert g.invalidate(("sig", "A", "m")) == set()
        g.record("u", [("field", "A", "v")])
        g.clear()
        assert len(g) == 0 and g.resource_count() == 0

    def test_invalidate_pops_each_token_once(self):
        g = DepGraph()
        g.record("t", [("sig", "A", "m"), ("sig", "B", "m")])
        popped = g.invalidate_many([("sig", "A", "m"), ("sig", "B", "m")])
        assert popped == {"t"}


# -- per-key plan flushing (the regression this PR pins) ---------------------


class TestPerKeyPlanFlushing:
    def build_service(self, engine, hb):
        class Service:
            @hb.typed("(Integer) -> Integer")
            def alpha(self, n):
                return n + 1

            @hb.typed("(Integer) -> Integer")
            def beta(self, n):
                return n + 2

            @hb.typed("(Integer) -> Integer")
            def gamma(self, n):
                return n + 3

        return Service

    def test_redefining_one_method_keeps_sibling_plans(self):
        engine, hb = fresh()
        Service = self.build_service(engine, hb)
        s = Service()
        for _ in range(2):
            s.alpha(1), s.beta(1), s.gamma(1)
        checks = engine.stats.static_checks
        invalidations = engine.stats.plan_invalidations

        def alpha(self, n):
            return n + 10

        engine.define_method(Service, "alpha", alpha)
        # exactly alpha's plan fell — not beta's, not gamma's
        assert engine.stats.plan_invalidations == invalidations + 1
        hits = engine.stats.fast_path_hits
        assert s.beta(1) == 3
        assert s.gamma(1) == 4
        assert engine.stats.fast_path_hits == hits + 2
        # and the siblings were not re-checked either
        assert engine.stats.static_checks == checks
        assert s.alpha(1) == 11  # slow rebuild + fresh check for alpha only
        assert engine.stats.static_checks == checks + 1

    def test_same_method_name_on_unrelated_class_survives(self):
        engine, hb = fresh()

        class Left:
            @hb.typed("(Integer) -> Integer")
            def work(self, n):
                return n + 1

        class Right:
            @hb.typed("(Integer) -> Integer")
            def work(self, n):
                return n + 2

        left, right = Left(), Right()
        for _ in range(2):
            left.work(1), right.work(1)
        invalidations = engine.stats.plan_invalidations

        def work(self, n):
            return n + 10

        engine.define_method(Left, "work", work)
        assert engine.stats.plan_invalidations == invalidations + 1
        hits = engine.stats.fast_path_hits
        assert right.work(1) == 3  # Right#work's plan is still warm
        assert engine.stats.fast_path_hits == hits + 1

    def test_retype_flushes_only_dependent_sites(self):
        """types.replace on one method leaves unrelated warm sites alone
        (the old scheme's table-version guard killed every plan)."""
        engine, hb = fresh()
        Service = self.build_service(engine, hb)
        s = Service()
        for _ in range(2):
            s.alpha(1), s.beta(1), s.gamma(1)
        engine.types.replace("Service", "alpha", "(String) -> Integer",
                             check=False)
        hits = engine.stats.fast_path_hits
        assert s.beta(2) == 4
        assert s.gamma(2) == 5
        assert engine.stats.fast_path_hits == hits + 2


# -- ancestor-retype and hierarchy edges -------------------------------------


class TestExplicitEdges:
    def test_ancestor_retype_invalidates_receiver_keyed_entry(self):
        """The receiver-keyed derivation for a subclass checked the
        *ancestor's* body; retyping the ancestor signature must remove it
        via the explicit edge (per-key matching alone would miss it)."""
        engine, hb = fresh()

        class RBase:
            @hb.typed("() -> Integer")
            def num(self):
                return 1

        class RSub(RBase):
            pass

        engine.register_class(RSub)
        r = RSub()
        assert r.num() == 1
        assert ("RSub", "num") in engine.cache
        before = engine.stats.retype_edge_invalidations
        engine.types.replace("RBase", "num", "() -> String", check=True)
        assert ("RSub", "num") not in engine.cache
        assert engine.stats.retype_edge_invalidations > before
        with pytest.raises(StaticTypeError):
            r.num()  # fresh check: body returns Integer, sig says String

    def test_ancestor_body_redefinition_invalidates_receiver_keyed_entry(self):
        engine, hb = fresh()

        class BBase:
            @hb.typed("() -> Integer")
            def num(self):
                return 1

        class BSub(BBase):
            pass

        engine.register_class(BSub)
        b = BSub()
        assert b.num() == 1
        assert ("BSub", "num") in engine.cache

        def num(self):
            return "broken"

        engine.define_method(BBase, "num", num)
        assert ("BSub", "num") not in engine.cache
        with pytest.raises(StaticTypeError):
            b.num()

    def test_mixin_inclusion_invalidates_consulting_derivations(self):
        """A derivation that resolved calls through a class's ancestry
        records ("lin", C) edges; mixing a module into C removes it."""
        engine, hb = fresh()

        class HBase:
            @hb.typed("() -> Integer")
            def helper(self):
                return 1

            @hb.typed("() -> Integer")
            def compute(self):
                return self.helper() + 1

        h = HBase()
        assert h.compute() == 2
        assert ("HBase", "compute") in engine.cache
        before = engine.stats.hier_edge_invalidations
        engine.hier.add_module("HMixin")
        engine.hier.include_module("HBase", "HMixin")
        assert ("HBase", "compute") not in engine.cache
        assert engine.stats.hier_edge_invalidations > before
        assert h.compute() == 2  # rechecks cleanly under the new ancestry

    def test_unrelated_class_keeps_checked_entries(self):
        engine, hb = fresh()

        class Quiet:
            @hb.typed("() -> Integer")
            def calm(self):
                return 1

        q = Quiet()
        q.calm()
        assert ("Quiet", "calm") in engine.cache
        checks = engine.stats.static_checks

        class Noise:
            pass

        engine.register_class(Noise)
        assert ("Quiet", "calm") in engine.cache
        q.calm()
        assert engine.stats.static_checks == checks


# -- dynamic return checks and their plan profiles ---------------------------


class TestReturnChecks:
    def build_trusted(self, engine, hb, body):
        class Teller:
            @hb.trusted("() -> Integer")
            def tell(self):
                return body()

        return Teller()

    def test_lying_trusted_return_raises_in_always_mode(self):
        engine = Engine(EngineConfig(dynamic_ret_checks="always"))
        t = self.build_trusted(engine, engine.api(), lambda: "a lie")
        with pytest.raises(ReturnTypeError):
            t.tell()

    def test_ret_profile_skips_warm_conformance_walks(self):
        engine = Engine(EngineConfig(dynamic_ret_checks="always"))
        t = self.build_trusted(engine, engine.api(), lambda: 5)
        for _ in range(10):
            assert t.tell() == 5
        # slow call + one learning fast call, then profile hits
        assert engine.stats.ret_profile_hits == 8
        assert engine.stats.dynamic_ret_checks == 10

    def test_ret_profile_still_rejects_new_bad_classes(self):
        engine = Engine(EngineConfig(dynamic_ret_checks="always"))
        hb = engine.api()
        results = [1, 2, 3, "surprise"]

        class Popper:
            @hb.trusted("() -> Integer")
            def pop(self):
                return results.pop(0)

        p = Popper()
        for _ in range(3):
            p.pop()
        with pytest.raises(ReturnTypeError):
            p.pop()

    def test_boundary_mode_checks_only_under_checked_callers(self):
        """"boundary" returns guard the trust edge: a statically checked
        caller relied on the trusted return type, an unchecked caller did
        not."""
        engine = Engine(EngineConfig(dynamic_ret_checks="boundary"))
        hb = engine.api()

        class Mixed:
            @hb.trusted("() -> Integer")
            def trusted_lie(self):
                return "not an integer"

            @hb.typed("() -> Integer")
            def checked_caller(self):
                return self.trusted_lie()

        m = Mixed()
        # top-level (unchecked) caller: no return check, the lie passes
        assert m.trusted_lie() == "not an integer"
        # checked caller: its derivation trusted the signature, so the
        # dynamic return check fires and catches the lie
        with pytest.raises(ReturnTypeError):
            m.checked_caller()

    def test_checked_methods_never_ret_checked(self):
        """Static checking already verified checked methods' returns; the
        dynamic return check applies to trusted signatures only."""
        engine = Engine(EngineConfig(dynamic_ret_checks="always"))
        hb = engine.api()

        class Honest:
            @hb.typed("() -> Integer")
            def value(self):
                return 3

        h = Honest()
        for _ in range(3):
            h.value()
        assert engine.stats.dynamic_ret_checks == 0

    def test_default_mode_is_never(self):
        engine, hb = fresh()

        class Liar:
            @hb.trusted("() -> Integer")
            def fib(self):
                return "paper semantics: unchecked"

        assert Liar().fib() == "paper semantics: unchecked"
        assert engine.stats.dynamic_ret_checks == 0


# -- subtype-memo LRU observability ------------------------------------------


class TestSubtypeLruCounters:
    def test_evictions_synced_into_snapshot(self):
        engine, hb = fresh()
        engine.hier.subtype_cache.max_entries = 4
        from repro.rtypes import NominalType, is_subtype
        names = ["Integer", "Float", "String", "Symbol", "Proc", "Time"]
        for a in names:
            for b in names:
                is_subtype(NominalType(a), NominalType(b), engine.hier)
        snap = engine.stats_snapshot()
        assert snap["subtype_lru_evictions"] > 0
        assert snap["subtype_lru_evictions"] == \
            engine.hier.subtype_cache.evictions
