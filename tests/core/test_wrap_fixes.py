"""Regression tests for the ``rdl.wrap`` correctness fixes.

* staticmethods: the old ``wrap_method`` extracted ``__func__`` from a
  ``staticmethod`` slot but re-installed the wrapper as a plain function
  (only ``classmethod`` was special-cased on the way back), so instance
  calls shifted their first real argument into the wrapper's ``recv``
  slot and class-level calls were treated as receiver-less.  Wrapping a
  staticmethod is now *refused* — the slot keeps its plain-Python
  semantics — and ``@typed`` over a staticmethod likewise records the
  signature without converting the method to a classmethod;
* the contract-resolution memo: keyed on live receiver class objects
  and never bounded, it pinned every class generation dev-mode reload
  churn ever produced.  It is now dropped wholesale at a fixed cap.
"""

import pytest

from repro import Engine
from repro.rdl.wrap import (
    _CONTRACT_MEMO_MAX, add_pre, is_wrapped, wrap_method,
)


class TestStaticmethodWrapping:

    def test_annotating_a_staticmethod_refuses_loudly(self):
        """The smoking gun: pre-fix, annotating a class holding a
        staticmethod rebound the slot to a plain wrapper, so
        ``HasStatic.double(3)`` saw ``recv=3, args=()`` (arity error)
        and instance calls passed the instance into the body.  Now the
        refusal is an error — a recorded-but-never-enforced signature
        would be a silent soundness hole — and the slot is untouched."""
        from repro.core.errors import TypeSignatureError

        engine = Engine()

        class HasStatic:
            @staticmethod
            def double(n):
                return 2 * n

        engine.register_class(HasStatic)
        with pytest.raises(TypeSignatureError):
            engine.annotate(HasStatic, "double", "(Integer) -> Integer",
                            check=True)
        assert HasStatic.double(3) == 6
        assert HasStatic().double(3) == 6
        assert isinstance(HasStatic.__dict__["double"], staticmethod)
        assert not is_wrapped(HasStatic, "double")
        # atomicity: the refusal fired *before* the registry mutation,
        # so no recorded-but-never-enforced signature is left behind.
        assert engine.types.lookup("HasStatic", "double",
                                   "instance") is None
        assert engine.types.lookup("HasStatic", "double", "class") is None

    def test_wrap_method_raises_and_leaves_staticmethod_slots_untouched(
            self):
        from repro.core.errors import TypeSignatureError

        engine = Engine()

        class Util:
            @staticmethod
            def ident(x):
                return x

        engine.register_class(Util)
        before = Util.__dict__["ident"]
        with pytest.raises(TypeSignatureError):
            wrap_method(engine, Util, "ident")
        assert Util.__dict__["ident"] is before
        assert Util.ident("value") == "value"

    def test_contract_on_a_staticmethod_refuses_loudly(self):
        """Pre-fix, registering a contract on a staticmethod stored the
        hook but the wrapper never ran it — an always-fail pre-contract
        was silently ignored."""
        from repro.core.errors import TypeSignatureError

        engine = Engine()

        class Hooked:
            @staticmethod
            def go(n):
                return n

        engine.register_class(Hooked)
        with pytest.raises(TypeSignatureError):
            add_pre(engine, Hooked, "go", lambda *a, **k: False)
        assert Hooked.go(5) == 5  # slot untouched
        # atomicity: the refused registration must not leave an empty
        # store entry behind — a non-empty _contracts would block
        # tier-2 promotion engine-wide, forever.
        assert engine._contracts == {}

    def test_deferred_annotation_onto_staticmethod_warns_not_corrupts(self):
        """Annotate-by-name before the class exists, then register a
        class whose slot is a staticmethod: register_class must
        complete (warning loudly about the unenforceable annotation),
        drop the pending wrap so nothing re-trips, and leave the
        staticmethod untouched."""
        engine = Engine()
        engine.annotate("LateStatic", "m", "(Integer) -> Integer",
                        check=True)

        class LateStatic:
            @staticmethod
            def m(n):
                return n

        with pytest.warns(RuntimeWarning, match="staticmethod"):
            engine.register_class(LateStatic)
        assert engine.host_class("LateStatic") is LateStatic
        assert ("LateStatic", "m", "instance") not in engine._pending_wraps
        assert LateStatic.m(3) == 3
        assert isinstance(LateStatic.__dict__["m"], staticmethod)
        engine.register_class(LateStatic)  # idempotent, no re-trip

    @pytest.mark.requires_specialization
    def test_refused_contract_does_not_poison_tier2_promotion(self):
        """End-to-end form of the atomicity property: after a refused
        staticmethod contract, an unrelated hot method must still
        promote to tier 2."""
        from repro import EngineConfig
        from repro.core.errors import TypeSignatureError

        engine = Engine(EngineConfig(specialize_threshold=5))
        hb = engine.api()

        class Mixed:
            @staticmethod
            def helper(n):
                return n

            @hb.typed("(Integer) -> Integer")
            def hot(self, n):
                return n + 1

        with pytest.raises(TypeSignatureError):
            add_pre(engine, Mixed, "helper", lambda *a, **k: True)
        obj = Mixed()
        for i in range(20):
            assert obj.hot(i) == i + 1
        assert engine.stats.promotions == 1

    def test_typed_decorator_preserves_staticmethod_semantics(self):
        """``@typed`` over a staticmethod used to convert it to a
        classmethod, silently prepending ``cls`` to every call."""
        engine = Engine()
        hb = engine.api()

        class Tools:
            @hb.typed("(Integer) -> Integer", check=False)
            @staticmethod
            def triple(n):
                return 3 * n

        assert Tools.triple(2) == 6
        assert Tools().triple(2) == 6
        assert isinstance(Tools.__dict__["triple"], staticmethod)
        # the signature was still recorded (trusted, uninstrumented)
        assert engine.types.lookup("Tools", "triple", "class") is not None

    def test_typed_checked_staticmethod_is_refused_loudly(self):
        """``check=True`` cannot be honored for a staticmethod; silently
        recording an unenforced signature would be worse than failing
        at class-definition time."""
        from repro.core.errors import TypeSignatureError

        engine = Engine()
        hb = engine.api()

        # Python < 3.12 wraps __set_name__ errors in RuntimeError with
        # the original as __cause__; 3.12+ lets them propagate bare.
        with pytest.raises((TypeSignatureError, RuntimeError)) as excinfo:
            class Broken:
                @hb.typed("(Integer) -> Integer")  # check defaults True
                @staticmethod
                def quadruple(n):
                    return 4 * n
        err = excinfo.value
        if isinstance(err, RuntimeError):
            assert isinstance(err.__cause__, TypeSignatureError)


class TestContractMemoBound:

    def test_reload_churn_cannot_grow_the_memo_without_bound(self):
        """Pre-fix, every fresh receiver class generation added a
        permanent memo entry keyed on the live class object — a leak
        under dev-mode reload churn.  The memo now stays at or below
        its cap across arbitrarily many generations."""
        engine = Engine()

        class ContractRoot:
            def ping(self):
                return "pong"

        engine.register_class(ContractRoot)
        add_pre(engine, ContractRoot, "ping",
                lambda recv, *a, **k: True)
        for i in range(_CONTRACT_MEMO_MAX + 64):
            generation = type(f"ReloadGen{i}", (ContractRoot,), {})
            assert generation().ping() == "pong"
            assert len(engine._contract_memo) <= _CONTRACT_MEMO_MAX
        # resolution still works after the wholesale drop
        assert ContractRoot().ping() == "pong"

    def test_contract_registration_still_flushes_the_memo(self):
        """Bounding must not change the flush-on-registration rule: a
        new contract store invalidates every memoized resolution."""
        engine = Engine()
        calls = []

        class Memoed:
            def act(self):
                return "acted"

            def other(self):
                return "other"

        engine.register_class(Memoed)
        add_pre(engine, Memoed, "act",
                lambda recv, *a, **k: calls.append("act") or True)
        assert Memoed().act() == "acted"
        assert engine._contract_memo  # resolution memoized
        add_pre(engine, Memoed, "other",
                lambda recv, *a, **k: calls.append("other") or True)
        assert engine._contract_memo == {}  # flushed wholesale
        assert Memoed().other() == "other"
        assert Memoed().act() == "acted"
        assert calls == ["act", "other", "act"]

    def test_bad_contract_still_raises_after_memo_churn(self):
        from repro.rdl.wrap import ContractViolation

        engine = Engine()

        class Guarded:
            def go(self, n):
                return n

        engine.register_class(Guarded)
        add_pre(engine, Guarded, "go", lambda recv, n: n > 0)
        assert Guarded().go(1) == 1
        with pytest.raises(ContractViolation):
            Guarded().go(-1)
