"""Call-plan inline caches: the fast path is taken when safe and flushed
when anything it memoized could have changed.

Stale-plan bugs are silent (a skipped static check, a skipped dynamic
check), so every test here drives a *behavioral* observation — an error
that must still be raised, a recheck that must still happen — not just
counter bookkeeping.
"""

import pytest

from repro import ArgumentTypeError, Engine, EngineConfig, StaticTypeError


def make_engine(**kwargs):
    return Engine(EngineConfig(**kwargs)) if kwargs else Engine()


def build_counter(engine):
    hb = engine.api()

    class Counter:
        @hb.typed("(Integer) -> Integer")
        def bump(self, n):
            return n + 1

    return Counter


class TestFastPath:
    @pytest.mark.requires_caches
    def test_warm_calls_hit_the_fast_path(self):
        engine = make_engine()
        c = build_counter(engine)()
        c.bump(1)  # cold: builds the plan
        hits0 = engine.stats.fast_path_hits
        for i in range(10):
            c.bump(i)
        assert engine.stats.fast_path_hits == hits0 + 10
        # Counter semantics are unchanged by the fast path:
        assert engine.stats.cache_hits >= 10
        assert engine.stats.static_checks == 1

    @pytest.mark.requires_caches
    def test_fast_path_disabled_by_config(self):
        engine = make_engine(call_plans=False)
        c = build_counter(engine)()
        for i in range(5):
            c.bump(i)
        assert engine.stats.fast_path_hits == 0
        assert engine.stats.static_checks == 1  # caching still works

    def test_no_cache_mode_builds_no_checked_plans(self):
        """No$ must keep re-checking every call (the paper's column)."""
        engine = make_engine(caching=False)
        c = build_counter(engine)()
        for i in range(5):
            c.bump(i)
        assert engine.stats.static_checks == 5

    def test_profile_cache_rejects_new_bad_classes(self):
        """The inline cache memoizes *passing* argument-class tuples only."""
        engine = make_engine()
        c = build_counter(engine)()
        for i in range(20):
            c.bump(i)
        with pytest.raises(ArgumentTypeError):
            c.bump("a string")
        # and the site still works afterwards
        assert c.bump(4) == 5

    def test_deep_checks_not_profiled(self):
        """Element-dependent expectations (Array<Integer>) stay deep even
        on a warm site — a class profile would be unsound for them."""
        engine = make_engine()
        hb = engine.api()

        class Summer:
            @hb.typed("(Array<Integer>) -> Integer")
            def total(self, items):
                acc = 0
                for item in items:
                    acc = acc + item
                return acc

        s = Summer()
        for _ in range(5):
            assert s.total([1, 2, 3]) == 6
        with pytest.raises(ArgumentTypeError):
            s.total([1, "two"])

    def test_kwargs_calls_stay_correct_when_warm(self):
        engine = make_engine()
        hb = engine.api()

        class Greeter:
            @hb.typed("(String, Integer) -> String")
            def greet(self, name, times):
                return name * times

        g = Greeter()
        for _ in range(3):
            assert g.greet("hi", times=2) == "hihi"
        with pytest.raises(ArgumentTypeError):
            g.greet("hi", times="two")


class TestPlanInvalidation:
    @pytest.mark.requires_caches
    def test_body_redefinition_flushes_plans(self):
        engine = make_engine()
        Counter = build_counter(engine)
        c = Counter()
        for i in range(5):
            c.bump(i)
        misses = engine.stats.cache_misses

        def bump(self, n):
            return "broken"  # violates () -> Integer

        engine.define_method(Counter, "bump", bump)
        assert engine.stats.plan_invalidations > 0
        with pytest.raises(StaticTypeError):
            c.bump(1)
        # the error came from a *fresh* check, not a stale fast path
        assert engine.stats.cache_misses > misses

    def test_signature_replacement_flushes_plans(self):
        engine = make_engine()
        c = build_counter(engine)()
        for i in range(5):
            c.bump(i)
        # Integers passed the profile; after the retype they must fail the
        # dynamic check even though the call site is warm.
        engine.types.replace("Counter", "bump", "(String) -> Integer",
                             check=False)
        with pytest.raises(ArgumentTypeError):
            c.bump(7)

    @pytest.mark.requires_caches
    def test_unrelated_class_registration_keeps_plans_warm(self):
        """A new leaf class appears in no existing linearization, so the
        dependency graph leaves every warm plan alone (the dev-mode
        reload win; the old version-counter guard flushed everything)."""
        engine = make_engine()
        c = build_counter(engine)()
        for i in range(3):
            c.bump(i)
        hits = engine.stats.fast_path_hits

        class Unrelated:
            pass

        engine.register_class(Unrelated)
        c.bump(1)
        assert engine.stats.fast_path_hits == hits + 1

    @pytest.mark.requires_caches
    def test_mixin_into_receiver_ancestry_flushes_plans(self):
        """``include_module`` rewrites the receiver's linearization — the
        one hierarchy mutation that can redirect resolution — so plans
        that resolved through it must fall (the ("lin", C) edge)."""
        engine = make_engine()
        c = build_counter(engine)()
        for i in range(3):
            c.bump(i)
        hits = engine.stats.fast_path_hits
        engine.hier.add_module("Mixin")
        engine.hier.include_module("Counter", "Mixin")
        assert engine.stats.plan_invalidations > 0
        c.bump(1)  # slow call: the plan rebuilds under the new ancestry
        assert engine.stats.fast_path_hits == hits
        c.bump(2)
        assert engine.stats.fast_path_hits == hits + 1

    def test_subclass_annotation_redirects_resolution(self):
        """A warm plan resolving through an ancestor must not survive a
        more specific signature appearing on the receiver's class."""
        engine = make_engine()
        hb = engine.api()

        class Base:
            @hb.typed("(Integer) -> Integer")
            def twice(self, n):
                return n * 2

        class Derived(Base):
            pass

        engine.register_class(Derived)
        d = Derived()
        for i in range(5):
            d.twice(i)
        # Derived now declares String -> the old Integer profile is stale.
        hb.annotate(Derived, "twice", "(String) -> Integer")
        with pytest.raises(ArgumentTypeError):
            d.twice(3)

    def test_duplicate_annotation_check_upgrade_is_not_skipped(self):
        """Re-annotating the same arm with check=True must start checking
        the body — the table changed even though the arm is a duplicate."""
        engine = make_engine()
        hb = engine.api()

        class Loose:
            @hb.typed("() -> Integer", check=False)
            def answer(self):
                return "not an integer"

        loose = Loose()
        assert loose.answer() == "not an integer"  # trusted: body unchecked
        annotations = engine.stats.annotations_total
        hb.annotate(Loose, "answer", "() -> Integer", check=True)
        # the duplicate arm invalidates but is not a *new* annotation
        assert engine.stats.annotations_total == annotations
        with pytest.raises(StaticTypeError):
            loose.answer()

    @pytest.mark.requires_caches
    def test_direct_cache_flush_cannot_leave_stale_fast_path(self):
        """Even clearing the check cache behind the engine's back (the
        full-flush ablation does this) must force rechecks: checked plans
        guard on their derivation still being cached."""
        engine = make_engine()
        c = build_counter(engine)()
        for i in range(5):
            c.bump(i)
        misses = engine.stats.cache_misses
        engine.cache.clear()
        c.bump(1)
        assert engine.stats.cache_misses == misses + 1  # rechecked
        hits = engine.stats.fast_path_hits
        c.bump(2)  # plan rebuilt by the recheck call; fast again
        assert engine.stats.fast_path_hits == hits + 1

    @pytest.mark.requires_caches
    def test_field_type_change_flushes_reader_plans(self):
        engine = make_engine()
        hb = engine.api()

        class Box:
            def __init__(self):
                self.value = 1

            @hb.typed("() -> Integer")
            def get(self):
                return self.value

        hb.field_type(Box, "value", "Integer")
        b = Box()
        for _ in range(5):
            b.get()
        hb.field_type(Box, "value", "String")
        with pytest.raises(StaticTypeError):
            b.get()
        assert engine.stats.plan_invalidations > 0
