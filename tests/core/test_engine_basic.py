"""End-to-end engine tests: the JIT protocol on live host classes.

Each test builds its classes inside the test function with a fresh engine,
mirroring how an app "loads" under Hummingbird.
"""

import pytest

from repro import (
    ArgumentTypeError, CastError, Engine, EngineConfig, NoMethodBodyError,
    StaticTypeError, Sym,
)


def make_engine(**kwargs):
    return Engine(EngineConfig(**kwargs)) if kwargs else Engine()


class TestHappyPath:
    @pytest.mark.requires_caches
    def test_first_call_checks_then_caches(self):
        engine = make_engine()
        hb = engine.api()

        class Greeter:
            @hb.typed("(String) -> String")
            def greet(self, name):
                return "hello, " + name

        g = Greeter()
        assert g.greet("world") == "hello, world"
        assert engine.stats.static_checks == 1
        assert engine.stats.cache_misses == 1
        g.greet("again")
        g.greet("third")
        assert engine.stats.static_checks == 1
        assert engine.stats.cache_hits == 2

    def test_no_cache_rechecks_every_call(self):
        engine = make_engine(caching=False)
        hb = engine.api()

        class Greeter:
            @hb.typed("(String) -> String")
            def greet(self, name):
                return "hello, " + name

        g = Greeter()
        for _ in range(5):
            g.greet("x")
        assert engine.stats.static_checks == 5

    @pytest.mark.requires_caches
    def test_method_calling_typed_method(self):
        engine = make_engine()
        hb = engine.api()

        class Calc:
            @hb.typed("(Integer) -> Integer")
            def double(self, x):
                return x * 2

            @hb.typed("(Integer) -> Integer")
            def quadruple(self, x):
                return self.double(self.double(x))

        assert Calc().quadruple(3) == 12
        # quadruple's check recorded a dependency on double
        entry = engine.cache.get(("Calc", "quadruple"))
        assert ("Calc", "double") in entry.deps

    def test_flow_sensitive_reassignment(self):
        engine = make_engine()
        hb = engine.api()

        class Flow:
            @hb.typed("(Integer) -> String")
            def stringify(self, x):
                y = x
                y = str(y)
                return y

        assert Flow().stringify(3) == "3"

    def test_conditional_join(self):
        engine = make_engine()
        hb = engine.api()

        class Branchy:
            @hb.typed("(%bool) -> Integer or String")
            def pick(self, flag):
                if flag:
                    out = 1
                else:
                    out = "one"
                return out

        assert Branchy().pick(True) == 1
        assert Branchy().pick(False) == "one"

    def test_class_method(self):
        engine = make_engine()
        hb = engine.api()

        class Registry:
            @hb.typed("(String) -> String", kind="class")
            def lookup(cls, key):
                return "value:" + key

        assert Registry.lookup("k") == "value:k"
        assert engine.stats.static_checks == 1

    def test_loop_and_accumulator(self):
        engine = make_engine()
        hb = engine.api()

        class Summer:
            @hb.typed("(Array<Integer>) -> Integer")
            def total(self, items):
                acc = 0
                for item in items:
                    acc = acc + item
                return acc

        assert Summer().total([1, 2, 3]) == 6

    def test_untyped_methods_not_intercepted(self):
        engine = make_engine()
        hb = engine.api()

        class Mixed:
            @hb.typed("() -> Integer")
            def typed_one(self):
                return 1

            def plain(self):
                return "anything at all", [1, "2"]

        m = Mixed()
        m.typed_one()
        m.plain()
        assert engine.stats.calls_intercepted == 1


class TestStaticErrors:
    def test_wrong_return_type(self):
        engine = make_engine()
        hb = engine.api()

        class Bad:
            @hb.typed("() -> Integer")
            def give(self):
                return "not an integer"

        with pytest.raises(StaticTypeError, match="String"):
            Bad().give()

    def test_error_raised_at_call_not_definition(self):
        engine = make_engine()
        hb = engine.api()

        class Lazy:
            @hb.typed("() -> Integer")
            def broken(self):
                return "oops"

            @hb.typed("() -> Integer")
            def fine(self):
                return 42

        lazy = Lazy()
        assert lazy.fine() == 42  # broken never called, never checked
        with pytest.raises(StaticTypeError):
            lazy.broken()

    def test_unknown_method_on_receiver(self):
        engine = make_engine()
        hb = engine.api()

        class Caller:
            @hb.typed("(String) -> Integer")
            def go(self, s):
                return s.object()  # String has no 'object' (Talks 1/28/12)

        with pytest.raises(StaticTypeError, match="object"):
            Caller().go("x")

    def test_undefined_variable_reported_like_paper(self):
        engine = make_engine()
        hb = engine.api()

        class Caller:
            @hb.typed("() -> Integer")
            def go(self):
                return old_talk  # noqa: F821 — the 2/6/12-2 Talks error

        with pytest.raises(StaticTypeError, match="old_talk"):
            Caller().go()

    def test_wrong_argument_type_to_dependency(self):
        engine = make_engine()
        hb = engine.api()

        class Service:
            @hb.typed("(Integer) -> Integer")
            def work(self, n):
                return n

            @hb.typed("() -> Integer")
            def call_badly(self):
                return self.work("string")

        with pytest.raises(StaticTypeError, match="argument 1"):
            Service().call_badly()

    def test_arity_error(self):
        engine = make_engine()
        hb = engine.api()

        class Service:
            @hb.typed("(Integer, Integer) -> Integer")
            def add(self, a, b):
                return a + b

            @hb.typed("() -> Integer")
            def call_badly(self):
                return self.add(1)

        with pytest.raises(StaticTypeError, match="wrong number"):
            Service().call_badly()

    def test_signature_but_no_body(self):
        engine = make_engine()
        hb = engine.api()

        class Ghost:
            pass

        hb.annotate(Ghost, "phantom", "() -> nil", check=True)
        with pytest.raises(NoMethodBodyError):
            engine.check_method_now(Ghost, "phantom")


class TestDynamicChecks:
    def test_boundary_arg_check_catches_bad_entry_call(self):
        engine = make_engine()
        hb = engine.api()

        class Api:
            @hb.typed("(Integer) -> Integer")
            def entry(self, n):
                return n

        with pytest.raises(ArgumentTypeError):
            Api().entry("not an int")

    def test_nested_calls_skip_arg_checks(self):
        engine = make_engine()
        hb = engine.api()

        class Api:
            @hb.typed("(Integer) -> Integer")
            def inner(self, n):
                return n

            @hb.typed("(Integer) -> Integer")
            def outer(self, n):
                return self.inner(n)

        Api().outer(1)
        # outer was checked dynamically (entry from unchecked code), inner
        # was not (its caller is statically checked) — section 4.
        assert engine.stats.dynamic_arg_checks == 1
        assert engine.stats.dynamic_arg_checks_skipped == 1

    def test_always_mode_checks_everything(self):
        engine = make_engine(dynamic_arg_checks="always")
        hb = engine.api()

        class Api:
            @hb.typed("(Integer) -> Integer")
            def inner(self, n):
                return n

            @hb.typed("(Integer) -> Integer")
            def outer(self, n):
                return self.inner(n)

        Api().outer(1)
        assert engine.stats.dynamic_arg_checks == 2

    def test_cast_runtime_failure(self):
        engine = make_engine()
        with pytest.raises(CastError):
            engine.cast([1, "two"], "Array<Integer>")
        assert engine.cast([1, 2], "Array<Integer>") == [1, 2]

    def test_untrusted_hash_validation(self):
        engine = make_engine()
        engine.validate_untrusted_hash({Sym("id"): "3"},
                                       "Hash<Symbol, String>")
        with pytest.raises(ArgumentTypeError):
            engine.validate_untrusted_hash({Sym("id"): object()},
                                           "Hash<Symbol, String>")


class TestOrigMode:
    def test_no_interception_in_orig_mode(self):
        engine = make_engine(intercept=False)
        hb = engine.api()

        class Fast:
            @hb.typed("(Integer) -> Integer")
            def f(self, x):
                return x

        Fast().f(1)
        assert engine.stats.calls_intercepted == 0
        assert engine.stats.static_checks == 0
