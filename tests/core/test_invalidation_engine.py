"""Engine-level cache invalidation: the (EDef)/(EType) rules on live
classes, plus Definition 1's one-level (non-transitive) semantics."""

import pytest

from repro import Engine, StaticTypeError


def fresh():
    engine = Engine()
    return engine, engine.api()


class TestRedefinition:
    def build(self, engine, hb):
        class Service:
            @hb.typed("() -> Integer")
            def base(self):
                return 1

            @hb.typed("() -> Integer")
            def double(self):
                return self.base() * 2

            @hb.typed("() -> Integer")
            def quadruple(self):
                return self.double() * 2

        return Service

    @pytest.mark.requires_caches
    def test_redefinition_invalidates_self_and_dependents(self):
        engine, hb = fresh()
        Service = self.build(engine, hb)
        s = Service()
        assert s.quadruple() == 4
        assert engine.stats.static_checks == 3

        def base(self):
            return 10

        engine.define_method(Service, "base", base)
        # (EDef): base and its direct dependent double are invalidated;
        # quadruple's derivation used only double's *type*, which did not
        # change — Definition 1 is one level, not transitive.
        assert ("Service", "base") not in engine.cache
        assert ("Service", "double") not in engine.cache
        assert ("Service", "quadruple") in engine.cache
        assert s.quadruple() == 40
        assert engine.stats.static_checks == 5  # base + double rechecked

    @pytest.mark.requires_caches
    def test_identical_redefinition_keeps_cache(self):
        """Dev-mode IR diff: re-installing a byte-identical body does not
        invalidate (the reloader's key behaviour)."""
        engine, hb = fresh()
        Service = self.build(engine, hb)
        s = Service()
        s.quadruple()
        checks = engine.stats.static_checks
        source = "def base(self):\n    return 1\n"
        namespace = {}
        exec(source, namespace)
        fn = namespace["base"]
        fn.__hb_source__ = source
        engine.define_method(Service, "base", fn, source=source)
        s.quadruple()
        assert engine.stats.static_checks == checks

    def test_redefinition_to_broken_body_blames_at_next_call(self):
        engine, hb = fresh()
        Service = self.build(engine, hb)
        s = Service()
        s.double()

        def base(self):
            return "no longer an Integer"

        engine.define_method(Service, "base", base)
        with pytest.raises(StaticTypeError):
            s.base()

    def test_retype_invalidates_dependents(self):
        """(EType): changing a signature drops dependent derivations."""
        engine, hb = fresh()
        Service = self.build(engine, hb)
        s = Service()
        s.quadruple()
        engine.types.replace("Service", "base", "() -> String")
        assert ("Service", "double") not in engine.cache
        # double's body now violates base's new signature:
        with pytest.raises(StaticTypeError):
            s.double()

    def test_method_removed_hook(self):
        engine, hb = fresh()
        Service = self.build(engine, hb)
        s = Service()
        s.quadruple()
        engine.method_removed("Service", "base")
        assert ("Service", "base") not in engine.cache
        assert ("Service", "double") not in engine.cache

    @pytest.mark.requires_caches
    def test_field_type_change_invalidates_readers(self):
        engine, hb = fresh()

        class Box:
            def __init__(self):
                self.value = 1

            @hb.typed("() -> Integer")
            def get(self):
                return self.value

        hb.field_type(Box, "value", "Integer")
        b = Box()
        assert b.get() == 1
        assert ("Box", "get") in engine.cache
        hb.field_type(Box, "value", "String")
        assert ("Box", "get") not in engine.cache
        with pytest.raises(StaticTypeError):
            b.get()


class TestCacheUnit:
    def test_dependents_tracking(self):
        from repro.core.cache import CheckCache
        cache = CheckCache()
        cache.store(("B", "m"), deps={("A", "m")})
        cache.store(("C", "m"), deps={("B", "m")})
        assert cache.dependents(("A", "m")) == {("B", "m")}
        removed = cache.invalidate(("A", "m"))
        # One level: B falls, C survives (Definition 1).
        assert removed == {("B", "m")}
        assert ("C", "m") in cache

    def test_invalidate_key_itself(self):
        from repro.core.cache import CheckCache
        cache = CheckCache()
        cache.store(("A", "m"), deps=set())
        assert cache.invalidate(("A", "m")) == {("A", "m")}
        assert len(cache) == 0

    def test_store_replaces_previous_entry(self):
        from repro.core.cache import CheckCache
        cache = CheckCache()
        cache.store(("B", "m"), deps={("A", "m")})
        cache.store(("B", "m"), deps={("Z", "m")})
        assert cache.dependents(("A", "m")) == set()
        assert cache.dependents(("Z", "m")) == {("B", "m")}

    def test_upgrade_restamps(self):
        from repro.core.cache import CheckCache
        cache = CheckCache()
        cache.store(("A", "m"), deps=set(), table_version=1)
        cache.upgrade(7)
        assert cache.get(("A", "m")).table_version == 7


class TestContracts:
    def test_pre_contract_runs_and_can_reject(self):
        from repro.rdl.wrap import ContractViolation
        engine, hb = fresh()
        seen = []

        class Guarded:
            def action(self, x):
                return x * 2

        hb.pre(Guarded, "action", lambda recv, x: seen.append(x) or x > 0)
        g = Guarded()
        assert g.action(3) == 6
        assert seen == [3]
        with pytest.raises(ContractViolation):
            g.action(-1)

    def test_post_contract(self):
        from repro.rdl.wrap import ContractViolation
        engine, hb = fresh()

        class Guarded:
            def action(self, x):
                return x - 10

        hb.post(Guarded, "action", lambda recv, result, x: result >= 0)
        assert Guarded().action(15) == 5
        with pytest.raises(ContractViolation):
            Guarded().action(3)

    def test_pre_contract_generating_types_fig1_pattern(self):
        """The Fig. 1/Fig. 2 idiom: a pre-contract that annotates."""
        engine, hb = fresh()

        class Factory:
            def make_getter(self, name):
                def getter(self):
                    return name

                engine.define_method(type(self), f"get_{name}", getter)
                return None

        def typegen(recv, name):
            hb.annotate(type(recv), f"get_{name}", "() -> String",
                        generated=True)
            return True

        hb.pre(Factory, "make_getter", typegen)
        f = Factory()
        f.make_getter("color")
        assert f.get_color() == "color"
        assert engine.types.lookup("Factory", "get_color").generated
