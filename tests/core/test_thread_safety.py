"""Thread-safety suite: the concurrent engine's soundness observables.

Four properties, each a concrete production failure when violated:

* **outcome soundness** — N request threads sharing one engine produce
  exactly the outcomes a single-threaded oracle produces (read-only
  traffic is deterministic, so multisets must be *equal*, not similar);
* **phase-barrier differential** — serialized mutation waves with
  concurrent call batches in between agree, phase by phase, with a
  cache-free oracle replaying the same script, including mutations
  that *flip* outcomes to type errors (the stale-cache smoking gun);
* **convergence** — fully concurrent mutators and callers cannot wedge
  a cache: once the dust settles, the engine's judgments equal a fresh
  engine built directly in the final state;
* **stats exactness** — every hot counter total is exact after an
  N-thread run (the counters are per-thread shards; a torn ``+= 1``
  would show up here as a lost update).

Everything joins with timeouts; CI runs this file under a
``faulthandler`` timeout so a deadlock dumps stacks instead of hanging.
"""

import threading

import pytest

from repro import Engine, EngineConfig
from repro.concurrency import (
    ConcurrentDriver, build_concurrent_world, churn_recipe, request_thunks,
)

THREADS = 8
JOIN_S = 60.0


def _run_threads(n, target):
    errors = []

    def guarded(idx):
        try:
            target(idx)
        except Exception as exc:  # noqa: BLE001 - surfaced in the assert
            errors.append((idx, repr(exc)))

    workers = [threading.Thread(target=guarded, args=(i,), daemon=True)
               for i in range(n)]
    for t in workers:
        t.start()
    for t in workers:
        t.join(timeout=JOIN_S)
    assert not any(t.is_alive() for t in workers), "worker deadlock"
    assert not errors, errors


class _Typed:
    """Module-level typed class: defined once per engine via
    define_method so every engine (cached or oracle) gets its own
    wrapped copy with registered IR."""


_BODY = "def bump(self, n):\n    return n + 1\n"
_MIXED_BODY = "def tag(self, s):\n    return s + '!'\n"


def _typed_world(engine):
    cls = type("ThreadHot", (object,), {})
    namespace = {}
    exec(_BODY, namespace)  # noqa: S102 - fixed test template
    engine.define_method(cls, "bump", namespace["bump"],
                         sig="(Integer) -> Integer", check=True,
                         source=_BODY)
    namespace = {}
    exec(_MIXED_BODY, namespace)  # noqa: S102 - fixed test template
    engine.define_method(cls, "tag", namespace["tag"],
                         sig="(String) -> String", check=True,
                         source=_MIXED_BODY)
    return cls()


# -- stats exactness ---------------------------------------------------------


@pytest.mark.requires_threads
def test_stats_totals_exact_after_n_thread_run():
    """The satellite acceptance: totals are exact, never torn or lost.

    8 threads x 5000 calls each on one engine; every per-call counter
    must equal its closed-form value.  A plain ``self.x += 1`` under
    threads loses updates (three bytecodes, preemptible); the per-thread
    shards make this exact by construction, and this test would catch a
    regression to a shared counter immediately.
    """
    engine = Engine()
    obj = _typed_world(engine)
    obj.bump(0)  # warm: the static check runs, the call plan is built
    per_thread = 5000

    def caller(_idx):
        for i in range(per_thread):
            obj.bump(i)

    before = engine.stats.calls_intercepted
    _run_threads(THREADS, caller)
    stats = engine.stats
    assert stats.calls_intercepted - before == THREADS * per_thread
    # Every one of those calls ran a dynamic decision exactly once:
    # checked or skipped, never both, never neither.
    assert (stats.dynamic_arg_checks + stats.dynamic_arg_checks_skipped
            == stats.calls_intercepted)


@pytest.mark.requires_threads
@pytest.mark.requires_caches
def test_fast_path_hits_exact_under_threads():
    engine = Engine()
    obj = _typed_world(engine)
    obj.bump(0)
    per_thread = 2000

    def caller(_idx):
        for i in range(per_thread):
            obj.bump(i)

    hits0 = engine.stats.fast_path_hits
    _run_threads(THREADS, caller)
    assert engine.stats.fast_path_hits - hits0 == THREADS * per_thread


# -- outcome soundness -------------------------------------------------------


@pytest.mark.requires_threads
@pytest.mark.parametrize("app", ["pubs", "cct", "talks"])
def test_concurrent_outcomes_match_oracle(app):
    """N threads replaying the read-only request mix produce exactly the
    single-threaded outcome multiset, for every subject app."""
    world = build_concurrent_world(app)
    thunks = request_thunks(world)
    for thunk in thunks:  # warm: annotations executed, checks cached
        thunk()
    driver = ConcurrentDriver(thunks, threads=THREADS, requests=96)
    run = driver.run()
    oracle = driver.run_single_threaded_oracle()
    assert not run.crashes, run.crashes
    assert run.outcome_multiset() == oracle.outcome_multiset()


@pytest.mark.requires_threads
def test_semantics_preserving_churn_does_not_change_outcomes():
    """A dev-mode reload wave (same-signature retype + fresh class +
    identical field_type) firing every few ms under 8-thread load must
    not change a single outcome — stale *or* torn caches both surface
    as a divergence here."""
    world = build_concurrent_world("pubs")
    thunks = request_thunks(world)
    for thunk in thunks:
        thunk()
    driver = ConcurrentDriver(thunks, threads=THREADS, requests=160,
                              churn=churn_recipe(world),
                              churn_interval_s=0.002)
    run = driver.run()
    oracle = driver.run_single_threaded_oracle()
    assert not run.crashes, run.crashes
    assert run.churn_applied > 0
    assert run.outcome_multiset() == oracle.outcome_multiset()


# -- phase-barrier differential ---------------------------------------------

#: (signature, argument, still_well_typed) — retyping the callee's
#: return type to String makes the *caller's* cached derivation
#: ill-typed: the next call must re-check and raise StaticTypeError,
#: in every thread, never replay the memoized success.
_PHASES = [
    ("(Integer) -> Integer", 3, True),
    ("(Integer) -> String", 3, False),
    ("(Integer) -> Integer", 5, True),
    ("(Integer) -> Numeric", 5, True),
    ("(Integer) -> String", 7, False),
    ("(Integer) -> Integer", 7, True),
]

_BASE_BODY = "def base(self, n):\n    return n\n"
_DOUBLE_BODY = "def double(self, n):\n    return self.base(n) + n\n"


def _phase_world(engine):
    cls = type("PhaseCls", (object,), {})
    for name, body, sig in (("base", _BASE_BODY, "(Integer) -> Integer"),
                            ("double", _DOUBLE_BODY,
                             "(Integer) -> Integer")):
        namespace = {}
        exec(body, namespace)  # noqa: S102 - fixed test template
        engine.define_method(cls, name, namespace[name], sig=sig,
                             check=True, source=body)
    return cls()


def _phase_outcomes_threaded(calls_per_thread=8):
    engine = Engine()
    obj = _phase_world(engine)
    phases = []
    for sig, arg, _ in _PHASES:
        engine.types.replace("PhaseCls", "base", sig, check=True)
        outcomes = []
        lock = threading.Lock()

        def caller(_idx):
            mine = []
            for _ in range(calls_per_thread):
                try:
                    mine.append(("ok", repr(obj.double(arg))))
                except Exception as exc:  # noqa: BLE001 - identity compared
                    mine.append(("err", type(exc).__name__, str(exc)))
            with lock:
                outcomes.extend(mine)

        _run_threads(4, caller)
        phases.append(sorted(outcomes))
    return phases


def _phase_outcomes_oracle(calls_per_thread=8):
    engine = Engine(disable_caches=True)
    obj = _phase_world(engine)
    phases = []
    for sig, arg, _ in _PHASES:
        engine.types.replace("PhaseCls", "base", sig, check=True)
        outcomes = []
        for _ in range(4 * calls_per_thread):
            try:
                outcomes.append(("ok", repr(obj.double(arg))))
            except Exception as exc:  # noqa: BLE001 - identity compared
                outcomes.append(("err", type(exc).__name__, str(exc)))
        phases.append(sorted(outcomes))
    return phases


@pytest.mark.requires_threads
def test_phase_barrier_differential_vs_cache_free_oracle():
    """Serialized mutation waves, concurrent call batches between them:
    every phase's outcome multiset must equal the cache-free oracle's —
    including the phases whose retype flips calls to StaticTypeError."""
    threaded = _phase_outcomes_threaded()
    oracle = _phase_outcomes_oracle()
    assert threaded == oracle
    # the scenario is not vacuous: some phases actually erred
    assert any(o and o[0][0] == "err" for o in oracle)


# -- convergence under concurrent mutation ----------------------------------


@pytest.mark.requires_threads
def test_concurrent_mutation_converges_to_final_state():
    """Callers and *mutators* genuinely interleave (no barriers).  Each
    mutator owns a disjoint method and ends on a known signature, so the
    final table is deterministic even though the interleaving is not;
    after the dust settles the engine must agree judgment-for-judgment
    with a fresh engine built directly in that final state."""
    sig_cycle = ["(Integer) -> Integer", "(Integer) -> Numeric",
                 "(Integer) -> Integer"]

    def build(engine):
        cls = type("ConvergeCls", (object,), {})
        for name in ("m0", "m1", "m2"):
            body = f"def {name}(self, n):\n    return n + 1\n"
            namespace = {}
            exec(body, namespace)  # noqa: S102 - fixed test template
            engine.define_method(cls, name, namespace[name],
                                 sig="(Integer) -> Integer", check=True,
                                 source=body)
        return cls()

    engine = Engine()
    obj = build(engine)
    stop = threading.Event()

    def mutator(idx):
        # mutators 0..2 each own one method; the cycle ends where it
        # started, so the final signature is known.
        name = f"m{idx}"
        for _ in range(30):
            for sig in sig_cycle:
                engine.types.replace("ConvergeCls", name, sig, check=True)

    def caller(idx):
        name = f"m{idx % 3}"
        while not stop.is_set():
            try:
                getattr(obj, name)(idx)
            except Exception:  # noqa: BLE001, S110 - transient states are
                pass           # legitimate mid-mutation; convergence is
                               # what this test asserts, below

    callers = [threading.Thread(target=caller, args=(i,), daemon=True)
               for i in range(4)]
    for t in callers:
        t.start()
    _run_threads(3, mutator)
    stop.set()
    for t in callers:
        t.join(timeout=JOIN_S)
    assert not any(t.is_alive() for t in callers), "caller deadlock"

    # Quiesced: judgments must equal a fresh engine in the final state.
    oracle_engine = Engine(disable_caches=True)
    oracle_obj = build(oracle_engine)

    def outcome(o, name):
        try:
            return ("ok", repr(getattr(o, name)(11)))
        except Exception as exc:  # noqa: BLE001 - identity compared
            return ("err", type(exc).__name__, str(exc))

    for name in ("m0", "m1", "m2"):
        assert outcome(obj, name) == outcome(oracle_obj, name)


# -- tier-2 specialization under concurrent invalidation ---------------------


@pytest.mark.requires_threads
@pytest.mark.requires_specialization
def test_invalidation_waves_race_specialized_calls():
    """Mutator threads fire invalidation waves (deopts) while caller
    threads ride specialized wrappers (and re-promote them).  Transient
    outcomes are legitimate mid-mutation; the properties are (a) no
    crash or wedge, (b) promotion/deopt both actually happened, and
    (c) after quiescing, judgments equal a fresh cache-free oracle in
    the final state."""
    sig_cycle = ["(Integer) -> Integer", "(Integer) -> String",
                 "(Integer) -> Numeric", "(Integer) -> Integer"]

    def build(engine):
        cls = type("SpecRace", (object,), {})
        for name in ("m0", "m1"):
            body = f"def {name}(self, n):\n    return n + 1\n"
            namespace = {}
            exec(body, namespace)  # noqa: S102 - fixed test template
            engine.define_method(cls, name, namespace[name],
                                 sig="(Integer) -> Integer", check=True,
                                 source=body)
        return cls()

    engine = Engine(EngineConfig(specialize_threshold=3))
    obj = build(engine)
    stop = threading.Event()

    def mutator(idx):
        name = f"m{idx % 2}"
        for _ in range(40):  # each cycle ends on the starting signature
            for sig in sig_cycle:
                engine.types.replace("SpecRace", name, sig, check=True)

    def caller(idx):
        name = f"m{idx % 2}"
        while not stop.is_set():
            try:
                getattr(obj, name)(idx)
            except Exception:  # noqa: BLE001, S110 - transient states are
                pass           # legitimate mid-mutation; convergence is
                               # asserted after quiescing, below

    callers = [threading.Thread(target=caller, args=(i,), daemon=True)
               for i in range(4)]
    for t in callers:
        t.start()
    _run_threads(2, mutator)
    stop.set()
    for t in callers:
        t.join(timeout=JOIN_S)
    assert not any(t.is_alive() for t in callers), "caller deadlock"

    stats = engine.stats
    assert stats.promotions > 0, "the race never promoted a site"
    assert stats.deopts > 0, "the waves never deoptimized a site"

    oracle_engine = Engine(disable_caches=True)
    oracle_obj = build(oracle_engine)

    def outcome(o, name):
        try:
            return ("ok", repr(getattr(o, name)(9)))
        except Exception as exc:  # noqa: BLE001 - identity compared
            return ("err", type(exc).__name__, str(exc))

    for name in ("m0", "m1"):
        assert outcome(obj, name) == outcome(oracle_obj, name)


@pytest.mark.requires_threads
@pytest.mark.requires_specialization
def test_invalidation_waves_race_poly_and_kwargs_sites():
    """The 2-entry/kwargs variant of the specialization race: caller
    threads drive a base-class method hot under *two* subclass
    receivers (building and rebuilding the polymorphic dispatch) with a
    mix of positional and keyword calls, while mutator threads fire
    retype waves that deopt one or both entries mid-flight.  Properties:
    no crash or wedge, polymorphic and kwargs promotion both actually
    happened, and after quiescing judgments equal a fresh cache-free
    oracle."""
    sig_cycle = ["(Integer) -> Integer", "(Integer) -> String",
                 "(Integer) -> Numeric", "(Integer) -> Integer"]

    def build(engine):
        cls = type("PolyRace", (object,), {})
        body = "def m0(self, n):\n    return n + 1\n"
        namespace = {}
        exec(body, namespace)  # noqa: S102 - fixed test template
        engine.define_method(cls, "m0", namespace["m0"],
                             sig="(Integer) -> Integer", check=True,
                             source=body)
        sub_a = type("PolyRaceA", (cls,), {})
        sub_b = type("PolyRaceB", (cls,), {})
        engine.register_class(sub_a)
        engine.register_class(sub_b)
        return sub_a(), sub_b()

    engine = Engine(EngineConfig(specialize_threshold=3))
    a, b = build(engine)
    stop = threading.Event()

    def mutator(_idx):
        for _ in range(40):  # each cycle ends on the starting signature
            for sig in sig_cycle:
                engine.types.replace("PolyRace", "m0", sig, check=True)

    def caller(idx):
        obj = a if idx % 2 else b
        use_kwargs = idx % 4 < 2
        while not stop.is_set():
            try:
                if use_kwargs:
                    obj.m0(n=idx)
                else:
                    obj.m0(idx)
            except Exception:  # noqa: BLE001, S110 - transient states are
                pass           # legitimate mid-mutation; convergence is
                               # asserted after quiescing, below

    callers = [threading.Thread(target=caller, args=(i,), daemon=True)
               for i in range(4)]
    for t in callers:
        t.start()
    _run_threads(2, mutator)
    stop.set()
    for t in callers:
        t.join(timeout=JOIN_S)
    assert not any(t.is_alive() for t in callers), "caller deadlock"

    stats = engine.stats
    assert stats.promotions > 0, "the race never promoted a site"
    assert stats.deopts > 0, "the waves never deoptimized a site"
    # Quiesced: start a fresh plan generation (the race may have
    # promoted plans positionally before any kwargs shape was
    # learnable), then force the 2-entry + kwargs shape
    # deterministically — keyword calls first, so the layout is
    # memoized before the reduced re-promotion threshold fires.
    engine.types.replace("PolyRace", "m0", "(Integer) -> Integer",
                         check=True)
    for i in range(8):
        assert b.m0(n=i) == i + 1
        assert a.m0(i) == i + 1
    assert stats.poly_promotions > 0
    assert stats.kw_promotions > 0
    poly0 = stats.poly_spec_hits
    for i in range(4):
        assert a.m0(i) == i + 1 and b.m0(i) == i + 1
    assert stats.poly_spec_hits > poly0

    oracle_engine = Engine(disable_caches=True)
    oa, ob = build(oracle_engine)

    def outcome(o, use_kwargs):
        try:
            return ("ok", repr(o.m0(n=9) if use_kwargs else o.m0(9)))
        except Exception as exc:  # noqa: BLE001 - identity compared
            return ("err", type(exc).__name__, str(exc))

    for pair in ((a, oa), (b, ob)):
        for use_kwargs in (False, True):
            assert outcome(pair[0], use_kwargs) == outcome(pair[1],
                                                           use_kwargs)


@pytest.mark.requires_threads
@pytest.mark.requires_specialization
def test_stats_stay_exact_with_specialized_wrappers():
    """The per-call counter invariants survive tier 2 under N threads:
    specialized wrappers bump the same sharded counters the generic
    path does, so totals remain exact (never torn, never double)."""
    engine = Engine(EngineConfig(specialize_threshold=3))
    obj = _typed_world(engine)
    obj.bump(0)
    for i in range(10):
        obj.bump(i)  # promote before the measured window
    stats = engine.stats
    assert stats.promotions >= 1
    per_thread = 3000
    calls0 = stats.calls_intercepted
    spec0 = stats.specialized_hits
    fast0 = stats.fast_path_hits

    def caller(_idx):
        for i in range(per_thread):
            obj.bump(i)

    _run_threads(THREADS, caller)
    assert stats.calls_intercepted - calls0 == THREADS * per_thread
    assert stats.fast_path_hits - fast0 == THREADS * per_thread
    assert stats.specialized_hits - spec0 == THREADS * per_thread
    assert (stats.dynamic_arg_checks + stats.dynamic_arg_checks_skipped
            == stats.calls_intercepted)


# -- memo integrity under load ----------------------------------------------


@pytest.mark.requires_threads
@pytest.mark.requires_caches
def test_churned_plans_rebuild_and_stay_per_key():
    """After a churn run, warm sites for *unchurned* methods must still
    be plan hits (per-key invalidation survived concurrency), and the
    churned method's plan must have been rebuilt, not wedged."""
    world = build_concurrent_world("pubs")
    thunks = request_thunks(world)
    for thunk in thunks:
        thunk()
    driver = ConcurrentDriver(thunks, threads=4, requests=80,
                              churn=churn_recipe(world),
                              churn_interval_s=0.002)
    run = driver.run()
    assert not run.crashes, run.crashes
    stats = world.engine.stats
    hits0, calls0 = stats.fast_path_hits, stats.calls_intercepted
    for thunk in thunks:  # post-churn sweep: everything warm again
        thunk()
    rate = (stats.fast_path_hits - hits0) / (
        stats.calls_intercepted - calls0)
    assert rate > 0.95, rate
