"""Checker feature tests: unions, intersections, generics, blocks, fields,
casts, narrowing, strict-nil — the section 4 feature set."""

import pytest

from repro import Engine, EngineConfig, StaticTypeError


def fresh():
    engine = Engine()
    return engine, engine.api()


class TestUnionReceivers:
    def test_union_receiver_checks_each_arm(self):
        """Section 4: a union receiver is checked once per arm and the
        return types are unioned."""
        engine, hb = fresh()

        class Unions:
            @hb.typed("(%bool) -> Integer or String")
            def pick(self, flag):
                if flag:
                    x = 1
                else:
                    x = "one"
                return x

            @hb.typed("(%bool) -> String")
            def stringify(self, flag):
                value = self.pick(flag)
                return str(value)  # to_s exists on both union arms

        assert Unions().stringify(True) == "1"

    def test_union_receiver_fails_if_any_arm_lacks_method(self):
        engine, hb = fresh()

        class Unions:
            @hb.typed("(%bool) -> Integer or String")
            def pick(self, flag):
                return 1 if flag else "one"

            @hb.typed("(%bool) -> Integer")
            def bad(self, flag):
                value = self.pick(flag)
                return abs(value)  # abs exists on Integer, not String

        with pytest.raises(StaticTypeError, match="abs"):
            Unions().bad(True)


class TestIntersections:
    def test_overloaded_signature_selects_arm(self):
        """The Array#[] pattern: repeated annotations build an
        intersection, calls pick the matching arm."""
        engine, hb = fresh()

        class Over:
            pass

        def scale(self, x):
            return x * 2

        hb.annotate(Over, "scale", "(Integer) -> Integer", check=False)
        hb.annotate(Over, "scale", "(String) -> String", check=False)
        engine.define_method(Over, "scale", scale)

        class Caller:
            @hb.typed("() -> Integer")
            def use_int(self):
                o = Over()
                return o.scale(3)

            @hb.typed("() -> String")
            def use_str(self):
                o = Over()
                return o.scale("ab")

            @hb.typed("() -> Integer")
            def wrong(self):
                o = Over()
                return o.scale(1.5)  # Float matches neither arm

        assert Caller().use_int() == 6
        assert Caller().use_str() == "abab"
        with pytest.raises(StaticTypeError, match="no matching"):
            Caller().wrong()


class TestGenericsAndBlocks:
    def test_map_infers_element_type(self):
        engine, hb = fresh()

        class Blocks:
            @hb.typed("(Array<Integer>) -> Array<String>")
            def labels(self, xs):
                return [str(x) for x in xs]

        assert Blocks().labels([1, 2]) == ["1", "2"]

    def test_map_result_type_mismatch_detected(self):
        engine, hb = fresh()

        class Blocks:
            @hb.typed("(Array<Integer>) -> Array<String>")
            def bad(self, xs):
                return [x + 1 for x in xs]  # Array<Integer>, not String

        with pytest.raises(StaticTypeError):
            Blocks().bad([1])

    def test_block_passed_to_blockless_method_rejected(self):
        """The Talks 1/7/12-5 error class: Ruby ignores the block, the
        checker flags it."""
        engine, hb = fresh()

        class NoBlock:
            @hb.typed("() -> Integer")
            def plain(self):
                return 1

            @hb.typed("() -> Integer")
            def caller(self):
                return self.plain(lambda x: x)

        with pytest.raises(StaticTypeError, match="block"):
            NoBlock().caller()

    def test_calling_the_block_parameter(self):
        """Section 4's *unimplemented* second case, implemented here as an
        extension: calls to the method's own block are checked."""
        engine, hb = fresh()

        class Yields:
            @hb.typed("(Integer) { (Integer) -> Integer } -> Integer")
            def apply_twice(self, x, fn):
                return fn(fn(x))

        assert Yields().apply_twice(3, lambda v: v + 1) == 5

    def test_block_param_argument_type_checked(self):
        engine, hb = fresh()

        class Yields:
            @hb.typed("(Integer) { (Integer) -> Integer } -> Integer")
            def bad(self, x, fn):
                return fn("oops")

        with pytest.raises(StaticTypeError, match="block argument"):
            Yields().bad(1, lambda v: v)

    def test_array_zip_tuple_result(self):
        """The Fig. 3 zip idiom: zip produces Array<[t, u]>."""
        engine, hb = fresh()

        class Zipper:
            @hb.typed("(Array<String>, Array<Integer>) -> Array<String>")
            def pair_up(self, names, counts):
                out: "Array<String>" = []
                for name, count in zip(names, counts):
                    out.append(f"{name}={count}")
                return out

        # zip() lowers to the IR zip selector but must also run natively.
        with pytest.raises(StaticTypeError):
            # bare zip(...) is not supported natively by the IR; apps use
            # the .zip method form — this documents the boundary.
            Zipper().pair_up(["a"], [1])


class TestFieldsAndCasts:
    def test_field_type_read_and_write(self):
        engine, hb = fresh()

        class Holder:
            def __init__(self):
                self.items = [1, 2, 3]

            @hb.typed("() -> Integer")
            def total(self):
                acc = 0
                for i in self.items:
                    acc = acc + i
                return acc

        hb.field_type(Holder, "items", "Array<Integer>")
        assert Holder().total() == 6

    def test_field_write_type_checked(self):
        engine, hb = fresh()

        class Holder:
            def __init__(self):
                self.count = 0

            @hb.typed("() -> nil")
            def corrupt(self):
                self.count = "not a number"
                return None

        hb.field_type(Holder, "count", "Integer")
        with pytest.raises(StaticTypeError, match="count"):
            Holder().corrupt()

    def test_static_cast_gives_type(self):
        engine, hb = fresh()
        cast = engine.cast

        class Caster:
            @hb.typed("() -> Array<Integer>")
            def load(self):
                raw = self.fetch()
                return cast(raw, "Array<Integer>")

        hb.annotate(Caster, "fetch", "() -> %any")

        def fetch(self):
            return [1, 2]

        engine.define_method(Caster, "fetch", fetch)
        assert Caster().load() == [1, 2]
        assert engine.stats.cast_site_count() == 1

    def test_annotated_local_is_generic_cast(self):
        """The paper's a = []; a.rdl_cast('Array<Fixnum>') pattern, via an
        annotated local declaration."""
        engine, hb = fresh()

        class Local:
            @hb.typed("() -> Array<Integer>")
            def fresh_list(self):
                xs: "Array<Integer>" = []
                xs.append(1)
                return xs

            @hb.typed("() -> Array<Integer>")
            def bad_push(self):
                xs: "Array<Integer>" = []
                xs.append("str")
                return xs

        assert Local().fresh_list() == [1]
        with pytest.raises(StaticTypeError):
            Local().bad_push()


class TestNarrowing:
    def test_is_none_narrows(self):
        engine, hb = fresh()

        class Narrow:
            @hb.typed("(String or nil) -> String")
            def orelse(self, s):
                if s is None:
                    return "default"
                return s.upper()

        assert Narrow().orelse(None) == "default"
        assert Narrow().orelse("hi") == "HI"

    def test_isinstance_narrows(self):
        engine, hb = fresh()

        class Narrow:
            @hb.typed("(Integer or String) -> Integer")
            def to_int(self, v):
                if isinstance(v, str):
                    return len(v)
                return abs(v)

        # isinstance lowers to IsA; 'str' is not a known class name, so
        # this needs the host-name spelling:
        with pytest.raises(StaticTypeError):
            Narrow().to_int(3)

    def test_narrowing_can_be_disabled(self):
        engine = Engine(EngineConfig(narrowing=False, strict_nil=True))
        hb = engine.api()

        class Narrow:
            @hb.typed("(String or nil) -> String")
            def orelse(self, s):
                if s is None:
                    return "default"
                return s

        with pytest.raises(StaticTypeError):
            Narrow().orelse("x")


class TestStrictNil:
    def test_strict_nil_rejects_nil_flow(self):
        """Ablation: with nil <= A disabled, nullable flows are errors."""
        engine = Engine(EngineConfig(strict_nil=True))
        hb = engine.api()

        class Strict:
            @hb.typed("() -> String")
            def may_be_nil(self):
                return None

        with pytest.raises(StaticTypeError):
            Strict().may_be_nil()

    def test_paper_mode_accepts_nil_flow(self):
        engine, hb = fresh()

        class Loose:
            @hb.typed("() -> String")
            def may_be_nil(self):
                return None

        assert Loose().may_be_nil() is None  # checks, then returns nil
