"""Tier-2 specialization: promotion, guard fallbacks, and deopt soundness.

The contract under test (see ``docs/performance.md`` "Tiered execution"):

* a stable warm call plan is promoted to an exec-generated per-site
  wrapper after ``specialize_threshold`` hits, and the wrapper's
  outcomes — return values, raised errors, stats invariants — are
  indistinguishable from the generic tier's;
* every guard failure (wrong receiver class, kwargs, unseen argument
  classes, missing check-cache entry) **falls back** into the generic
  ``Engine.invoke``, never raises through the fast path, and never
  skips a failing dynamic check;
* every invalidation wave that drops the underlying plan — retype,
  redefinition, hierarchy mutation, field retype, plan-cache clear —
  **deoptimizes**: the generic wrapper is back on the class before the
  wave returns, so the next call re-resolves against the mutated world
  (the error-flipping retype is the stale-specialization smoking gun);
* deopt is not a one-way door: a re-warmed site re-promotes.

The hypothesis stress at the bottom replays random
promote/deopt/re-promote interleavings differentially against the
cache-free oracle with a tiny threshold, so every script crosses the
promotion boundary many times.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ArgumentTypeError, Engine, EngineConfig, StaticTypeError,
)
from repro.rdl.wrap import add_pre, is_wrapped, unwrap_method

THRESHOLD = 5  # tiny, so tests cross the promotion boundary quickly


def spec_engine(**overrides) -> Engine:
    return Engine(EngineConfig(specialize_threshold=THRESHOLD, **overrides))


_BUMP = "def bump(self, n):\n    return n + 1\n"
_BASE = "def base(self, n):\n    return n\n"
_DOUBLE = "def double(self, n):\n    return self.base(n) + n\n"


def _define(engine, cls, name, body, sig, check=True):
    namespace = {}
    exec(body, namespace)  # noqa: S102 - fixed test templates
    engine.define_method(cls, name, namespace[name], sig=sig, check=check,
                         source=body)


def _hot_world(engine):
    cls = type("SpecHot", (object,), {})
    _define(engine, cls, "bump", _BUMP, "(Integer) -> Integer")
    return cls


def _warm(obj, name="bump", calls=THRESHOLD + 5):
    for i in range(calls):
        getattr(obj, name)(i)


def _slot_is_specialized(cls, name) -> bool:
    raw = cls.__dict__.get(name)
    fn = raw.__func__ if isinstance(raw, classmethod) else raw
    return getattr(fn, "__hb_specialized__", False)


# -- promotion ---------------------------------------------------------------


@pytest.mark.requires_specialization
def test_promotion_after_threshold():
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    for i in range(THRESHOLD + 10):
        assert obj.bump(i) == i + 1
    stats = engine.stats
    assert stats.promotions == 1
    assert stats.specialized_hits > 0
    assert _slot_is_specialized(cls, "bump")
    assert is_wrapped(cls, "bump")  # still reads as an intercepted method


@pytest.mark.requires_specialization
def test_specialized_stats_stay_exact():
    """Counter-for-counter parity with the generic tier: the warm-call
    invariants that the stats suite asserts must survive promotion."""
    engine = spec_engine()
    obj = _hot_world(engine)()
    calls = THRESHOLD + 40
    _warm(obj, calls=calls)
    stats = engine.stats
    assert stats.calls_intercepted == calls
    assert stats.fast_path_hits == calls - 1  # first call is the cold build
    assert (stats.dynamic_arg_checks + stats.dynamic_arg_checks_skipped
            == stats.calls_intercepted)
    assert stats.specialized_hits == stats.fast_path_hits - THRESHOLD


@pytest.mark.requires_specialization
def test_no_promotion_when_disabled_by_config():
    engine = Engine(EngineConfig(specialize=False, specialize_threshold=2))
    obj = _hot_world(engine)()
    _warm(obj, calls=50)
    assert engine.stats.promotions == 0
    assert engine.stats.specialized_hits == 0


@pytest.mark.requires_caches
def test_no_promotion_when_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_SPECIALIZE", "1")
    engine = spec_engine()
    obj = _hot_world(engine)()
    _warm(obj, calls=50)
    assert engine.stats.promotions == 0


@pytest.mark.requires_specialization
def test_classmethod_site_promotes():
    """CLASS-kind sites specialize too: the guard is identity on the
    receiver class object, and the classmethod binding is preserved."""
    engine = spec_engine()
    hb = engine.api()

    class SpecClassKind:
        @hb.typed("(Integer) -> Integer")
        @classmethod
        def tally(cls, n):
            return n + 2

    for i in range(THRESHOLD + 10):
        assert SpecClassKind.tally(i) == i + 2
    stats = engine.stats
    assert stats.promotions == 1
    assert stats.specialized_hits > 0
    raw = SpecClassKind.__dict__["tally"]
    assert isinstance(raw, classmethod)
    assert getattr(raw.__func__, "__hb_specialized__", False)
    with pytest.raises(ArgumentTypeError):
        SpecClassKind.tally("nope")


# -- guard failures fall back, never raise -----------------------------------


@pytest.mark.requires_specialization
def test_wrong_receiver_class_falls_back_to_generic():
    """The monomorphic guard: a subclass receiver takes the generic path
    (and gets its own receiver-keyed check) while the promoted class
    keeps its fast path."""
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    sub = type("SpecHotSub", (cls,), {})
    engine.register_class(sub)
    sub_obj = sub()
    assert sub_obj.bump(3) == 4  # falls back, no error
    assert obj.bump(3) == 4


@pytest.mark.requires_specialization
def test_specialized_site_still_rejects_bad_arguments():
    """Inline-cache soundness survives tier 2: the profile guard only
    accepts classes that passed; anything else re-runs the real check."""
    engine = spec_engine()
    obj = _hot_world(engine)()
    _warm(obj)
    with pytest.raises(ArgumentTypeError):
        obj.bump("not an integer")
    assert obj.bump(7) == 8  # site still healthy afterwards


@pytest.mark.requires_specialization
def test_kwargs_calls_fall_back():
    engine = spec_engine()
    obj = _hot_world(engine)()
    _warm(obj)
    assert obj.bump(n=3) == 4


@pytest.mark.requires_specialization
def test_new_argument_classes_learned_after_promotion():
    """Post-promotion learning: the generic fallback COW-publishes new
    passing profiles that the compiled wrapper then reads per call."""
    engine = spec_engine()
    cls = type("SpecNum", (object,), {})
    _define(engine, cls, "same", "def same(self, n):\n    return n\n",
            "(Numeric) -> Numeric")
    obj = cls()
    for i in range(THRESHOLD + 5):
        obj.same(i)  # promote with an int-only profile
    assert engine.stats.promotions == 1
    assert obj.same(1.5) == 1.5  # float: profile miss -> fallback -> learn
    plan = engine._plans.get(("SpecNum", "SpecNum", "same", "instance"))
    assert (float,) in plan.profiles
    before = engine.stats.specialized_hits
    assert obj.same(2.5) == 2.5  # now a specialized hit via the COW set
    assert engine.stats.specialized_hits == before + 1


# -- deoptimization ----------------------------------------------------------


@pytest.mark.requires_specialization
def test_error_flipping_retype_deoptimizes():
    """The smoking gun: retyping the callee's return makes the promoted
    caller's derivation ill-typed; a stale specialized wrapper would
    keep returning successes."""
    engine = spec_engine()
    cls = type("SpecPair", (object,), {})
    _define(engine, cls, "base", _BASE, "(Integer) -> Integer")
    _define(engine, cls, "double", _DOUBLE, "(Integer) -> Integer")
    obj = cls()
    for i in range(THRESHOLD + 5):
        assert obj.double(i) == 2 * i
    assert engine.stats.promotions >= 1
    engine.types.replace("SpecPair", "base", "(Integer) -> String",
                         check=True)
    assert engine.stats.deopts >= 1
    assert not _slot_is_specialized(cls, "double")
    with pytest.raises(StaticTypeError):
        obj.double(3)


@pytest.mark.requires_specialization
def test_redefinition_deoptimizes_and_new_body_runs():
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    _define(engine, cls, "bump", "def bump(self, n):\n    return n + 10\n",
            "(Integer) -> Integer")
    assert obj.bump(1) == 11  # the *new* body, not the compiled-in old fn
    assert engine.stats.deopts >= 1


@pytest.mark.requires_specialization
def test_hierarchy_mutation_deoptimizes_dependent_sites():
    """A structural mutation of the receiver's linearization drops the
    plans that resolved through it — and must deopt their wrappers."""
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    module = type("SpecMixin", (object,), {"__hb_module__": True})
    engine.register_class(module)
    engine.hier.include_module("SpecHot", "SpecMixin")
    assert not _slot_is_specialized(cls, "bump")
    assert obj.bump(2) == 3  # re-resolves and still works


@pytest.mark.requires_specialization
def test_field_retype_deoptimizes_field_reading_site():
    engine = spec_engine()
    cls = type("SpecField", (object,), {"__init__":
               lambda self: setattr(self, "value", 1)})
    engine.register_class(cls)
    engine.field_type(cls, "value", "Integer")
    _define(engine, cls, "read",
            "def read(self, n):\n    return self.value + n\n",
            "(Integer) -> Integer")
    obj = cls()
    _warm(obj, name="read")
    assert _slot_is_specialized(cls, "read")
    engine.field_type(cls, "value", "String")  # derivation now ill-typed
    assert not _slot_is_specialized(cls, "read")
    with pytest.raises(StaticTypeError):
        obj.read(1)


@pytest.mark.requires_specialization
def test_plan_cache_clear_deoptimizes_everything():
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    engine._plans.clear()
    assert not _slot_is_specialized(cls, "bump")
    assert obj.bump(4) == 5


@pytest.mark.requires_specialization
def test_direct_check_cache_clear_degrades_not_stales():
    """Even a CheckCache.clear() that bypasses Engine.invalidate (so no
    deopt fires) must not replay the removed derivation: the per-call
    membership guard bails to the generic tier, which re-checks.

    Pinned to ``elide=False``: tier 3 proves the membership probe
    redundant for engine-mediated waves and drops it — the elided
    behavior has its own contract (the companion test below)."""
    engine = spec_engine(elide=False)
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    checks_before = engine.stats.static_checks
    engine.cache.clear()
    assert obj.bump(5) == 6
    assert engine.stats.static_checks == checks_before + 1  # re-derived


@pytest.mark.requires_specialization
def test_repromotion_after_deopt():
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert engine.stats.promotions == 1
    engine.types.replace("SpecHot", "bump", "(Integer) -> Integer",
                         check=True)  # same-signature reload churn
    assert engine.stats.deopts >= 1
    _warm(obj)
    assert engine.stats.promotions == 2
    assert _slot_is_specialized(cls, "bump")


@pytest.mark.requires_specialization
def test_unwrap_restores_the_original_function():
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    unwrap_method(cls, "bump")
    assert not is_wrapped(cls, "bump")
    calls_before = engine.stats.calls_intercepted
    assert obj.bump(1) == 2      # plain python call
    assert engine.stats.calls_intercepted == calls_before


@pytest.mark.requires_specialization
def test_contract_registration_deoptimizes_and_contracts_run():
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    seen = []
    add_pre(engine, cls, "bump", lambda recv, *a, **k: seen.append(a) or True)
    assert not _slot_is_specialized(cls, "bump")
    assert obj.bump(1) == 2
    assert seen == [(1,)]  # the hook actually ran
    _warm(obj, calls=THRESHOLD * 4)
    assert not _slot_is_specialized(cls, "bump")  # no re-promotion


@pytest.mark.requires_specialization
def test_hoisted_bound_method_cannot_outlive_its_plan():
    """A bound method hoisted while the site was specialized bypasses
    deopt-by-rebinding; the per-call liveness guard must make it fall
    back once the plan is dropped — even after the site re-warms under
    a new signature whose checks the old plan would have skipped."""
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    hoisted = obj.bump  # captures the specialized wrapper
    # Outlaw Integer arguments; the old plan's profile admitted them.
    engine.types.replace("SpecHot", "bump", "(String) -> Integer",
                         check=True)
    with pytest.raises(Exception):  # noqa: B017 - ill-typed body OR bad arg
        hoisted(1)
    # And through a full re-derivation cycle back to the original
    # signature the hoisted reference still re-validates per call: the
    # rebuilt plan is a *different object*, so the old wrapper's
    # liveness guard keeps bailing to the generic path.
    engine.types.replace("SpecHot", "bump", "(Integer) -> Integer",
                         check=True)
    assert obj.bump(2) == 3  # rebuilt plan, maybe re-promoted
    assert hoisted(3) == 4   # old wrapper: liveness guard -> generic path
    before = engine.stats.calls_intercepted
    hoisted(4)
    assert engine.stats.calls_intercepted == before + 1


# -- polymorphic 2-entry dispatch ---------------------------------------------


def _poly_world(engine):
    """A checked method on a base class, hot under two subclasses —
    the mixin-method-under-two-includers shape from the ROADMAP."""
    base = type("PolyBase", (object,), {})
    _define(engine, base, "bump", _BUMP, "(Integer) -> Integer")
    sub_a = type("PolyA", (base,), {})
    sub_b = type("PolyB", (base,), {})
    engine.register_class(sub_a)
    engine.register_class(sub_b)
    return base, sub_a(), sub_b()


def _entry_keys(cls, name):
    raw = cls.__dict__.get(name)
    fn = raw.__func__ if isinstance(raw, classmethod) else raw
    return getattr(fn, "__hb_entry_keys__", ())


@pytest.mark.requires_specialization
def test_second_hot_receiver_extends_to_poly_dispatch():
    """A second receiver class crossing the threshold on a promoted slot
    recompiles the site into a 2-entry dispatch; both classes then ride
    specialized code, and receivers beyond the cap keep the generic
    tier."""
    engine = spec_engine()
    base, a, b = _poly_world(engine)
    _warm(a)
    assert engine.stats.promotions == 1
    assert len(_entry_keys(base, "bump")) == 1
    _warm(b)
    assert engine.stats.promotions == 2
    assert engine.stats.poly_promotions == 1
    assert _entry_keys(base, "bump") == (
        ("PolyBase", "PolyA", "bump", "instance"),
        ("PolyBase", "PolyB", "bump", "instance"))
    spec0 = engine.stats.specialized_hits
    poly0 = engine.stats.poly_spec_hits
    assert a.bump(1) == 2
    assert b.bump(1) == 2
    assert engine.stats.specialized_hits == spec0 + 2
    assert engine.stats.poly_spec_hits == poly0 + 1  # the 2nd entry only
    # a third hot receiver class stays generic (the 2-entry cap) but
    # keeps working and keeps its own receiver-keyed check.
    third_cls = type("PolyC", (base,), {})
    engine.register_class(third_cls)
    third = third_cls()
    _warm(third, calls=THRESHOLD * 3)
    assert len(_entry_keys(base, "bump")) == 2
    assert third.bump(5) == 6


@pytest.mark.requires_specialization
def test_poly_entries_still_reject_bad_arguments():
    engine = spec_engine()
    base, a, b = _poly_world(engine)
    _warm(a)
    _warm(b)
    assert engine.stats.poly_promotions == 1
    with pytest.raises(ArgumentTypeError):
        a.bump("nope")
    with pytest.raises(ArgumentTypeError):
        b.bump("nope")
    assert a.bump(1) == 2 and b.bump(1) == 2  # site healthy afterwards


@pytest.mark.requires_specialization
def test_dropping_one_plan_narrows_poly_site_to_one_entry():
    """Deopt soundness for 2-entry sites: a wave that drops *one*
    entry's plan recompiles the site down to the surviving entry before
    the wave returns — the dead receiver falls back to the generic
    tier, the live one keeps its straight-line path."""
    engine = spec_engine()
    base, a, b = _poly_world(engine)
    _warm(a)
    _warm(b)
    assert engine.stats.poly_promotions == 1
    deopts0 = engine.stats.deopts
    # Mutate only PolyA's linearization: plan A falls, plan B survives.
    module = type("PolyMixA", (object,), {"__hb_module__": True})
    engine.register_class(module)
    engine.hier.include_module("PolyA", "PolyMixA")
    assert _entry_keys(base, "bump") == (
        ("PolyBase", "PolyB", "bump", "instance"),)
    assert engine.stats.deopts == deopts0 + 1  # exactly the dead entry
    spec0 = engine.stats.specialized_hits
    assert b.bump(2) == 3
    assert engine.stats.specialized_hits == spec0 + 1
    assert a.bump(2) == 3  # generic fallback re-resolves and works


@pytest.mark.requires_specialization
def test_dropping_both_plans_restores_the_generic_wrapper():
    engine = spec_engine()
    base, a, b = _poly_world(engine)
    _warm(a)
    _warm(b)
    _define(engine, base, "bump", "def bump(self, n):\n    return n + 10\n",
            "(Integer) -> Integer")
    assert not _slot_is_specialized(base, "bump")
    assert a.bump(1) == 11 and b.bump(1) == 11  # the new body everywhere


@pytest.mark.requires_specialization
def test_narrowed_receiver_rejoins_at_reduced_threshold():
    """Adaptive re-promotion: the deopted entry re-warms and re-joins
    the dispatch after only ``threshold // 4`` hits."""
    engine = Engine(EngineConfig(specialize_threshold=20))
    base, a, b = _poly_world(engine)
    _warm(a, calls=25)
    _warm(b, calls=25)
    assert engine.stats.poly_promotions == 1
    module = type("PolyMixA2", (object,), {"__hb_module__": True})
    engine.register_class(module)
    engine.hier.include_module("PolyA", "PolyMixA2")
    assert len(_entry_keys(base, "bump")) == 1
    _warm(a, calls=8)  # far below the full threshold of 20
    assert len(_entry_keys(base, "bump")) == 2
    assert engine.stats.repromotions == 1


# -- kwargs-layout specialization ---------------------------------------------

_COMBINE = "def combine(self, x, y):\n    return x + y\n"


def _kwargs_world(engine):
    cls = type("SpecKw", (object,), {})
    _define(engine, cls, "combine", _COMBINE, "(Integer, Integer) -> Integer")
    return cls


@pytest.mark.requires_specialization
def test_stable_kwargs_site_compiles_the_layout_in():
    """A site whose kwargs traffic has one stable name-tuple promotes
    with the positional reorder compiled in: keyword calls ride the
    straight-line path instead of bailing to the generic tier."""
    engine = spec_engine()
    cls = _kwargs_world(engine)
    obj = cls()
    for i in range(THRESHOLD + 5):
        assert obj.combine(i, y=2) == i + 2
    assert engine.stats.promotions == 1
    assert engine.stats.kw_promotions == 1
    assert _slot_is_specialized(cls, "combine")
    kw0 = engine.stats.kw_spec_hits
    spec0 = engine.stats.specialized_hits
    assert obj.combine(1, y=2) == 3
    assert engine.stats.kw_spec_hits == kw0 + 1
    assert engine.stats.specialized_hits == spec0 + 1
    # positional calls on the same site are straight-line too
    assert obj.combine(3, 4) == 7
    assert engine.stats.specialized_hits == spec0 + 2
    assert engine.stats.kw_spec_hits == kw0 + 1  # not a kwargs call


@pytest.mark.requires_specialization
def test_kwargs_layout_site_still_rejects_bad_arguments():
    engine = spec_engine()
    obj = _kwargs_world(engine)()
    for i in range(THRESHOLD + 5):
        obj.combine(i, y=2)
    assert engine.stats.kw_promotions == 1
    with pytest.raises(ArgumentTypeError):
        obj.combine(1, y="nope")
    assert obj.combine(1, y=2) == 3  # site healthy afterwards


@pytest.mark.requires_specialization
def test_unseen_kwargs_shapes_fall_back_to_generic():
    """Shapes the layout was not compiled for — different names, a
    permuted all-keyword call — bail and produce exactly the generic
    tier's outcome."""
    engine = spec_engine()
    obj = _kwargs_world(engine)()
    for i in range(THRESHOLD + 5):
        obj.combine(i, y=2)
    assert engine.stats.kw_promotions == 1
    assert obj.combine(y=2, x=1) == 3   # all-keyword: different shape
    assert obj.combine(x=5, y=6) == 11
    with pytest.raises(TypeError):
        obj.combine(1, z=2)             # unknown name, as ever


@pytest.mark.requires_specialization
def test_unstable_kwargs_shapes_promote_without_a_layout():
    """Two distinct semantic layouts pre-promotion: the compiled
    wrapper keeps the unconditional kwargs bail (a single compiled
    reorder would thrash), and both shapes keep working generically."""
    engine = spec_engine()
    obj = _kwargs_world(engine)()
    for i in range(THRESHOLD + 5):
        assert obj.combine(i, y=2) == i + 2
        assert obj.combine(x=i, y=3) == i + 3
    assert engine.stats.promotions == 1
    assert engine.stats.kw_promotions == 0
    assert obj.combine(1, y=2) == 3
    assert obj.combine(x=1, y=2) == 3


@pytest.mark.requires_specialization
def test_tier1_kwargs_fast_path_profiles_keyword_calls():
    """The engine-side kwargs fast path (tier 1, site not promoted):
    a warm keyword call with a memoized layout skips the signature
    re-bind and conformance walk via the profile set, and feeds the
    pre-promotion per-profile hit counts."""
    engine = Engine(EngineConfig(specialize_threshold=1000))
    obj = _kwargs_world(engine)()
    obj.combine(1, y=2)          # cold build
    obj.combine(1, y=2)          # full check; memoizes the layout
    obj.combine(1, y=2)          # full check via layout; learns the profile
    plan = engine._plans.get(("SpecKw", "SpecKw", "combine", "instance"))
    assert plan is not None
    assert plan.kw_layouts == {(1, ("y",)): ("y",)}
    assert (int, int) in plan.profiles
    hits0 = plan.profile_hits.get((int, int), 0)
    assert obj.combine(4, y=5) == 9
    assert plan.profile_hits.get((int, int), 0) == hits0 + 1


@pytest.mark.requires_specialization
def test_kwargs_site_repromotes_with_layout_after_deopt():
    engine = spec_engine()
    cls = _kwargs_world(engine)
    obj = cls()
    for i in range(THRESHOLD + 5):
        obj.combine(i, y=2)
    assert engine.stats.kw_promotions == 1
    engine.types.replace("SpecKw", "combine", "(Integer, Integer) -> Integer",
                         check=True)  # same-signature reload churn
    assert not _slot_is_specialized(cls, "combine")
    for i in range(THRESHOLD):  # reduced threshold: re-warm is short
        obj.combine(i, y=2)
    assert engine.stats.kw_promotions == 2
    assert engine.stats.repromotions == 1


# -- dominant-profile selection (regression) ----------------------------------


@pytest.mark.requires_specialization
def test_dominant_profile_guard_targets_the_hottest_shape():
    """Regression: the compiled identity guard must front the profile
    with the most pre-promotion hits.  The pre-fix code took
    ``next(iter(plan.profiles))`` — arbitrary frozenset order — so this
    test learns both profiles, finds which one iteration happens to
    yield first, and then makes the *other* one hot: the old code
    deterministically guarded the cold shape."""
    engine = spec_engine()
    cls = type("SpecDom", (object,), {})
    _define(engine, cls, "same", "def same(self, n):\n    return n\n",
            "(Numeric) -> Numeric")
    obj = cls()
    obj.same(1)       # cold build
    obj.same(1)       # learn (int,)
    obj.same(1.5)     # learn (float,)
    plan = engine._plans.get(("SpecDom", "SpecDom", "same", "instance"))
    assert plan.profiles == {(int,), (float,)}
    cold = next(iter(plan.profiles))
    hot_cls = float if cold == (int,) else int
    hot_val = 2.5 if hot_cls is float else 2
    for _ in range(THRESHOLD + 5):
        obj.same(hot_val)
    raw = cls.__dict__["same"]
    assert getattr(raw, "__hb_specialized__", False)
    assert raw.__globals__["_d0_0"] is hot_cls


# -- exact deopt counting (regression) ----------------------------------------


@pytest.mark.requires_specialization
def test_deopt_counter_ignores_already_rebound_slots():
    """Regression: a slot rebound behind the specializer's back (direct
    ``setattr``, no wrap/unwrap notification) displaces the compiled
    wrapper itself; the later plan-dropping wave must neither clobber
    the new function nor count a deopt for a restore that never
    happened."""
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")

    def plain(self, n):
        return n + 1

    setattr(cls, "bump", plain)
    deopts0 = engine.stats.deopts
    engine._plans.clear()  # the wave that would have deoptimized it
    assert engine.stats.deopts == deopts0  # nothing was actually restored
    assert cls.__dict__["bump"] is plain   # and nothing was clobbered
    assert obj.bump(1) == 2


# -- trusted signatures and return checks ------------------------------------


@pytest.mark.requires_specialization
def test_trusted_signature_site_promotes_and_checks_args():
    engine = spec_engine()
    cls = type("SpecTrusted", (object,), {})
    _define(engine, cls, "bump", _BUMP, "(Integer) -> Integer", check=False)
    obj = cls()
    _warm(obj)
    assert engine.stats.promotions == 1
    with pytest.raises(ArgumentTypeError):
        obj.bump([])


@pytest.mark.requires_specialization
def test_dynamic_ret_checks_survive_promotion():
    """An always-mode return check on a trusted lying signature must
    keep firing from the specialized wrapper."""
    from repro import ReturnTypeError

    engine = Engine(EngineConfig(specialize_threshold=THRESHOLD,
                                 dynamic_ret_checks="always"))
    cls = type("SpecLiar", (object,), {})
    _define(engine, cls, "greet", "def greet(self, n):\n    return n + 1\n",
            "(Integer) -> Integer", check=False)
    _define(engine, cls, "lie", "def lie(self, n):\n    return 'x'\n",
            "(Integer) -> Integer", check=False)
    obj = cls()
    _warm(obj, name="greet")
    assert engine.stats.promotions >= 1
    assert engine.stats.dynamic_ret_checks > 0
    with pytest.raises(ReturnTypeError):
        obj.lie(1)
    ret_checks = engine.stats.dynamic_ret_checks
    assert obj.greet(3) == 4
    assert engine.stats.dynamic_ret_checks == ret_checks + 1


# -- tier 3: static check elimination -----------------------------------------


def _wrapper_source(cls, name) -> str:
    raw = cls.__dict__.get(name)
    fn = raw.__func__ if isinstance(raw, classmethod) else raw
    return getattr(fn, "__hb_source__", "")


@pytest.mark.requires_elision
def test_elision_fires_on_hot_checked_leaf():
    """A checked leaf method over builtin classes promotes with the
    check-cache probe *and* the frame push/pop statically elided: the
    emitted wrapper simply does not contain them, and ``checks_elided``
    advances by the omitted-operation count on every call."""
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    stats = engine.stats
    assert stats.promotions == 1
    assert stats.elide_promotions == 1
    assert stats.checks_elided > 0
    source = _wrapper_source(cls, "bump")
    assert "_ckey0" not in source      # cache membership probe: gone
    assert "stack.append" not in source  # checked-frame push/pop: gone
    assert "checks_elided" in source
    # counter parity: the generic-tier invariant still holds
    assert (stats.dynamic_arg_checks + stats.dynamic_arg_checks_skipped
            == stats.calls_intercepted)


@pytest.mark.requires_elision
def test_elided_site_still_rejects_bad_arguments():
    """Frame/return verdicts proved under the dominant profile pin it as
    an *unconditional* guard: any other argument class bails to the
    generic tier, which raises exactly as before."""
    engine = spec_engine()
    obj = _hot_world(engine)()
    _warm(obj)
    assert engine.stats.elide_promotions == 1
    with pytest.raises(ArgumentTypeError):
        obj.bump("not an integer")
    assert obj.bump(7) == 8  # site still healthy afterwards


@pytest.mark.requires_elision
def test_elide_disabled_by_env_keeps_tier2(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_ELIDE", "1")
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert engine.stats.promotions == 1       # tier 2 still promotes
    assert engine.stats.elide_promotions == 0
    source = _wrapper_source(cls, "bump")
    assert "_ckey0" in source and "stack.append" in source


@pytest.mark.requires_elision
def test_direct_cache_clear_on_elided_site_is_a_memo_flush():
    """The tier-3 contract for the elided membership probe: a *direct*
    ``CheckCache.clear()`` (bypassing ``Engine.invalidate``) is a memo
    flush, not a world mutation — the derivation it removed is still
    valid, so the elided wrapper replaying it is sound (it just skips
    the lazy re-check the generic tier would have run).  Every
    engine-mediated mutation still deopts the site and re-derives."""
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert engine.stats.elide_promotions == 1
    checks_before = engine.stats.static_checks
    engine.cache.clear()
    assert obj.bump(5) == 6                      # still correct
    assert engine.stats.static_checks == checks_before  # lazy: no re-derive
    # An engine-mediated wave still tears the site down and re-checks.
    engine.types.replace("SpecHot", "bump", "(Integer) -> Integer",
                         check=True)
    assert not _slot_is_specialized(cls, "bump")
    assert obj.bump(5) == 6
    assert engine.stats.static_checks > checks_before


@pytest.mark.requires_elision
def test_retype_deopts_elided_site():
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert engine.stats.elide_promotions == 1
    engine.types.replace("SpecHot", "bump", "(Integer) -> String",
                         check=True)
    assert engine.stats.elide_deopts == 1
    assert not _slot_is_specialized(cls, "bump")
    with pytest.raises(StaticTypeError):
        obj.bump(3)


@pytest.mark.requires_elision
def test_callee_churn_deopts_elided_caller():
    """Retyping or redefining a *callee* of an elided method mid-run
    must deopt the elided caller (its verdicts consumed the callee's
    signature and body as dependency edges) — outcomes stay identical
    to the oracle's."""
    engine = spec_engine()
    cls = type("SpecChain", (object,), {})
    _define(engine, cls, "base", _BASE, "(Integer) -> Integer")
    _define(engine, cls, "double", _DOUBLE, "(Integer) -> Integer")
    obj = cls()
    for i in range(THRESHOLD + 5):
        assert obj.double(i) == 2 * i
    assert engine.stats.elide_promotions >= 1  # cache probe elided at least
    # (a) retype the callee: the caller's derivation is now ill-typed
    engine.types.replace("SpecChain", "base", "(Integer) -> String",
                         check=True)
    assert not _slot_is_specialized(cls, "double")
    assert engine.stats.elide_deopts >= 1
    with pytest.raises(StaticTypeError):
        obj.double(3)
    # (b) restore + re-warm, then *redefine* the callee mid-run
    engine.types.replace("SpecChain", "base", "(Integer) -> Integer",
                         check=True)
    for i in range(THRESHOLD + 5):
        assert obj.double(i) == 2 * i
    assert _slot_is_specialized(cls, "double")
    _define(engine, cls, "base", "def base(self, n):\n    return n + 100\n",
            "(Integer) -> Integer")
    assert not _slot_is_specialized(cls, "double")
    assert obj.double(1) == 102  # the *new* callee body, immediately


@pytest.mark.requires_elision
def test_subclassing_leaf_deopts_elided_site():
    """Leaf-exactness is a revocable fact: the analysis resolved
    ``self.base`` by treating the hierarchy-leaf receiver as *exact*,
    recording a ``("lin", cls)`` edge — so merely *defining* a subclass
    (no retype, no redefinition) must tear the elided caller down, and
    the new subclass is served correct generic traffic immediately."""
    engine = spec_engine()
    cls = type("SpecLeafExact", (object,), {})
    _define(engine, cls, "base", _BASE, "(Integer) -> Integer")
    _define(engine, cls, "double", _DOUBLE, "(Integer) -> Integer")
    obj = cls()
    for i in range(THRESHOLD + 5):
        assert obj.double(i) == 2 * i
    assert engine.stats.elide_promotions >= 1
    assert _slot_is_specialized(cls, "double")
    sub = type("SpecLeafExactSub", (cls,), {})
    engine.register_class(sub)
    assert not _slot_is_specialized(cls, "double")
    assert sub().double(3) == 6   # subclass traffic correct at once
    assert obj.double(4) == 8     # base receiver re-warms fine too


@pytest.mark.requires_elision
def test_depth2_callee_redefinition_deopts_elided_caller():
    """Inter-procedural verdicts follow callees *transitively* when a
    link's declaration cannot be trusted: ``mid`` is annotated but
    unchecked, so analyzing ``top`` recurses into ``mid``'s body and
    through it consults ``base`` — every link an ``("ir", ...)`` edge —
    so redefining the depth-2 callee deopts the elided top-level caller
    and the new body is visible on the very next call.  (With a
    *checked* ``mid`` the chain legitimately stops at its trusted
    signature and ``base``'s body is never consumed.)"""
    engine = spec_engine()
    cls = type("SpecDeepChain", (object,), {})
    _define(engine, cls, "base", _BASE, "(Integer) -> Integer")
    _define(engine, cls, "mid",
            "def mid(self, n):\n    return self.base(n) + 1\n",
            "(Integer) -> Integer", check=False)
    _define(engine, cls, "top",
            "def top(self, n):\n    return self.mid(n) + n\n",
            "(Integer) -> Integer")
    obj = cls()
    for i in range(THRESHOLD + 5):
        assert obj.top(i) == 2 * i + 1
    assert engine.stats.elide_promotions >= 1
    assert _slot_is_specialized(cls, "top")
    _define(engine, cls, "base",
            "def base(self, n):\n    return n + 100\n",
            "(Integer) -> Integer")
    assert not _slot_is_specialized(cls, "top")
    assert obj.top(1) == 103  # the *new* depth-2 body, immediately


@pytest.mark.requires_elision
def test_ret_check_elided_for_provable_trusted_return():
    """A trusted signature with always-mode return checks: when the body
    provably returns a conforming class, the conformance walk is elided
    — but ``dynamic_ret_checks`` still reports what the generic tier
    would, and a *lying* sibling keeps its full check."""
    from repro import ReturnTypeError

    engine = Engine(EngineConfig(specialize_threshold=THRESHOLD,
                                 dynamic_ret_checks="always"))
    cls = type("SpecRet", (object,), {})
    _define(engine, cls, "honest", "def honest(self, n):\n    return 'ok'\n",
            "(Integer) -> String", check=False)
    _define(engine, cls, "lie", "def lie(self, n):\n    return n\n",
            "(Integer) -> String", check=False)
    obj = cls()
    _warm(obj, name="honest")
    assert engine.stats.elide_promotions >= 1
    ret_checks = engine.stats.dynamic_ret_checks
    assert obj.honest(3) == "ok"
    assert engine.stats.dynamic_ret_checks == ret_checks + 1  # parity kept
    with pytest.raises(ReturnTypeError):
        obj.lie(1)


@pytest.mark.requires_elision
def test_kw_traffic_recompiles_promoted_site_in_place():
    """A positional-only promotion later seeing a stable kwargs layout
    recompiles in place (no new promotion, no deopt): keyword calls move
    from the tier-1 fallback onto the straight-line path."""
    engine = spec_engine()
    cls = _kwargs_world(engine)
    obj = cls()
    for i in range(THRESHOLD + 5):
        obj.combine(i, i)               # positional-only promotion
    assert engine.stats.promotions == 1
    assert engine.stats.kw_promotions == 0
    for i in range(THRESHOLD + 5):
        assert obj.combine(i, y=2) == i + 2   # kwargs traffic arrives later
    assert engine.stats.promotions == 1       # no second promotion
    assert engine.stats.kw_promotions == 1    # the in-place recompile
    assert engine.stats.deopts == 0
    kw0 = engine.stats.kw_spec_hits
    assert obj.combine(1, y=2) == 3
    assert engine.stats.kw_spec_hits == kw0 + 1  # straight-line now
    assert obj.combine(3, 4) == 7                # positional path intact


@pytest.mark.requires_specialization
def test_gap_kwargs_layout_binds_skipped_defaults():
    """A call shape that skips a defaulted parameter (``mix(1, z=5)``)
    compiles a layout with the declared default bound into the gap slot
    — instead of bailing to the generic tier forever."""
    engine = spec_engine()
    cls = type("SpecGap", (object,), {})
    _define(engine, cls, "mix",
            "def mix(self, x, y=2, z=3):\n    return x + y + z\n",
            "(Integer, Integer, Integer) -> Integer")
    obj = cls()
    for i in range(THRESHOLD + 5):
        assert obj.mix(i, z=5) == i + 2 + 5
    assert engine.stats.kw_promotions == 1
    kw0 = engine.stats.kw_spec_hits
    assert obj.mix(1, z=5) == 8
    assert engine.stats.kw_spec_hits == kw0 + 1
    with pytest.raises(ArgumentTypeError):
        obj.mix(1, z="nope")
    assert obj.mix(1, z=5) == 8  # site healthy afterwards


def test_gap_kwargs_call_checks_the_right_slots():
    """Slot alignment for gap shapes in *every* tier: z's value must be
    checked against z's declared type, not slide into y's slot.  (Runs
    under the oracle too — the view fix is tier-independent.)"""
    engine = Engine(EngineConfig())
    cls = type("SpecGapAlign", (object,), {})
    _define(engine, cls, "mix",
            "def mix(self, x, y=2, z=3):\n    return (x, y, z)\n",
            "(Integer, Integer, String) -> Object")
    obj = cls()
    assert obj.mix(1, z="s") == (1, 2, "s")
    with pytest.raises(ArgumentTypeError):
        obj.mix(1, z=9)  # Integer in z's String slot must be rejected


# -- promote/deopt/re-promote stress (hypothesis) ----------------------------

_STRESS_SIGS = ("(Integer) -> Integer", "(Integer) -> String",
                "(Integer) -> Numeric")
_STRESS_METHODS = ("m0", "m1", "m2")
_STRESS_BODIES = {
    "inc": "def {name}(self, n):\n    return n + 1\n",
    "ident": "def {name}(self, n):\n    return n\n",
    "chain": "def {name}(self, n):\n    return self.m0(n)\n",
    # chain2 on m2 with m1 redefined to "chain" makes m2 -> m1 -> m0 a
    # depth-2 inter-procedural chain (m1 starts *unchecked*, so the
    # analysis recurses through its body instead of trusting its sig).
    "chain2": "def {name}(self, n):\n    return self.m1(n)\n",
}

#: receivers the stress scripts dispatch through: the base class, two
#: subclasses (bursts on different receivers drive 2-entry polymorphic
#: promotion), and "newest" — the most recently created mid-flight
#: subclass (the "subclass" op replaces it), so leaf-exactness facts
#: get revoked under live traffic.
_STRESS_RECEIVERS = ("base", "suba", "subb", "newest")

stress_ops = st.lists(
    st.one_of(
        # call bursts long enough to cross the tiny promotion threshold
        st.tuples(st.just("burst"), st.sampled_from(_STRESS_METHODS),
                  st.sampled_from(_STRESS_RECEIVERS),
                  st.integers(min_value=1, max_value=12)),
        # keyword-call bursts: drive the kwargs-layout machinery
        st.tuples(st.just("kwburst"), st.sampled_from(_STRESS_METHODS),
                  st.sampled_from(_STRESS_RECEIVERS),
                  st.integers(min_value=1, max_value=12)),
        st.tuples(st.just("retype"), st.sampled_from(_STRESS_METHODS),
                  st.sampled_from(_STRESS_SIGS)),
        st.tuples(st.just("redefine"), st.sampled_from(_STRESS_METHODS),
                  st.sampled_from(sorted(_STRESS_BODIES))),
        st.tuples(st.just("badcall"), st.sampled_from(_STRESS_METHODS),
                  st.sampled_from(_STRESS_RECEIVERS)),
        # mid-flight subclassing: revokes ("lin", parent) leaf facts
        st.tuples(st.just("subclass"),
                  st.sampled_from(("base", "suba", "subb"))),
    ),
    min_size=2, max_size=16)


def _stress_outcome(thunk):
    try:
        return ("ok", repr(thunk()))
    except RecursionError:
        return ("err", "RecursionError")
    except Exception as exc:  # noqa: BLE001 - error identity is the property
        return ("err", type(exc).__name__, str(exc))


def _stress_replay(script, *, disable):
    engine = Engine(EngineConfig(specialize_threshold=2),
                    disable_caches=disable)
    cls = type("SpecStress", (object,), {})
    for name in ("m0", "m2"):
        _define(engine, cls, name,
                _STRESS_BODIES["inc"].format(name=name),
                "(Integer) -> Integer")
    # m1 starts annotated-but-unchecked: a caller's analysis cannot
    # trust its signature and recurses into its body, so chain2 scripts
    # build real depth-2 ("ir", ...) dependency chains.
    _define(engine, cls, "m1", _STRESS_BODIES["inc"].format(name="m1"),
            "(Integer) -> Integer", check=False)
    sub_a = type("SpecStressA", (cls,), {})
    sub_b = type("SpecStressB", (cls,), {})
    engine.register_class(sub_a)
    engine.register_class(sub_b)
    receivers = {"base": cls(), "suba": sub_a(), "subb": sub_b()}
    receivers["newest"] = receivers["base"]
    dyn_subs = 0
    outcomes = []
    for op in script:
        if op[0] == "burst":
            _, name, recv, count = op
            obj = receivers[recv]
            for i in range(count):
                outcomes.append(_stress_outcome(
                    lambda o=obj, m=name, a=i: getattr(o, m)(a)))
        elif op[0] == "kwburst":
            _, name, recv, count = op
            obj = receivers[recv]
            for i in range(count):
                outcomes.append(_stress_outcome(
                    lambda o=obj, m=name, a=i: getattr(o, m)(n=a)))
        elif op[0] == "retype":
            _, name, sig = op
            outcomes.append(_stress_outcome(
                lambda: engine.types.replace("SpecStress", name, sig,
                                             check=True)))
        elif op[0] == "redefine":
            _, name, body_key = op
            body = _STRESS_BODIES[body_key].format(name=name)
            namespace = {}
            exec(body, namespace)  # noqa: S102 - fixed test templates
            fn = namespace[name]
            fn.__hb_source__ = body
            outcomes.append(_stress_outcome(
                lambda: engine.define_method(cls, name, fn, source=body)))
        elif op[0] == "subclass":
            # Defining a subclass is a pure hierarchy wave: any elision
            # whose analysis treated the parent as an *exact* leaf must
            # deopt, and the fresh class immediately serves traffic as
            # the "newest" receiver.
            _, recv = op
            parent = type(receivers[recv])
            dyn_subs += 1
            new_cls = type(f"SpecStressDyn{dyn_subs}", (parent,), {})
            outcomes.append(_stress_outcome(
                lambda c=new_cls: engine.register_class(c)))
            receivers["newest"] = new_cls()
        else:  # badcall: must raise identically in both engines
            _, name, recv = op
            outcomes.append(_stress_outcome(
                lambda o=receivers[recv], m=name: getattr(o, m)("wrong")))
    return outcomes, engine


@given(stress_ops)
@settings(max_examples=40, deadline=None)
def test_promote_deopt_repromote_matches_oracle(script):
    """Random promote/deopt/re-promote interleavings — across three
    receiver classes (polymorphic dispatch) and keyword-call bursts
    (kwargs layouts) — never change a single observable outcome versus
    the cache-free oracle."""
    tiered, _ = _stress_replay(script, disable=False)
    oracle, _ = _stress_replay(script, disable=True)
    assert tiered == oracle


@pytest.mark.requires_specialization
def test_stress_scenarios_actually_promote():
    """The stress harness is not vacuous: a plain call burst promotes."""
    script = [("burst", "m0", "base", 12),
              ("retype", "m0", _STRESS_SIGS[0]),
              ("burst", "m0", "base", 12)]
    _, engine = _stress_replay(script, disable=False)
    assert engine.stats.promotions >= 2
    assert engine.stats.deopts >= 1


@pytest.mark.requires_specialization
def test_stress_scenarios_actually_poly_promote():
    """Bursts on two subclass receivers build a 2-entry dispatch."""
    script = [("burst", "m0", "suba", 8), ("burst", "m0", "subb", 8)]
    _, engine = _stress_replay(script, disable=False)
    assert engine.stats.poly_promotions >= 1
    assert engine.stats.poly_spec_hits > 0


@pytest.mark.requires_specialization
def test_stress_scenarios_actually_kw_promote():
    """Keyword bursts compile a kwargs layout in."""
    script = [("kwburst", "m0", "base", 10)]
    _, engine = _stress_replay(script, disable=False)
    assert engine.stats.kw_promotions >= 1
    assert engine.stats.kw_spec_hits > 0


@pytest.mark.requires_elision
def test_stress_scenarios_actually_build_and_break_deep_chains():
    """The new stress ops are not vacuous: a chain2 script hot-paths a
    depth-2 inter-procedural chain (m2 -> unchecked m1 -> m0), the
    depth-2 callee's redefinition deopts the top caller, and a
    mid-flight subclass both revokes leaf facts and serves traffic."""
    script = [("redefine", "m1", "chain"),      # m1 -> m0 (still unchecked)
              ("burst", "m2", "base", 12),      # m2 -> m1 -> m0 goes hot
              ("redefine", "m0", "ident"),      # depth-2 callee redefined
              ("burst", "m2", "base", 6),
              ("subclass", "base"),             # leaf fact revoked
              ("burst", "m2", "newest", 8)]     # fresh subclass traffic
    outcomes, engine = _stress_replay(script, disable=False)
    oracle, _ = _stress_replay(script, disable=True)
    assert outcomes == oracle
    assert engine.stats.elide_promotions >= 1
    assert engine.stats.deopts >= 1
    # the ("subclass", "base") op actually registered a new class
    assert engine.hier.is_known("SpecStressDyn1")


@pytest.mark.requires_elision
def test_stress_scenarios_actually_elide_and_survive_callee_churn():
    """The stress harness exercises tier 3: hot leaves promote with
    checks elided, a chain caller's *callee* is retyped mid-run, and
    the elided sites are torn down — the hypothesis property above
    already replays such scripts differentially against the oracle."""
    script = [("burst", "m0", "base", 12),
              ("redefine", "m1", "chain"),   # m1 now calls m0
              ("burst", "m1", "base", 12),
              ("retype", "m0", _STRESS_SIGS[1]),  # retype m1's callee
              ("burst", "m1", "base", 6)]
    _, engine = _stress_replay(script, disable=False)
    assert engine.stats.elide_promotions >= 1
    assert engine.stats.checks_elided > 0
    assert engine.stats.elide_deopts >= 1
