"""Tier-2 specialization: promotion, guard fallbacks, and deopt soundness.

The contract under test (see ``docs/performance.md`` "Tiered execution"):

* a stable warm call plan is promoted to an exec-generated per-site
  wrapper after ``specialize_threshold`` hits, and the wrapper's
  outcomes — return values, raised errors, stats invariants — are
  indistinguishable from the generic tier's;
* every guard failure (wrong receiver class, kwargs, unseen argument
  classes, missing check-cache entry) **falls back** into the generic
  ``Engine.invoke``, never raises through the fast path, and never
  skips a failing dynamic check;
* every invalidation wave that drops the underlying plan — retype,
  redefinition, hierarchy mutation, field retype, plan-cache clear —
  **deoptimizes**: the generic wrapper is back on the class before the
  wave returns, so the next call re-resolves against the mutated world
  (the error-flipping retype is the stale-specialization smoking gun);
* deopt is not a one-way door: a re-warmed site re-promotes.

The hypothesis stress at the bottom replays random
promote/deopt/re-promote interleavings differentially against the
cache-free oracle with a tiny threshold, so every script crosses the
promotion boundary many times.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ArgumentTypeError, Engine, EngineConfig, StaticTypeError,
)
from repro.rdl.wrap import add_pre, is_wrapped, unwrap_method

THRESHOLD = 5  # tiny, so tests cross the promotion boundary quickly


def spec_engine(**overrides) -> Engine:
    return Engine(EngineConfig(specialize_threshold=THRESHOLD, **overrides))


_BUMP = "def bump(self, n):\n    return n + 1\n"
_BASE = "def base(self, n):\n    return n\n"
_DOUBLE = "def double(self, n):\n    return self.base(n) + n\n"


def _define(engine, cls, name, body, sig, check=True):
    namespace = {}
    exec(body, namespace)  # noqa: S102 - fixed test templates
    engine.define_method(cls, name, namespace[name], sig=sig, check=check,
                         source=body)


def _hot_world(engine):
    cls = type("SpecHot", (object,), {})
    _define(engine, cls, "bump", _BUMP, "(Integer) -> Integer")
    return cls


def _warm(obj, name="bump", calls=THRESHOLD + 5):
    for i in range(calls):
        getattr(obj, name)(i)


def _slot_is_specialized(cls, name) -> bool:
    raw = cls.__dict__.get(name)
    fn = raw.__func__ if isinstance(raw, classmethod) else raw
    return getattr(fn, "__hb_specialized__", False)


# -- promotion ---------------------------------------------------------------


@pytest.mark.requires_specialization
def test_promotion_after_threshold():
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    for i in range(THRESHOLD + 10):
        assert obj.bump(i) == i + 1
    stats = engine.stats
    assert stats.promotions == 1
    assert stats.specialized_hits > 0
    assert _slot_is_specialized(cls, "bump")
    assert is_wrapped(cls, "bump")  # still reads as an intercepted method


@pytest.mark.requires_specialization
def test_specialized_stats_stay_exact():
    """Counter-for-counter parity with the generic tier: the warm-call
    invariants that the stats suite asserts must survive promotion."""
    engine = spec_engine()
    obj = _hot_world(engine)()
    calls = THRESHOLD + 40
    _warm(obj, calls=calls)
    stats = engine.stats
    assert stats.calls_intercepted == calls
    assert stats.fast_path_hits == calls - 1  # first call is the cold build
    assert (stats.dynamic_arg_checks + stats.dynamic_arg_checks_skipped
            == stats.calls_intercepted)
    assert stats.specialized_hits == stats.fast_path_hits - THRESHOLD


@pytest.mark.requires_specialization
def test_no_promotion_when_disabled_by_config():
    engine = Engine(EngineConfig(specialize=False, specialize_threshold=2))
    obj = _hot_world(engine)()
    _warm(obj, calls=50)
    assert engine.stats.promotions == 0
    assert engine.stats.specialized_hits == 0


@pytest.mark.requires_caches
def test_no_promotion_when_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_SPECIALIZE", "1")
    engine = spec_engine()
    obj = _hot_world(engine)()
    _warm(obj, calls=50)
    assert engine.stats.promotions == 0


@pytest.mark.requires_specialization
def test_classmethod_site_promotes():
    """CLASS-kind sites specialize too: the guard is identity on the
    receiver class object, and the classmethod binding is preserved."""
    engine = spec_engine()
    hb = engine.api()

    class SpecClassKind:
        @hb.typed("(Integer) -> Integer")
        @classmethod
        def tally(cls, n):
            return n + 2

    for i in range(THRESHOLD + 10):
        assert SpecClassKind.tally(i) == i + 2
    stats = engine.stats
    assert stats.promotions == 1
    assert stats.specialized_hits > 0
    raw = SpecClassKind.__dict__["tally"]
    assert isinstance(raw, classmethod)
    assert getattr(raw.__func__, "__hb_specialized__", False)
    with pytest.raises(ArgumentTypeError):
        SpecClassKind.tally("nope")


# -- guard failures fall back, never raise -----------------------------------


@pytest.mark.requires_specialization
def test_wrong_receiver_class_falls_back_to_generic():
    """The monomorphic guard: a subclass receiver takes the generic path
    (and gets its own receiver-keyed check) while the promoted class
    keeps its fast path."""
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    sub = type("SpecHotSub", (cls,), {})
    engine.register_class(sub)
    sub_obj = sub()
    assert sub_obj.bump(3) == 4  # falls back, no error
    assert obj.bump(3) == 4


@pytest.mark.requires_specialization
def test_specialized_site_still_rejects_bad_arguments():
    """Inline-cache soundness survives tier 2: the profile guard only
    accepts classes that passed; anything else re-runs the real check."""
    engine = spec_engine()
    obj = _hot_world(engine)()
    _warm(obj)
    with pytest.raises(ArgumentTypeError):
        obj.bump("not an integer")
    assert obj.bump(7) == 8  # site still healthy afterwards


@pytest.mark.requires_specialization
def test_kwargs_calls_fall_back():
    engine = spec_engine()
    obj = _hot_world(engine)()
    _warm(obj)
    assert obj.bump(n=3) == 4


@pytest.mark.requires_specialization
def test_new_argument_classes_learned_after_promotion():
    """Post-promotion learning: the generic fallback COW-publishes new
    passing profiles that the compiled wrapper then reads per call."""
    engine = spec_engine()
    cls = type("SpecNum", (object,), {})
    _define(engine, cls, "same", "def same(self, n):\n    return n\n",
            "(Numeric) -> Numeric")
    obj = cls()
    for i in range(THRESHOLD + 5):
        obj.same(i)  # promote with an int-only profile
    assert engine.stats.promotions == 1
    assert obj.same(1.5) == 1.5  # float: profile miss -> fallback -> learn
    plan = engine._plans.get(("SpecNum", "SpecNum", "same", "instance"))
    assert (float,) in plan.profiles
    before = engine.stats.specialized_hits
    assert obj.same(2.5) == 2.5  # now a specialized hit via the COW set
    assert engine.stats.specialized_hits == before + 1


# -- deoptimization ----------------------------------------------------------


@pytest.mark.requires_specialization
def test_error_flipping_retype_deoptimizes():
    """The smoking gun: retyping the callee's return makes the promoted
    caller's derivation ill-typed; a stale specialized wrapper would
    keep returning successes."""
    engine = spec_engine()
    cls = type("SpecPair", (object,), {})
    _define(engine, cls, "base", _BASE, "(Integer) -> Integer")
    _define(engine, cls, "double", _DOUBLE, "(Integer) -> Integer")
    obj = cls()
    for i in range(THRESHOLD + 5):
        assert obj.double(i) == 2 * i
    assert engine.stats.promotions >= 1
    engine.types.replace("SpecPair", "base", "(Integer) -> String",
                         check=True)
    assert engine.stats.deopts >= 1
    assert not _slot_is_specialized(cls, "double")
    with pytest.raises(StaticTypeError):
        obj.double(3)


@pytest.mark.requires_specialization
def test_redefinition_deoptimizes_and_new_body_runs():
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    _define(engine, cls, "bump", "def bump(self, n):\n    return n + 10\n",
            "(Integer) -> Integer")
    assert obj.bump(1) == 11  # the *new* body, not the compiled-in old fn
    assert engine.stats.deopts >= 1


@pytest.mark.requires_specialization
def test_hierarchy_mutation_deoptimizes_dependent_sites():
    """A structural mutation of the receiver's linearization drops the
    plans that resolved through it — and must deopt their wrappers."""
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    module = type("SpecMixin", (object,), {"__hb_module__": True})
    engine.register_class(module)
    engine.hier.include_module("SpecHot", "SpecMixin")
    assert not _slot_is_specialized(cls, "bump")
    assert obj.bump(2) == 3  # re-resolves and still works


@pytest.mark.requires_specialization
def test_field_retype_deoptimizes_field_reading_site():
    engine = spec_engine()
    cls = type("SpecField", (object,), {"__init__":
               lambda self: setattr(self, "value", 1)})
    engine.register_class(cls)
    engine.field_type(cls, "value", "Integer")
    _define(engine, cls, "read",
            "def read(self, n):\n    return self.value + n\n",
            "(Integer) -> Integer")
    obj = cls()
    _warm(obj, name="read")
    assert _slot_is_specialized(cls, "read")
    engine.field_type(cls, "value", "String")  # derivation now ill-typed
    assert not _slot_is_specialized(cls, "read")
    with pytest.raises(StaticTypeError):
        obj.read(1)


@pytest.mark.requires_specialization
def test_plan_cache_clear_deoptimizes_everything():
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    engine._plans.clear()
    assert not _slot_is_specialized(cls, "bump")
    assert obj.bump(4) == 5


@pytest.mark.requires_specialization
def test_direct_check_cache_clear_degrades_not_stales():
    """Even a CheckCache.clear() that bypasses Engine.invalidate (so no
    deopt fires) must not replay the removed derivation: the per-call
    membership guard bails to the generic tier, which re-checks."""
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    checks_before = engine.stats.static_checks
    engine.cache.clear()
    assert obj.bump(5) == 6
    assert engine.stats.static_checks == checks_before + 1  # re-derived


@pytest.mark.requires_specialization
def test_repromotion_after_deopt():
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert engine.stats.promotions == 1
    engine.types.replace("SpecHot", "bump", "(Integer) -> Integer",
                         check=True)  # same-signature reload churn
    assert engine.stats.deopts >= 1
    _warm(obj)
    assert engine.stats.promotions == 2
    assert _slot_is_specialized(cls, "bump")


@pytest.mark.requires_specialization
def test_unwrap_restores_the_original_function():
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    unwrap_method(cls, "bump")
    assert not is_wrapped(cls, "bump")
    calls_before = engine.stats.calls_intercepted
    assert obj.bump(1) == 2      # plain python call
    assert engine.stats.calls_intercepted == calls_before


@pytest.mark.requires_specialization
def test_contract_registration_deoptimizes_and_contracts_run():
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    seen = []
    add_pre(engine, cls, "bump", lambda recv, *a, **k: seen.append(a) or True)
    assert not _slot_is_specialized(cls, "bump")
    assert obj.bump(1) == 2
    assert seen == [(1,)]  # the hook actually ran
    _warm(obj, calls=THRESHOLD * 4)
    assert not _slot_is_specialized(cls, "bump")  # no re-promotion


@pytest.mark.requires_specialization
def test_hoisted_bound_method_cannot_outlive_its_plan():
    """A bound method hoisted while the site was specialized bypasses
    deopt-by-rebinding; the per-call liveness guard must make it fall
    back once the plan is dropped — even after the site re-warms under
    a new signature whose checks the old plan would have skipped."""
    engine = spec_engine()
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    assert _slot_is_specialized(cls, "bump")
    hoisted = obj.bump  # captures the specialized wrapper
    # Outlaw Integer arguments; the old plan's profile admitted them.
    engine.types.replace("SpecHot", "bump", "(String) -> Integer",
                         check=True)
    with pytest.raises(Exception):  # noqa: B017 - ill-typed body OR bad arg
        hoisted(1)
    # And through a full re-derivation cycle back to the original
    # signature the hoisted reference still re-validates per call: the
    # rebuilt plan is a *different object*, so the old wrapper's
    # liveness guard keeps bailing to the generic path.
    engine.types.replace("SpecHot", "bump", "(Integer) -> Integer",
                         check=True)
    assert obj.bump(2) == 3  # rebuilt plan, maybe re-promoted
    assert hoisted(3) == 4   # old wrapper: liveness guard -> generic path
    before = engine.stats.calls_intercepted
    hoisted(4)
    assert engine.stats.calls_intercepted == before + 1


# -- trusted signatures and return checks ------------------------------------


@pytest.mark.requires_specialization
def test_trusted_signature_site_promotes_and_checks_args():
    engine = spec_engine()
    cls = type("SpecTrusted", (object,), {})
    _define(engine, cls, "bump", _BUMP, "(Integer) -> Integer", check=False)
    obj = cls()
    _warm(obj)
    assert engine.stats.promotions == 1
    with pytest.raises(ArgumentTypeError):
        obj.bump([])


@pytest.mark.requires_specialization
def test_dynamic_ret_checks_survive_promotion():
    """An always-mode return check on a trusted lying signature must
    keep firing from the specialized wrapper."""
    from repro import ReturnTypeError

    engine = Engine(EngineConfig(specialize_threshold=THRESHOLD,
                                 dynamic_ret_checks="always"))
    cls = type("SpecLiar", (object,), {})
    _define(engine, cls, "greet", "def greet(self, n):\n    return n + 1\n",
            "(Integer) -> Integer", check=False)
    _define(engine, cls, "lie", "def lie(self, n):\n    return 'x'\n",
            "(Integer) -> Integer", check=False)
    obj = cls()
    _warm(obj, name="greet")
    assert engine.stats.promotions >= 1
    assert engine.stats.dynamic_ret_checks > 0
    with pytest.raises(ReturnTypeError):
        obj.lie(1)
    ret_checks = engine.stats.dynamic_ret_checks
    assert obj.greet(3) == 4
    assert engine.stats.dynamic_ret_checks == ret_checks + 1


# -- promote/deopt/re-promote stress (hypothesis) ----------------------------

_STRESS_SIGS = ("(Integer) -> Integer", "(Integer) -> String",
                "(Integer) -> Numeric")
_STRESS_BODIES = {
    "inc": "def {name}(self, n):\n    return n + 1\n",
    "ident": "def {name}(self, n):\n    return n\n",
    "chain": "def {name}(self, n):\n    return self.m0(n)\n",
}

stress_ops = st.lists(
    st.one_of(
        # call bursts long enough to cross the tiny promotion threshold
        st.tuples(st.just("burst"), st.sampled_from(("m0", "m1")),
                  st.integers(min_value=1, max_value=12)),
        st.tuples(st.just("retype"), st.sampled_from(("m0", "m1")),
                  st.sampled_from(_STRESS_SIGS)),
        st.tuples(st.just("redefine"), st.sampled_from(("m0", "m1")),
                  st.sampled_from(sorted(_STRESS_BODIES))),
        st.tuples(st.just("badcall"), st.sampled_from(("m0", "m1"))),
    ),
    min_size=2, max_size=16)


def _stress_outcome(thunk):
    try:
        return ("ok", repr(thunk()))
    except RecursionError:
        return ("err", "RecursionError")
    except Exception as exc:  # noqa: BLE001 - error identity is the property
        return ("err", type(exc).__name__, str(exc))


def _stress_replay(script, *, disable):
    engine = Engine(EngineConfig(specialize_threshold=2),
                    disable_caches=disable)
    cls = type("SpecStress", (object,), {})
    for name in ("m0", "m1"):
        _define(engine, cls, name,
                _STRESS_BODIES["inc"].format(name=name),
                "(Integer) -> Integer")
    obj = cls()
    outcomes = []
    for op in script:
        if op[0] == "burst":
            _, name, count = op
            for i in range(count):
                outcomes.append(_stress_outcome(
                    lambda n=name, a=i: getattr(obj, n)(a)))
        elif op[0] == "retype":
            _, name, sig = op
            outcomes.append(_stress_outcome(
                lambda: engine.types.replace("SpecStress", name, sig,
                                             check=True)))
        elif op[0] == "redefine":
            _, name, body_key = op
            body = _STRESS_BODIES[body_key].format(name=name)
            namespace = {}
            exec(body, namespace)  # noqa: S102 - fixed test templates
            fn = namespace[name]
            fn.__hb_source__ = body
            outcomes.append(_stress_outcome(
                lambda: engine.define_method(cls, name, fn, source=body)))
        else:  # badcall: must raise identically in both engines
            outcomes.append(_stress_outcome(
                lambda n=op[1]: getattr(obj, n)("wrong")))
    return outcomes, engine


@given(stress_ops)
@settings(max_examples=40, deadline=None)
def test_promote_deopt_repromote_matches_oracle(script):
    """Random promote/deopt/re-promote interleavings never change a
    single observable outcome versus the cache-free oracle."""
    tiered, _ = _stress_replay(script, disable=False)
    oracle, _ = _stress_replay(script, disable=True)
    assert tiered == oracle


@pytest.mark.requires_specialization
def test_stress_scenarios_actually_promote():
    """The stress harness is not vacuous: a plain call burst promotes."""
    script = [("burst", "m0", 12), ("retype", "m0", _STRESS_SIGS[0]),
              ("burst", "m0", 12)]
    _, engine = _stress_replay(script, disable=False)
    assert engine.stats.promotions >= 2
    assert engine.stats.deopts >= 1
