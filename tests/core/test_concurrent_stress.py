"""Property-based *concurrent* invalidation stress test (hypothesis).

The single-threaded stress harness (``test_invalidation_stress``)
searches for an operation order in which a dependency edge was not
recorded.  This harness searches for a *threading* hole: a mutation
wave racing a concurrent call batch in a way that memoizes a stale
judgment (the lost-invalidation races the epoch guards exist for).

Scripts are *phased* so outcomes stay comparable despite scheduler
nondeterminism: each phase is an optional mutation (applied by the main
thread — one writer wave) followed by a batch of calls executed across
4 worker threads *concurrently with nothing else mutating*.  Within a
phase every call is deterministic, so the phase's outcome multiset must
equal a cache-free, single-threaded oracle replaying the same script.
The races this provokes are real: worker threads are mid-flight
building plans, filling the subtype memo, and re-checking bodies while
the main thread's next wave lands — hypothesis shrinks any divergence
to a minimal phase script.
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro import Engine

WORKERS = 4
JOIN_S = 60.0

METHODS = ("m0", "m1", "m2")
SIGS = ("(Integer) -> Integer", "(String) -> String",
        "(Integer) -> String", "(Integer) -> Numeric")
FIELD_TYPES = ("Integer", "String", "Numeric")
CALL_ARGS = (0, 7, "word")

#: method body sources, exec'd so dev-mode IR registration works.
BODIES = {
    "identity": "def {name}(self, n):\n    return n\n",
    "inc": "def {name}(self, n):\n    return n + 1\n",
    "stringify": "def {name}(self, n):\n    return 'x'\n",
    "call_m0": "def {name}(self, n):\n    return self.m0(n)\n",
    "call_m1": "def {name}(self, n):\n    return self.m1(n)\n",
    "read_field": "def {name}(self, n):\n    return self.value\n",
}


def _make_fn(body_key, name):
    source = BODIES[body_key].format(name=name)
    namespace = {}
    exec(source, namespace)  # noqa: S102 - test-local, fixed templates
    fn = namespace[name]
    fn.__hb_source__ = source
    return fn, source


mutations = st.one_of(
    st.tuples(st.just("def"), st.sampled_from(METHODS),
              st.sampled_from(sorted(BODIES))),
    st.tuples(st.just("retype"), st.sampled_from(METHODS),
              st.sampled_from(SIGS)),
    st.tuples(st.just("field"), st.sampled_from(FIELD_TYPES)),
    # pure hierarchy wave: revokes leaf-exactness ("lin", parent) facts
    # that tier-3 elisions may have pinned, racing the worker calls
    st.tuples(st.just("subclass")),
)

calls = st.lists(
    st.tuples(st.sampled_from(METHODS), st.sampled_from(CALL_ARGS)),
    min_size=1, max_size=8)

phases = st.lists(
    st.tuples(st.one_of(st.none(), mutations), calls),
    min_size=1, max_size=6)


def _outcome(obj, meth, arg):
    try:
        # The attribute lookup is part of the observable: calling an
        # undefined method is an AttributeError outcome, not a crash.
        return ("ok", repr(getattr(obj, meth)(arg)))
    except RecursionError:
        # Self-recursive redefinitions blow the host stack in both
        # engines; the trip point (and so the message) varies, so only
        # the error identity is compared.
        return ("err", "RecursionError")
    except Exception as exc:  # noqa: BLE001 - error identity is the property
        return ("err", type(exc).__name__, str(exc))


def _build(engine):
    def init(self):
        self.value = 0

    cls = type("CStress", (object,), {"__init__": init})
    fn, source = _make_fn("identity", "m0")
    engine.define_method(cls, "m0", fn, sig="(Integer) -> Integer",
                         check=True, source=source)
    return cls, cls()


def _apply_mutation(engine, cls, op):
    tag = op[0]
    try:
        if tag == "def":
            _, meth, body_key = op
            fn, source = _make_fn(body_key, meth)
            engine.define_method(cls, meth, fn, source=source)
        elif tag == "retype":
            _, meth, sig = op
            engine.types.replace("CStress", meth, sig, check=True)
        elif tag == "field":
            _, ftype = op
            engine.field_type(cls, "value", ftype)
        elif tag == "subclass":
            # Deterministic names: both replays mint CStressSub1, 2, ...
            count = getattr(cls, "_sub_count", 0) + 1
            cls._sub_count = count
            engine.register_class(
                type(f"CStressSub{count}", (cls,), {}))
    except Exception:  # noqa: BLE001, S110 - mutations that raise (e.g. a
        pass            # retype of an undefined method) are applied
                        # identically in both engines; call outcomes are
                        # the compared observable.


def _replay_threaded(script):
    """Cached engine; each phase's calls run across WORKERS threads."""
    engine = Engine()
    cls, obj = _build(engine)
    phase_outcomes = []
    for mutation, batch in script:
        if mutation is not None:
            _apply_mutation(engine, cls, mutation)
        collected = []
        lock = threading.Lock()

        def worker(idx, batch=batch):
            mine = [_outcome(obj, meth, arg) for meth, arg in batch]
            with lock:
                collected.extend(mine)

        workers = [threading.Thread(target=worker, args=(i,), daemon=True)
                   for i in range(WORKERS)]
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=JOIN_S)
        assert not any(t.is_alive() for t in workers), "stress deadlock"
        phase_outcomes.append(sorted(collected))
    return phase_outcomes


def _replay_oracle(script):
    """Cache-free oracle; the same schedule single-threaded (each batch
    is executed WORKERS times, matching the threaded total)."""
    engine = Engine(disable_caches=True)
    cls, obj = _build(engine)
    phase_outcomes = []
    for mutation, batch in script:
        if mutation is not None:
            _apply_mutation(engine, cls, mutation)
        collected = []
        for _ in range(WORKERS):
            collected.extend(_outcome(obj, meth, arg)
                             for meth, arg in batch)
        phase_outcomes.append(sorted(collected))
    return phase_outcomes


@pytest.mark.requires_threads
@given(phases)
@settings(max_examples=25, deadline=None)
def test_threaded_interleavings_agree_with_cache_free_oracle(script):
    assert _replay_threaded(script) == _replay_oracle(script)
