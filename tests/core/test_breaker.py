"""Deopt-storm circuit breakers: trip, cooldown, re-arm, and ablation.

The breaker is a *performance governor*, never a soundness mechanism:
every test here asserts both the gating behavior (a chronic flapper
stops being re-promoted; a wave storm pauses all promotion) and that
outcomes stay exactly correct while the breaker is engaged — a demoted
site serves from tier 1, which is the always-sound path.

Timing is driven through a fake monotonic clock injected into the
specializer, so trips, cooldowns, and re-arms are deterministic.
"""

import pytest

from repro import Engine, EngineConfig, StaticTypeError

THRESHOLD = 3


class FakeClock:
    """A controllable stand-in for time.monotonic."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def breaker_engine(**overrides):
    cfg = dict(specialize_threshold=THRESHOLD, breaker_flap_limit=3,
               breaker_window_s=60.0, breaker_cooldown_s=100.0,
               breaker_wave_limit=1000)
    cfg.update(overrides)
    engine = Engine(EngineConfig(**cfg))
    clock = FakeClock()
    spec = engine._specializer
    if spec is not None:
        spec._clock = clock
    return engine, clock


_BUMP = "def bump(self, n):\n    return n + 1\n"


def _define(engine, cls, name, body, sig):
    namespace = {}
    exec(body, namespace)  # noqa: S102 - fixed test template
    engine.define_method(cls, name, namespace[name], sig=sig, check=True,
                         source=body)


def _hot_world(engine, cls_name="BreakerHot"):
    cls = type(cls_name, (object,), {})
    _define(engine, cls, "bump", _BUMP, "(Integer) -> Integer")
    return cls


def _warm(obj, calls=THRESHOLD + 5):
    for i in range(calls):
        assert obj.bump(i) == i + 1


def _flap(engine, cls_name="BreakerHot"):
    """One flap cycle half: a same-signature reload that deopts the
    promoted site (reload churn, the classic flap source)."""
    engine.types.replace(cls_name, "bump", "(Integer) -> Integer",
                         check=True)


def _plan_key(engine, name="bump"):
    keys = [key for key, _ in engine._plans.items() if key[2] == name]
    assert keys, f"no plan for {name}"
    return keys[0]


# -- per-site breaker --------------------------------------------------------


@pytest.mark.requires_specialization
def test_flap_storm_trips_per_site_breaker():
    engine, clock = breaker_engine()
    cls = _hot_world(engine)
    obj = cls()
    for _ in range(3):  # promote -> deopt, three flaps inside the window
        _warm(obj)
        _flap(engine)
        clock.advance(0.1)
    stats = engine.stats
    assert stats.breaker_trips == 1
    assert stats.breaker_demotions == 1
    # Cooling: the site stays tier-1 no matter how hot it runs...
    promotions = stats.promotions
    _warm(obj, calls=50)
    assert stats.promotions == promotions
    # ...and it still serves exactly correct results from tier 1.
    assert obj.bump(7) == 8


@pytest.mark.requires_specialization
def test_tripped_site_loses_rewarm_discount():
    engine, clock = breaker_engine()
    spec = engine._specializer
    cls = _hot_world(engine)
    obj = cls()
    _warm(obj)
    _flap(engine)
    # After one benign deopt the site holds the re-warm discount.
    _warm(obj)  # rebuilds the plan and re-promotes at the discount
    key = _plan_key(engine)
    assert spec.promote_threshold(key) < THRESHOLD
    for _ in range(2):  # push it over the flap limit
        _flap(engine)
        clock.advance(0.1)
        _warm(obj)
    assert engine.stats.breaker_trips == 1
    # Revoked: the chronic flapper re-earns promotion at full price.
    assert spec.promote_threshold(key) == THRESHOLD


@pytest.mark.requires_specialization
def test_breaker_rearms_after_cooldown():
    engine, clock = breaker_engine()
    cls = _hot_world(engine)
    obj = cls()
    for _ in range(3):
        _warm(obj)
        _flap(engine)
        clock.advance(0.1)
    assert engine.stats.breaker_trips == 1
    promotions = engine.stats.promotions
    clock.advance(100.5)  # past the cooldown: quiet time served
    _warm(obj, calls=THRESHOLD + 10)
    assert engine.stats.promotions == promotions + 1
    assert engine.stats.breaker_trips == 1  # re-arm is not a trip


@pytest.mark.requires_specialization
def test_flap_during_cooldown_restarts_quiet_timer():
    engine, clock = breaker_engine()
    spec = engine._specializer
    cls = _hot_world(engine)
    obj = cls()
    for _ in range(3):
        _warm(obj)
        _flap(engine)
        clock.advance(0.1)
    assert engine.stats.breaker_trips == 1
    obj.bump(0)  # rebuild the dropped plan (tier 1; promotion is gated)
    key = _plan_key(engine)
    clock.advance(99.0)  # almost served the cooldown...
    # ...when another deopt of the site lands (a promotion that raced
    # the trip being displaced): the quiet timer must restart.  A
    # cooling site cannot re-promote organically, so drive the
    # specializer's flap note directly.
    with spec._lock:
        spec._note_flap_locked(key)
    clock.advance(2.0)   # past the original deadline
    assert spec.breaker_blocked(key)
    clock.advance(100.0)  # past the restarted deadline
    assert not spec.breaker_blocked(key)


# -- engine-wide breaker -----------------------------------------------------


@pytest.mark.requires_specialization
def test_wave_storm_pauses_all_promotion():
    engine, clock = breaker_engine(breaker_wave_limit=3,
                                   breaker_flap_limit=1000)
    spec = engine._specializer
    cls = _hot_world(engine)
    obj = cls()
    for _ in range(3):  # three displacing waves inside the window
        _warm(obj)
        _flap(engine)
        clock.advance(0.1)
    assert spec.breaker_paused()
    assert engine.stats.breaker_trips == 1
    # The pause is engine-wide: an unrelated, perfectly stable site
    # cannot promote while the storm cooldown runs.
    other = _hot_world(engine, cls_name="BreakerCold")
    cold = other()
    promotions = engine.stats.promotions
    for i in range(THRESHOLD + 10):
        assert cold.bump(i) == i + 1
    assert engine.stats.promotions == promotions
    clock.advance(100.5)
    assert not spec.breaker_paused()
    for i in range(THRESHOLD + 10):
        assert cold.bump(i) == i + 1
    assert engine.stats.promotions == promotions + 1


# -- correctness under the breaker -------------------------------------------


@pytest.mark.requires_specialization
def test_tripped_site_still_enforces_types():
    """Graceful degradation must not relax checking: a demoted site
    raises exactly what the generic tier raises."""
    engine, clock = breaker_engine()
    cls = _hot_world(engine)
    obj = cls()
    for _ in range(3):
        _warm(obj)
        _flap(engine)
        clock.advance(0.1)
    assert engine.stats.breaker_trips == 1
    with pytest.raises((StaticTypeError, Exception)) as excinfo:
        obj.bump("nope")
    assert excinfo.type is not AssertionError


# -- ablations ---------------------------------------------------------------


@pytest.mark.requires_specialization
def test_breaker_disabled_by_config():
    engine, clock = breaker_engine(breaker=False)
    cls = _hot_world(engine)
    obj = cls()
    for _ in range(6):
        _warm(obj)
        _flap(engine)
        clock.advance(0.1)
    assert engine.stats.breaker_trips == 0
    promotions = engine.stats.promotions
    _warm(obj)
    assert engine.stats.promotions == promotions + 1  # still promoting


@pytest.mark.requires_specialization
def test_breaker_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_BREAKER", "1")
    engine, clock = breaker_engine()
    cls = _hot_world(engine)
    obj = cls()
    for _ in range(6):
        _warm(obj)
        _flap(engine)
        clock.advance(0.1)
    assert engine.stats.breaker_trips == 0
    promotions = engine.stats.promotions
    _warm(obj)
    assert engine.stats.promotions == promotions + 1


@pytest.mark.requires_specialization
def test_breaker_counters_in_snapshot():
    engine, clock = breaker_engine()
    cls = _hot_world(engine)
    obj = cls()
    for _ in range(3):
        _warm(obj)
        _flap(engine)
        clock.advance(0.1)
    snap = engine.stats_snapshot()
    assert snap["breaker_trips"] == 1
    assert snap["breaker_demotions"] == 1
    assert "requests_replayed" in snap and "workers_restarted" in snap
