"""Property-based invalidation stress test (hypothesis).

Random interleavings of define / redefine / annotate / retype / subclass
/ field-retype / call operations are replayed against two engines built
from the same script: the normal cached engine and a cache-free oracle
(``disable_caches=True`` — no plans, no check memoization, no subtype or
linearization memos).  The cached engine must never report a stale
judgment: every call's outcome (return value or error identity) must be
identical to the oracle's, at every point of the interleaving.

This is the adversarial companion to the deterministic differential
harness: hypothesis searches for an operation order in which a
dependency edge was *not* recorded and a cached judgment survives a
mutation it should not have.
"""

from hypothesis import given, settings, strategies as st

from repro import Engine

CLASSES = ("StressA", "StressB")   # StressB subclasses StressA
METHODS = ("m0", "m1", "m2")
SIGS = ("(Integer) -> Integer", "(String) -> String",
        "(Integer) -> String", "(Integer) -> Numeric")
FIELD_TYPES = ("Integer", "String", "Numeric")
CALL_ARGS = (0, 7, "word")

#: method body sources, exec'd so dev-mode IR registration works.
BODIES = {
    "identity": "def {name}(self, n):\n    return n\n",
    "inc": "def {name}(self, n):\n    return n + 1\n",
    "stringify": "def {name}(self, n):\n    return 'x'\n",
    "call_m0": "def {name}(self, n):\n    return self.m0(n)\n",
    "read_field": "def {name}(self, n):\n    return self.value\n",
}


def _make_fn(body_key, name):
    source = BODIES[body_key].format(name=name)
    namespace = {}
    exec(source, namespace)  # noqa: S102 - test-local, fixed templates
    fn = namespace[name]
    fn.__hb_source__ = source
    return fn, source


ops = st.lists(
    st.one_of(
        st.tuples(st.just("def"), st.sampled_from(CLASSES),
                  st.sampled_from(METHODS), st.sampled_from(sorted(BODIES))),
        st.tuples(st.just("ann"), st.sampled_from(CLASSES),
                  st.sampled_from(METHODS), st.sampled_from(SIGS)),
        st.tuples(st.just("retype"), st.sampled_from(CLASSES),
                  st.sampled_from(METHODS), st.sampled_from(SIGS)),
        st.tuples(st.just("field"), st.sampled_from(CLASSES),
                  st.sampled_from(FIELD_TYPES)),
        st.tuples(st.just("subclass")),
        st.tuples(st.just("call"), st.sampled_from(CLASSES + ("sub",)),
                  st.sampled_from(METHODS), st.sampled_from(CALL_ARGS)),
    ),
    min_size=1, max_size=24)


def _outcome(fn, *args, **kwargs):
    try:
        return ("ok", repr(fn(*args, **kwargs)))
    except RecursionError:
        # A self-recursive redefinition blows the host stack in both
        # engines; the message varies with the exact trip point, so only
        # the error identity is compared.
        return ("err", "RecursionError")
    except Exception as exc:  # noqa: BLE001 - error identity is the property
        return ("err", type(exc).__name__, str(exc))


def _replay(script, *, disable):
    """Apply ``script`` to a fresh engine + fresh host classes; return the
    stream of observable outcomes (one per op)."""
    engine = Engine(disable_caches=disable)
    hb = engine.api()

    def init(self):
        self.value = 0

    base = type("StressA", (object,), {"__init__": init})
    classes = {"StressA": base, "StressB": type("StressB", (base,), {})}
    engine.register_class(classes["StressB"])

    # Prelude: a checked m0 exists on the base, so "call_m0" bodies have a
    # callee and retypes of m0 have dependents to invalidate.
    fn, source = _make_fn("identity", "m0")
    engine.define_method(base, "m0", fn, sig="(Integer) -> Integer",
                         check=True, source=source)

    sub_count = 0
    instances = {}

    def instance(cls_name):
        if cls_name not in instances:
            instances[cls_name] = classes[cls_name]()
        return instances[cls_name]

    outcomes = []
    for op in script:
        tag = op[0]
        if tag == "def":
            _, cls_name, meth, body_key = op
            fn, source = _make_fn(body_key, meth)
            outcomes.append(_outcome(
                engine.define_method, classes[cls_name], meth, fn))
            fn.__hb_source__ = source
        elif tag == "ann":
            _, cls_name, meth, sig = op
            outcomes.append(_outcome(
                hb.annotate, classes[cls_name], meth, sig, check=True))
        elif tag == "retype":
            _, cls_name, meth, sig = op
            outcomes.append(_outcome(
                engine.types.replace, cls_name, meth, sig, check=True))
        elif tag == "field":
            _, cls_name, ftype = op
            outcomes.append(_outcome(
                hb.field_type, classes[cls_name], "value", ftype))
        elif tag == "subclass":
            sub_count += 1
            name = f"StressSub{sub_count}"
            classes["sub"] = type(name, (classes["StressB"],), {})
            instances.pop("sub", None)
            outcomes.append(_outcome(engine.register_class, classes["sub"]))
        elif tag == "call":
            _, cls_name, meth, arg = op
            if cls_name == "sub" and "sub" not in classes:
                cls_name = "StressB"
            recv = instance(cls_name)
            outcomes.append(_outcome(
                lambda r=recv, m=meth, a=arg: getattr(r, m)(a)))
    return outcomes


@given(ops)
@settings(max_examples=40, deadline=None)
def test_cached_engine_never_reports_a_stale_judgment(script):
    cached = _replay(script, disable=False)
    oracle = _replay(script, disable=True)
    assert cached == oracle
