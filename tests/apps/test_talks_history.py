"""The six historical Talks type errors (paper section 5)."""

import pytest

from repro.apps.talks.history import (
    HISTORICAL_ERRORS, check_historical_error,
)


def test_six_errors_recorded():
    assert len(HISTORICAL_ERRORS) == 6
    assert [e.version for e in HISTORICAL_ERRORS] == [
        "1/8/12-4", "1/7/12-5", "1/26/12-3", "1/28/12", "2/6/12-2",
        "2/6/12-3"]


@pytest.mark.parametrize("entry", HISTORICAL_ERRORS,
                         ids=[e.version for e in HISTORICAL_ERRORS])
def test_error_detected_and_fix_checks(entry):
    """The buggy version is flagged with the paper's diagnosis; the fixed
    version (the next checkin) checks cleanly — check_historical_error
    raises if the fix fails."""
    message = check_historical_error(entry)
    assert message is not None, f"{entry.version} not detected"
    assert entry.error_match in message, (entry.version, message)
