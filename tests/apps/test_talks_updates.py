"""The Table 2 dev-mode update experiment."""

import pytest

from repro.apps.talks.updates import run_update_experiment


@pytest.fixture(scope="module")
def rows():
    return run_update_experiment()


def test_seven_versions(rows):
    assert len(rows) == 7
    assert rows[0].version == "5/14/12"
    assert rows[-1].version == "1/4/13"


def test_first_version_checks_everything(rows):
    first = rows[0]
    assert first.delta_meth is None  # N/A row, like the paper
    assert first.checked_with_helpers >= 10


@pytest.mark.requires_caches
def test_updates_check_far_less_than_full_reload(rows):
    baseline = rows[0].checked_with_helpers
    for row in rows[1:]:
        assert row.checked_without_helpers < baseline


@pytest.mark.requires_caches
def test_chkd_accounting_mostly_exact(rows):
    """Paper: 'in almost all cases, the second number in Chk'd is equal to
    the sum of the three previous columns' — with one anomalous row."""
    exact = 0
    for row in rows[1:]:
        expected = row.delta_meth + row.added + row.deps
        if row.checked_without_helpers == expected:
            exact += 1
        else:
            # Anomalies stay within one method of the sum (interleaved
            # dependency updates / not-yet-called added methods).
            assert abs(row.checked_without_helpers - expected) <= 1
    assert exact >= 3


def test_helper_quirk_reported_as_two_numbers(rows):
    for row in rows[1:]:
        assert row.checked_with_helpers >= row.checked_without_helpers


def test_no_type_errors_in_the_streak(rows):
    # run_update_experiment would have raised on any static error;
    # reaching here means the whole update streak type checks.
    assert all(r.checked_with_helpers >= 0 for r in rows)
