"""Section 5's headline claims, per app.

* All six apps type check with zero static errors under their workloads.
* Dynamically generated types are essential for every app except
  Countries.
* Rolify is the only multi-phase app.
* Caching collapses re-checks (each method checked once).
"""

import pytest

from repro import Engine, EngineConfig, StaticTypeError
from repro.apps import all_builders

APP_NAMES = list(all_builders())


@pytest.fixture(scope="module")
def worlds():
    """Each app built and driven once under a full engine."""
    out = {}
    for name, build in all_builders().items():
        world = build()
        world.seed()
        world.responses = world.workload()
        out[name] = world
    return out


@pytest.mark.parametrize("name", APP_NAMES)
def test_app_typechecks_with_no_errors(worlds, name):
    world = worlds[name]
    assert world.responses  # workload actually ran
    assert world.engine.stats.static_checks > 0


@pytest.mark.requires_caches
@pytest.mark.parametrize("name", APP_NAMES)
def test_each_method_checked_once_with_caching(worlds, name):
    stats = worlds[name].engine.stats
    assert stats.max_rechecks() == 1
    assert stats.cache_hits > 0


@pytest.mark.parametrize("name", APP_NAMES)
def test_generated_types_match_paper_profile(worlds, name):
    stats = worlds[name].engine.stats
    if name == "countries":
        # The no-metaprogramming baseline: zero dynamic types.
        assert stats.generated_count() == 0
        assert stats.used_generated_count() == 0
    else:
        # Gen'd > Used: generation is deliberately general (section 5).
        assert stats.generated_count() > 0
        assert 0 < stats.used_generated_count() <= stats.generated_count()


def test_rolify_is_the_only_multiphase_app(worlds):
    phases = {name: w.engine.stats.phases() for name, w in worlds.items()}
    assert phases["rolify"] > 1
    for name in APP_NAMES:
        if name != "rolify":
            assert phases[name] == 1, (name, phases[name])


def test_countries_uses_casts(worlds):
    # The Marshal.load downcast and the generics casts (section 4).
    assert worlds["countries"].engine.stats.cast_site_count() >= 5


def test_no_cache_mode_rechecks_hot_methods():
    """The Pubs claim: without caching, hot methods are re-checked once
    per call — thousands of times on the large-array workload."""
    world = all_builders()["pubs"](Engine(EngineConfig(caching=False)))
    world.seed()
    world.workload()
    stats = world.engine.stats
    assert stats.max_rechecks() > 100
    assert stats.static_checks > 500


def test_talks_requires_generated_types():
    """Disable dynamic type generation and Talks stops type checking —
    'dynamically generated types are essential' (section 5)."""
    from repro.rails import typegen

    originals = (typegen.generate_belongs_to_types,
                 typegen.generate_attribute_types,
                 typegen.generate_finder_types,
                 typegen.generate_has_many_types)
    noop = lambda *a, **k: None  # noqa: E731
    typegen.generate_belongs_to_types = noop
    typegen.generate_attribute_types = noop
    typegen.generate_finder_types = noop
    typegen.generate_has_many_types = noop
    try:
        world = all_builders()["talks"]()
        world.seed()
        with pytest.raises(StaticTypeError):
            world.workload()
    finally:
        (typegen.generate_belongs_to_types,
         typegen.generate_attribute_types,
         typegen.generate_finder_types,
         typegen.generate_has_many_types) = originals


@pytest.mark.parametrize("name", APP_NAMES)
def test_orig_mode_runs_unchecked(name):
    """The 'Orig' measurement mode: no interception, same outputs."""
    world = all_builders()[name](Engine(EngineConfig(intercept=False)))
    world.seed()
    responses = world.workload()
    assert responses
    assert world.engine.stats.static_checks == 0
    assert world.engine.stats.calls_intercepted == 0
