"""Tests for the evaluation harness itself (LoC, stats, table plumbing)."""

import pytest

from repro.core.stats import PhaseTracker, Stats
from repro.evalharness.loc import count_loc
from repro.evalharness.table1 import (
    Table1Row, build_world, engine_for, format_table1, measure_app,
)


class TestLoc:
    def test_counts_code_lines(self):
        src = "x = 1\n\n# comment\ny = 2  # trailing comment\n"
        assert count_loc(src) == 2

    def test_empty(self):
        assert count_loc("") == 0
        assert count_loc("\n\n# only comments\n") == 0


class TestPhaseTracker:
    def test_single_phase(self):
        t = PhaseTracker()
        t.annotation()
        t.annotation()
        t.check()
        t.check()
        assert t.phases() == 1

    def test_interleaved_phases(self):
        t = PhaseTracker()
        for _ in range(3):
            t.annotation()
            t.check()
        assert t.phases() == 3

    def test_empty(self):
        assert PhaseTracker().phases() == 0

    def test_checks_only(self):
        t = PhaseTracker()
        t.check()
        assert t.phases() == 1


class TestStats:
    def test_all_counts_library_consultations(self):
        s = Stats()
        s.record_annotation(check=True, generated=False, app_level=True,
                            key=("App", "m"))
        s.record_consulted({("App", "m"), ("String", "+"),
                            ("Integer", "+")})
        assert s.chkd() == 1
        assert s.app_count() == 1
        assert s.all_count() == 3  # app + two library sigs

    def test_generated_not_in_all(self):
        s = Stats()
        s.record_annotation(check=False, generated=True, app_level=False,
                            key=("M", "gen"))
        s.record_consulted({("M", "gen")})
        assert s.all_count() == 0
        s.record_generated_use(("M", "gen"))
        assert s.used_generated_count() == 1

    def test_snapshot_keys(self):
        snap = Stats().snapshot()
        assert {"chkd", "app", "all", "generated", "used", "casts",
                "phases"} <= set(snap)


class TestHarness:
    @pytest.mark.requires_caches
    def test_engine_modes(self):
        assert engine_for("orig").config.intercept is False
        assert engine_for("nocache").config.caching is False
        assert engine_for("hum").config.caching is True
        with pytest.raises(ValueError):
            engine_for("bogus")

    def test_build_world_modes(self):
        world = build_world("cct", "orig", repeats=2)
        world.seed()
        assert world.workload()
        assert world.engine.stats.calls_intercepted == 0

    @pytest.mark.requires_caches
    def test_measure_app_row(self):
        row = measure_app("cct", runs=1, repeats=3)
        assert isinstance(row, Table1Row)
        assert row.loc > 50
        assert row.hum_s > 0 and row.orig_s > 0 and row.nocache_s > 0
        assert row.nocache_s > row.hum_s  # caching always wins
        assert row.ratio > 0

    def test_format_table1(self):
        row = measure_app("cct", runs=1, repeats=2)
        text = format_table1([row])
        assert "cct" in text and "Ratio" in text
