"""Shared test plumbing: the cache-disabled differential mode.

The ``REPRO_DISABLE_CACHES=1`` environment switch turns every engine into
a cache-free oracle (no call plans, no check memoization, no subtype or
linearization memos).  CI runs the whole tier-1 suite in that mode to
prove cached and uncached engines produce identical judgments.

Tests that assert *memoization-specific* observables — hit counters,
"checked exactly once", entry-present-in-cache — are meaningless for the
oracle and carry ``@pytest.mark.requires_caches``; every behavioral
assertion (which errors are raised, what calls return) runs in both
modes.
"""

import pytest

from repro.core import caches_disabled_by_env

CACHES_DISABLED = caches_disabled_by_env()


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "requires_caches: asserts memoization-specific counters/state; "
        "skipped when REPRO_DISABLE_CACHES=1 builds cache-free oracles")


def pytest_runtest_setup(item):
    if CACHES_DISABLED and item.get_closest_marker("requires_caches"):
        pytest.skip("memoization observables absent under "
                    "REPRO_DISABLE_CACHES=1")
