"""Shared test plumbing: the cache-disabled differential mode.

The ``REPRO_DISABLE_CACHES=1`` environment switch turns every engine into
a cache-free oracle (no call plans, no check memoization, no subtype or
linearization memos).  CI runs the whole tier-1 suite in that mode to
prove cached and uncached engines produce identical judgments.

Tests that assert *memoization-specific* observables — hit counters,
"checked exactly once", entry-present-in-cache — are meaningless for the
oracle and carry ``@pytest.mark.requires_caches``; every behavioral
assertion (which errors are raised, what calls return) runs in both
modes.

The analogous ``REPRO_DISABLE_THREADS=1`` switch skips tests carrying
``@pytest.mark.requires_threads`` — the multi-threaded soundness and
stress suites — for single-threaded debugging runs (e.g. bisecting a
failure that threads would only make noisier).  CI runs the threaded
suite in a dedicated job with ``faulthandler`` timeouts so a deadlock
dumps every thread's stack and fails fast instead of hanging the
runner.
"""

import multiprocessing
import os

import pytest

from repro.core import (
    caches_disabled_by_env, elide_disabled_by_env,
    specialize_disabled_by_env,
)

CACHES_DISABLED = caches_disabled_by_env()

THREADS_DISABLED = os.environ.get("REPRO_DISABLE_THREADS", "") not in (
    "", "0", "false", "no")

#: tier-2 specialization rides the call-plan machinery, so both the
#: explicit nospec switch and the cache-free oracle turn it off.
SPECIALIZE_DISABLED = specialize_disabled_by_env() or CACHES_DISABLED

#: tier-3 elision rides tier-2 promotion, so any switch that disables
#: specialization disables it too.
ELIDE_DISABLED = elide_disabled_by_env() or SPECIALIZE_DISABLED


def _fork_disabled() -> bool:
    """The pre-fork serving mode needs the ``fork`` start method
    (request thunks are deliberately unpicklable closures over live app
    objects); platforms without it — and debugging runs that export
    REPRO_DISABLE_FORK=1 — skip the multi-process suites."""
    if os.environ.get("REPRO_DISABLE_FORK", "") not in ("", "0", "false",
                                                        "no"):
        return True
    try:
        return "fork" not in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return True


FORK_DISABLED = _fork_disabled()


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "requires_caches: asserts memoization-specific counters/state; "
        "skipped when REPRO_DISABLE_CACHES=1 builds cache-free oracles")
    config.addinivalue_line(
        "markers",
        "requires_threads: spawns worker threads; skipped when "
        "REPRO_DISABLE_THREADS=1 forces a single-threaded run")
    config.addinivalue_line(
        "markers",
        "requires_specialization: asserts tier-2 promotion/deopt "
        "observables; skipped when REPRO_DISABLE_SPECIALIZE=1 (the "
        "tier1-nospec job) or REPRO_DISABLE_CACHES=1 pins sites to "
        "the generic path")
    config.addinivalue_line(
        "markers",
        "requires_elision: asserts tier-3 check-elimination observables; "
        "skipped when REPRO_DISABLE_ELIDE=1 (the tier1-noelide job) or "
        "any switch that already disables tier-2 specialization")
    config.addinivalue_line(
        "markers",
        "requires_fork: forks worker processes; skipped where the "
        "'fork' start method is unavailable or REPRO_DISABLE_FORK=1")


def pytest_runtest_setup(item):
    if CACHES_DISABLED and item.get_closest_marker("requires_caches"):
        pytest.skip("memoization observables absent under "
                    "REPRO_DISABLE_CACHES=1")
    if THREADS_DISABLED and item.get_closest_marker("requires_threads"):
        pytest.skip("threaded suites disabled under "
                    "REPRO_DISABLE_THREADS=1")
    if SPECIALIZE_DISABLED and item.get_closest_marker(
            "requires_specialization"):
        pytest.skip("tier-2 specialization observables absent under "
                    "REPRO_DISABLE_SPECIALIZE=1 / REPRO_DISABLE_CACHES=1")
    if ELIDE_DISABLED and item.get_closest_marker("requires_elision"):
        pytest.skip("tier-3 elision observables absent under "
                    "REPRO_DISABLE_ELIDE=1 (or with specialization off)")
    if FORK_DISABLED and item.get_closest_marker("requires_fork"):
        pytest.skip("'fork' start method unavailable (or "
                    "REPRO_DISABLE_FORK=1)")
