"""Regression tests for the sqldb write paths' concurrency discipline:
writes serialize under the per-table lock and publish fresh dicts by
reference (copy-on-write), so readers are lock-free and never observe a
torn row, a half-applied update, or a dict mutated mid-iteration."""

import threading

import pytest

from repro.sqldb import Database

WORKERS = 4
JOIN_S = 60.0


def _make_table(db=None):
    db = db or Database()
    db.create_table(
        "items",
        ("name", "string", False),
        ("qty", "integer", False))
    return db.table("items")


def _run(workers):
    threads = [threading.Thread(target=fn, daemon=True) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=JOIN_S)
    assert not any(t.is_alive() for t in threads), "sqldb test deadlock"


@pytest.mark.requires_threads
def test_concurrent_inserts_get_unique_ids_and_exact_count():
    table = _make_table()
    per_thread = 200
    ids = [[] for _ in range(WORKERS)]

    def inserter(idx):
        def run():
            for i in range(per_thread):
                row = table.insert(name=f"t{idx}-{i}", qty=i)
                ids[idx].append(row["id"])
        return run

    _run([inserter(i) for i in range(WORKERS)])

    flat = [i for sub in ids for i in sub]
    assert len(flat) == WORKERS * per_thread
    # The pre-fix race: two threads reading _next_id before either
    # stored it back, minting duplicate primary keys.
    assert len(set(flat)) == len(flat), "duplicate autoincrement ids"
    assert len(table) == WORKERS * per_thread
    assert sorted(flat) == sorted(r["id"] for r in table.all_rows())


@pytest.mark.requires_threads
def test_concurrent_insert_delete_balance():
    table = _make_table()
    cycles = 300

    def cycler(idx):
        def run():
            for i in range(cycles):
                row = table.insert(name=f"c{idx}", qty=i)
                assert table.delete(row["id"])
        return run

    _run([cycler(i) for i in range(WORKERS)])
    assert len(table) == 0
    assert table.all_rows() == []


@pytest.mark.requires_threads
def test_readers_never_tear_or_raise_during_writes():
    """Readers iterating while writers insert/update/delete must (a)
    never hit RuntimeError('dict changed size during iteration') and
    (b) only ever see complete rows: every row has the full column set
    and its multi-column invariant (name encodes qty) intact."""
    table = _make_table()
    for i in range(50):
        table.insert(name=f"q{i}", qty=i)
    stop = threading.Event()
    failures = []

    def writer():
        step = 0
        while not stop.is_set():
            row = table.insert(name=f"q{1000 + step}", qty=1000 + step)
            # Multi-column update: pre-fix, a reader could observe the
            # name column updated but qty still stale.
            table.update(row["id"], name=f"q{2000 + step}",
                         qty=2000 + step)
            table.delete(row["id"])
            step += 1

    def reader():
        try:
            for _ in range(400):
                for row in table.all_rows():
                    assert set(row) == {"id", "name", "qty"}
                    assert row["name"] == f"q{row['qty']}", (
                        f"torn row: {row}")
                table.count(qty=3)
                table.order_by("qty")
                table.where(name="q3")
        except Exception as exc:  # noqa: BLE001 - collected for report
            failures.append(exc)

    writers = [threading.Thread(target=writer, daemon=True)
               for _ in range(2)]
    readers = [threading.Thread(target=reader, daemon=True)
               for _ in range(WORKERS)]
    for t in writers + readers:
        t.start()
    for t in readers:
        t.join(timeout=JOIN_S)
    stop.set()
    for t in writers:
        t.join(timeout=JOIN_S)
    assert not failures, f"reader failures: {failures[:3]}"
    # The 50 seed rows are never touched by the writers.
    assert table.count() >= 50


@pytest.mark.requires_threads
def test_snapshot_isolation_of_row_sets():
    """all_rows() captures one published snapshot: mutations that land
    after the call do not retroactively change what it returned."""
    table = _make_table()
    first = table.insert(name="keep", qty=1)
    snapshot = table.all_rows()
    table.update(first["id"], name="changed", qty=2)
    table.insert(name="later", qty=3)
    assert len(snapshot) == 1
    assert snapshot[0]["name"] == "keep"
    assert snapshot[0]["qty"] == 1
    # And the live table moved on.
    assert table.find(first["id"])["name"] == "changed"
    assert len(table) == 2


def test_update_publishes_a_fresh_row_object():
    """COW at row granularity: update() swaps in a new row dict rather
    than mutating the published one, so a reader holding the old row
    keeps a consistent pre-update view."""
    table = _make_table()
    row = table.insert(name="v1", qty=1)
    held = table.find(row["id"])
    updated = table.update(row["id"], name="v2", qty=2)
    assert held["name"] == "v1" and held["qty"] == 1
    assert updated["name"] == "v2" and updated["qty"] == 2
    assert updated is not held
