"""Tests for the Fig. 2 (Rolify) and Fig. 3 (Struct) substrates."""

import pytest

from repro import Engine, StaticTypeError
from repro.rolify import build_rolify
from repro.rstruct import struct_new
from repro.rstruct.struct import StructError


class TestRolify:
    def build(self):
        engine = Engine()
        RolifyDynamic = build_rolify(engine)

        class User(RolifyDynamic):
            pass

        engine.register_class(User)
        return engine, User

    @pytest.mark.requires_caches
    def test_dynamic_method_created_and_checked(self):
        engine, User = self.build()
        u = User()
        u.add_role("professor")
        u.define_dynamic_method("professor")
        assert u.is_professor() is True
        # The generated body (user code!) was statically checked.
        assert ("User", "is_professor") in engine.cache
        sig = engine.types.lookup("User", "is_professor")
        assert sig.generated and sig.check

    def test_role_membership(self):
        engine, User = self.build()
        u = User()
        u.define_dynamic_method("student")
        assert u.is_student() is False
        u.add_role("student")
        assert u.is_student() is True
        u.remove_role("student")
        assert u.is_student() is False

    def test_of_variant_also_generated(self):
        """The paper: define_dynamic_method also creates is_<role>_of."""
        engine, User = self.build()
        u, other = User(), User()
        u.define_dynamic_method("advisor")
        u.add_role("advisor")
        assert u.is_advisor_of(other) is True
        assert engine.types.lookup("User", "is_advisor_of") is not None

    def test_redefinition_is_harmless(self):
        engine, User = self.build()
        u = User()
        u.define_dynamic_method("grader")
        u.define_dynamic_method("grader")  # adding same type is harmless
        assert u.is_grader() is False

    def test_roles_list_sorted(self):
        engine, User = self.build()
        u = User()
        u.add_role("b")
        u.add_role("a")
        assert u.roles_list() == ["a", "b"]


class TestStruct:
    def build(self):
        engine = Engine()
        Transaction = struct_new(engine, "Transaction",
                                 "kind", "account_name", "amount")
        return engine, Transaction

    def test_construction_and_accessors(self):
        engine, Transaction = self.build()
        t = Transaction("credit", "alice", 100)
        assert t.kind == "credit"
        assert t.account_name == "alice"
        t.amount = 250
        assert t.amount == 250

    def test_members(self):
        engine, Transaction = self.build()
        assert Transaction.members_of() == ["kind", "account_name",
                                            "amount"]

    def test_wrong_arity_rejected(self):
        engine, Transaction = self.build()
        with pytest.raises(StructError):
            Transaction("credit", "alice")

    def test_add_types_generates_signatures(self):
        engine, Transaction = self.build()
        Transaction.add_types("String", "String", "Integer")
        getter = engine.types.lookup("Transaction", "amount")
        setter = engine.types.lookup("Transaction", "amount=")
        assert str(getter.arms[0]) == "() -> Integer"
        assert str(setter.arms[0]) == "(Integer) -> Integer"
        assert getter.generated

    def test_add_types_arity_mismatch(self):
        engine, Transaction = self.build()
        with pytest.raises(StructError):
            Transaction.add_types("String")

    def test_typed_fields_enable_checking(self):
        """Fig. 3's point: add_types makes dependent app code checkable."""
        engine, Transaction = self.build()
        Transaction.add_types("String", "String", "Integer")
        hb = engine.api()

        class Runner:
            def __init__(self, txs):
                self.txs = txs

            @hb.typed("() -> Integer")
            def total(self):
                acc = 0
                for t in self.txs:
                    acc = acc + t.amount
                return acc

        hb.field_type(Runner, "txs", "Array<Transaction>")
        assert Runner([Transaction("c", "a", 5),
                       Transaction("d", "b", 7)]).total() == 12

    def test_without_add_types_checking_fails(self):
        engine, Transaction = self.build()
        hb = engine.api()

        class Runner:
            def __init__(self, txs):
                self.txs = txs

            @hb.typed("() -> Integer")
            def total(self):
                acc = 0
                for t in self.txs:
                    acc = acc + t.amount
                return acc

        hb.field_type(Runner, "txs", "Array<Transaction>")
        with pytest.raises(StaticTypeError, match="amount"):
            Runner([Transaction("c", "a", 5)]).total()

    def test_equality(self):
        engine, Transaction = self.build()
        assert Transaction("a", "b", 1) == Transaction("a", "b", 1)
        assert Transaction("a", "b", 1) != Transaction("a", "b", 2)


class TestReloader:
    @pytest.mark.requires_caches
    def test_reload_keeps_unchanged_cached(self):
        from repro.rails import AppVersion, RailsApp, Reloader
        from repro.rtypes import Sym

        app = RailsApp(view_cost=5)

        class C(app.Controller):
            pass

        reloader = Reloader(app)
        reloader.register_class(C)
        reloader.expose(Sym=Sym)
        v1 = (AppVersion("v1")
              .add("C", "stable", "() -> String",
                   "def stable(self):\n    return 'same'\n")
              .add("C", "volatile", "() -> String",
                   "def volatile(self):\n    return 'one'\n"))
        reloader.apply(v1)
        c = C({})
        assert c.stable() == "same"
        assert c.volatile() == "one"
        checks = app.engine.stats.static_checks

        v2 = (AppVersion("v2")
              .add("C", "stable", "() -> String",
                   "def stable(self):\n    return 'same'\n")
              .add("C", "volatile", "() -> String",
                   "def volatile(self):\n    return 'two'\n"))
        report = reloader.apply(v2)
        assert report.changed == {("C", "volatile")}
        assert c.stable() == "same"     # cached, no re-check
        assert c.volatile() == "two"    # redefined + re-checked
        assert app.engine.stats.static_checks == checks + 1

    @pytest.mark.requires_caches
    def test_removed_method_invalidates_dependents(self):
        from repro.rails import AppVersion, RailsApp, Reloader
        from repro.rtypes import Sym

        app = RailsApp(view_cost=5)

        class C(app.Controller):
            pass

        reloader = Reloader(app)
        reloader.register_class(C)
        reloader.expose(Sym=Sym)
        v1 = (AppVersion("v1")
              .add("C", "helper_m", "() -> String",
                   "def helper_m(self):\n    return 'h'\n")
              .add("C", "caller_m", "() -> String",
                   "def caller_m(self):\n    return self.helper_m()\n"))
        reloader.apply(v1)
        C({}).caller_m()
        assert ("C", "caller_m") in app.engine.cache

        v2 = (AppVersion("v2")
              .add("C", "caller_m", "() -> String",
                   "def caller_m(self):\n    return self.helper_m()\n"))
        report = reloader.apply(v2)
        assert report.removed == {("C", "helper_m")}
        assert ("C", "caller_m") not in app.engine.cache
