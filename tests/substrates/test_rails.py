"""Tests for the mini-Rails substrate: ORM metaprogramming + typegen,
controllers, routing, and the paper's Fig. 1 behaviour end to end."""

import pytest

from repro import ArgumentTypeError, Engine, StaticTypeError, Sym
from repro.rails import RailsApp, RoutingError
from repro.rails.inflect import (
    camelize, foreign_key, pluralize, singularize, tableize, underscore,
)


class TestInflections:
    @pytest.mark.parametrize("word,expected", [
        ("talk", "talks"), ("country", "countries"), ("box", "boxes"),
        ("class", "classes"), ("user", "users"), ("person", "people"),
    ])
    def test_pluralize(self, word, expected):
        assert pluralize(word) == expected

    @pytest.mark.parametrize("word,expected", [
        ("talks", "talk"), ("countries", "country"), ("boxes", "box"),
        ("users", "user"), ("people", "person"), ("owner", "owner"),
    ])
    def test_singularize(self, word, expected):
        assert singularize(word) == expected

    def test_camelize_underscore(self):
        assert camelize("file_share") == "FileShare"
        assert underscore("FileShare") == "file_share"

    def test_tableize(self):
        assert tableize("Talk") == "talks"
        assert tableize("UserFile") == "user_files"

    def test_foreign_key(self):
        assert foreign_key("owner") == "owner_id"

    def test_paper_fig1_derivation(self):
        # hmu = hm.singularize.camelize for the :owner association
        assert camelize(singularize("owner")) == "Owner"


def build_blog(engine=None):
    """A small Rails world: User has many Talks, Talk belongs to owner."""
    app = RailsApp(engine or Engine())
    app.db.create_table("users", ("name", "string"), ("email", "string"))
    app.db.create_table(
        "talks", ("title", "string"), ("owner_id", "integer"),
        ("room", "string"))

    @app.register_model
    class User(app.Model):
        pass

    @app.register_model
    class Talk(app.Model):
        pass

    Talk.belongs_to("owner", class_name="User")
    User.has_many("talks", fk="owner_id")
    return app, User, Talk


class TestModelMetaprogramming:
    def test_attribute_readers(self):
        app, User, Talk = build_blog()
        u = User.create(name="alice", email="a@x.org")
        assert u.name == "alice"
        assert u.id == 1

    def test_attribute_writer_and_save(self):
        app, User, Talk = build_blog()
        u = User.create(name="alice")
        u.name = "bob"
        u.save()
        assert User.find(u.id).name == "bob"

    def test_finders_are_dynamic(self):
        app, User, Talk = build_blog()
        User.create(name="alice")
        User.create(name="bob")
        assert User.find_by_name("bob").id == 2
        assert User.find_by_name("nobody") is None
        assert len(User.find_all_by_name("alice")) == 1

    def test_belongs_to_getter_queries(self):
        app, User, Talk = build_blog()
        u = User.create(name="alice")
        t = Talk.create(title="PLDI", owner_id=u.id)
        assert t.owner.name == "alice"

    def test_belongs_to_setter_sets_fk(self):
        app, User, Talk = build_blog()
        u = User.create(name="alice")
        t = Talk.create(title="PLDI")
        t.owner = u
        assert t.owner_id == u.id

    def test_has_many(self):
        app, User, Talk = build_blog()
        u = User.create(name="alice")
        Talk.create(title="One", owner_id=u.id)
        Talk.create(title="Two", owner_id=u.id)
        assert [t.title for t in u.talks] == ["One", "Two"]

    def test_where_update_destroy(self):
        app, User, Talk = build_blog()
        u = User.create(name="alice")
        assert User.where(name="alice") == [u]
        u.update(name="carol")
        assert User.find(u.id).name == "carol"
        u.destroy()
        assert User.count() == 0

    def test_types_were_generated(self):
        app, User, Talk = build_blog()
        stats = app.engine.stats
        # Schema getters/setters + finders + associations, for two models.
        assert stats.generated_count() > 20
        # The Fig. 1 signatures exist with the right types.
        sig = app.engine.types.lookup("Talk", "owner")
        assert sig is not None and sig.generated
        assert str(sig.arms[0]) == "() -> User"
        setter = app.engine.types.lookup("Talk", "owner=")
        assert str(setter.arms[0]) == "(User) -> User"


class TestCheckedAppMethodsOnModels:
    def test_paper_fig1_owner_check(self):
        """The owner? method of Fig. 1: checkable only thanks to the
        dynamically generated association getter type."""
        app, User, Talk = build_blog()
        hb = app.hb
        hb.annotate(Talk, "owner_p", "(User) -> %bool", check=True)

        def owner_p(self, user):
            return self.owner == user

        app.engine.define_method(Talk, "owner_p", owner_p)
        u = User.create(name="alice")
        t = Talk.create(title="x", owner_id=u.id)
        assert t.owner_p(u) is True
        assert app.engine.stats.static_checks >= 1
        used = app.engine.stats.used_generated
        assert ("Talk", "owner") in used

    def test_check_fails_without_generated_types(self):
        """Without the belongs_to typegen, owner? cannot type check —
        dynamically generated types are essential (paper, section 5)."""
        app = RailsApp(Engine())
        app.db.create_table("users", ("name", "string"))
        app.db.create_table("talks", ("title", "string"),
                            ("owner_id", "integer"))

        @app.register_model
        class User(app.Model):
            pass

        @app.register_model
        class Talk(app.Model):
            pass

        # NOTE: no belongs_to call — the association type never generated.
        hb = app.hb
        hb.annotate(Talk, "owner_p", "(User) -> %bool", check=True)

        def owner_p(self, user):
            return self.owner == user

        app.engine.define_method(Talk, "owner_p", owner_p)
        u = User.create(name="alice")
        t = Talk.create(title="x", owner_id=u.id)
        with pytest.raises(StaticTypeError, match="owner"):
            t.owner_p(u)


class TestControllersAndRouting:
    def build(self):
        app, User, Talk = build_blog()
        hb = app.hb

        class TalksController(app.Controller):
            @hb.typed("() -> String")
            def index(self):
                talks = Talk.all()
                titles = [t.title for t in talks]
                return self.render("talks/index", {Sym("titles"): titles})

            @hb.typed("() -> String")
            def show(self):
                talk = Talk.find(int(self.param(Sym("id"))))
                return self.render("talks/show",
                                   {Sym("title"): talk.title})

        app.get("/talks", TalksController, "index")
        app.get("/talks/:id", TalksController, "show")
        return app, User, Talk, TalksController

    def test_dispatch_index(self):
        app, User, Talk, _ = self.build()
        Talk.create(title="JIT checking")
        body = app.request("GET", "/talks")
        assert "JIT checking" in body
        assert app.engine.stats.static_checks >= 1

    def test_dispatch_with_captured_param(self):
        app, User, Talk, _ = self.build()
        t = Talk.create(title="Types")
        body = app.request("GET", f"/talks/{t.id}")
        assert "Types" in body

    def test_unknown_route(self):
        app, *_ = self.build()
        with pytest.raises(RoutingError):
            app.request("GET", "/nope")

    def test_params_always_dynamically_checked(self):
        """Rails params come from the browser: always checked (section 4)."""
        app, User, Talk, _ = self.build()
        Talk.create(title="x")
        with pytest.raises(ArgumentTypeError):
            app.request("GET", "/talks", params={"evil": object()})

    @pytest.mark.requires_caches
    def test_second_request_hits_cache(self):
        app, User, Talk, _ = self.build()
        Talk.create(title="x")
        app.request("GET", "/talks")
        before = app.engine.stats.static_checks
        app.request("GET", "/talks")
        assert app.engine.stats.static_checks == before
