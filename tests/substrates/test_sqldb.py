"""Tests for the in-memory relational database substrate."""

import pytest

from repro.sqldb import Column, Database, Schema, Table, column_rdl_type
from repro.sqldb.schema import SchemaError


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "talks", ("title", "string"), ("owner_id", "integer"),
        ("public", "boolean"), ("rating", "float"))
    return database


class TestSchema:
    def test_column_rdl_types(self):
        assert column_rdl_type("integer") == "Integer or nil"
        assert column_rdl_type("integer", null=False) == "Integer"
        assert column_rdl_type("string") == "String or nil"
        assert column_rdl_type("boolean") == "%bool or nil"
        assert column_rdl_type("datetime") == "Time or nil"

    def test_unknown_column_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", "jsonb")

    def test_column_accepts(self):
        assert Column("n", "integer").accepts(3)
        assert not Column("n", "integer").accepts("3")
        assert not Column("n", "integer").accepts(True)  # bool is not int
        assert Column("b", "boolean").accepts(True)
        assert Column("n", "integer").accepts(None)
        assert not Column("n", "integer", null=False).accepts(None)

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            Schema("t", [Column("a", "string"), Column("a", "integer")])

    def test_explicit_id_rejected(self):
        with pytest.raises(SchemaError):
            Schema("t", [Column("id", "integer")])


class TestTable:
    def test_insert_assigns_ids(self, db):
        t = db.table("talks")
        first = t.insert(title="A")
        second = t.insert(title="B")
        assert first["id"] == 1 and second["id"] == 2

    def test_missing_columns_default_nil(self, db):
        row = db.table("talks").insert(title="A")
        assert row["owner_id"] is None

    def test_insert_validates_types(self, db):
        with pytest.raises(SchemaError):
            db.table("talks").insert(title=42)

    def test_insert_unknown_column_rejected(self, db):
        with pytest.raises(SchemaError):
            db.table("talks").insert(speaker="X")

    def test_find(self, db):
        t = db.table("talks")
        row = t.insert(title="A")
        assert t.find(row["id"])["title"] == "A"
        assert t.find(999) is None
        assert t.find("1") is None

    def test_where(self, db):
        t = db.table("talks")
        t.insert(title="A", owner_id=1)
        t.insert(title="B", owner_id=1)
        t.insert(title="C", owner_id=2)
        assert len(t.where(owner_id=1)) == 2
        assert t.first_where(owner_id=2)["title"] == "C"
        assert t.first_where(owner_id=9) is None

    def test_where_unknown_column_rejected(self, db):
        with pytest.raises(SchemaError):
            db.table("talks").where(nope=1)

    def test_update(self, db):
        t = db.table("talks")
        row = t.insert(title="A")
        updated = t.update(row["id"], title="B")
        assert updated["title"] == "B"
        assert t.find(row["id"])["title"] == "B"
        assert t.update(999, title="X") is None

    def test_delete(self, db):
        t = db.table("talks")
        row = t.insert(title="A")
        assert t.delete(row["id"])
        assert not t.delete(row["id"])
        assert len(t) == 0

    def test_rows_are_copies(self, db):
        t = db.table("talks")
        row = t.insert(title="A")
        row["title"] = "mutated"
        assert t.find(row["id"])["title"] == "A"

    def test_order_by(self, db):
        t = db.table("talks")
        t.insert(title="B")
        t.insert(title="A")
        t.insert(title="C")
        titles = [r["title"] for r in t.order_by("title")]
        assert titles == ["A", "B", "C"]

    def test_count(self, db):
        t = db.table("talks")
        t.insert(title="A", owner_id=1)
        t.insert(title="B", owner_id=2)
        assert t.count() == 2
        assert t.count(owner_id=1) == 1


class TestDatabase:
    def test_duplicate_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table("talks", ("title", "string"))

    def test_missing_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.table("users")

    def test_reset_truncates_and_restarts_ids(self, db):
        t = db.table("talks")
        t.insert(title="A")
        db.reset()
        assert len(t) == 0
        assert t.insert(title="B")["id"] == 1

    def test_table_names(self, db):
        db.create_table("users", ("name", "string"))
        assert db.table_names() == ["talks", "users"]
