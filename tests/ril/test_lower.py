"""Lowering tests: Python ast -> simplified IR."""

import ast

import pytest

from repro.ril import LoweringError, lower_body, lower_expr
from repro.ril import ir


def expr(src: str):
    return lower_expr(ast.parse(src, mode="eval").body)


def body(src: str):
    return lower_body(ast.parse(src).body)


class TestLiterals:
    def test_none(self):
        assert isinstance(expr("None"), ir.NilLit)

    def test_bool(self):
        node = expr("True")
        assert isinstance(node, ir.BoolLit) and node.value is True

    def test_numbers(self):
        assert expr("5") == ir.IntLit(5, expr("5").pos)
        assert isinstance(expr("2.5"), ir.FloatLit)
        neg = expr("-3")
        assert isinstance(neg, ir.IntLit) and neg.value == -3

    def test_string(self):
        node = expr("'abc'")
        assert isinstance(node, ir.StrLit) and node.value == "abc"

    def test_symbol(self):
        node = expr("Sym('owner')")
        assert isinstance(node, ir.SymLit) and node.name == "owner"

    def test_array(self):
        node = expr("[1, 2]")
        assert isinstance(node, ir.ArrayLit) and len(node.elems) == 2

    def test_tuple_becomes_array(self):
        assert isinstance(expr("(1, 2)"), ir.ArrayLit)

    def test_hash(self):
        node = expr("{Sym('a'): 1}")
        assert isinstance(node, ir.HashLit)
        key, value = node.pairs[0]
        assert isinstance(key, ir.SymLit) and isinstance(value, ir.IntLit)

    def test_range(self):
        node = expr("range(1, 5)")
        assert isinstance(node, ir.RangeLit)
        one_arg = expr("range(5)")
        assert isinstance(one_arg, ir.RangeLit)
        assert isinstance(one_arg.lo, ir.IntLit) and one_arg.lo.value == 0

    def test_fstring(self):
        node = expr("f'{x}: {y}'")
        assert isinstance(node, ir.StrFormat)
        assert any(isinstance(p, ir.VarRead) for p in node.parts)


class TestNames:
    def test_self(self):
        assert isinstance(expr("self"), ir.SelfRef)

    def test_local(self):
        assert expr("user") == ir.VarRead("user", expr("user").pos)

    def test_const(self):
        assert isinstance(expr("User"), ir.ConstRead)

    def test_ivar_read(self):
        node = expr("self.transactions")
        assert isinstance(node, ir.IVarRead)
        assert node.name == "transactions"

    def test_other_attr_becomes_call(self):
        node = expr("user.name")
        assert isinstance(node, ir.Call) and node.name == "name"
        assert node.args == ()


class TestOperators:
    def test_binop_is_method_call(self):
        node = expr("a + b")
        assert isinstance(node, ir.Call) and node.name == "+"

    def test_compare(self):
        node = expr("a == b")
        assert isinstance(node, ir.Call) and node.name == "=="

    def test_chained_compare(self):
        node = expr("a < b < c")
        assert isinstance(node, ir.BoolOp) and node.op == "and"
        assert len(node.parts) == 2

    def test_is_none(self):
        assert isinstance(expr("x is None"), ir.IsNil)
        node = expr("x is not None")
        assert isinstance(node, ir.Not) and isinstance(node.value, ir.IsNil)

    def test_isinstance(self):
        node = expr("isinstance(x, User)")
        assert isinstance(node, ir.IsA) and node.class_name == "User"

    def test_in_becomes_include(self):
        node = expr("x in xs")
        assert isinstance(node, ir.Call) and node.name == "include?"
        assert isinstance(node.recv, ir.VarRead) and node.recv.name == "xs"

    def test_not(self):
        assert isinstance(expr("not x"), ir.Not)

    def test_boolop(self):
        node = expr("a and b or c")
        assert isinstance(node, ir.BoolOp) and node.op == "or"

    def test_subscript(self):
        node = expr("a[0]")
        assert isinstance(node, ir.Call) and node.name == "[]"

    def test_unary_minus_on_var(self):
        node = expr("-x")
        assert isinstance(node, ir.Call) and node.name == "-@"


class TestCalls:
    def test_method_call(self):
        node = expr("user.save(1)")
        assert isinstance(node, ir.Call)
        assert node.name == "save" and len(node.args) == 1

    def test_self_method_call(self):
        node = expr("self.render(x)")
        assert isinstance(node.recv, ir.SelfRef)

    def test_bare_call(self):
        node = expr("helper(1)")
        assert isinstance(node, ir.Call) and node.recv is None

    def test_constructor(self):
        node = expr("User('bob')")
        assert isinstance(node, ir.Call) and node.name == "new"
        assert isinstance(node.recv, ir.ConstRead)

    def test_class_method(self):
        node = expr("User.find(3)")
        assert isinstance(node.recv, ir.ConstRead) and node.name == "find"

    def test_len_becomes_length(self):
        node = expr("len(xs)")
        assert node.name == "length"
        assert isinstance(node.recv, ir.VarRead)

    def test_str_becomes_to_s(self):
        assert expr("str(x)").name == "to_s"

    def test_print_becomes_puts(self):
        node = expr("print('hello')")
        assert node.name == "puts" and node.recv is None

    def test_trailing_lambda_is_block(self):
        node = expr("xs.sort(lambda a, b: a - b)")
        assert node.name == "sort"
        assert node.args == ()
        assert isinstance(node.block, ir.BlockFn)
        assert node.block.params == ("a", "b")

    def test_kwargs_become_options_hash(self):
        node = expr("belongs_to(Sym('owner'), class_name='User')")
        assert len(node.args) == 2
        options = node.args[1]
        assert isinstance(options, ir.HashLit)
        key, value = options.pairs[0]
        assert isinstance(key, ir.SymLit) and key.name == "class_name"

    def test_cast_forms(self):
        for src in ("cast(x, 'Array<Integer>')",
                    "hb.cast(x, 'Array<Integer>')",
                    "rdl_cast(x, 'Array<Integer>')"):
            node = expr(src)
            assert isinstance(node, ir.Cast)
            assert node.type_text == "Array<Integer>"

    def test_comprehension_becomes_map(self):
        node = expr("[f(x) for x in xs]")
        assert node.name == "map"
        assert isinstance(node.block, ir.BlockFn)

    def test_filtered_comprehension_becomes_select_map(self):
        node = expr("[x for x in xs if x > 0]")
        assert node.name == "map"
        assert node.recv.name == "select"

    def test_starred_rejected(self):
        with pytest.raises(LoweringError):
            expr("f(*args)")


class TestStatements:
    def test_assign(self):
        node = body("x = 1")
        assert isinstance(node, ir.VarWrite)

    def test_ivar_assign(self):
        node = body("self.total = 0")
        assert isinstance(node, ir.IVarWrite)

    def test_attr_assign_becomes_setter(self):
        node = body("talk.owner = user")
        assert isinstance(node, ir.Call) and node.name == "owner="

    def test_subscript_assign(self):
        node = body("h[k] = v")
        assert isinstance(node, ir.Call) and node.name == "[]="

    def test_augassign(self):
        node = body("x += 1")
        assert isinstance(node, ir.VarWrite)
        assert isinstance(node.value, ir.Call) and node.value.name == "+"

    def test_annassign_is_cast(self):
        node = body("xs: 'Array<Integer>' = []")
        assert isinstance(node, ir.VarWrite)
        assert isinstance(node.value, ir.Cast)

    def test_destructuring(self):
        node = body("a, b = pair")
        assert isinstance(node, ir.Seq)
        assert isinstance(node.stmts[0], ir.VarWrite)

    def test_if(self):
        node = body("if x:\n    y = 1\nelse:\n    y = 2")
        assert isinstance(node, ir.If)

    def test_while(self):
        assert isinstance(body("while x:\n    f()"), ir.While)

    def test_for(self):
        node = body("for t in talks:\n    f(t)")
        assert isinstance(node, ir.ForEach) and node.var == "t"

    def test_for_unpack(self):
        node = body("for k, v in pairs:\n    f(k, v)")
        assert isinstance(node, ir.ForEach)
        assert isinstance(node.body, ir.Seq)

    def test_return(self):
        node = body("return 5")
        assert isinstance(node, ir.Return)
        bare = body("return")
        assert isinstance(bare, ir.Return) and bare.value is None

    def test_raise(self):
        node = body("raise ValueError('bad')")
        assert isinstance(node, ir.Raise)

    def test_try(self):
        node = body(
            "try:\n    f()\nexcept ValueError as e:\n    g(e)\n"
            "finally:\n    h()")
        assert isinstance(node, ir.Try)
        assert node.handlers[0].class_name == "ValueError"
        assert node.final is not None

    def test_docstring_dropped(self):
        node = body('"""doc"""\nx = 1')
        assert isinstance(node, ir.VarWrite)

    def test_pass(self):
        assert isinstance(body("pass"), ir.NilLit)

    def test_break_continue(self):
        node = body("for x in xs:\n    break")
        assert isinstance(node.body, ir.Break)
        node = body("for x in xs:\n    continue")
        assert isinstance(node.body, ir.Next)

    def test_unsupported_statement(self):
        with pytest.raises(LoweringError):
            body("with open('f') as f:\n    pass")

    def test_seq_positions(self):
        node = body("x = 1\ny = 2")
        assert isinstance(node, ir.Seq)
        assert node.stmts[0].pos.line == 1
        assert node.stmts[1].pos.line == 2


class TestWalk:
    def test_walk_visits_nested(self):
        node = body("if a:\n    x = f(1)\nelse:\n    y = 2")
        kinds = {type(n).__name__ for n in ir.walk(node)}
        assert {"If", "VarWrite", "Call", "IntLit"} <= kinds

    def test_walk_visits_hash_pairs(self):
        node = expr("{Sym('a'): f(1)}")
        kinds = {type(n).__name__ for n in ir.walk(node)}
        assert "SymLit" in kinds and "Call" in kinds
