"""Tier-3 forward dataflow: what is provable, what must stay unproven.

The analysis (:mod:`repro.ril.analysis`) drives static check elimination,
so its failure mode is asymmetric: a missed proof costs a few
nanoseconds per call, a wrong proof silently skips a safety check.
These tests pin the conservative side of every judgment:

* frame elision only for bodies that provably never re-enter
  intercepted code (builtin-whitelist receivers with safe arguments);
  any call on an application class, an unknown class, or a builtin
  receiver with an app-class argument (reflected dunders!) forfeits it;
* return classes only from literals and *trusted-or-checked* callee
  signatures whose arms agree on an exact-quotient class;
* every consulted mutable fact — signature slots (with negative
  probes), linearizations, field types, callee IR — appears in
  ``report.resources`` so the elide glue can register dependency edges.
"""

import pytest

from repro import Engine, EngineConfig
from repro.ril.analysis import (
    analyze_method, class_conforms, is_vacuous, rdl_class_name,
)
from repro.rtypes.parser import parse_type


@pytest.fixture()
def engine():
    return Engine(EngineConfig())


def _define(engine, cls, name, body, sig, check=True):
    namespace = {}
    exec(body, namespace)  # noqa: S102 - fixed test templates
    engine.define_method(cls, name, namespace[name], sig=sig, check=check,
                         source=body)


def _analyze(engine, cls_name, name, seeds=None):
    mir = engine.cfgs.lookup(cls_name, name)
    assert mir is not None, f"no IR registered for {cls_name}#{name}"
    return analyze_method(engine, mir, cls_name, seeds)


def _world(engine, methods):
    cls = type("Ana", (object,), {})
    for name, body, sig, check in methods:
        _define(engine, cls, name, body, sig, check)
    return cls


# -- frame elision ------------------------------------------------------------


def test_builtin_only_body_is_frame_elidable_under_seed(engine):
    _world(engine, [("leaf", "def leaf(self, n):\n    return n + 1\n",
                     "(Integer) -> Integer", True)])
    # Seed-free the argument's class is unknown: no proof.
    assert _analyze(engine, "Ana", "leaf").frame_elidable is False
    # Seeded with the dominant profile the operator is builtin-on-builtin.
    assert _analyze(engine, "Ana", "leaf",
                    ("Integer",)).frame_elidable is True


def test_literal_only_body_is_frame_elidable_seed_free(engine):
    _world(engine, [("lit", "def lit(self, n):\n    return 'x'\n",
                     "(Integer) -> String", True)])
    assert _analyze(engine, "Ana", "lit").frame_elidable is True


def test_call_into_app_method_forfeits_frame_elision(engine):
    """An intercepted callee reads the checked-frame flag, so the frame
    push/pop around a body that reaches one can never be dropped."""
    _world(engine, [
        ("leaf", "def leaf(self, n):\n    return n + 1\n",
         "(Integer) -> Integer", True),
        ("caller", "def caller(self, n):\n    return self.leaf(n)\n",
         "(Integer) -> Integer", True),
    ])
    report = _analyze(engine, "Ana", "caller", ("Integer",))
    assert report.frame_elidable is False


def test_builtin_receiver_with_app_argument_forfeits_frame(engine):
    """``1 + app_obj`` can dispatch to the argument's reflected dunder —
    opaque host code — so a safe receiver is not enough: every argument
    class must be on the whitelist too."""
    _world(engine, [("mix", "def mix(self, a, b):\n    return a + b\n",
                     "(Integer, Ana) -> Integer", True)])
    assert _analyze(engine, "Ana", "mix",
                    ("Integer", "Ana")).frame_elidable is False
    assert _analyze(engine, "Ana", "mix",
                    ("Integer", "Integer")).frame_elidable is True


def test_unknown_callee_forfeits_frame_elision(engine):
    _world(engine, [("mystery", "def mystery(self, n):\n"
                     "    return self.undefined_helper(n)\n",
                     "(Integer) -> Integer", True)])
    assert _analyze(engine, "Ana", "mystery",
                    ("Integer",)).frame_elidable is False


def test_truthiness_of_unsafe_class_taints_frame(engine):
    """``if x:`` invokes the value's truthiness protocol; only
    whitelisted classes are trusted not to re-enter intercepted code."""
    _world(engine, [
        ("cond", "def cond(self, n):\n    if n:\n        return 1\n"
         "    return 2\n", "(Integer) -> Integer", True),
        ("condself", "def condself(self, n):\n    if self:\n"
         "        return 1\n    return 2\n", "(Integer) -> Integer", True),
    ])
    assert _analyze(engine, "Ana", "cond", ("Integer",)).frame_elidable
    assert _analyze(engine, "Ana", "condself",
                    ("Integer",)).frame_elidable is False


# -- return classes -----------------------------------------------------------


def test_literal_returns_are_exact(engine):
    _world(engine, [("branchy", "def branchy(self, n):\n"
                     "    if n > 0:\n        return 'a'\n    return 1\n",
                     "(Integer) -> Object", True)])
    report = _analyze(engine, "Ana", "branchy", ("Integer",))
    assert report.ret_classes == frozenset({"String", "Integer"})


def test_fallthrough_adds_nilclass(engine):
    _world(engine, [("maybe", "def maybe(self, n):\n"
                     "    if n > 0:\n        return 'a'\n",
                     "(Integer) -> Object", True)])
    report = _analyze(engine, "Ana", "maybe", ("Integer",))
    assert report.ret_classes == frozenset({"String", "NilClass"})


def test_checked_callee_signature_types_the_result(engine):
    """The result class of a call into a *checked* app method comes from
    its signature arms — and the consulted body is pinned by an
    ``("ir", owner, name)`` edge plus a fingerprinted callee record."""
    _world(engine, [
        ("leaf", "def leaf(self, n):\n    return n + 1\n",
         "(Integer) -> Integer", True),
        ("caller", "def caller(self, n):\n    return self.leaf(n)\n",
         "(Integer) -> Integer", True),
    ])
    report = _analyze(engine, "Ana", "caller", ("Integer",))
    assert report.ret_classes == frozenset({"Integer"})
    assert ("ir", "Ana", "leaf") in report.resources
    assert ("sig", "Ana", "leaf", "instance") in report.resources
    assert any(owner == "Ana" and name == "leaf"
               for owner, name, _ in report.callees)


def test_untrusted_interceptable_callee_yields_unknown_result(engine):
    """A *trusted* (unchecked) signature on an interceptable method is a
    claim nobody verified — its declared return type must not become a
    static fact."""
    _world(engine, [
        ("liar", "def liar(self, n):\n    return n\n",
         "(Integer) -> String", False),
        ("caller", "def caller(self, n):\n    return self.liar(n)\n",
         "(Integer) -> Object", True),
    ])
    report = _analyze(engine, "Ana", "caller", ("Integer",))
    assert report.ret_classes is None


def test_app_nominal_returns_are_not_exact(engine):
    """Application class names are not exact under the quotient (a
    subclass instance carries a different name), so a callee declared to
    return an app nominal contributes no exact class."""
    _world(engine, [
        ("make", "def make(self, n):\n    return self\n",
         "(Integer) -> Ana", True),
        ("caller", "def caller(self, n):\n    return self.make(n)\n",
         "(Integer) -> Ana", True),
    ])
    report = _analyze(engine, "Ana", "caller", ("Integer",))
    assert report.ret_classes is None


# -- resources (dependency edges) ---------------------------------------------


def test_operator_calls_record_signature_and_lin_edges(engine):
    _world(engine, [("leaf", "def leaf(self, n):\n    return n + 1\n",
                     "(Integer) -> Integer", True)])
    report = _analyze(engine, "Ana", "leaf", ("Integer",))
    assert ("sig", "Integer", "+", "instance") in report.resources
    assert ("lin", "Integer") in report.resources


def test_field_reads_record_field_edges(engine):
    cls = type("AnaField", (object,), {})
    engine.register_class(cls)
    engine.field_type(cls, "value", "Integer")
    _define(engine, cls, "read",
            "def read(self, n):\n    return self.value + n\n",
            "(Integer) -> Integer")
    mir = engine.cfgs.lookup("AnaField", "read")
    report = analyze_method(engine, mir, "AnaField", ("Integer",))
    assert ("field", "AnaField", "value") in report.resources
    assert report.frame_elidable is True  # Integer field + Integer arg


# -- the class-name quotient --------------------------------------------------


def test_rdl_class_name_builtin_cascade():
    assert rdl_class_name(bool) == "Boolean"  # before Integer: bool < int
    assert rdl_class_name(int) == "Integer"
    assert rdl_class_name(float) == "Float"
    assert rdl_class_name(str) == "String"
    assert rdl_class_name(type(None)) == "NilClass"
    assert rdl_class_name(list) == "Array"
    assert rdl_class_name(dict) == "Hash"


def test_rdl_class_name_callable_is_proc():
    class WithCall:
        def __call__(self):  # pragma: no cover - never invoked
            pass

    assert rdl_class_name(WithCall) == "Proc"


def test_rdl_class_name_plain_class_uses_its_name():
    class Plain:
        pass

    assert rdl_class_name(Plain) == "Plain"


# -- vacuity and conformance --------------------------------------------------


def test_is_vacuous_matrix():
    assert is_vacuous(parse_type("%any"))
    assert is_vacuous(parse_type("u"))       # type variable
    assert is_vacuous(parse_type("self"))    # self type
    assert not is_vacuous(parse_type("Integer"))
    assert not is_vacuous(parse_type("Integer or String"))
    assert is_vacuous(parse_type("%any or Integer"))  # union: any arm


def test_class_conforms_matrix(engine):
    hier = engine.hier
    assert class_conforms("Integer", parse_type("Integer"), hier)
    assert class_conforms("Integer", parse_type("Numeric"), hier)
    assert not class_conforms("String", parse_type("Integer"), hier)
    assert class_conforms("String", parse_type("Integer or String"), hier)
    assert class_conforms("Integer", parse_type("%any"), hier)
    # nil follows the permissive-nil rule unless strict
    assert class_conforms("NilClass", parse_type("Integer"), hier)
    assert not class_conforms("NilClass", parse_type("Integer"), hier,
                              strict_nil=True)
    # generics with vacuous element types reduce to the base nominal
    assert class_conforms("Array", parse_type("Array<%any>"), hier)
