"""Tier-3 forward dataflow: what is provable, what must stay unproven.

The analysis (:mod:`repro.ril.analysis`) drives static check elimination,
so its failure mode is asymmetric: a missed proof costs a few
nanoseconds per call, a wrong proof silently skips a safety check.
These tests pin the conservative side of every judgment:

* frame elision only for bodies that provably never re-enter
  intercepted code (builtin-whitelist receivers with safe arguments);
  any call on an application class, an unknown class, or a builtin
  receiver with an app-class argument (reflected dunders!) forfeits it;
* return classes only from literals and *trusted-or-checked* callee
  signatures whose arms agree on an exact-quotient class;
* every consulted mutable fact — signature slots (with negative
  probes), linearizations, field types, callee IR — appears in
  ``report.resources`` so the elide glue can register dependency edges.
"""

import pytest

from repro import Engine, EngineConfig
from repro.ril.analysis import (
    analyze_method, class_conforms, is_vacuous, rdl_class_name,
)
from repro.rtypes.parser import parse_type


@pytest.fixture()
def engine():
    return Engine(EngineConfig())


def _define(engine, cls, name, body, sig, check=True):
    namespace = {}
    exec(body, namespace)  # noqa: S102 - fixed test templates
    engine.define_method(cls, name, namespace[name], sig=sig, check=check,
                         source=body)


def _analyze(engine, cls_name, name, seeds=None):
    mir = engine.cfgs.lookup(cls_name, name)
    assert mir is not None, f"no IR registered for {cls_name}#{name}"
    return analyze_method(engine, mir, cls_name, seeds)


def _world(engine, methods):
    cls = type("Ana", (object,), {})
    for name, body, sig, check in methods:
        _define(engine, cls, name, body, sig, check)
    return cls


# -- frame elision ------------------------------------------------------------


def test_builtin_only_body_is_frame_elidable_under_seed(engine):
    _world(engine, [("leaf", "def leaf(self, n):\n    return n + 1\n",
                     "(Integer) -> Integer", True)])
    # Seed-free the argument's class is unknown: no proof.
    assert _analyze(engine, "Ana", "leaf").frame_elidable is False
    # Seeded with the dominant profile the operator is builtin-on-builtin.
    assert _analyze(engine, "Ana", "leaf",
                    ("Integer",)).frame_elidable is True


def test_literal_only_body_is_frame_elidable_seed_free(engine):
    _world(engine, [("lit", "def lit(self, n):\n    return 'x'\n",
                     "(Integer) -> String", True)])
    assert _analyze(engine, "Ana", "lit").frame_elidable is True


def test_call_into_app_method_forfeits_frame_elision(engine):
    """An intercepted callee reads the checked-frame flag, so the frame
    push/pop around a body that reaches one can never be dropped."""
    _world(engine, [
        ("leaf", "def leaf(self, n):\n    return n + 1\n",
         "(Integer) -> Integer", True),
        ("caller", "def caller(self, n):\n    return self.leaf(n)\n",
         "(Integer) -> Integer", True),
    ])
    report = _analyze(engine, "Ana", "caller", ("Integer",))
    assert report.frame_elidable is False


def test_builtin_receiver_with_app_argument_forfeits_frame(engine):
    """``1 + app_obj`` can dispatch to the argument's reflected dunder —
    opaque host code — so a safe receiver is not enough: every argument
    class must be on the whitelist too."""
    _world(engine, [("mix", "def mix(self, a, b):\n    return a + b\n",
                     "(Integer, Ana) -> Integer", True)])
    assert _analyze(engine, "Ana", "mix",
                    ("Integer", "Ana")).frame_elidable is False
    assert _analyze(engine, "Ana", "mix",
                    ("Integer", "Integer")).frame_elidable is True


def test_unknown_callee_forfeits_frame_elision(engine):
    _world(engine, [("mystery", "def mystery(self, n):\n"
                     "    return self.undefined_helper(n)\n",
                     "(Integer) -> Integer", True)])
    assert _analyze(engine, "Ana", "mystery",
                    ("Integer",)).frame_elidable is False


def test_truthiness_of_unsafe_class_taints_frame(engine):
    """``if x:`` invokes the value's truthiness protocol; only
    whitelisted classes are trusted not to re-enter intercepted code."""
    _world(engine, [
        ("cond", "def cond(self, n):\n    if n:\n        return 1\n"
         "    return 2\n", "(Integer) -> Integer", True),
        ("condself", "def condself(self, n):\n    if self:\n"
         "        return 1\n    return 2\n", "(Integer) -> Integer", True),
    ])
    assert _analyze(engine, "Ana", "cond", ("Integer",)).frame_elidable
    assert _analyze(engine, "Ana", "condself",
                    ("Integer",)).frame_elidable is False


# -- return classes -----------------------------------------------------------


def test_literal_returns_are_exact(engine):
    _world(engine, [("branchy", "def branchy(self, n):\n"
                     "    if n > 0:\n        return 'a'\n    return 1\n",
                     "(Integer) -> Object", True)])
    report = _analyze(engine, "Ana", "branchy", ("Integer",))
    assert report.ret_classes == frozenset({"String", "Integer"})


def test_fallthrough_adds_nilclass(engine):
    _world(engine, [("maybe", "def maybe(self, n):\n"
                     "    if n > 0:\n        return 'a'\n",
                     "(Integer) -> Object", True)])
    report = _analyze(engine, "Ana", "maybe", ("Integer",))
    assert report.ret_classes == frozenset({"String", "NilClass"})


def test_checked_callee_signature_types_the_result(engine):
    """The result class of a call into a *checked* app method comes from
    its signature arms — and the consulted body is pinned by an
    ``("ir", owner, name)`` edge plus a fingerprinted callee record."""
    _world(engine, [
        ("leaf", "def leaf(self, n):\n    return n + 1\n",
         "(Integer) -> Integer", True),
        ("caller", "def caller(self, n):\n    return self.leaf(n)\n",
         "(Integer) -> Integer", True),
    ])
    report = _analyze(engine, "Ana", "caller", ("Integer",))
    assert report.ret_classes == frozenset({"Integer"})
    assert ("ir", "Ana", "leaf") in report.resources
    assert ("sig", "Ana", "leaf", "instance") in report.resources
    assert any(owner == "Ana" and name == "leaf"
               for owner, name, _ in report.callees)


def test_untrusted_callee_sig_is_ignored_but_its_body_is_analyzed(engine):
    """A *trusted* (unchecked) signature on an interceptable method is a
    claim nobody verified — its declared return type must not become a
    static fact.  The callee's *body*, however, is fair game: the
    inter-procedural pass recurses into it (pinned by an ``("ir", ...)``
    edge so redefinition deopts) and proves what the body actually
    returns — here Integer, never the lying declared String."""
    _world(engine, [
        ("liar", "def liar(self, n):\n    return n\n",
         "(Integer) -> String", False),
        ("caller", "def caller(self, n):\n    return self.liar(n)\n",
         "(Integer) -> Object", True),
    ])
    report = _analyze(engine, "Ana", "caller", ("Integer",))
    assert report.ret_classes == frozenset({"Integer"})
    assert ("ir", "Ana", "liar") in report.resources
    assert any(owner == "Ana" and name == "liar"
               for owner, name, _ in report.callees)


def test_opaque_untrusted_callee_yields_unknown_result(engine):
    """When the unchecked callee's body is itself unprovable, nothing
    saves the call: the declared type stays untrusted and the result is
    unknown."""
    _world(engine, [
        ("liar", "def liar(self, n):\n    return self.undefined_helper(n)\n",
         "(Integer) -> String", False),
        ("caller", "def caller(self, n):\n    return self.liar(n)\n",
         "(Integer) -> Object", True),
    ])
    report = _analyze(engine, "Ana", "caller", ("Integer",))
    assert report.ret_classes is None


def test_leaf_app_nominal_is_exact_until_subclassed(engine):
    """A checked callee declared to return an app nominal the hierarchy
    knows is a *leaf* contributes an exact class — recorded against a
    ``("lin", cls)`` resource so registering a subclass deopts the
    proof.  Once a subclass exists the declared type is inexact again
    (and this callee's body is opaque, so nothing else proves it)."""
    cls = _world(engine, [
        ("make", "def make(self, n):\n    return self.fetch_one(n)\n",
         "(Integer) -> Ana", True),
        ("caller", "def caller(self, n):\n    return self.make(n)\n",
         "(Integer) -> Ana", True),
    ])
    report = _analyze(engine, "Ana", "caller", ("Integer",))
    assert report.ret_classes == frozenset({"Ana"})
    assert ("lin", "Ana") in report.resources
    # Subclassing makes "Ana" non-leaf: the fact must no longer derive.
    engine.register_class(type("AnaSub", (cls,), {}))
    report = _analyze(engine, "Ana", "caller", ("Integer",))
    assert report.ret_classes is None
    assert any(reason == "non_leaf_nominal" and "Ana" in detail
               for reason, detail in report.blockers)


def test_if_join_preserves_facts_common_to_both_arms(engine):
    """The finite class-set domain joins at phis instead of widening:
    a value that is Integer on both branches is Integer after the
    merge, and a two-class join survives as a two-class set."""
    _world(engine, [
        ("both", "def both(self, n):\n"
         "    if n > 0:\n        x = 1\n    else:\n        x = 2\n"
         "    return x\n", "(Integer) -> Integer", True),
        ("mixed", "def mixed(self, n):\n"
         "    if n > 0:\n        x = 1\n    else:\n        x = 'a'\n"
         "    return x\n", "(Integer) -> Object", True),
    ])
    assert _analyze(engine, "Ana", "both",
                    ("Integer",)).ret_classes == frozenset({"Integer"})
    assert _analyze(engine, "Ana", "mixed",
                    ("Integer",)).ret_classes == frozenset(
                        {"Integer", "String"})


def test_loop_fixpoint_keeps_stable_classes(engine):
    """A loop-carried variable whose class is stable across iterations
    survives the bounded fixpoint instead of widening to unknown."""
    _world(engine, [
        ("accum", "def accum(self, n):\n"
         "    total = 0\n"
         "    while n > 0:\n        total = total + n\n        n = n - 1\n"
         "    return total\n", "(Integer) -> Integer", True),
    ])
    report = _analyze(engine, "Ana", "accum", ("Integer",))
    assert report.ret_classes == frozenset({"Integer"})
    assert report.frame_elidable is True


def test_depth_two_callee_chain_is_followed_with_ir_edges(engine):
    """Unchecked callee bodies are followed transitively (axis c): the
    caller's proof pins *every* link of the chain with an ``("ir", ...)``
    edge and a fingerprinted callee record."""
    _world(engine, [
        ("deep", "def deep(self, n):\n    return n + 1\n",
         "(Integer) -> Object", False),
        ("mid", "def mid(self, n):\n    return self.deep(n)\n",
         "(Integer) -> Object", False),
        ("top", "def top(self, n):\n    return self.mid(n)\n",
         "(Integer) -> Object", True),
    ])
    report = _analyze(engine, "Ana", "top", ("Integer",))
    assert report.ret_classes == frozenset({"Integer"})
    assert ("ir", "Ana", "mid") in report.resources
    assert ("ir", "Ana", "deep") in report.resources
    chain = {(owner, name) for owner, name, _ in report.callees}
    assert {("Ana", "mid"), ("Ana", "deep")} <= chain


def test_recursive_callee_chain_hits_the_budget(engine):
    """Self-recursion cannot be resolved by body-chasing: the cycle guard
    reports a budget blocker and the result stays unknown."""
    _world(engine, [
        ("loop", "def loop(self, n):\n    return self.loop(n)\n",
         "(Integer) -> Integer", False),
        ("caller", "def caller(self, n):\n    return self.loop(n)\n",
         "(Integer) -> Object", True),
    ])
    report = _analyze(engine, "Ana", "caller", ("Integer",))
    assert report.ret_classes is None
    assert any(reason == "budget_exhausted"
               for reason, detail in report.blockers)


# -- resources (dependency edges) ---------------------------------------------


def test_operator_calls_record_signature_and_lin_edges(engine):
    _world(engine, [("leaf", "def leaf(self, n):\n    return n + 1\n",
                     "(Integer) -> Integer", True)])
    report = _analyze(engine, "Ana", "leaf", ("Integer",))
    assert ("sig", "Integer", "+", "instance") in report.resources
    assert ("lin", "Integer") in report.resources


def test_field_reads_record_field_edges(engine):
    cls = type("AnaField", (object,), {})
    engine.register_class(cls)
    engine.field_type(cls, "value", "Integer")
    _define(engine, cls, "read",
            "def read(self, n):\n    return self.value + n\n",
            "(Integer) -> Integer")
    mir = engine.cfgs.lookup("AnaField", "read")
    report = analyze_method(engine, mir, "AnaField", ("Integer",))
    assert ("field", "AnaField", "value") in report.resources
    assert report.frame_elidable is True  # Integer field + Integer arg


# -- the class-name quotient --------------------------------------------------


def test_rdl_class_name_builtin_cascade():
    assert rdl_class_name(bool) == "Boolean"  # before Integer: bool < int
    assert rdl_class_name(int) == "Integer"
    assert rdl_class_name(float) == "Float"
    assert rdl_class_name(str) == "String"
    assert rdl_class_name(type(None)) == "NilClass"
    assert rdl_class_name(list) == "Array"
    assert rdl_class_name(dict) == "Hash"


def test_rdl_class_name_callable_is_proc():
    class WithCall:
        def __call__(self):  # pragma: no cover - never invoked
            pass

    assert rdl_class_name(WithCall) == "Proc"


def test_rdl_class_name_plain_class_uses_its_name():
    class Plain:
        pass

    assert rdl_class_name(Plain) == "Plain"


# -- vacuity and conformance --------------------------------------------------


def test_is_vacuous_matrix():
    assert is_vacuous(parse_type("%any"))
    assert is_vacuous(parse_type("u"))       # type variable
    assert is_vacuous(parse_type("self"))    # self type
    assert not is_vacuous(parse_type("Integer"))
    assert not is_vacuous(parse_type("Integer or String"))
    assert is_vacuous(parse_type("%any or Integer"))  # union: any arm


def test_class_conforms_matrix(engine):
    hier = engine.hier
    assert class_conforms("Integer", parse_type("Integer"), hier)
    assert class_conforms("Integer", parse_type("Numeric"), hier)
    assert not class_conforms("String", parse_type("Integer"), hier)
    assert class_conforms("String", parse_type("Integer or String"), hier)
    assert class_conforms("Integer", parse_type("%any"), hier)
    # nil follows the permissive-nil rule unless strict
    assert class_conforms("NilClass", parse_type("Integer"), hier)
    assert not class_conforms("NilClass", parse_type("Integer"), hier,
                              strict_nil=True)
    # generics with vacuous element types reduce to the base nominal
    assert class_conforms("Array", parse_type("Array<%any>"), hier)
