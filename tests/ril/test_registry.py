"""Registry, JSON round-trip, and diff tests for the IR front end."""

import pytest

from repro.ril import (
    CFGRegistry, RegistrationError, bodies_differ, diff_registries, dumps,
    fingerprint, from_json, ir, loads, snapshot_fingerprints, to_json,
)
from repro.rtypes import NominalType


# Module-level fixtures so inspect.getsource works.

def _sample(self, user, items=None):
    total = 0
    for item in items:
        total = total + item
    if user is None:
        return None
    return f"{user}: {total}"


def _varargs(self, first, *rest):
    return first


def _make_closure(role_name):
    def dynamic(self):
        return "is_" + role_name
    return dynamic


class TestRegistry:
    def test_register_function(self):
        reg = CFGRegistry()
        mir = reg.register_function("Demo", "sample", _sample)
        assert mir.owner == "Demo" and mir.name == "sample"
        assert reg.lookup("Demo", "sample") is mir

    def test_self_param_skipped(self):
        reg = CFGRegistry()
        mir = reg.register_function("Demo", "sample", _sample)
        assert mir.param_names() == ("user", "items")

    def test_default_marks_optional(self):
        reg = CFGRegistry()
        mir = reg.register_function("Demo", "sample", _sample)
        assert not mir.params[0].optional
        assert mir.params[1].optional

    def test_vararg_param(self):
        reg = CFGRegistry()
        mir = reg.register_function("Demo", "varargs", _varargs)
        assert mir.params[1].vararg

    def test_closure_captures_typed(self):
        reg = CFGRegistry()
        mir = reg.register_function("User", "is_prof", _make_closure("prof"))
        assert mir.captures["role_name"] == NominalType("String")

    def test_register_source(self):
        reg = CFGRegistry()
        mir = reg.register_source(
            "Demo", "double", "def double(self, x):\n    return x * 2\n")
        assert mir.param_names() == ("x",)
        assert isinstance(mir.body, ir.Return)

    def test_hb_source_attribute(self):
        namespace = {}
        src = "def tripled(self, x):\n    return x * 3\n"
        exec(src, namespace)
        fn = namespace["tripled"]
        fn.__hb_source__ = src
        reg = CFGRegistry()
        mir = reg.register_function("Demo", "tripled", fn)
        assert mir.param_names() == ("x",)

    def test_no_source_raises(self):
        namespace = {}
        exec("def ghost(self): return 1", namespace)
        reg = CFGRegistry()
        with pytest.raises(RegistrationError):
            reg.register_function("Demo", "ghost", namespace["ghost"])

    def test_bad_source_raises(self):
        reg = CFGRegistry()
        with pytest.raises(RegistrationError):
            reg.register_source("Demo", "bad", "not python ][")

    def test_source_without_def_raises(self):
        reg = CFGRegistry()
        with pytest.raises(RegistrationError):
            reg.register_source("Demo", "bad", "x = 1")

    def test_forget(self):
        reg = CFGRegistry()
        reg.register_function("Demo", "sample", _sample)
        reg.forget("Demo", "sample")
        assert reg.lookup("Demo", "sample") is None

    def test_methods_of(self):
        reg = CFGRegistry()
        reg.register_function("Demo", "sample", _sample)
        reg.register_function("Demo", "varargs", _varargs)
        reg.register_function("Other", "sample", _sample)
        assert len(reg.methods_of("Demo")) == 2
        assert len(reg) == 3


class TestJsonRoundTrip:
    def test_round_trip(self):
        reg = CFGRegistry()
        mir = reg.register_function("Demo", "sample", _sample)
        assert loads(dumps(mir.body)) == mir.body

    def test_to_from_json(self):
        node = ir.If(ir.BoolLit(True), ir.IntLit(1), ir.IntLit(2))
        assert from_json(to_json(node)) == node

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            from_json({"kind": "Bogus"})

    def test_positions_preserved(self):
        reg = CFGRegistry()
        mir = reg.register_function("Demo", "sample", _sample)
        rt = loads(dumps(mir.body))
        positions = [n.pos for n in ir.walk(rt)]
        assert any(p.line > 0 for p in positions)


class TestFingerprintAndDiff:
    def test_fingerprint_ignores_positions(self):
        reg = CFGRegistry()
        a = reg.register_source("D", "m", "def m(self):\n    return 1\n")
        b = reg.register_source(
            "D", "m", "\n\n\ndef m(self):\n    return 1\n")
        assert a.fingerprint == b.fingerprint
        assert not bodies_differ(a, b)

    def test_fingerprint_sees_body_change(self):
        reg = CFGRegistry()
        a = reg.register_source("D", "m", "def m(self):\n    return 1\n")
        b = reg.register_source("D", "m", "def m(self):\n    return 2\n")
        assert bodies_differ(a, b)

    def test_param_change_counts(self):
        reg = CFGRegistry()
        a = reg.register_source("D", "m", "def m(self):\n    return 1\n")
        b = reg.register_source("D", "m", "def m(self, x):\n    return 1\n")
        assert bodies_differ(a, b)

    def test_diff_registries(self):
        reg = CFGRegistry()
        reg.register_source("D", "kept", "def kept(self):\n    return 1\n")
        reg.register_source("D", "edited", "def edited(self):\n    return 1\n")
        reg.register_source("D", "dropped", "def dropped(self):\n    return 1\n")
        before = snapshot_fingerprints(reg)

        reg.register_source("D", "edited", "def edited(self):\n    return 2\n")
        reg.register_source("D", "fresh", "def fresh(self):\n    return 3\n")
        reg.forget("D", "dropped")

        diff = diff_registries(before, reg)
        assert diff.changed == {("D", "edited")}
        assert diff.added == {("D", "fresh")}
        assert diff.removed == {("D", "dropped")}
        assert diff.invalidation_roots() == {("D", "edited"), ("D", "dropped")}
