"""The fault-injection layer itself: determinism, coordinate lookup,
zero-cost passthrough, and the thread-mode driver integration.

The fork-mode behaviors (``os._exit`` kills, supervised recovery) live
in ``test_supervised_recovery.py``; this file covers everything that
runs in-process.
"""

import time

import pytest

from repro.concurrency import ConcurrentDriver
from repro.faults import (
    CHURN_DIE, ERROR, FAULT_KINDS, HANG, KILL, Fault, FaultPlan,
    InjectedFaultError, corrupt_file, generate_fault_plan, truncate_file,
)

# -- the plan data model -----------------------------------------------------


def test_unknown_fault_kind_rejected():
    with pytest.raises(ValueError):
        Fault("meteor", 0, 0)


def test_plan_lookup_is_exact_coordinates():
    plan = FaultPlan([Fault(KILL, 1, 4), Fault(ERROR, 0, 2, attempt=1),
                      Fault(CHURN_DIE, 0, 7)])
    assert len(plan) == 3
    assert plan.request_fault(1, 0, 4).kind == KILL
    assert plan.request_fault(1, 0, 3) is None       # wrong ordinal
    assert plan.request_fault(1, 1, 4) is None       # wrong attempt
    assert plan.request_fault(0, 1, 2).kind == ERROR
    assert plan.request_fault(0, 0, 2) is None       # attempt-0 clean
    assert plan.churn_fault(0, 7).kind == CHURN_DIE
    assert plan.churn_fault(1, 7) is None


def test_generate_fault_plan_is_seed_deterministic():
    kw = dict(workers=4, requests_per_worker=25, kills=3, errors=2,
              hangs=2, churn_deaths=1, churn_steps=40)
    a = generate_fault_plan(42, **kw)
    b = generate_fault_plan(42, **kw)
    c = generate_fault_plan(43, **kw)
    assert a.faults() == b.faults()
    assert a.faults() != c.faults()
    assert len(a) == 8
    kinds = [f.kind for f in a.faults()]
    for kind, want in ((KILL, 3), (ERROR, 2), (HANG, 2), (CHURN_DIE, 1)):
        assert kinds.count(kind) == want
        assert kind in FAULT_KINDS


def test_no_fault_is_a_passthrough():
    plan = FaultPlan([Fault(ERROR, 3, 9)])
    plan.on_request(0, 0, 0, in_process=False)  # nothing scripted here
    plan.on_churn_step(0, 0)


def test_error_and_thread_kill_raise():
    plan = FaultPlan([Fault(ERROR, 0, 0), Fault(KILL, 1, 1)])
    with pytest.raises(InjectedFaultError):
        plan.on_request(0, 0, 0, in_process=False)
    with pytest.raises(InjectedFaultError):
        # In a worker *thread* a KILL degrades to a raised crash — the
        # host process must survive.
        plan.on_request(1, 0, 1, in_process=False)


def test_hang_sleeps_then_proceeds():
    plan = FaultPlan([Fault(HANG, 0, 0, delay_s=0.05)])
    t0 = time.perf_counter()
    plan.on_request(0, 0, 0, in_process=False)  # no raise
    assert time.perf_counter() - t0 >= 0.04


# -- file corruption helpers -------------------------------------------------


def test_truncate_file(tmp_path):
    path = tmp_path / "snap.json"
    path.write_bytes(b"x" * 100)
    assert truncate_file(str(path), 37) == 100
    assert path.stat().st_size == 37


def test_corrupt_file_is_deterministic(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    blob = bytes(range(256)) * 4
    a.write_bytes(blob)
    b.write_bytes(blob)
    corrupt_file(str(a), seed=7)
    corrupt_file(str(b), seed=7)
    assert a.read_bytes() == b.read_bytes()
    assert a.read_bytes() != blob
    assert a.stat().st_size == len(blob)


# -- thread-mode driver integration ------------------------------------------


def _thunks(n=5):
    def mk(i):
        return lambda: i * 10
    return [mk(i) for i in range(n)]


@pytest.mark.requires_threads
def test_thread_kill_loses_slice_and_is_reported():
    plan = FaultPlan([Fault(KILL, 1, 3)])
    driver = ConcurrentDriver(_thunks(), threads=4, requests=80,
                              faults=plan)
    run = driver.run()
    assert len(run.crashes) == 1 and "worker 1" in run.crashes[0]
    # Worker 1 completed 3 of its 20 before the kill; the rest is lost
    # and *visible* as completed < requests, never silently absorbed.
    assert run.completed == 80 - 20 + 3
    # The injected fault never shows up as a request outcome.
    assert all(outcome[0] == "ok" for _, _, outcome in run.outcomes)


@pytest.mark.requires_threads
def test_fault_free_plan_changes_nothing():
    driver = ConcurrentDriver(_thunks(), threads=4, requests=80,
                              faults=FaultPlan())
    run = driver.run()
    assert not run.crashes and run.completed == 80
    baseline = ConcurrentDriver(_thunks(), threads=4, requests=80).run()
    assert run.outcome_multiset() == baseline.outcome_multiset()


@pytest.mark.requires_threads
def test_churn_death_kills_mutator_but_requests_survive():
    applied = {"steps": 0}

    def churn(step):
        applied["steps"] += 1

    plan = FaultPlan([Fault(CHURN_DIE, 0, 2)])
    # io_wait keeps the run alive long enough for the mutator to reach
    # its scripted death step.
    driver = ConcurrentDriver(_thunks(), threads=4, requests=80,
                              io_wait_s=0.005, churn=churn,
                              churn_interval_s=0.0001, faults=plan)
    run = driver.run()
    assert any("churn step 2" in crash for crash in run.crashes)
    assert run.completed == 80          # requests keep serving
    assert applied["steps"] == 2        # the mutator died mid-sequence
    assert run.churn_applied == 2
