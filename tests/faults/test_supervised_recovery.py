"""Supervised worker recovery under injected faults.

The contract under test (see ``docs/robustness.md``):

* a worker killed / crashed / hung mid-slice is detected, respawned
  from the parent's warm engine, and its unfinished remainder replayed
  — the run still completes **100% of the schedule**;
* every accepted outcome (replays included) equals the cache-free
  oracle's outcome for its exact schedule index;
* the accounting invariant ``scheduled == completed_first +
  completed_retried + abandoned`` holds on every path, including
  retry-budget exhaustion;
* the fault-tolerance counters (``workers_restarted``,
  ``requests_replayed``) are exact.
"""

import pytest

from repro.concurrency import SupervisedDriver
from repro.faults import (
    ERROR, HANG, KILL, Fault, FaultPlan, generate_fault_plan,
)
from repro.serving import SupervisedScenario, run_supervised_scenario

pytestmark = pytest.mark.requires_fork

WORKERS = 3
REQUESTS = 60  # 20 per worker


def _thunks(n=7):
    def mk(i):
        return lambda: i * 3
    return [mk(i) for i in range(n)]


def _driver(faults=None, **overrides):
    kw = dict(workers=WORKERS, requests=REQUESTS, faults=faults,
              backoff_base_s=0.01, backoff_cap_s=0.05)
    kw.update(overrides)
    return SupervisedDriver(_thunks(), **kw)


def _assert_full_oracle_identity(run, thunks):
    n = len(thunks)
    assert run.accounting_ok()
    assert run.completed == REQUESTS and run.abandoned == 0
    assert not run.crashes
    assert set(run.outcomes) == set(range(REQUESTS))
    for idx, (_, _, outcome) in run.outcomes.items():
        assert outcome == ("ok", repr(thunks[idx % n]()))


# -- recovery paths ----------------------------------------------------------


def test_fault_free_run_needs_no_supervision():
    run = _driver().run()
    _assert_full_oracle_identity(run, _thunks())
    assert run.restarts == 0 and run.completed_retried == 0
    assert run.first_samples and not run.replay_samples


def test_killed_worker_is_respawned_and_completes():
    plan = FaultPlan([Fault(KILL, 0, 5)])
    run = _driver(plan).run()
    _assert_full_oracle_identity(run, _thunks())
    assert run.restarts == 1
    assert run.completed_retried >= 1  # the remainder was replayed
    assert run.replay_samples  # replay latency attributed separately
    assert any("exit code 87" in line for line in run.restart_log)


def test_multiple_kills_across_workers_recover():
    plan = generate_fault_plan(
        1234, workers=WORKERS, requests_per_worker=20, kills=3)
    run = _driver(plan).run()
    _assert_full_oracle_identity(run, _thunks())
    assert run.restarts >= 1


def test_crash_message_recovers_without_hang_timeout():
    plan = FaultPlan([Fault(ERROR, 1, 2)])
    run = _driver(plan).run()
    _assert_full_oracle_identity(run, _thunks())
    assert run.restarts == 1
    assert any("crashed" in line for line in run.restart_log)


def test_hung_worker_is_terminated_and_replayed():
    plan = FaultPlan([Fault(HANG, 2, 4, delay_s=2.0)])
    run = _driver(plan, hang_timeout_s=0.3).run()
    _assert_full_oracle_identity(run, _thunks())
    assert run.restarts == 1
    assert any("hung" in line for line in run.restart_log)


def test_kill_on_retry_attempt_recovers_again():
    plan = FaultPlan([Fault(KILL, 0, 5, attempt=0),
                      Fault(KILL, 0, 0, attempt=1)])
    run = _driver(plan, max_retries=3).run()
    _assert_full_oracle_identity(run, _thunks())
    assert run.restarts == 2


# -- budget exhaustion -------------------------------------------------------


def test_retry_budget_exhaustion_abandons_exactly_the_remainder():
    # Kill attempt 0, 1, and 2 of worker 0 at its very first request:
    # the whole 20-request slice is unrecoverable within max_retries=2.
    plan = FaultPlan([Fault(KILL, 0, 0, attempt=a) for a in range(3)])
    run = _driver(plan, max_retries=2).run()
    assert run.accounting_ok()
    assert run.abandoned == 20
    assert sorted(run.abandoned_indices) == list(range(20))
    assert run.restarts == 2
    assert run.completed == REQUESTS - 20
    assert any("budget exhausted" in line for line in run.restart_log)
    # The other workers' slices are untouched and oracle-identical.
    thunks = _thunks()
    for idx, (_, _, outcome) in run.outcomes.items():
        assert outcome == ("ok", repr(thunks[idx % len(thunks)]()))


def test_accounting_identity_holds_on_every_path():
    for plan in (None,
                 FaultPlan([Fault(KILL, 1, 7)]),
                 FaultPlan([Fault(KILL, 0, 0, attempt=a)
                            for a in range(4)])):
        run = _driver(plan, max_retries=2).run()
        assert run.accounting_ok()
        assert (run.completed_first + run.completed_retried
                + run.abandoned == REQUESTS)
        # The buckets are disjoint by construction (each schedule index
        # is accepted at most once); the multiset check proves no index
        # was double-counted.
        assert len(run.outcomes) == run.completed


# -- harness integration -----------------------------------------------------


def _scenario(**overrides):
    kw = dict(app="boxroom", mix="read", workers=2, requests=40,
              io_wait_s=0.0, warm_rounds=2, specialize_threshold=4,
              backoff_base_s=0.01)
    kw.update(overrides)
    return SupervisedScenario("recovery-test", **kw)


def test_scenario_recovers_and_counts(tmp_path):
    plan = FaultPlan([Fault(KILL, 0, 3), Fault(KILL, 1, 9)])
    report = run_supervised_scenario(_scenario(), faults=plan)
    assert report.accounting_ok
    assert report.oracle_match_cache_free
    assert report.completed == 40 and report.abandoned == 0
    assert report.workers_restarted == report.restarts == 2
    assert report.requests_replayed == report.completed_retried >= 2
    assert report.latency["replayed"] is not None
    assert report.latency["combined"]["count"] == 40


def test_scenario_fault_free_reports_no_recovery():
    report = run_supervised_scenario(_scenario())
    assert report.accounting_ok and report.oracle_match_cache_free
    assert report.restarts == 0 and report.requests_replayed == 0
    assert report.latency["replayed"] is None


@pytest.mark.requires_caches
def test_respawn_inherits_warm_state_from_parent():
    """A respawned worker forks from the parent's warm engine: its
    stats delta must not re-pay the parent's static checks (the
    cold-start work the warm rounds already did)."""
    plan = FaultPlan([Fault(KILL, 0, 0)])
    report = run_supervised_scenario(
        _scenario(warm_rounds=6, mix="read"), faults=plan)
    assert report.accounting_ok and report.oracle_match_cache_free
    assert report.restarts == 1
    # The warmed parent already derived every check; no worker —
    # original or respawned — should re-derive them.
    assert report.transitions.get("static_checks", 0) == 0
