"""Hypothesis chaos stress: random fault scripts against the oracle.

Two properties, each over randomly generated fault scripts:

* **thread mode** (`ConcurrentDriver`): whatever subset of requests
  completes under kills / errors / hangs / mutator deaths interleaved
  with churn, every *recorded* outcome equals the deterministic
  expectation for its schedule index, and the completed count exactly
  accounts for the lost slices;
* **supervised fork mode** (`SupervisedDriver`): the accounting
  invariant partitions the schedule on every script, accepted outcomes
  are oracle-identical per index, and the supervision loop terminates
  (a deadlocked supervisor would hang the example and trip the join
  timeout, failing loudly rather than silently).

Sizes are deliberately tiny — the value is in the script diversity, not
the volume.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.concurrency import ConcurrentDriver, SupervisedDriver
from repro.faults import CHURN_DIE, ERROR, HANG, KILL, Fault, FaultPlan

THREADS = 3
REQUESTS = 24  # 8 per worker
N_THUNKS = 5


def _thunks():
    def mk(i):
        if i == N_THUNKS - 1:
            # One erroring recipe, so "err" outcomes flow through the
            # oracle comparison too.
            def boom():
                raise ValueError(f"recipe {i}")
            return boom
        return lambda: i * 7
    return [mk(i) for i in range(N_THUNKS)]


def _expected(idx):
    i = idx % N_THUNKS
    if i == N_THUNKS - 1:
        return ("err", "ValueError", f"recipe {i}")
    return ("ok", repr(i * 7))


request_faults = st.builds(
    Fault,
    kind=st.sampled_from([KILL, ERROR, HANG]),
    worker=st.integers(0, THREADS - 1),
    ordinal=st.integers(0, 9),
    attempt=st.integers(0, 2),
    delay_s=st.just(0.0),
)

churn_faults = st.builds(
    Fault,
    kind=st.just(CHURN_DIE),
    worker=st.just(0),
    ordinal=st.integers(0, 5),
)

fault_scripts = st.lists(request_faults | churn_faults, max_size=6)


@pytest.mark.requires_threads
@given(script=st.lists(request_faults, max_size=4),
       churn_script=st.lists(churn_faults, max_size=2))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_thread_mode_completed_outcomes_match_oracle(script, churn_script):
    churn_steps = {"applied": 0}

    def churn(step):
        churn_steps["applied"] += 1

    plan = FaultPlan(script + churn_script)
    driver = ConcurrentDriver(_thunks(), threads=THREADS,
                              requests=REQUESTS, churn=churn,
                              churn_interval_s=0.0005, faults=plan)
    run = driver.run()
    # Every recorded outcome is the deterministic one for its index —
    # faults may shrink the completed set but never corrupt it.
    for _, sched_idx, outcome in run.outcomes:
        assert outcome == _expected(sched_idx), sched_idx
    assert len(run.outcomes) == run.completed <= REQUESTS
    # Lost requests are exactly the crashed workers' unfinished tails.
    crashed_workers = {
        int(crash.split()[1].rstrip(":")) for crash in run.crashes
        if crash.startswith("worker ")}
    if not crashed_workers:
        assert run.completed == REQUESTS


@pytest.mark.requires_fork
@given(script=fault_scripts)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_supervised_mode_accounting_and_oracle_identity(script):
    plan = FaultPlan(script)
    driver = SupervisedDriver(
        _thunks(), workers=THREADS, requests=REQUESTS, faults=plan,
        max_retries=2, backoff_base_s=0.005, backoff_cap_s=0.02,
        hang_timeout_s=1.0)
    run = driver.run()  # termination IS part of the property
    assert run.accounting_ok(), (
        run.completed_first, run.completed_retried, run.abandoned)
    assert len(run.outcomes) == run.completed
    for idx, (_, _, outcome) in run.outcomes.items():
        assert outcome == _expected(idx), idx
    # Outcome-multiset identity over completed requests: the accepted
    # set, replayed or not, is a sub-multiset of the full oracle run.
    assert set(run.outcomes) <= set(range(REQUESTS))
    # Abandonment only ever follows restarts that exhausted the budget.
    if run.abandoned:
        assert run.restarts >= 1
        assert any("budget exhausted" in line for line in run.restart_log)
    # No protocol violations (garbled beyond recovery, disagreement).
    assert not [c for c in run.crashes if "disagreement" in c]
