"""Tests for the core calculus: type system, semantics, cache, blame."""

import pytest

from repro.formalism import (
    Blame, CoreSyntaxError, CoreTypeError, Machine, MTy, StuckError, T_NIL,
    TCls, VNil, VObj, parse_expr, run_program, type_check, uses_of,
)


def run(src, **kwargs):
    return run_program(parse_expr(src), **kwargs)


class TestParser:
    def test_literals(self):
        assert str(parse_expr("nil")) == "nil"
        assert str(parse_expr("self")) == "self"

    def test_round_trippable_program(self):
        src = "type A.m : nil -> A; def A.m(x) { A.new }; A.new.m(nil)"
        e = parse_expr(src)
        assert parse_expr(str(e)) == e

    def test_rejects_bare_class(self):
        with pytest.raises(CoreSyntaxError):
            parse_expr("A")

    def test_rejects_garbage(self):
        with pytest.raises(CoreSyntaxError):
            parse_expr("x = ")


class TestTypeSystem:
    def test_tnil(self):
        d = type_check({}, {}, parse_expr("nil"))
        assert d.rule == "TNil" and d.tau == T_NIL

    def test_tnew(self):
        d = type_check({}, {}, parse_expr("A.new"))
        assert d.tau == TCls("A")

    def test_tassn_flow_sensitivity(self):
        d = type_check({}, {}, parse_expr("x = A.new; x"))
        assert d.tau == TCls("A")

    def test_reassignment_changes_type(self):
        d = type_check({}, {}, parse_expr("x = A.new; x = nil; x"))
        assert d.tau == T_NIL

    def test_unbound_variable_rejected(self):
        with pytest.raises(CoreTypeError, match="unbound"):
            type_check({}, {}, parse_expr("x"))

    def test_tif_lub(self):
        # One branch nil, one branch A: lub is A (nil ⊔ τ = τ).
        d = type_check({}, {}, parse_expr(
            "if nil then nil else A.new end"))
        assert d.tau == TCls("A")

    def test_tif_incompatible_branches_rejected(self):
        with pytest.raises(CoreTypeError, match="incompatible"):
            type_check({}, {}, parse_expr(
                "if nil then A.new else B.new end"))

    def test_tif_env_join_drops_one_sided_vars(self):
        # y is assigned only in the then-branch, so it is dropped after.
        src = "(if nil then y = A.new else nil end); y"
        with pytest.raises(CoreTypeError, match="unbound"):
            type_check({}, {}, parse_expr(src))

    def test_tapp_uses_recorded(self):
        tt = {("A", "m"): MTy(T_NIL, TCls("A"))}
        d = type_check(tt, {}, parse_expr("A.new.m(nil)"))
        assert uses_of(d) == {("A", "m")}

    def test_tapp_missing_method_rejected(self):
        with pytest.raises(CoreTypeError, match="not in the type table"):
            type_check({}, {}, parse_expr("A.new.m(nil)"))

    def test_tapp_argument_subtyping(self):
        tt = {("A", "m"): MTy(TCls("B"), T_NIL)}
        # nil <= B, so passing nil is fine.
        type_check(tt, {}, parse_expr("A.new.m(nil)"))
        with pytest.raises(CoreTypeError, match="argument"):
            type_check(tt, {}, parse_expr("A.new.m(A.new)"))

    def test_paper_example_type_then_call_in_same_body_fails(self):
        """Section 3: defining and typing B.m inside A.m's body, then
        calling it, is a type error — the type expression has not yet
        executed when A.m's body is checked."""
        src = ("type A.run : nil -> B; "
               "def A.run(x) { "
               "  (def B.m(y) { B.new }); "
               "  (type B.m : nil -> B); "
               "  B.new.m(nil) "
               "}; "
               "A.new.run(nil)")
        result, _ = run(src)
        assert isinstance(result, Blame) and result.reason == "body-ill-typed"

    def test_tdef_does_not_check_body(self):
        # The body calls a method with no type, but (TDef) doesn't look.
        d = type_check({}, {}, parse_expr("def A.m(x) { x.nope(nil) }"))
        assert d.rule == "TDef" and d.tau == T_NIL


class TestSemantics:
    def test_simple_call(self):
        result, m = run(
            "type A.id : A -> A; def A.id(x) { x }; A.new.id(A.new)")
        assert result == VObj("A")
        assert m.checks_performed == 1

    def test_def_before_type_also_works(self):
        # "there is no ordering dependency between def and type"
        result, _ = run(
            "def A.id(x) { x }; type A.id : A -> A; A.new.id(A.new)")
        assert result == VObj("A")

    def test_self_bound_in_body(self):
        result, _ = run(
            "type A.me : nil -> A; def A.me(x) { self }; A.new.me(nil)")
        assert result == VObj("A")

    def test_cache_hit_on_second_call(self):
        result, m = run(
            "type A.id : A -> A; def A.id(x) { x }; "
            "y = A.new; y.id(y); y.id(y); y.id(y)")
        assert m.checks_performed == 1
        assert m.cache_hits == 2

    def test_no_cache_rechecks(self):
        result, m = run(
            "type A.id : A -> A; def A.id(x) { x }; "
            "y = A.new; y.id(y); y.id(y); y.id(y)",
            caching=False)
        assert m.checks_performed == 3

    def test_conditional_evaluation(self):
        result, _ = run("if A.new then A.new else nil end")
        assert result == VObj("A")
        result, _ = run("if nil then A.new else nil end")
        assert isinstance(result, VNil)

    def test_method_calls_method(self):
        src = ("type A.g : nil -> A; def A.g(x) { A.new }; "
               "type A.f : nil -> A; def A.f(x) { self.g(nil) }; "
               "A.new.f(nil)")
        result, m = run(src)
        assert result == VObj("A")
        assert m.checks_performed == 2

    def test_nested_call_argument(self):
        src = ("type A.id : A -> A; def A.id(x) { x }; "
               "a = A.new; a.id(a.id(a))")
        result, _ = run(src)
        assert result == VObj("A")


class TestBlame:
    def test_nil_receiver(self):
        result, _ = run(
            "type A.m : nil -> nil; def A.m(x) { nil }; "
            "type A.get : nil -> A; def A.get(x) { nil }; "
            "A.new.get(nil).m(nil)")
        assert isinstance(result, Blame) and result.reason == "nil-receiver"

    def test_typed_but_undefined(self):
        result, _ = run("type A.m : nil -> nil; A.new.m(nil)")
        assert isinstance(result, Blame)
        assert result.reason == "method-undefined"

    def test_body_ill_typed_at_call(self):
        # The body returns A but claims B; detected at the call, not at def.
        src = ("type A.bad : nil -> B; def A.bad(x) { A.new }; "
               "A.new.bad(nil)")
        result, _ = run(src)
        assert isinstance(result, Blame) and result.reason == "body-ill-typed"

    def test_def_without_call_never_blames(self):
        src = "type A.bad : nil -> B; def A.bad(x) { A.new }; nil"
        result, _ = run(src)
        assert isinstance(result, VNil)


class TestCacheInvalidation:
    def test_redefinition_invalidates_and_rechecks(self):
        src = ("type A.m : nil -> A; def A.m(x) { A.new }; "
               "a = A.new; a.m(nil); "
               "def A.m(x) { A.new }; "   # (EDef) invalidates
               "a.m(nil)")
        result, m = run(src)
        assert result == VObj("A")
        assert m.checks_performed == 2

    def test_retype_invalidates_dependents_definition1(self):
        """Changing B.g's type invalidates A.f (whose derivation used it)."""
        src = ("type B.g : nil -> B; def B.g(x) { B.new }; "
               "type A.f : nil -> B; def A.f(x) { B.new.g(nil) }; "
               "a = A.new; a.f(nil); "
               "type B.g : nil -> B; "        # re-type B.g
               "a.f(nil)")
        result, m = run(src)
        assert result == VObj("B")
        # f checked twice (invalidated), g checked twice too (keyed entry).
        assert m.checks_performed >= 3

    def test_retype_to_bad_signature_blames_dependent(self):
        """After B.g's return type changes to nil, A.f's body no longer
        checks: its declared return B cannot come from g anymore."""
        src = ("type B.g : nil -> B; def B.g(x) { B.new }; "
               "type A.f : nil -> B; def A.f(x) { B.new.g(nil) }; "
               "a = A.new; a.f(nil); "
               "type B.g : nil -> Other; "
               "a.f(nil)")
        result, _ = run(src)
        assert isinstance(result, Blame) and result.reason == "body-ill-typed"

    def test_unrelated_retype_keeps_cache(self):
        src = ("type A.f : nil -> A; def A.f(x) { A.new }; "
               "a = A.new; a.f(nil); "
               "type Z.z : nil -> nil; "
               "a.f(nil)")
        result, m = run(src)
        assert m.checks_performed == 1
        assert m.cache_hits == 1

    def test_phase_counting(self):
        _, m1 = run("type A.f : nil -> A; def A.f(x) { A.new }; "
                    "A.new.f(nil)")
        assert m1.phase_count() == 1
        _, m2 = run("type A.f : nil -> A; def A.f(x) { A.new }; "
                    "A.new.f(nil); "
                    "type A.g : nil -> A; def A.g(x) { A.new }; "
                    "A.new.g(nil)")
        assert m2.phase_count() == 2
