"""Empirical soundness for the core calculus (hypothesis).

The paper's guarantee, as the system actually uses it: every *method body*
is statically checked at first call against the then-current type table;
top-level code is the untrusted dynamic world, guarded by the (EApp*)
run-time checks.  Accordingly we generate programs whose prelude declares
types and definitions and whose main expression is *well-typed under the
declared table by construction*, then assert:

* the machine never gets stuck — every run ends in a value or one of the
  paper's permitted blame outcomes (progress);
* the cache-consistency relation X ∼ (TT, DT) (Definition 7) holds along
  the run (preservation, executable projection);
* when a value is produced, its run-time type is a subtype of the main
  expression's static type under the declared table;
* caching is observationally pure: cached and uncached runs agree.

Programs include run-time ``def``/``type`` (with mid-run re-definition and
re-annotation, exercising Definitions 1 and 2), conditionals, sequencing,
assignments, and calls.
"""

from hypothesis import given, settings, strategies as st

from repro.formalism import (
    Blame, EAssign, ECall, EDef, EIf, ENew, ESeq, EType, EVal, EVar,
    Machine, MTy, Premethod, T_NIL, TCls, V_NIL, Value, check_all,
    check_blame_permitted, lub, seq, subtype, type_check, type_of,
)

FUEL = 3_000


def run_or_diverge(machine, program, on_step=None):
    """Run to a value/blame, or None when the program diverges past the
    fuel bound — divergence is a permitted soundness outcome ("e reduces
    to a value, e reduces to blame, or e diverges")."""
    try:
        return machine.run(program, fuel=FUEL, on_step=on_step)
    except TimeoutError:
        return None

CLASSES = ["A", "B", "C"]
METHODS = ["m", "f", "g"]
ALL_TAUS = [T_NIL] + [TCls(c) for c in CLASSES]


@st.composite
def library(draw):
    """A set of method signatures; bodies are generated against them."""
    count = draw(st.integers(min_value=1, max_value=4))
    sigs = {}
    for _ in range(count):
        cls = draw(st.sampled_from(CLASSES))
        meth = draw(st.sampled_from(METHODS))
        sigs[(cls, meth)] = MTy(draw(st.sampled_from(ALL_TAUS)),
                                draw(st.sampled_from(ALL_TAUS)))
    return sigs


@st.composite
def expr_of(draw, target, tt, env, depth):
    """Generate (expr, static type) with static type ≤ ``target``.

    ``env`` tracks exactly what the (T*) rules would derive as the output
    environment — each compound case works on a trial copy and commits
    only when it actually returns that shape, so discarded attempts never
    pollute the environment, and (TIf) branch environments are joined the
    way the type rule joins them (variables on both sides, lub'd).
    """
    def simple_choices():
        out = [(EVal(V_NIL), T_NIL)]
        if isinstance(target, TCls):
            out.append((ENew(target.name), target))
        for name, tau in env.items():
            if name != "self" and subtype(tau, target):
                out.append((EVar(name), tau))
        return out

    if depth <= 0:
        return draw(st.sampled_from(simple_choices()))
    choice = draw(st.integers(min_value=0, max_value=4))
    if choice == 0:  # a call whose return type fits the target
        candidates = [(k, mty) for k, mty in tt.items()
                      if subtype(mty.rng, target)]
        if candidates:
            (cls, meth), mty = draw(st.sampled_from(candidates))
            trial = dict(env)
            recv, recv_tau = draw(expr_of(TCls(cls), tt, trial, depth - 1))
            if isinstance(recv_tau, TCls):  # receiver must be a class type
                arg, _ = draw(expr_of(mty.dom, tt, trial, depth - 1))
                env.clear()
                env.update(trial)
                return ECall(recv, meth, arg), mty.rng
    if choice == 1:  # conditional — branch envs joined as in (TIf)
        trial = dict(env)
        test, _ = draw(expr_of(T_NIL, tt, trial, depth - 1))
        then_env = dict(trial)
        then, t1 = draw(expr_of(target, tt, then_env, depth - 1))
        else_env = dict(trial)
        orelse, t2 = draw(expr_of(target, tt, else_env, depth - 1))
        joined = lub(t1, t2)
        if joined is not None:
            env.clear()
            for name in then_env:
                if name in else_env:
                    j = lub(then_env[name], else_env[name])
                    if j is not None:
                        env[name] = j
            return EIf(test, then, orelse), joined
    if choice == 2:  # sequencing
        first, _ = draw(expr_of(T_NIL, tt, env, depth - 1))
        second, t2 = draw(expr_of(target, tt, env, depth - 1))
        return ESeq(first, second), t2
    if choice == 3:  # assignment (flow-sensitively recorded)
        name = draw(st.sampled_from(["x1", "x2", "x3"]))
        value, tau = draw(expr_of(target, tt, env, depth - 1))
        env[name] = tau
        return EAssign(name, value), tau
    return draw(st.sampled_from(simple_choices()))


@st.composite
def programs(draw):
    """Returns (program, declared type table, main expr, main static type)."""
    sigs = draw(library())
    parts = []
    for (cls, meth), mty in sigs.items():
        parts.append(EType(cls, meth, mty))
    for (cls, meth), mty in sigs.items():
        body_env = {"x": mty.dom, "self": TCls(cls)}
        body, _ = draw(expr_of(mty.rng, sigs, body_env, depth=2))
        parts.append(EDef(cls, meth, Premethod("x", body)))
    main_target = draw(st.sampled_from(ALL_TAUS))
    main, main_tau = draw(expr_of(main_target, sigs, {}, depth=3))
    parts.append(main)
    # Optionally re-define / re-annotate one method and call it again,
    # exercising (EDef)/(EType) invalidation mid-run.
    if sigs and draw(st.booleans()):
        (cls, meth), mty = draw(st.sampled_from(sorted(
            sigs.items(), key=lambda kv: kv[0])))
        parts.append(EType(cls, meth, mty))
        body, _ = draw(expr_of(mty.rng, sigs,
                               {"x": mty.dom, "self": TCls(cls)}, depth=2))
        parts.append(EDef(cls, meth, Premethod("x", body)))
        arg, _ = draw(expr_of(mty.dom, sigs, {}, depth=1))
        main = ECall(ENew(cls), meth, arg)
        parts.append(main)
        main_tau = mty.rng
    return seq(*parts), dict(sigs), main, main_tau


@given(programs())
@settings(max_examples=150, deadline=None)
def test_generated_main_is_well_typed_under_declared_table(case):
    """The generator only builds main expressions that type check under
    the table the prelude declares — the JIT analog of the soundness
    hypothesis — and the tracked static type matches the derivation."""
    _, tt, main, main_tau = case
    deriv = type_check(tt, {}, main)
    assert deriv.tau == main_tau


@given(programs())
@settings(max_examples=150, deadline=None)
def test_progress_value_or_permitted_blame(case):
    """Progress: never stuck; outcome is a value or a permitted blame."""
    program, *_ = case
    machine = Machine()
    outcome = run_or_diverge(machine, program)
    if outcome is None:
        return  # diverges: permitted
    assert isinstance(outcome, (Value, Blame))
    check_blame_permitted(outcome)


@given(programs())
@settings(max_examples=30, deadline=None)
def test_preservation_invariants_along_the_run(case):
    """Preservation (executable projection): cache consistency
    X ∼ (TT, DT) and environment well-formedness hold along the run.

    Re-deriving every cached check is expensive, so invariants are sampled
    every few steps plus at the final state."""
    program, *_ = case
    machine = Machine()

    def sampled(m):
        if m.steps % 7 == 0:
            check_all(m)

    outcome = run_or_diverge(machine, program, on_step=sampled)
    check_all(machine)
    if outcome is not None:
        assert isinstance(outcome, (Value, Blame))


@given(programs())
@settings(max_examples=60, deadline=None)
def test_final_value_type_preserved(case):
    """A produced value's run-time type is ≤ the main expression's static
    type (the soundness theorem's conclusion, under the declared table)."""
    program, tt, main, main_tau = case
    machine = Machine()
    outcome = run_or_diverge(machine, program)
    if isinstance(outcome, Value):
        assert subtype(type_of(outcome), main_tau)


@given(programs())
@settings(max_examples=60, deadline=None)
def test_caching_does_not_change_outcomes(case):
    """The cache is a pure optimization: cached and uncached runs agree."""
    program, *_ = case
    cached = run_or_diverge(Machine(), program)
    uncached = Machine()

    class _NoCache(dict):
        def __setitem__(self, key, value):
            pass

    uncached.cache = _NoCache()
    result = run_or_diverge(uncached, program)
    if cached is None or result is None:
        assert cached is None and result is None
        return
    assert type(cached) is type(result)
    if isinstance(cached, Value):
        assert cached == result
    else:
        assert cached.reason == result.reason
