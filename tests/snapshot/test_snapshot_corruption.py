"""Snapshot corruption: every damaged load degrades to a clean cold
start — never a half-warm engine.

The fault layer damages a real saved snapshot two ways:

* **truncation at every boundary** — the mid-write / mid-transfer
  snapshot, swept across the file so the cut lands inside the envelope,
  inside a record, and between records;
* **deterministic byte flips** — the bit-rotted snapshot, which may
  still parse as JSON but carry garbage records.

After *any* damaged load the engine must either be untouched
(``loaded=False``) or rolled back to empty caches, and in both cases it
must then serve traffic correctly from a cold start, oracle-identically
to an undamaged world.
"""

import json

import pytest

from repro.core import Engine, EngineConfig
from repro.faults import corrupt_file, truncate_file
from repro.serving import build_serving_world, scenario_thunks
from repro.snapshot import load_snapshot, save_snapshot

pytestmark = pytest.mark.requires_caches

THRESHOLD = 4


def _warm_snapshot(tmp_path, app="countries", passes=8):
    engine = Engine(EngineConfig(specialize_threshold=THRESHOLD))
    world = build_serving_world(app, engine=engine)
    thunks = scenario_thunks(world, "read")
    for _ in range(passes):
        for thunk in thunks:
            thunk()
    path = tmp_path / "warm.json"
    save_snapshot(engine, str(path))
    return path


def _fresh_engine():
    return Engine(EngineConfig(specialize_threshold=THRESHOLD))


def _fresh_world(app="countries"):
    engine = _fresh_engine()
    world = build_serving_world(app, engine=engine)
    return engine, world


def _expected_outcomes(app="countries"):
    from repro.concurrency import normalize_outcome
    oracle_engine = Engine(disable_caches=True)
    world = build_serving_world(app, engine=oracle_engine)
    return [normalize_outcome(t) for t in scenario_thunks(world, "read")]


def _baseline(engine):
    """The engine's pre-load warm state (world construction itself
    derives a check or two — a fresh world is not cache-empty)."""
    return (set(engine.cache.keys()),
            {key for key, _ in engine._plans.items()},
            len(engine._specializer) if engine._specializer else 0)


def _assert_cold_start_clean(engine, world, report, expected,
                             baseline):
    """The post-damage contract: no half-warm state, correct traffic."""
    from repro.concurrency import normalize_outcome
    if not report.loaded:
        # Rejected or rolled back: nothing *restored* may remain — the
        # engine holds at most what it held before the load attempt.
        base_checks, base_plans, base_promoted = baseline
        assert set(engine.cache.keys()) <= base_checks
        assert {key for key, _ in engine._plans.items()} <= base_plans
        if engine._specializer is not None:
            assert len(engine._specializer) <= base_promoted
    thunks = scenario_thunks(world, "read")
    assert [normalize_outcome(t) for t in thunks] == expected


def test_truncation_at_every_boundary_degrades_to_cold_start(tmp_path):
    path = _warm_snapshot(tmp_path)
    blob = path.read_bytes()
    size = len(blob)
    assert size > 0
    expected = _expected_outcomes()
    # Sweep cut points across the whole file (bounded stride so big
    # snapshots don't make the sweep quadratic), plus the exact edges.
    stride = max(1, size // 64)
    cuts = sorted(set(range(0, size, stride)) | {0, 1, size - 1})
    for cut in cuts:
        path.write_bytes(blob)
        original = truncate_file(str(path), cut)
        assert original == size
        engine, world = _fresh_world()
        baseline = _baseline(engine)
        report = load_snapshot(engine, str(path))
        # A truncated JSON document can never pass the envelope.
        assert not report.loaded, f"cut at {cut} byte(s) loaded"
        _assert_cold_start_clean(engine, world, report, expected,
                                 baseline)


def test_byte_flips_never_leave_a_half_warm_engine(tmp_path):
    path = _warm_snapshot(tmp_path)
    blob = path.read_bytes()
    expected = _expected_outcomes()
    for seed in range(24):
        path.write_bytes(blob)
        corrupt_file(str(path), seed=seed, flips=4)
        engine, world = _fresh_world()
        baseline = _baseline(engine)
        report = load_snapshot(engine, str(path))
        # Whatever happened — rejected, partially skipped with per-entry
        # validation, or rolled back — traffic must be exactly correct.
        _assert_cold_start_clean(engine, world, report, expected,
                                 baseline)


def test_structurally_broken_record_rolls_back_wholesale():
    """A snapshot that passes the envelope but blows up mid-restore
    (here: a record of the wrong shape) must roll the engine back to a
    clean cold start, not stop half-warm."""
    engine = Engine(EngineConfig(specialize_threshold=THRESHOLD))
    world = build_serving_world("countries", engine=engine)
    thunks = scenario_thunks(world, "read")
    for _ in range(8):
        for thunk in thunks:
            thunk()
    doc = save_snapshot(engine)
    assert doc["plans"], "warmup built no plans"
    # Damage a *late* plan record so earlier ones restore first.
    broken = json.loads(json.dumps(doc))
    broken["plans"][-1]["key"] = None  # tuple(None) -> TypeError
    engine2, world2 = _fresh_world()
    baseline = _baseline(engine2)
    report = load_snapshot(engine2, broken)
    assert not report.loaded
    assert "rolled back" in report.reason
    assert report.errors
    _assert_cold_start_clean(engine2, world2, report,
                             _expected_outcomes(), baseline)


def test_midfile_truncation_that_still_parses_is_rejected(tmp_path):
    """Truncating to 0 bytes (torn create) and to valid-JSON prefixes
    like '{}' must both reject without touching the engine."""
    path = tmp_path / "warm.json"
    expected = _expected_outcomes()
    for content in (b"", b"{}", b"null", b'{"format": "wrong"}'):
        path.write_bytes(content)
        engine, world = _fresh_world()
        baseline = _baseline(engine)
        report = load_snapshot(engine, str(path))
        assert not report.loaded
        _assert_cold_start_clean(engine, world, report, expected,
                                 baseline)
