"""Warm-state snapshot tests: round-trip fidelity and fail-closed loads.

The contract under test (see ``repro.snapshot.warmstate``):

* save→load on an identical world restores the check verdicts, call
  plans (profiles, kwargs layouts, hit counts), and promotion
  decisions the warm engine had — and a warm-started engine serves
  traffic without re-paying static checks, while staying
  outcome-identical to a cache-free oracle;
* any mismatch — corrupt JSON, wrong version, a world whose registry /
  hierarchy / config drifted since the save — is rejected *wholesale*
  with the engine untouched, because a cold start is always sound and
  a partially-trusted snapshot is not.
"""

import json

import pytest

from repro.core import Engine, EngineConfig
from repro.serving import build_serving_world, scenario_thunks
from repro.snapshot import (
    SNAPSHOT_VERSION, load_snapshot, save_snapshot, world_fingerprint,
)

pytestmark = pytest.mark.requires_caches

#: low threshold so warmup traffic promotes (when specialization is on).
THRESHOLD = 4
WARM_PASSES = 10


def _warm_world(app="countries", passes=WARM_PASSES):
    engine = Engine(EngineConfig(specialize_threshold=THRESHOLD))
    world = build_serving_world(app, engine=engine)
    thunks = scenario_thunks(world, "read")
    for _ in range(passes):
        for thunk in thunks:
            thunk()
    return engine, world, thunks


def _fresh_world(app="countries"):
    engine = Engine(EngineConfig(specialize_threshold=THRESHOLD))
    world = build_serving_world(app, engine=engine)
    return engine, world


def _outcomes(thunks, passes=3):
    from repro.concurrency import normalize_outcome
    return [normalize_outcome(thunk)
            for _ in range(passes) for thunk in thunks]


# -- round trip --------------------------------------------------------------


def test_roundtrip_restores_checks_and_plans():
    engine, _, _ = _warm_world()
    doc = save_snapshot(engine)
    assert doc["checks"] and doc["plans"]

    engine2, world2 = _fresh_world()
    report = load_snapshot(engine2, doc)
    assert report.loaded, report
    assert report.checks_restored == len(doc["checks"])
    assert report.checks_skipped == 0
    assert report.plans_restored == len(doc["plans"])
    assert report.plans_skipped == 0
    assert not report.errors

    # identical verdicts: every saved entry is present again.
    assert engine2.cache.keys() >= {
        tuple(rec["key"]) for rec in doc["checks"]}

    # identical plans: shape bits and learned state survive.
    warm_plans = dict(engine._plans.items())
    restored_plans = dict(engine2._plans.items())
    for key, plan in warm_plans.items():
        other = restored_plans.get(key)
        assert other is not None, key
        assert other.checked == plan.checked, key
        assert other.sig_owner == plan.sig_owner, key
        assert other.hits == plan.hits, key
        names = lambda profiles: {  # noqa: E731 - local shorthand
            tuple(cls.__name__ for cls in p) for p in profiles}
        assert names(other.profiles) == names(plan.profiles), key

    # traffic on the restored engine pays zero further static checks.
    thunks2 = scenario_thunks(world2, "read")
    before = engine2.stats_snapshot()["static_checks"]
    _outcomes(thunks2)
    assert engine2.stats_snapshot()["static_checks"] == before


@pytest.mark.requires_specialization
def test_roundtrip_restores_promotions_eagerly():
    """A promoted site must come back promoted *before* any traffic —
    the whole point of warm-starting is skipping the promotion storm."""
    engine, _, _ = _warm_world()
    promoted = [key for key, _ in engine._specializer.promoted_entries()]
    assert promoted, "warmup never promoted; threshold regression?"

    doc = save_snapshot(engine)
    engine2, world2 = _fresh_world()
    report = load_snapshot(engine2, doc)
    assert report.loaded and report.promotions > 0, report
    for key in promoted:
        assert engine2._specializer.is_promoted(key), key

    # and the promoted world still answers traffic with zero new
    # promotions (stats prove the wrappers are the restored ones).
    before = engine2.stats_snapshot()["promotions"]
    _outcomes(scenario_thunks(world2, "read"))
    assert engine2.stats_snapshot()["promotions"] == before


def test_warm_started_engine_is_oracle_identical():
    """The differential acceptance bar, warm-start edition: traffic on
    a snapshot-warmed engine equals a fresh cache-free oracle world."""
    engine, _, _ = _warm_world()
    doc = save_snapshot(engine)

    engine2, world2 = _fresh_world()
    assert load_snapshot(engine2, doc).loaded
    warm_outcomes = _outcomes(scenario_thunks(world2, "read"))

    oracle_world = build_serving_world(
        "countries", engine=Engine(disable_caches=True))
    oracle_outcomes = _outcomes(scenario_thunks(oracle_world, "read"))
    assert warm_outcomes == oracle_outcomes


def test_snapshot_file_roundtrip(tmp_path):
    engine, _, _ = _warm_world()
    path = tmp_path / "warm.json"
    save_snapshot(engine, str(path))

    engine2, _ = _fresh_world()
    report = load_snapshot(engine2, str(path))
    assert report.loaded, report
    assert report.checks_restored > 0 and report.plans_restored > 0


# -- fail-closed loads -------------------------------------------------------


def test_stale_fingerprint_rejected_with_cold_start():
    """A world that drifted since the save (here: one extra field type,
    which real deploys produce constantly) must reject the snapshot
    wholesale and leave the engine ready for a clean cold start."""
    engine, _, _ = _warm_world()
    doc = save_snapshot(engine)

    engine2, world2 = _fresh_world()
    engine2.types.add_field("Country", "motto", "String")
    plans_before = len(engine2._plans)
    report = load_snapshot(engine2, doc)
    assert not report.loaded
    assert "fingerprint" in report.reason
    assert report.checks_restored == 0 and report.plans_restored == 0
    assert len(engine2._plans) == plans_before

    # the cold start it fell back to still works and matches the oracle
    cold = _outcomes(scenario_thunks(world2, "read"), passes=1)
    oracle_world = build_serving_world(
        "countries", engine=Engine(disable_caches=True))
    oracle = _outcomes(scenario_thunks(oracle_world, "read"), passes=1)
    assert cold == oracle


def test_fingerprint_tracks_hierarchy_and_config():
    engine, _, _ = _warm_world()
    with engine.write_lock:
        fp = world_fingerprint(engine)

    # same build recipe -> same fingerprint (or snapshots never load)
    engine2, _ = _fresh_world()
    with engine2.write_lock:
        assert world_fingerprint(engine2) == fp

    # a semantics-affecting config difference must change it
    engine3 = Engine(EngineConfig(specialize_threshold=THRESHOLD,
                                  strict_nil=True))
    build_serving_world("countries", engine=engine3)
    with engine3.write_lock:
        assert world_fingerprint(engine3) != fp


def test_truncated_snapshot_rejected(tmp_path):
    engine, _, _ = _warm_world()
    path = tmp_path / "warm.json"
    save_snapshot(engine, str(path))
    blob = path.read_text()
    path.write_text(blob[:len(blob) // 2])

    engine2, _ = _fresh_world()
    report = load_snapshot(engine2, str(path))
    assert not report.loaded
    assert "unreadable" in report.reason


def test_corrupt_and_malformed_documents_rejected(tmp_path):
    engine, _, _ = _warm_world()
    doc = save_snapshot(engine)
    engine2, _ = _fresh_world()

    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json at all")
    assert not load_snapshot(engine2, str(garbage)).loaded

    missing = tmp_path / "does-not-exist.json"
    assert not load_snapshot(engine2, str(missing)).loaded

    wrong_format = dict(doc, format="something-else")
    assert not load_snapshot(engine2, wrong_format).loaded

    future = dict(doc, version=SNAPSHOT_VERSION + 1)
    report = load_snapshot(engine2, future)
    assert not report.loaded and "version" in report.reason

    not_lists = dict(doc, plans={"oops": 1})
    assert not load_snapshot(engine2, not_lists).loaded

    # after all those rejections the engine is still load-capable
    assert load_snapshot(engine2, doc).loaded


def test_load_into_cache_free_oracle_is_refused():
    """The oracle's value is recomputing everything; warm-starting it
    would be self-defeating.  The load must refuse, not half-apply."""
    engine, _, _ = _warm_world()
    doc = save_snapshot(engine)
    oracle = Engine(disable_caches=True)
    build_serving_world("countries", engine=oracle)
    report = load_snapshot(oracle, doc)
    assert not report.loaded
    assert "cache-free" in report.reason


def test_old_version_snapshot_rejected_with_cold_start():
    """Format-version evolution is fail-closed in *both* directions: a
    version-1 snapshot (single ``guard_profile`` tuples, no
    ``chain_conforms``, no callee re-validation) is rejected wholesale —
    never half-decoded under version-2 rules — and the engine cold-starts
    cleanly, oracle-identical."""
    engine, _, _ = _warm_world()
    doc = save_snapshot(engine)
    old = dict(doc, version=SNAPSHOT_VERSION - 1)

    engine2, world2 = _fresh_world()
    plans_before = len(engine2._plans)
    report = load_snapshot(engine2, old)
    assert not report.loaded and "version" in report.reason
    assert report.checks_restored == 0 and report.plans_restored == 0
    assert report.elisions_seeded == 0
    assert len(engine2._plans) == plans_before

    cold = _outcomes(scenario_thunks(world2, "read"), passes=1)
    oracle_world = build_serving_world(
        "countries", engine=Engine(disable_caches=True))
    oracle = _outcomes(scenario_thunks(oracle_world, "read"), passes=1)
    assert cold == oracle


def _pinned_world(engine):
    """A hot ``%any``-typed site whose frame verdict holds only under
    the learned Integer profile: the elision carries a pinned guard
    chain (``guard_profiles``), exercising the version-2 fields."""
    cls = type("SnapPinned", (object,), {})
    body = "def relay(self, x):\n    return x + 1\n"
    namespace = {}
    exec(body, namespace)  # noqa: S102 - fixed test template
    engine.define_method(cls, "relay", namespace["relay"],
                         sig="(%any) -> %any", check=True, source=body)
    return cls


def _pinned_elision(engine):
    return next(el for _, el in engine._specializer.promoted_entries()
                if el is not None and el.guard_profiles is not None)


@pytest.mark.requires_elision
def test_pinned_guard_chains_roundtrip():
    """The version-2 elision fields — multi-profile ``guard_profiles``
    chains and ``chain_conforms`` — survive save/load bit-for-bit, and
    the warm-started wrapper still enforces the pinned chain (an
    off-profile argument class bails to the generic tier)."""
    engine = Engine(EngineConfig(specialize_threshold=THRESHOLD))
    obj = _pinned_world(engine)()
    for i in range(THRESHOLD + 8):
        obj.relay(i)
    saved = _pinned_elision(engine)
    assert saved.guard_profiles == ((int,),)
    assert saved.chain_conforms
    doc = save_snapshot(engine)
    rec = next(r for r in doc["elisions"]
               if r.get("guard_profiles") is not None)
    assert rec["chain_conforms"] is True

    engine2 = Engine(EngineConfig(specialize_threshold=THRESHOLD))
    cls2 = _pinned_world(engine2)
    report = load_snapshot(engine2, doc)
    assert report.loaded, report
    assert report.elisions_seeded >= 1
    restored = _pinned_elision(engine2)
    assert restored.guard_profiles == saved.guard_profiles
    assert restored.chain_conforms == saved.chain_conforms
    assert restored.frame == saved.frame

    # the restored pinned wrapper serves on-profile traffic and the
    # off-profile class takes the generic path with identical outcomes
    obj2 = cls2()
    assert obj2.relay(5) == 6
    with pytest.raises(TypeError):
        obj2.relay("s")      # generic tier: plain host TypeError
    assert obj2.relay(6) == 7  # site healthy afterwards


@pytest.mark.requires_elision
def test_drifted_callee_fingerprint_voids_only_the_verdict():
    """An elision record whose followed-callee fingerprint no longer
    matches the live CFG registry is *not* seeded (the inter-procedural
    facts were derived against a different body) — but the load itself
    still succeeds and the site still re-promotes from scratch."""
    def build(engine):
        cls = type("SnapChain", (object,), {})
        for name, body in (
                ("helper", "def helper(self, x):\n    return x + 1\n"),
                ("relay", "def relay(self, x):\n"
                          "    return self.helper(x)\n")):
            namespace = {}
            exec(body, namespace)  # noqa: S102 - fixed test template
            engine.define_method(
                cls, name, namespace[name], sig="(%any) -> %any",
                # helper is annotated-but-unchecked: relay's analysis
                # cannot trust its signature and recurses into its
                # body, recording the fingerprinted callee link.
                check=(name == "relay"), source=body)
        return cls

    engine = Engine(EngineConfig(specialize_threshold=THRESHOLD))
    obj = build(engine)()
    for i in range(THRESHOLD + 8):
        obj.relay(i)
    doc = save_snapshot(engine)
    doc = json.loads(json.dumps(doc))  # deep copy
    seedable = [r for r in doc["elisions"] if r.get("callees")]
    assert seedable, "chain world produced no callee-bearing elisions"
    for rec in seedable:
        rec["callees"][0][2] = "0" * 64

    engine2 = Engine(EngineConfig(specialize_threshold=THRESHOLD))
    cls2 = build(engine2)
    report = load_snapshot(engine2, doc)
    assert report.loaded, report
    assert report.elisions_seeded == len(doc["elisions"]) - len(seedable)
    # the un-seeded site still works and re-derives its own verdict
    obj2 = cls2()
    for i in range(THRESHOLD + 8):
        assert obj2.relay(i) == i + 1
    assert any(el is not None and el.callees
               for _, el in engine2._specializer.promoted_entries())


def test_body_drift_skips_only_the_stale_entry():
    """Per-entity soundness: if one method body changed since the save
    (same signatures, so the world fingerprint still matches), only
    that entry is skipped — the rest of the snapshot still warms."""
    engine, _, _ = _warm_world()
    doc = save_snapshot(engine)
    doc = json.loads(json.dumps(doc))  # deep copy

    engine2, _ = _fresh_world()
    # pick a victim the fresh world has not already checked during its
    # own build/seed traffic, then sabotage its body fingerprint
    pre = engine2.cache.keys()
    victim = next(rec for rec in doc["checks"]
                  if tuple(rec["key"]) not in pre)
    victim["body_fp"] = "0" * 64

    report = load_snapshot(engine2, doc)
    assert report.loaded
    assert report.checks_skipped == 1
    assert report.checks_restored == len(doc["checks"]) - 1
    assert tuple(victim["key"]) not in engine2.cache.keys()
