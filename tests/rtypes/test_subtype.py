"""Subtyping, join, and hierarchy tests."""

import pytest

from repro.rtypes import (
    ANY, BOOL, BOT, NIL,
    ClassHierarchy, NominalType, default_hierarchy, equivalent, is_subtype,
    join, join_all, parse_type,
)


@pytest.fixture
def hier():
    h = default_hierarchy()
    h.add_class("User")
    h.add_class("AdminUser", "User")
    h.add_class("Talk")
    return h


def le(s, t, h, **kw):
    return is_subtype(parse_type(s), parse_type(t), h, **kw)


class TestNominal:
    def test_reflexive(self, hier):
        assert le("User", "User", hier)

    def test_subclass(self, hier):
        assert le("AdminUser", "User", hier)
        assert not le("User", "AdminUser", hier)

    def test_unrelated(self, hier):
        assert not le("User", "Talk", hier)

    def test_everything_below_object(self, hier):
        for t in ["User", "Integer", "%bool", "Array<Integer>",
                  "[Integer, String]", ":sym", "(A) -> B"]:
            assert le(t, "Object", hier), t

    def test_numeric_tower(self, hier):
        assert le("Integer", "Numeric", hier)
        assert le("Float", "Numeric", hier)
        assert not le("Integer", "Float", hier)
        assert not le("Numeric", "Integer", hier)


class TestNil:
    def test_nil_below_everything_paper_rule(self, hier):
        assert le("nil", "User", hier)
        assert le("nil", "Array<Integer>", hier)

    def test_strict_nil_mode(self, hier):
        assert not le("nil", "User", hier, strict_nil=True)
        assert le("nil", "nil", hier, strict_nil=True)
        assert le("nil", "NilClass", hier, strict_nil=True)
        assert le("nil", "User or nil", hier, strict_nil=True)

    def test_class_not_below_nil(self, hier):
        assert not le("User", "nil", hier)


class TestSpecials:
    def test_any_both_directions(self, hier):
        assert le("%any", "User", hier)
        assert le("User", "%any", hier)

    def test_bot_below_everything(self, hier):
        assert le("%bot", "User", hier)
        assert le("%bot", "nil", hier)
        assert not le("User", "%bot", hier)

    def test_bool_boolean_interchangeable(self, hier):
        assert le("%bool", "Boolean", hier)
        assert le("Boolean", "%bool", hier)


class TestUnionsIntersections:
    def test_arm_into_union(self, hier):
        assert le("Integer", "Integer or String", hier)

    def test_union_into_wider_union(self, hier):
        assert le("Integer or String", "Integer or String or nil", hier)

    def test_union_not_into_arm(self, hier):
        assert not le("Integer or String", "Integer", hier)

    def test_union_left_requires_all_arms(self, hier):
        assert le("Integer or Float", "Numeric", hier)
        assert not le("Integer or User", "Numeric", hier)

    def test_intersection_right_requires_all(self, hier):
        assert le("Integer", "Integer and Numeric", hier)
        assert not le("Integer", "Integer and String", hier)

    def test_intersection_left_any_arm(self, hier):
        assert le("Integer and String", "String", hier)


class TestGenerics:
    def test_covariant_args(self, hier):
        assert le("Array<Integer>", "Array<Numeric>", hier)
        assert not le("Array<Numeric>", "Array<Integer>", hier)

    def test_instantiated_below_raw(self, hier):
        assert le("Array<Integer>", "Array", hier)

    def test_raw_below_instantiated_via_any(self, hier):
        # Raw generics default to %any parameters (paper section 4).
        assert le("Array", "Array<Integer>", hier)

    def test_different_bases(self, hier):
        assert not le("Array<Integer>", "Hash<Symbol, Integer>", hier)

    def test_tuple_below_array(self, hier):
        assert le("[Integer, Integer]", "Array<Integer>", hier)
        assert le("[Integer, String]", "Array<Integer or String>", hier)
        assert not le("[Integer, String]", "Array<Integer>", hier)

    def test_tuple_pointwise(self, hier):
        assert le("[Integer, String]", "[Numeric, String]", hier)
        assert not le("[Integer]", "[Integer, Integer]", hier)

    def test_finite_hash_below_hash(self, hier):
        assert le("{a: Integer, b: String}", "Hash<Symbol, Integer or String>",
                  hier)
        assert not le("{a: Integer}", "Hash<Symbol, String>", hier)

    def test_finite_hash_width(self, hier):
        assert le("{a: Integer, b: String}", "{a: Integer}", hier)
        assert not le("{a: Integer}", "{a: Integer, b: String}", hier)


class TestSingletons:
    def test_symbol_below_symbol_class(self, hier):
        assert le(":owner", "Symbol", hier)

    def test_int_singleton_below_integer(self, hier):
        assert le("5", "Integer", hier)
        assert le("5", "Numeric", hier)

    def test_distinct_singletons(self, hier):
        assert not le(":a", ":b", hier)
        assert not le("Symbol", ":a", hier)


class TestMethodTypes:
    def test_contravariant_params(self, hier):
        assert le("(Numeric) -> Integer", "(Integer) -> Integer", hier)
        assert not le("(Integer) -> Integer", "(Numeric) -> Integer", hier)

    def test_covariant_return(self, hier):
        assert le("() -> Integer", "() -> Numeric", hier)
        assert not le("() -> Numeric", "() -> Integer", hier)

    def test_optional_param_accepts_fewer(self, hier):
        assert le("(?Integer) -> nil", "() -> nil", hier)
        assert le("(?Integer) -> nil", "(Integer) -> nil", hier)

    def test_block_contravariance(self, hier):
        assert le("() { (Integer) -> Numeric } -> nil",
                  "() { (Integer) -> Integer } -> nil", hier)
        assert not le("() { (Integer) -> Integer } -> nil",
                      "() { (Integer) -> Numeric } -> nil", hier)

    def test_method_requiring_block_not_blockless(self, hier):
        assert not le("() { () -> nil } -> nil", "() -> nil", hier)
        assert le("() ?{ () -> nil } -> nil", "() -> nil", hier)

    def test_method_below_proc(self, hier):
        assert le("(Integer) -> String", "Proc", hier)


class TestStructural:
    def test_structural_width(self, hier):
        assert le("[a: () -> Integer, b: () -> String]",
                  "[a: () -> Integer]", hier)
        assert not le("[a: () -> Integer]",
                      "[a: () -> Integer, b: () -> String]", hier)

    def test_nominal_below_structural_with_resolver(self, hier):
        sigs = {("User", "to_s"): parse_type("() -> String")}

        def resolver(cls, meth):
            return sigs.get((cls, meth))

        s = parse_type("User")
        t = parse_type("[to_s: () -> String]")
        assert is_subtype(s, t, hier, resolver=resolver)
        t2 = parse_type("[missing: () -> String]")
        assert not is_subtype(s, t2, hier, resolver=resolver)


class TestJoin:
    def test_same_type(self, hier):
        t = parse_type("Integer")
        assert join(t, t, hier) == t

    def test_nil_identity(self, hier):
        # Paper (TIf): nil ⊔ τ = τ.
        t = parse_type("User")
        assert join(NIL, t, hier) == t
        assert join(t, NIL, hier) == t

    def test_subtype_absorbed(self, hier):
        assert join(parse_type("Integer"), parse_type("Numeric"),
                    hier) == parse_type("Numeric")

    def test_unrelated_becomes_union(self, hier):
        j = join(parse_type("Integer"), parse_type("String"), hier)
        assert j == parse_type("Integer or String")

    def test_bot_identity(self, hier):
        t = parse_type("User")
        assert join(BOT, t, hier) == t

    def test_join_all(self, hier):
        j = join_all([parse_type("Integer"), parse_type("Float"),
                      parse_type("nil")], hier)
        assert equivalent(j, parse_type("Integer or Float"), hier)

    def test_join_all_empty_raises(self, hier):
        with pytest.raises(ValueError):
            join_all([], hier)

    def test_upper_bound_property(self, hier):
        cases = ["Integer", "String", "Integer or nil", "Array<Integer>",
                 "%bool", ":sym"]
        for a in cases:
            for b in cases:
                j = join(parse_type(a), parse_type(b), hier)
                assert is_subtype(parse_type(a), j, hier), (a, b)
                assert is_subtype(parse_type(b), j, hier), (a, b)


class TestHierarchy:
    def test_mixin_lookup_order(self):
        h = ClassHierarchy()
        h.add_class("C")
        h.add_module("M")
        h.include_module("C", "M")
        assert list(h.ancestors("C"))[:2] == ["C", "M"]
        assert h.is_subclass("C", "M")

    def test_unknown_superclass_autoregistered(self):
        h = ClassHierarchy()
        h.add_class("Child", "Parent")
        assert h.is_subclass("Child", "Parent")
        assert h.is_subclass("Parent", "Object")

    def test_reregister_same_parent_ok(self):
        h = ClassHierarchy()
        h.add_class("A", "Object")
        h.add_class("A", "Object")

    def test_reregister_changed_parent_rejected(self):
        h = ClassHierarchy()
        h.add_class("A", "Object")
        h.add_class("B", "Object")
        with pytest.raises(ValueError):
            h.add_class("A", "B")

    def test_generic_arity(self):
        h = default_hierarchy()
        assert h.generic_arity("Array") == 1
        assert h.typevars("Hash") == ("k", "v")
        assert h.generic_arity("String") == 0

    def test_snapshot_isolated(self):
        h = default_hierarchy()
        snap = h.snapshot()
        snap.add_class("OnlyInSnap")
        assert snap.is_known("OnlyInSnap")
        assert not h.is_known("OnlyInSnap")
