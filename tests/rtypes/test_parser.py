"""Parser tests for the RDL-style type language."""

import pytest

from repro.rtypes import (
    ANY, BOOL, BOT, NIL, SELF,
    BlockType, ClassObjectType, FiniteHashType, GenericType, IntersectionType,
    MethodType, NominalType, OptionalParam, RequiredParam, SingletonType,
    StructuralType, TupleType, TypeSyntaxError, UnionType, VarType,
    VarargParam, parse_method_type, parse_type,
)


class TestAtoms:
    def test_nominal(self):
        assert parse_type("User") == NominalType("User")

    def test_specials(self):
        assert parse_type("%any") is ANY
        assert parse_type("%bool") is BOOL
        assert parse_type("%bot") is BOT

    def test_nil_and_self(self):
        assert parse_type("nil") == NIL
        assert parse_type("self") == SELF

    def test_type_variable(self):
        assert parse_type("t") == VarType("t")
        assert parse_type("elem") == VarType("elem")

    def test_symbol_singleton(self):
        t = parse_type(":owner")
        assert t == SingletonType("owner", "Symbol")

    def test_integer_singleton(self):
        assert parse_type("42") == SingletonType(42, "Integer")

    def test_class_object(self):
        assert parse_type("Class<Talk>") == ClassObjectType("Talk")

    def test_unknown_special_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_type("%foo")

    def test_garbage_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_type("User @ Talk")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_type("User Talk")


class TestCompound:
    def test_generic(self):
        t = parse_type("Array<Integer>")
        assert t == GenericType("Array", (NominalType("Integer"),))

    def test_generic_two_args(self):
        t = parse_type("Hash<Symbol, String>")
        assert t == GenericType(
            "Hash", (NominalType("Symbol"), NominalType("String")))

    def test_nested_generic(self):
        t = parse_type("Array<Array<Integer>>")
        inner = GenericType("Array", (NominalType("Integer"),))
        assert t == GenericType("Array", (inner,))

    def test_union(self):
        t = parse_type("Integer or String")
        assert isinstance(t, UnionType)
        assert set(t.arms) == {NominalType("Integer"), NominalType("String")}

    def test_union_flattens(self):
        assert parse_type("A or (B or C)") == parse_type("A or B or C")

    def test_union_equality_order_insensitive(self):
        assert parse_type("A or B") == parse_type("B or A")

    def test_intersection(self):
        t = parse_type("A and B")
        assert isinstance(t, IntersectionType)

    def test_tuple(self):
        t = parse_type("[Integer, String]")
        assert t == TupleType((NominalType("Integer"), NominalType("String")))

    def test_empty_tuple(self):
        assert parse_type("[]") == TupleType(())

    def test_finite_hash(self):
        t = parse_type("{name: String, age: Integer}")
        assert isinstance(t, FiniteHashType)
        assert t.field_map() == {"name": NominalType("String"),
                                 "age": NominalType("Integer")}

    def test_finite_hash_order_insensitive_equality(self):
        assert parse_type("{a: A, b: B}") == parse_type("{b: B, a: A}")

    def test_structural(self):
        t = parse_type("[to_s: () -> String]")
        assert isinstance(t, StructuralType)
        sig = t.method_map()["to_s"]
        assert sig.ret == NominalType("String")

    def test_grouping_parens(self):
        t = parse_type("(Integer or String)")
        assert isinstance(t, UnionType)


class TestMethodTypes:
    def test_simple(self):
        mt = parse_method_type("(User) -> %bool")
        assert mt.params == (RequiredParam(NominalType("User")),)
        assert mt.ret is BOOL

    def test_no_args(self):
        mt = parse_method_type("() -> nil")
        assert mt.params == ()
        assert mt.ret == NIL

    def test_optional_param(self):
        mt = parse_method_type("(Integer, ?String) -> nil")
        assert mt.params[1] == OptionalParam(NominalType("String"))
        assert mt.min_arity() == 1
        assert mt.max_arity() == 2

    def test_vararg_param(self):
        mt = parse_method_type("(*Integer) -> nil")
        assert mt.params[0] == VarargParam(NominalType("Integer"))
        assert mt.max_arity() is None
        assert mt.accepts_arity(0) and mt.accepts_arity(5)

    def test_param_type_at_vararg(self):
        mt = parse_method_type("(String, *Integer) -> nil")
        assert mt.param_type_at(0) == NominalType("String")
        assert mt.param_type_at(1) == NominalType("Integer")
        assert mt.param_type_at(7) == NominalType("Integer")

    def test_block(self):
        mt = parse_method_type("() { (T) -> U } -> nil")
        assert mt.block is not None
        assert not mt.block.optional
        assert mt.block.sig.params == (RequiredParam(NominalType("T")),)

    def test_optional_block(self):
        mt = parse_method_type("() ?{ (T) -> U } -> nil")
        assert mt.block is not None and mt.block.optional

    def test_union_return(self):
        mt = parse_method_type("() -> Integer or nil")
        assert isinstance(mt.ret, UnionType)

    def test_method_type_as_union_arm(self):
        t = parse_type("Integer or ((String) -> nil)")
        assert isinstance(t, UnionType)
        assert any(isinstance(a, MethodType) for a in t.arms)

    def test_named_parameter_ignored(self):
        mt = parse_method_type("(Integer x, String y) -> nil")
        assert [p.ty for p in mt.params] == [NominalType("Integer"),
                                             NominalType("String")]

    def test_rejects_plain_type(self):
        with pytest.raises(TypeSyntaxError):
            parse_method_type("Integer")

    def test_paper_figure1_types(self):
        """The exact signatures Fig. 1's belongs_to hook generates."""
        getter = parse_method_type("() -> User")
        setter = parse_method_type("(User) -> User")
        assert getter.ret == NominalType("User")
        assert setter.params == (RequiredParam(NominalType("User")),)


ROUND_TRIP_CASES = [
    "User",
    "%any", "%bool", "%bot", "nil", "self",
    ":owner", "42",
    "t",
    "Class<Talk>",
    "Array<Integer>",
    "Hash<Symbol, String or nil>",
    "[Integer, String]",
    "{name: String, age: Integer or nil}",
    "[to_s: () -> String, size: () -> Integer]",
    "Integer or String or nil",
    "(A and B) or C",
    "(User) -> %bool",
    "(Integer, ?String, *Float) -> Array<Integer>",
    "() { (t) -> u } -> nil",
    "() ?{ () -> %any } -> self",
    "(Fixnum or Float) -> t",
]


@pytest.mark.parametrize("text", ROUND_TRIP_CASES)
def test_print_parse_round_trip(text):
    t = parse_type(text)
    assert parse_type(str(t)) == t
