"""The memoized subtype relation agrees with the uncached one, and its
cache is invalidated by hierarchy mutations.

The memo (``ClassHierarchy.subtype_cache``) is keyed ``(s, t,
strict_nil)`` and cleared on every hierarchy bump; interning makes the
keys cheap.  A wrong cache would silently corrupt both static checking and
dynamic argument checks, so this file property-tests it against a
cache-disabled twin hierarchy on randomized type pairs.
"""

from hypothesis import given, settings, strategies as st

from repro.rtypes import (
    ANY, BOOL, NIL,
    GenericType, MethodType, NominalType, RequiredParam, SingletonType,
    TupleType, VarType,
    default_hierarchy, is_subtype, union_of,
)


def _extended_hierarchy():
    h = default_hierarchy()
    for name in ("User", "Talk", "Widget"):
        h.add_class(name)
    h.add_class("AdminUser", "User")
    return h


#: the memoizing hierarchy under test and a structurally identical twin
#: with the cache disabled (the "fresh uncached engine" oracle).
HOT = _extended_hierarchy()
COLD = _extended_hierarchy()
COLD.subtype_cache.enabled = False

_NOMINALS = ["Object", "Integer", "Float", "Numeric", "String", "Symbol",
             "User", "AdminUser", "Talk", "Widget"]

base_types = st.one_of(
    st.sampled_from([ANY, BOOL, NIL]),
    st.sampled_from(_NOMINALS).map(NominalType),
    st.sampled_from(["a", "b", "owner"]).map(
        lambda s: SingletonType(s, "Symbol")),
    st.integers(min_value=-5, max_value=5).map(
        lambda i: SingletonType(i, "Integer")),
    st.sampled_from(["t", "u"]).map(VarType),
)


def _method(args):
    params, ret = args
    return MethodType(tuple(RequiredParam(p) for p in params), None, ret)


def compound(children):
    return st.one_of(
        st.lists(children, min_size=1, max_size=3).map(
            lambda ts: GenericType("Array", (ts[0],))),
        st.lists(children, min_size=2, max_size=3).map(
            lambda ts: union_of(*ts)),
        st.lists(children, min_size=0, max_size=3).map(
            lambda ts: TupleType(tuple(ts))),
        st.tuples(st.lists(children, max_size=2), children).map(_method),
    )


types = st.recursive(base_types, compound, max_leaves=8)


@given(types, types, st.booleans())
@settings(max_examples=400)
def test_memoized_agrees_with_uncached(s, t, strict_nil):
    assert (is_subtype(s, t, HOT, strict_nil=strict_nil)
            == is_subtype(s, t, COLD, strict_nil=strict_nil))


@given(types, types)
@settings(max_examples=100)
def test_memoized_queries_are_stable(s, t):
    first = is_subtype(s, t, HOT)
    assert all(is_subtype(s, t, HOT) == first for _ in range(3))


def test_cache_counts_hits():
    h = _extended_hierarchy()
    s, t = NominalType("AdminUser"), NominalType("User")
    assert is_subtype(s, t, h)
    before = h.subtype_cache.hits
    assert is_subtype(s, t, h)
    assert h.subtype_cache.hits == before + 1


def test_hierarchy_mutation_invalidates_cached_answers():
    h = default_hierarchy()
    h.add_class("Animal")
    cat, animal = NominalType("Cat"), NominalType("Animal")
    # Cat is unknown: the (cached) answer is False.
    assert not is_subtype(cat, animal, h)
    h.add_class("Cat", "Animal")
    # The registration cleared the memo; the stale False must not survive.
    assert is_subtype(cat, animal, h)


def test_mixin_inclusion_invalidates_cached_answers():
    h = default_hierarchy()
    h.add_class("Post")
    h.add_module("Commentable")
    post, mod = NominalType("Post"), NominalType("Commentable")
    assert not is_subtype(post, mod, h)
    h.include_module("Post", "Commentable")
    assert is_subtype(post, mod, h)


def test_bounded_cache_stays_correct_when_full():
    h = _extended_hierarchy()
    h.subtype_cache.max_entries = 8  # force wraparound
    pairs = [(NominalType(a), NominalType(b))
             for a in _NOMINALS for b in _NOMINALS]
    expected = [is_subtype(s, t, COLD) for s, t in pairs]
    for _ in range(2):  # second sweep re-queries through evictions
        got = [is_subtype(s, t, h) for s, t in pairs]
        assert got == expected
