"""The memoized subtype relation agrees with the uncached one, and its
cache is invalidated by hierarchy mutations.

The memo (``ClassHierarchy.subtype_cache``) is a bounded LRU keyed
``(s, t, strict_nil)``; each line records the class names its computation
consulted, and a hierarchy mutation evicts exactly the lines whose reads
it touched (dependency-tracked invalidation).  A wrong cache would
silently corrupt both static checking and dynamic argument checks, so
this file property-tests it against a cache-disabled twin hierarchy on
randomized type pairs and pins the LRU behavior (hot pairs stay resident
across overflow; overflow evicts cold lines instead of clearing).
"""

from hypothesis import given, settings, strategies as st

from repro.rtypes import (
    ANY, BOOL, NIL,
    GenericType, MethodType, NominalType, RequiredParam, SingletonType,
    TupleType, VarType,
    default_hierarchy, is_subtype, union_of,
)


def _extended_hierarchy():
    h = default_hierarchy()
    for name in ("User", "Talk", "Widget"):
        h.add_class(name)
    h.add_class("AdminUser", "User")
    return h


#: the memoizing hierarchy under test and a structurally identical twin
#: with the cache disabled (the "fresh uncached engine" oracle).
HOT = _extended_hierarchy()
COLD = _extended_hierarchy()
COLD.subtype_cache.enabled = False

_NOMINALS = ["Object", "Integer", "Float", "Numeric", "String", "Symbol",
             "User", "AdminUser", "Talk", "Widget"]

base_types = st.one_of(
    st.sampled_from([ANY, BOOL, NIL]),
    st.sampled_from(_NOMINALS).map(NominalType),
    st.sampled_from(["a", "b", "owner"]).map(
        lambda s: SingletonType(s, "Symbol")),
    st.integers(min_value=-5, max_value=5).map(
        lambda i: SingletonType(i, "Integer")),
    st.sampled_from(["t", "u"]).map(VarType),
)


def _method(args):
    params, ret = args
    return MethodType(tuple(RequiredParam(p) for p in params), None, ret)


def compound(children):
    return st.one_of(
        st.lists(children, min_size=1, max_size=3).map(
            lambda ts: GenericType("Array", (ts[0],))),
        st.lists(children, min_size=2, max_size=3).map(
            lambda ts: union_of(*ts)),
        st.lists(children, min_size=0, max_size=3).map(
            lambda ts: TupleType(tuple(ts))),
        st.tuples(st.lists(children, max_size=2), children).map(_method),
    )


types = st.recursive(base_types, compound, max_leaves=8)


@given(types, types, st.booleans())
@settings(max_examples=400)
def test_memoized_agrees_with_uncached(s, t, strict_nil):
    assert (is_subtype(s, t, HOT, strict_nil=strict_nil)
            == is_subtype(s, t, COLD, strict_nil=strict_nil))


@given(types, types)
@settings(max_examples=100)
def test_memoized_queries_are_stable(s, t):
    first = is_subtype(s, t, HOT)
    assert all(is_subtype(s, t, HOT) == first for _ in range(3))


def test_cache_counts_hits():
    h = _extended_hierarchy()
    s, t = NominalType("AdminUser"), NominalType("User")
    assert is_subtype(s, t, h)
    before = h.subtype_cache.hits
    assert is_subtype(s, t, h)
    assert h.subtype_cache.hits == before + 1


def test_hierarchy_mutation_invalidates_cached_answers():
    h = default_hierarchy()
    h.add_class("Animal")
    cat, animal = NominalType("Cat"), NominalType("Animal")
    # Cat is unknown: the (cached) answer is False.
    assert not is_subtype(cat, animal, h)
    h.add_class("Cat", "Animal")
    # The registration cleared the memo; the stale False must not survive.
    assert is_subtype(cat, animal, h)


def test_mixin_inclusion_invalidates_cached_answers():
    h = default_hierarchy()
    h.add_class("Post")
    h.add_module("Commentable")
    post, mod = NominalType("Post"), NominalType("Commentable")
    assert not is_subtype(post, mod, h)
    h.include_module("Post", "Commentable")
    assert is_subtype(post, mod, h)


def test_bounded_cache_stays_correct_when_full():
    h = _extended_hierarchy()
    h.subtype_cache.max_entries = 8  # force wraparound
    pairs = [(NominalType(a), NominalType(b))
             for a in _NOMINALS for b in _NOMINALS]
    expected = [is_subtype(s, t, COLD) for s, t in pairs]
    for _ in range(2):  # second sweep re-queries through evictions
        got = [is_subtype(s, t, h) for s, t in pairs]
        assert got == expected
    assert h.subtype_cache.evictions > 0


def test_lru_keeps_hot_pairs_resident_across_overflow():
    """The old full-drop-on-overflow policy evicted the working set with
    the garbage; the LRU keeps a repeatedly-queried pair cached while
    cold churn flows through."""
    h = _extended_hierarchy()
    cache = h.subtype_cache
    cache.max_entries = 16
    hot_s, hot_t = NominalType("AdminUser"), NominalType("User")
    assert is_subtype(hot_s, hot_t, h)
    cold = [(NominalType(a), NominalType(b))
            for a in _NOMINALS for b in _NOMINALS]
    for s, t in cold:
        is_subtype(s, t, h)
        is_subtype(hot_s, hot_t, h)  # keep the hot pair recently used
    assert cache.evictions > 0
    before = cache.hits
    assert is_subtype(hot_s, hot_t, h)
    assert cache.hits == before + 1  # still resident: a hit, not a recompute


def test_mutation_evicts_only_consulting_lines():
    """Dependency-tracked eviction: registering a new class drops the
    lines that observed its absence, not the unrelated working set."""
    h = _extended_hierarchy()
    ghost, user = NominalType("Ghost"), NominalType("User")
    admin = NominalType("AdminUser")
    assert not is_subtype(ghost, user, h)   # reads: Ghost (unknown)
    assert is_subtype(admin, user, h)       # reads: AdminUser
    h.add_class("Ghost", "User")
    # the stale negative answer fell...
    assert is_subtype(ghost, user, h)
    # ...but the unrelated line survived as a live cache hit
    before = h.subtype_cache.hits
    assert is_subtype(admin, user, h)
    assert h.subtype_cache.hits == before + 1


def test_memo_hit_replays_reads_into_active_trace():
    """An outer trace must see the classes a memoized sub-answer
    consulted, or a derivation's hierarchy edges would be incomplete."""
    h = _extended_hierarchy()
    s, t = NominalType("AdminUser"), NominalType("User")
    assert is_subtype(s, t, h)  # prime the memo
    with h.trace() as reads:
        assert is_subtype(s, t, h)  # pure memo hit
    assert "AdminUser" in reads
