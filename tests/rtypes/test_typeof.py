"""Tests for run-time value typing and deep conformance checks."""

import datetime

import pytest

from repro.rtypes import (
    BOOL, NIL,
    ClassObjectType, GenericType, NominalType, SingletonType, Sym,
    class_name_of, default_hierarchy, parse_type, type_of, value_conforms,
)


@pytest.fixture
def hier():
    h = default_hierarchy()
    h.add_class("User")
    return h


class Widget:
    pass


class TestSym:
    def test_interned(self):
        assert Sym("owner") is Sym("owner")

    def test_distinct(self):
        assert Sym("a") is not Sym("b")

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Sym("a").name = "b"

    def test_str_and_repr(self):
        assert str(Sym("abc")) == "abc"
        assert repr(Sym("abc")) == ":abc"
        assert Sym("abc").to_s() == "abc"


class TestTypeOf:
    def test_none(self):
        assert type_of(None) == NIL

    def test_bool_before_int(self):
        assert type_of(True) is BOOL
        assert type_of(1) == NominalType("Integer")

    def test_scalars(self):
        assert type_of(1.5) == NominalType("Float")
        assert type_of("x") == NominalType("String")
        assert type_of(Sym("s")) == SingletonType("s", "Symbol")

    def test_homogeneous_list(self):
        assert type_of([1, 2, 3]) == parse_type("Array<Integer>")

    def test_heterogeneous_list(self):
        t = type_of([1, "a"])
        assert t == parse_type("Array<Integer or String>")

    def test_empty_list(self):
        assert type_of([]) == parse_type("Array<%any>")

    def test_dict(self):
        t = type_of({Sym("a"): 1})
        assert isinstance(t, GenericType) and t.name == "Hash"

    def test_range(self):
        assert type_of(range(3)) == parse_type("Range<Integer>")

    def test_time(self):
        assert type_of(datetime.datetime(2016, 4, 13)) == NominalType("Time")

    def test_user_class_instance(self):
        assert type_of(Widget()) == NominalType("Widget")

    def test_class_object(self):
        assert type_of(Widget) == ClassObjectType("Widget")

    def test_callable(self):
        assert type_of(lambda x: x) == NominalType("Proc")

    def test_class_name_of(self):
        assert class_name_of(None) == "NilClass"
        assert class_name_of(True) == "Boolean"
        assert class_name_of([1]) == "Array"
        assert class_name_of({}) == "Hash"
        assert class_name_of(Widget()) == "Widget"


class TestValueConforms:
    def test_scalar(self, hier):
        assert value_conforms(1, parse_type("Integer"), hier)
        assert not value_conforms("x", parse_type("Integer"), hier)

    def test_nil_paper_rule(self, hier):
        # nil conforms to any type unless strict (paper's nil <= A).
        assert value_conforms(None, parse_type("User"), hier)
        assert not value_conforms(None, parse_type("User"), hier,
                                  strict_nil=True)
        assert value_conforms(None, parse_type("User or nil"), hier,
                              strict_nil=True)

    def test_deep_array_check(self, hier):
        # The paper: rdl_cast iterates through elements for generic casts.
        assert value_conforms([1, 2], parse_type("Array<Integer>"), hier)
        assert not value_conforms([1, "x"], parse_type("Array<Integer>"),
                                  hier)

    def test_deep_hash_check(self, hier):
        ok = {Sym("a"): "x"}
        assert value_conforms(ok, parse_type("Hash<Symbol, String>"), hier)
        assert not value_conforms({Sym("a"): 1},
                                  parse_type("Hash<Symbol, String>"), hier)

    def test_tuple(self, hier):
        assert value_conforms([1, "a"], parse_type("[Integer, String]"), hier)
        assert not value_conforms([1], parse_type("[Integer, String]"), hier)

    def test_finite_hash(self, hier):
        v = {Sym("name"): "bob", Sym("age"): 3}
        assert value_conforms(v, parse_type("{name: String, age: Integer}"),
                              hier)
        assert not value_conforms(v, parse_type("{name: Integer}"), hier)

    def test_finite_hash_missing_nilable_field(self, hier):
        v = {Sym("name"): "bob"}
        assert value_conforms(v, parse_type("{name: String, age: Integer or nil}"),
                              hier)

    def test_union(self, hier):
        assert value_conforms(1, parse_type("Integer or String"), hier)
        assert value_conforms("s", parse_type("Integer or String"), hier)
        assert not value_conforms(1.5, parse_type("Integer or String"), hier)

    def test_singleton_symbol(self, hier):
        assert value_conforms(Sym("up"), parse_type(":up"), hier)
        assert not value_conforms(Sym("down"), parse_type(":up"), hier)

    def test_bool(self, hier):
        assert value_conforms(True, parse_type("%bool"), hier)
        assert not value_conforms(1, parse_type("%bool"), hier)

    def test_any(self, hier):
        assert value_conforms(object(), parse_type("%any"), hier)

    def test_class_object(self, hier):
        assert value_conforms(Widget, parse_type("Class<Widget>"), hier)
        assert not value_conforms(Widget(), parse_type("Class<Widget>"), hier)

    def test_proc(self, hier):
        assert value_conforms(lambda: 1, parse_type("() -> Integer"), hier)
        assert not value_conforms(3, parse_type("() -> Integer"), hier)

    def test_structural(self, hier):
        assert value_conforms("abc", parse_type("[upper: () -> String]"), hier)
        assert not value_conforms("abc", parse_type("[quack: () -> nil]"),
                                  hier)

    def test_user_instance(self, hier):
        hier.add_class("Widget")
        assert value_conforms(Widget(), parse_type("Widget"), hier)
        assert value_conforms(Widget(), parse_type("Object"), hier)
        assert not value_conforms(Widget(), parse_type("User"), hier)
