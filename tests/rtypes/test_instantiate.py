"""Tests for type-variable substitution and receiver instantiation."""

import pytest

from repro.rtypes import (
    ANY,
    NominalType, VarType, default_hierarchy, free_vars,
    instantiate_for_receiver, parse_method_type, parse_type,
    receiver_bindings, resolve_self, substitute,
)


@pytest.fixture
def hier():
    return default_hierarchy()


class TestFreeVars:
    def test_simple(self):
        assert free_vars(parse_type("t")) == {"t"}

    def test_nested(self):
        assert free_vars(parse_type("Array<Hash<k, v>>")) == {"k", "v"}

    def test_method(self):
        assert free_vars(parse_type("(t) { (u) -> t } -> Array<t>")) == {
            "t", "u"}

    def test_closed(self):
        assert free_vars(parse_type("Array<Integer>")) == set()


class TestSubstitute:
    def test_var(self):
        assert substitute(parse_type("t"),
                          {"t": NominalType("Integer")}) == parse_type(
            "Integer")

    def test_inside_generic(self):
        out = substitute(parse_type("Array<t>"), {"t": parse_type("String")})
        assert out == parse_type("Array<String>")

    def test_inside_method(self):
        mt = parse_method_type("(t, ?t, *t) { (t) -> t } -> t")
        out = substitute(mt, {"t": parse_type("Integer")})
        assert out == parse_method_type(
            "(Integer, ?Integer, *Integer) { (Integer) -> Integer } -> Integer")

    def test_partial(self):
        out = substitute(parse_type("Hash<k, v>"), {"k": parse_type("Symbol")})
        assert out == parse_type("Hash<Symbol, v>")

    def test_unions(self):
        out = substitute(parse_type("t or nil"), {"t": parse_type("User")})
        assert out == parse_type("User or nil")

    def test_empty_mapping_identity(self):
        t = parse_type("Array<t>")
        assert substitute(t, {}) is t


class TestResolveSelf:
    def test_plain(self):
        assert resolve_self(parse_type("self"),
                            parse_type("User")) == parse_type("User")

    def test_in_method(self):
        mt = parse_method_type("(self) -> self")
        out = resolve_self(mt, parse_type("User"))
        assert out == parse_method_type("(User) -> User")

    def test_in_generic(self):
        out = resolve_self(parse_type("Array<self>"), parse_type("User"))
        assert out == parse_type("Array<User>")


class TestReceiverBindings:
    def test_instantiated_generic(self, hier):
        b = receiver_bindings(parse_type("Array<Integer>"), hier)
        assert b == {"t": parse_type("Integer")}

    def test_hash(self, hier):
        b = receiver_bindings(parse_type("Hash<Symbol, String>"), hier)
        assert b == {"k": parse_type("Symbol"), "v": parse_type("String")}

    def test_raw_generic_defaults_to_any(self, hier):
        # Paper: instances of generic classes get their raw type by default.
        b = receiver_bindings(parse_type("Array"), hier)
        assert b == {"t": ANY}

    def test_non_generic(self, hier):
        assert receiver_bindings(parse_type("String"), hier) == {}

    def test_tuple_binds_union(self, hier):
        b = receiver_bindings(parse_type("[Integer, String]"), hier)
        assert b == {"t": parse_type("Integer or String")}

    def test_finite_hash_binds_key_and_value(self, hier):
        b = receiver_bindings(parse_type("{a: Integer}"), hier)
        assert b["k"] == parse_type(":a")
        assert b["v"] == parse_type("Integer")


class TestInstantiateForReceiver:
    def test_array_push(self, hier):
        push = parse_method_type("(t) -> Array<t>")
        out = instantiate_for_receiver(push, parse_type("Array<Integer>"),
                                       hier)
        assert out == parse_method_type("(Integer) -> Array<Integer>")

    def test_array_paper_example(self, hier):
        """Array#[] from paper section 4: '(Fixnum or Float) -> t'."""
        hier.add_class("Fixnum", "Integer")
        idx = parse_method_type("(Fixnum or Float) -> t")
        out = instantiate_for_receiver(idx, parse_type("Array<String>"), hier)
        assert out.ret == parse_type("String")

    def test_self_resolution(self, hier):
        dup = parse_method_type("() -> self")
        out = instantiate_for_receiver(dup, parse_type("String"), hier)
        assert out.ret == parse_type("String")

    def test_raw_receiver(self, hier):
        push = parse_method_type("(t) -> Array<t>")
        out = instantiate_for_receiver(push, parse_type("Array"), hier)
        assert out == parse_method_type("(%any) -> Array<%any>")
