"""Property-based tests (hypothesis) for the type-language substrate.

Invariants checked:

* print/parse round-trip for arbitrary generated types;
* subtyping is reflexive and transitive on generated samples;
* join is commutative (up to equivalence), idempotent, and an upper bound;
* substitution preserves free-variable accounting.
"""

from hypothesis import given, settings, strategies as st

from repro.rtypes import (
    ANY, BOOL, NIL,
    BlockType, GenericType, MethodType, NominalType, OptionalParam,
    RequiredParam, SingletonType, TupleType, VarType, VarargParam,
    default_hierarchy, equivalent, free_vars, is_subtype, join, parse_type,
    substitute, union_of,
)

HIER = default_hierarchy()
for _name in ("User", "Talk", "Widget"):
    HIER.add_class(_name)
HIER.add_class("AdminUser", "User")

_NOMINALS = ["Object", "Integer", "Float", "Numeric", "String", "Symbol",
             "User", "AdminUser", "Talk", "Widget"]

base_types = st.one_of(
    st.sampled_from([ANY, BOOL, NIL]),
    st.sampled_from(_NOMINALS).map(NominalType),
    st.sampled_from(["a", "b", "owner"]).map(
        lambda s: SingletonType(s, "Symbol")),
    st.integers(min_value=-5, max_value=5).map(
        lambda i: SingletonType(i, "Integer")),
    st.sampled_from(["t", "u"]).map(VarType),
)


def _method(args):
    params, ret = args
    return MethodType(tuple(RequiredParam(p) for p in params), None, ret)


def compound(children):
    return st.one_of(
        st.lists(children, min_size=1, max_size=3).map(
            lambda ts: GenericType("Array", (ts[0],))),
        st.lists(children, min_size=2, max_size=3).map(
            lambda ts: union_of(*ts)),
        st.lists(children, min_size=0, max_size=3).map(
            lambda ts: TupleType(tuple(ts))),
        st.tuples(st.lists(children, max_size=2), children).map(_method),
    )


types = st.recursive(base_types, compound, max_leaves=8)


@given(types)
@settings(max_examples=300)
def test_print_parse_round_trip(t):
    assert parse_type(str(t)) == t


@given(types)
@settings(max_examples=200)
def test_subtype_reflexive(t):
    assert is_subtype(t, t, HIER)


def _contains_any(t) -> bool:
    """True when %any occurs anywhere in ``t``.

    ``%any`` is RDL's *dynamic* type: compatibility with it is a consistency
    relation, which — like all gradual-typing consistency relations — is
    deliberately not transitive (``Array<%any> <= %any <= %bool`` must not
    imply ``Array<%any> <= %bool``).  Transitivity holds on the static
    fragment, which is what we test.
    """
    from repro.rtypes import (
        AnyType, GenericType, MethodType, TupleType, UnionType,
    )
    if isinstance(t, AnyType):
        return True
    if isinstance(t, GenericType):
        return any(_contains_any(a) for a in t.args)
    if isinstance(t, TupleType):
        return any(_contains_any(e) for e in t.elems)
    if isinstance(t, UnionType):
        return any(_contains_any(a) for a in t.arms)
    if isinstance(t, MethodType):
        return (any(_contains_any(p.ty) for p in t.params)
                or _contains_any(t.ret)
                or (t.block is not None and _contains_any(t.block.sig)))
    return False


@given(types, types, types)
@settings(max_examples=300)
def test_subtype_transitive_on_static_fragment(a, b, c):
    if any(_contains_any(t) for t in (a, b, c)):
        return
    if is_subtype(a, b, HIER) and is_subtype(b, c, HIER):
        assert is_subtype(a, c, HIER)


@given(types, types)
@settings(max_examples=300)
def test_join_is_upper_bound(a, b):
    j = join(a, b, HIER)
    assert is_subtype(a, j, HIER)
    assert is_subtype(b, j, HIER)


@given(types, types)
@settings(max_examples=200)
def test_join_commutative_up_to_equivalence(a, b):
    assert equivalent(join(a, b, HIER), join(b, a, HIER), HIER)


@given(types)
@settings(max_examples=200)
def test_join_idempotent(t):
    assert join(t, t, HIER) == t


@given(types)
@settings(max_examples=200)
def test_substitute_closes_variables(t):
    mapping = {v: NominalType("Integer") for v in free_vars(t)}
    assert free_vars(substitute(t, mapping)) == set()


@given(types, types)
@settings(max_examples=200)
def test_union_contains_arms(a, b):
    u = union_of(a, b)
    assert is_subtype(a, u, HIER)
    assert is_subtype(b, u, HIER)
