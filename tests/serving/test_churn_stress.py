"""Property-based stress: request traffic racing *Rails churn* — dev-mode
reloads and typegen re-annotation — instead of raw engine mutations.

The concurrent invalidation stress suite (``tests/core``) drives
``define_method`` / ``types.replace`` directly.  This harness drives the
same race through the serving substrate: a miniature Rails app whose
model methods are mutated by :class:`~repro.rails.reloader.Reloader`
version applies and :mod:`~repro.rails.typegen` regeneration while four
worker threads run reads and full create/read/destroy cycles.  Scripts
are phased (one mutation, then a concurrent call batch) so each phase's
outcome multiset must equal a cache-free, single-threaded oracle
replaying the same script; hypothesis shrinks any divergence."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Engine
from repro.rails import RailsApp
from repro.rails.reloader import AppVersion, Reloader
from repro.rails import typegen

WORKERS = 4
JOIN_S = 60.0

#: reload versions of Widget.label: behaviorally identical, behavior
#: changing (type-correct), and type-wrong (sig says Integer, body
#: returns String — the check must fail identically in both engines).
LABEL_VERSIONS = {
    "plain": ("() -> String",
              "def label(self):\n    return self.name\n"),
    "concat": ("() -> String",
               "def label(self):\n"
               "    nm = self.name\n"
               "    return '' + nm\n"),
    "shout": ("() -> String",
              "def label(self):\n    return self.name + '!'\n"),
    "badret": ("() -> Integer",
               "def label(self):\n    return self.name\n"),
}

#: retype targets for the generated attribute getters — including the
#: wrong one ("name" yields String, not Integer), which must surface as
#: the same static error in both engines, and the right one, which a
#: later typegen op silently repairs.
RETYPES = (
    ("name", "() -> String"),
    ("name", "() -> Integer"),
    ("qty", "() -> Integer"),
)

mutations = st.one_of(
    st.tuples(st.just("reload"), st.sampled_from(sorted(LABEL_VERSIONS))),
    st.tuples(st.just("retype"), st.sampled_from(RETYPES)),
    st.tuples(st.just("typegen")),
)

calls = st.lists(st.sampled_from(("label", "doubled", "cycle")),
                 min_size=1, max_size=6)

phases = st.lists(st.tuples(st.one_of(st.none(), mutations), calls),
                  min_size=1, max_size=5)


def _build_widget_app(engine):
    app = RailsApp(engine, view_cost=5)
    app.db.create_table(
        "widgets",
        ("name", "string", False),
        ("qty", "integer", False))
    hb = app.hb

    @app.register_model
    class Widget(app.Model):
        @hb.typed("() -> String")
        def label(self):
            return self.name

        @hb.typed("() -> Integer")
        def doubled(self):
            return self.qty * 2

    app.db.table("widgets").insert(name="seed", qty=21)
    reloader = Reloader(app)
    reloader.register_class(Widget)
    return app, Widget, reloader


def _apply_mutation(app, Widget, reloader, op):
    tag = op[0]
    try:
        if tag == "reload":
            sig, source = LABEL_VERSIONS[op[1]]
            version = AppVersion(f"stress-{op[1]}")
            version.add("Widget", "label", sig, source)
            reloader.apply(version)
        elif tag == "retype":
            method, sig = op[1]
            app.engine.types.replace("Widget", method, sig, check=True)
        elif tag == "typegen":
            schema = app.db.table("widgets").schema
            typegen.generate_attribute_types(app, Widget, schema)
            typegen.generate_finder_types(app, Widget, schema)
    except Exception:  # noqa: BLE001, S110 - a mutation that raises
        pass            # raises identically in both engines; the call
                        # outcomes are the compared observable.


def _outcome(app, Widget, kind):
    try:
        if kind == "label":
            return ("ok", repr(Widget.find(1).label()))
        if kind == "doubled":
            return ("ok", repr(Widget.find(1).doubled()))
        # cycle: a self-contained create → read → destroy over a fresh
        # row; nothing id-dependent escapes into the outcome.
        w = Widget.create(name="tmp", qty=3)
        text = w.label()
        gone = w.destroy()
        return ("ok", repr((text, gone)))
    except Exception as exc:  # noqa: BLE001 - identity is the property
        return ("err", type(exc).__name__, str(exc))


def _replay_threaded(script):
    engine = Engine()
    app, Widget, reloader = _build_widget_app(engine)
    phase_outcomes = []
    for mutation, batch in script:
        if mutation is not None:
            _apply_mutation(app, Widget, reloader, mutation)
        collected = []
        lock = threading.Lock()

        def worker(batch=batch):
            mine = [_outcome(app, Widget, kind) for kind in batch]
            with lock:
                collected.extend(mine)

        workers = [threading.Thread(target=worker, daemon=True)
                   for _ in range(WORKERS)]
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=JOIN_S)
        assert not any(t.is_alive() for t in workers), "stress deadlock"
        phase_outcomes.append(sorted(collected))
    return phase_outcomes


def _replay_oracle(script):
    engine = Engine(disable_caches=True)
    app, Widget, reloader = _build_widget_app(engine)
    phase_outcomes = []
    for mutation, batch in script:
        if mutation is not None:
            _apply_mutation(app, Widget, reloader, mutation)
        collected = []
        for _ in range(WORKERS):
            collected.extend(_outcome(app, Widget, kind)
                             for kind in batch)
        phase_outcomes.append(sorted(collected))
    return phase_outcomes


@pytest.mark.requires_threads
@given(phases)
@settings(max_examples=10, deadline=None)
def test_traffic_racing_rails_churn_agrees_with_oracle(script):
    assert _replay_threaded(script) == _replay_oracle(script)
