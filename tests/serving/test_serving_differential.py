"""Differential verification of the serving workloads: every
write-heavy / mixed scenario must produce the exact outcome multiset of
a cache-free oracle — single-threaded and under N-thread churn.

The recipes' disjoint-resource discipline is what makes the comparison
exact rather than statistical: each write thunk runs a self-contained
create→read→update→destroy cycle over resources no other thunk can
observe, with autoincrement ids masked, so outcomes are
interleaving-independent by construction.  These tests are the proof
that the discipline actually holds for all three apps."""

from collections import Counter

import pytest

from repro.core import Engine
from repro.serving import (
    ServingScenario, build_serving_world, run_scenario, scenario_thunks,
)

APPS = ["boxroom", "countries", "rolify"]
MIXES = ["write", "mixed"]

#: small-world knobs: fast views, no artificial io wait, modest volume.
CFG = {"view_cost": 10}


def _cfg(app):
    """Fast-view knobs where the builder supports them (countries has
    no view layer)."""
    return None if app == "countries" else CFG


def _outcomes(world, mix):
    """One sequential pass over the scenario schedule."""
    from repro.concurrency.driver import normalize_outcome
    results = []
    for thunk in scenario_thunks(world, mix):
        results.append(normalize_outcome(thunk))
    return results


# -- single-threaded: cached engine vs cache-free oracle, exact order --------


@pytest.mark.requires_caches
@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("mix", MIXES)
def test_sequential_outcomes_match_cache_free_oracle(app, mix):
    """With one thread there is no interleaving to hide behind: the
    cached engine must agree with the cache-free oracle outcome-for-
    outcome, in order, over repeated passes (covering cold and warm
    cache states)."""
    cached = build_serving_world(app, cfg=_cfg(app))
    oracle = build_serving_world(
        app, engine=Engine(disable_caches=True), cfg=_cfg(app))
    for _ in range(3):
        assert _outcomes(cached, mix) == _outcomes(oracle, mix)


# -- threaded: multiset equality vs both oracles -----------------------------


@pytest.mark.requires_threads
@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("mix", MIXES)
def test_threaded_scenario_matches_both_oracles(app, mix):
    report = run_scenario(ServingScenario(
        name=f"test-{app}-{mix}", app=app, mix=mix, threads=4,
        requests=64, io_wait_s=0.0, warm_rounds=2, cfg=_cfg(app),
    ))
    assert report.crashes == []
    assert report.errors == 0
    assert report.completed == report.requests
    assert report.oracle_match, (
        f"{app}/{mix}: threaded outcomes diverged from the "
        f"single-threaded warm-engine replay")
    assert report.oracle_match_cache_free, (
        f"{app}/{mix}: threaded outcomes diverged from the "
        f"cache-free oracle")


@pytest.mark.requires_threads
@pytest.mark.parametrize("app", ["boxroom", "rolify"])
def test_write_heavy_under_full_churn_is_oracle_identical(app):
    """The headline acceptance criterion: write-heavy traffic from 4
    threads while reloader / typegen / retype mutators run from
    dedicated threads still reproduces the cache-free oracle's multiset
    exactly, with zero request errors."""
    report = run_scenario(ServingScenario(
        name=f"test-{app}-write-churn", app=app, mix="write", threads=4,
        requests=80, io_wait_s=0.001, churn="full",
        churn_interval_s=0.002, warm_rounds=2, cfg=_cfg(app),
    ))
    assert report.crashes == []
    assert report.errors == 0
    assert report.churn_applied > 0, "mutator threads never ran"
    assert report.oracle_match
    assert report.oracle_match_cache_free


@pytest.mark.requires_threads
def test_countries_mixed_under_retype_churn():
    report = run_scenario(ServingScenario(
        name="test-countries-churn", app="countries", mix="mixed",
        threads=4, requests=64, io_wait_s=0.001, churn="retype",
        churn_interval_s=0.002, warm_rounds=2,
    ))
    assert report.crashes == []
    assert report.errors == 0
    assert report.churn_applied > 0
    assert report.oracle_match
    assert report.oracle_match_cache_free


# -- exact stats totals ------------------------------------------------------


@pytest.mark.requires_threads
def test_request_accounting_is_exact():
    """Bookkeeping must be exact, not approximate: every scheduled
    request completes exactly once and is timed exactly once."""
    scenario = ServingScenario(
        name="test-accounting", app="boxroom", mix="mixed", threads=4,
        requests=64, io_wait_s=0.0, warm_rounds=1, cfg=CFG)
    report = run_scenario(scenario)
    assert report.completed == scenario.requests
    assert report.latency.count == scenario.requests
    # With no reservoir overflow the summary is exact and every sample
    # is a real request.
    assert report.latency.exact
    assert report.latency.sampled == scenario.requests
    assert report.latency.max >= report.latency.p999 >= report.latency.p50


@pytest.mark.requires_caches
def test_warm_schedule_is_deterministic_and_cached():
    """Two warm sequential passes over the same mixed schedule produce
    identical outcome multisets, and the warm pass is served with
    strictly fewer fresh typechecks than the cold one (the caches are
    actually carrying the traffic)."""
    world = build_serving_world("boxroom", cfg=CFG)
    stats = world.engine.stats

    def pass_multiset():
        return Counter(_outcomes(world, "mixed"))

    cold_checks = stats.static_checks
    first = pass_multiset()
    cold_delta = stats.static_checks - cold_checks

    warm_checks = stats.static_checks
    second = pass_multiset()
    warm_delta = stats.static_checks - warm_checks

    assert first == second
    assert warm_delta < cold_delta, (
        f"warm pass re-checked {warm_delta} bodies vs {cold_delta} cold "
        f"— caches are not serving the schedule")
