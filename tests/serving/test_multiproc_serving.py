"""Pre-fork multi-process serving: harness, merge, and soundness tests.

The multi-process mode forks N workers over one warm parent world
(request thunks are closures over live app objects — deliberately
unpicklable, so ``fork`` inheritance is the transport).  These tests
pin down the contract end to end:

* every worker completes its round-robin schedule slice and ships its
  outcomes, latency reservoir, and stats delta back over the queue;
* merged reservoirs yield *exact* aggregate percentiles when nothing
  overflowed (sample count == completed requests);
* each worker's outcome multiset equals a cache-free oracle replay of
  that worker's exact schedule indices — the differential soundness
  bar, per process;
* a snapshot-warmed fleet pays strictly fewer promotions and static
  checks than a cold fleet on identical traffic.
"""

import pytest

from repro.concurrency import MultiProcessDriver, fork_available
from repro.core import Engine, EngineConfig
from repro.serving import (
    MultiProcScenario, build_serving_world, run_multiproc_scenario,
    scenario_thunks,
)
from repro.snapshot import save_snapshot

pytestmark = pytest.mark.requires_fork

WORKERS = 2
REQUESTS = 56
THRESHOLD = 6


def _small_scenario(**overrides):
    base = dict(name="test_run", app="countries", mix="read",
                workers=WORKERS, requests=REQUESTS, io_wait_s=0.0,
                warm_rounds=1)
    base.update(overrides)
    return MultiProcScenario(**base)


def test_fork_available_matches_marker():
    # the suite only runs where fork exists; the helper must agree
    assert fork_available()


def test_all_workers_complete_and_report():
    report = run_multiproc_scenario(_small_scenario())
    assert not report.crashes, report.crashes
    assert report.completed == REQUESTS
    assert report.lost == 0
    assert report.errors == 0
    assert report.workers == WORKERS
    assert len(report.per_worker) == WORKERS
    assert report.rps > 0
    assert report.elapsed_s > 0


def test_crashed_worker_slice_is_counted_lost_not_vanished():
    """Regression: a killed worker's unfinished slice used to vanish
    from the report entirely (completed just came up short, with
    nothing accounting for the difference).  The ``lost`` field must
    make it explicit, and the identity completed + lost == requests
    must survive the crash."""
    from repro.faults import KILL, Fault, FaultPlan

    world = build_serving_world("countries")
    thunks = scenario_thunks(world, "read")
    plan = FaultPlan([Fault(KILL, 1, 0)])  # worker 1 dies immediately
    driver = MultiProcessDriver(thunks, workers=WORKERS,
                                requests=REQUESTS, engine=world.engine,
                                faults=plan)
    run = driver.run()
    slice_sizes = [len(driver.schedule_for(w)) for w in range(WORKERS)]
    assert run.crashes and any("worker 1" in c for c in run.crashes)
    assert run.lost == slice_sizes[1]
    assert run.completed + run.lost == REQUESTS
    # Exit code 87 (the injected kill) is diagnosed, not swallowed.
    assert any("exit code 87" in c for c in run.crashes)


def test_schedule_partition_is_exhaustive_and_disjoint():
    """The round-robin split hands every request index to exactly one
    worker — the property the per-worker oracle replay leans on."""
    world = build_serving_world("countries")
    thunks = scenario_thunks(world, "read")
    driver = MultiProcessDriver(thunks, workers=3, requests=40,
                                engine=world.engine)
    slices = [driver.schedule_indices(w) for w in range(3)]
    flat = [i for s in slices for i in s]
    assert sorted(flat) == list(range(40))


def test_merged_latency_is_exact_when_nothing_overflowed():
    report = run_multiproc_scenario(_small_scenario())
    assert report.latency.exact
    assert report.latency.count == REQUESTS
    assert report.latency.sampled == REQUESTS
    assert report.latency.p50 <= report.latency.p99 <= report.latency.max


def test_per_worker_outcomes_match_cache_free_oracle():
    """The acceptance bar: every forked worker's outcome multiset is
    identical to a cache-free oracle replaying its schedule slice."""
    report = run_multiproc_scenario(_small_scenario())
    assert report.worker_oracle_matches == [True] * WORKERS
    assert report.oracle_match_cache_free


def test_write_mix_stays_oracle_identical():
    """Write traffic mutates per-process app state; each fork starts
    from the same COW image, so the oracle replay still matches."""
    report = run_multiproc_scenario(_small_scenario(
        name="write_run", mix="write", warm_rounds=0))
    assert not report.crashes, report.crashes
    assert report.oracle_match_cache_free


def test_report_as_dict_shape():
    report = run_multiproc_scenario(_small_scenario())
    doc = report.as_dict()
    for key in ("app", "mix", "workers", "requests", "completed", "rps",
                "errors", "crashes", "first_pass_ms", "transitions",
                "snapshot_loaded", "oracle_match_cache_free", "p50_ms",
                "p99_ms", "p999_ms", "latency_exact"):
        assert key in doc, key
    assert doc["snapshot_loaded"] == 0  # cold run: no snapshot given
    assert doc["oracle_match_cache_free"] == 1
    assert set(doc["transitions"]) == {
        "static_checks", "cache_hits", "cache_misses", "promotions",
        "repromotions", "deopts", "elide_promotions",
        "plan_invalidations"}


@pytest.mark.requires_caches
@pytest.mark.requires_specialization
def test_warm_fleet_pays_less_than_cold_fleet(tmp_path):
    """The warm-start claim at test size: a snapshot-warmed fleet pays
    strictly fewer promotions and static checks than a cold fleet on
    the same traffic, and both stay oracle-identical."""
    engine = Engine(EngineConfig(specialize_threshold=THRESHOLD))
    world = build_serving_world("countries", engine=engine)
    thunks = scenario_thunks(world, "read")
    for _ in range(THRESHOLD * 2):
        for thunk in thunks:
            thunk()
    path = tmp_path / "warm.json"
    save_snapshot(engine, str(path))

    def fleet(name, snapshot):
        return run_multiproc_scenario(_small_scenario(
            name=name, warm_rounds=0, snapshot=snapshot,
            specialize_threshold=THRESHOLD))

    cold = fleet("cold", None)
    warm = fleet("warm", str(path))
    assert not cold.crashes and not warm.crashes
    assert cold.oracle_match_cache_free
    assert warm.oracle_match_cache_free
    assert warm.snapshot.get("loaded") is True

    cold_t, warm_t = cold.transitions, warm.transitions
    assert cold_t["promotions"] > warm_t["promotions"]
    assert cold_t["static_checks"] > warm_t["static_checks"]
    # the snapshot restored every verdict, so warm pays nothing at all
    assert warm_t["promotions"] == 0
    assert warm_t["static_checks"] == 0
    assert warm_t["deopts"] == 0


@pytest.mark.requires_caches
def test_stale_snapshot_falls_back_to_cold_start(tmp_path):
    """A fleet pointed at a stale snapshot must serve correctly anyway:
    the load fails closed, the workers cold-start, outcomes match."""
    engine = Engine(EngineConfig(specialize_threshold=THRESHOLD))
    world = build_serving_world("countries", engine=engine)
    thunks = scenario_thunks(world, "read")
    for thunk in thunks:
        thunk()
    path = tmp_path / "warm.json"
    save_snapshot(engine, str(path))
    blob = path.read_text()
    path.write_text(blob[:len(blob) // 2])  # truncate in transit

    report = run_multiproc_scenario(_small_scenario(
        name="stale", warm_rounds=0, snapshot=str(path),
        specialize_threshold=THRESHOLD))
    assert not report.crashes, report.crashes
    assert report.snapshot.get("loaded") is False
    assert report.oracle_match_cache_free
