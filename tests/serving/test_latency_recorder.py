"""Unit tests for the serving latency recorder: nearest-rank percentile
math on known distributions, exact per-thread reservoir merges, and the
no-allocation contract of the hot record path."""

import threading
import tracemalloc

import pytest

from repro.serving import LatencyRecorder, Reservoir, nearest_rank


# -- percentile math ---------------------------------------------------------


def test_nearest_rank_on_known_distribution():
    values = [float(v) for v in range(1, 1001)]  # 1..1000, already sorted
    assert nearest_rank(values, 0.50) == 500.0
    assert nearest_rank(values, 0.95) == 950.0
    assert nearest_rank(values, 0.99) == 990.0
    assert nearest_rank(values, 0.999) == 999.0
    assert nearest_rank(values, 1.0) == 1000.0


def test_nearest_rank_small_samples():
    assert nearest_rank([7.0], 0.5) == 7.0
    assert nearest_rank([7.0], 0.999) == 7.0
    # n=2: p50 is the first element (ceil(0.5*2)-1 == 0), p99 the second.
    assert nearest_rank([1.0, 9.0], 0.50) == 1.0
    assert nearest_rank([1.0, 9.0], 0.99) == 9.0


def test_nearest_rank_rejects_bad_input():
    with pytest.raises(ValueError):
        nearest_rank([], 0.5)
    with pytest.raises(ValueError):
        nearest_rank([1.0], 0.0)
    with pytest.raises(ValueError):
        nearest_rank([1.0], 1.5)


def test_summary_percentiles_are_values_that_occurred():
    # Nearest-rank percentiles must be actual samples, never
    # interpolations between two requests that never happened.
    rec = LatencyRecorder(capacity=64)
    samples = [0.001, 0.002, 0.004, 0.008, 0.5]
    for s in samples:
        rec.record(s)
    summary = rec.summary()
    for value in (summary.p50, summary.p95, summary.p99, summary.p999,
                  summary.max):
        assert value in samples
    assert summary.max == 0.5
    assert summary.count == len(samples)
    assert summary.exact


# -- per-thread reservoirs and merging ---------------------------------------


def test_per_thread_merge_is_exact():
    """Samples recorded from k threads merge into exactly the union —
    no loss, no duplication — and the percentiles equal those of the
    whole population computed directly."""
    rec = LatencyRecorder(capacity=4096)
    per_thread = 500
    threads = 4

    def worker(idx):
        for i in range(per_thread):
            # Disjoint value ranges per thread so loss/duplication of
            # any single sample is detectable in the merged multiset.
            rec.record(float(idx * per_thread + i))

    ts = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()

    merged = sorted(rec.merged_samples())
    expected = sorted(float(v) for v in range(threads * per_thread))
    assert merged == expected

    summary = rec.summary()
    assert summary.exact
    assert summary.count == summary.sampled == threads * per_thread
    assert summary.p50 == nearest_rank(expected, 0.50)
    assert summary.p99 == nearest_rank(expected, 0.99)
    assert summary.p999 == nearest_rank(expected, 0.999)
    assert summary.max == expected[-1]


def test_overflow_degrades_to_sampling_and_flags_inexact():
    res = Reservoir(capacity=128, seed=7)
    for i in range(1000):
        res.record(float(i))
    assert res.count == 1000
    assert res.overflowed
    kept = res.samples()
    assert len(kept) == 128
    assert set(kept) <= {float(i) for i in range(1000)}

    rec = LatencyRecorder(capacity=128)
    for i in range(1000):
        rec.record(float(i))
    summary = rec.summary()
    assert summary.count == 1000
    assert summary.sampled == 128
    assert not summary.exact


def test_reset_drops_samples_and_reregisters_threads():
    rec = LatencyRecorder(capacity=32)
    rec.record(1.0)
    assert rec.count == 1
    rec.reset()
    assert rec.count == 0
    rec.record(2.0)
    assert rec.merged_samples() == [2.0]


# -- the hot record path ------------------------------------------------------


def test_record_path_does_not_grow_the_buffer():
    rec = LatencyRecorder(capacity=256)
    rec.record(0.001)  # shard creation (the one allocating step)
    shard = rec._shards[0]
    buf_before = shard._buf
    for i in range(256 + 500):  # through overflow
        rec.record(0.002)
    # Same preallocated buffer object, same capacity: record() never
    # appends, reallocates, or swaps the buffer.
    assert shard._buf is buf_before
    assert len(shard._buf) == 256
    assert rec.count == 256 + 501


def test_record_path_allocates_nothing():
    """Below capacity, record() is a slot store + increment: recording
    N pre-existing floats must not allocate memory beyond noise."""
    rec = LatencyRecorder(capacity=4096)
    sample = 0.00123
    rec.record(sample)  # create the shard outside the measured window
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        for _ in range(2000):
            rec.record(sample)
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = after.compare_to(before, "filename")
    grown = sum(s.size_diff for s in stats if s.size_diff > 0)
    # tracemalloc's own bookkeeping shows up here; anything under ~2KB
    # is noise, while a per-record allocation would be >= 2000 * 8B.
    assert grown < 2048, f"record path allocated {grown} bytes"
    assert rec.count == 2001
