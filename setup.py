"""Setup shim for legacy tooling (`python setup.py ...` invocations).

All real metadata lives in pyproject.toml (PEP 621): name, version,
the src/ package layout, and the `test`/`lint` extras that CI installs
via `pip install -e .[test]`.
"""

from setuptools import setup

setup()
