"""The formal core calculus, executable (paper section 3).

Shows: just-in-time body checking at (EAppMiss), memoization at
(EAppHit), invalidation on re-definition (EDef) and re-annotation
(EType), and the three blame outcomes.

Run: python examples/core_calculus.py
"""

from repro.formalism import MTy, Blame, Machine, TCls, parse_expr, \
    type_check


def run(label, src):
    machine = Machine()
    result = machine.run(parse_expr(src))
    kind = "blame" if isinstance(result, Blame) else "value"
    print(f"{label:<34} -> {result} [{kind}] "
          f"(checks={machine.checks_performed}, "
          f"hits={machine.cache_hits}, phases={machine.phase_count()})")
    return machine


print("— caching: three calls, one check —")
run("id called three times",
    "type A.id : A -> A; def A.id(x) { x }; "
    "a = A.new; a.id(a); a.id(a); a.id(a)")

print("\n— def/type in either order —")
run("def before type",
    "def A.m(x) { A.new }; type A.m : nil -> A; A.new.m(nil)")

print("\n— invalidation (Definition 1) —")
run("re-typing B.g re-checks A.f",
    "type B.g : nil -> B; def B.g(x) { B.new }; "
    "type A.f : nil -> B; def A.f(x) { B.new.g(nil) }; "
    "a = A.new; a.f(nil); "
    "type B.g : nil -> B; "
    "a.f(nil)")

print("\n— the three blame outcomes —")
run("nil receiver",
    "type A.get : nil -> A; def A.get(x) { nil }; "
    "type A.m : nil -> nil; def A.m(x) { nil }; "
    "A.new.get(nil).m(nil)")
run("typed but undefined",
    "type A.m : nil -> nil; A.new.m(nil)")
run("body ill-typed at call",
    "type A.bad : nil -> B; def A.bad(x) { A.new }; A.new.bad(nil)")

print("\n— the paper's section-3 example: type-then-call in one body —")
machine = run("B.m typed inside A.run's body",
              "type A.run : nil -> B; "
              "def A.run(x) { (def B.m(y) { B.new }); "
              "(type B.m : nil -> B); B.new.m(nil) }; "
              "A.new.run(nil)")

print("\n— static typing of a top-level expression —")
table = {("A", "id"): MTy(TCls("A"), TCls("A"))}
deriv = type_check(table, {}, parse_expr("x = A.new; x.id(x)"))
print(f"|- x = A.new; x.id(x) : {deriv.tau}")
