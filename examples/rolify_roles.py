"""Fig. 2, end to end: user-code metaprogramming with checked bodies.

``define_dynamic_method`` creates ``is_<role>`` methods at run time; its
``pre`` contract generates their types; and because the generated closures
are *user code*, Hummingbird statically checks their bodies at first call
(types for the captured ``role_name`` come from the closure cell).

Run: python examples/rolify_roles.py
"""

from repro import Engine
from repro.rolify import build_rolify

engine = Engine()
hb = engine.api()
RolifyDynamic = build_rolify(engine)


class User(RolifyDynamic):
    def __init__(self, name):
        self.name = name


engine.register_class(User)

user = User("pat")
user.add_role("professor")

# Run-time method + type creation (the pre contract fires here):
user.define_dynamic_method("professor", None)
user.define_dynamic_method("student", None)

print("is_professor:", user.is_professor())   # body checked just in time
print("is_student:  ", user.is_student())

stats = engine.stats
print(f"static checks performed: {stats.static_checks}")
print(f"generated annotations:   {stats.generated_count()}")
print(f"phases (annotations interleaved with checks): {stats.phases()}")

sig = engine.types.lookup("User", "is_professor")
print(f"generated: User#is_professor : {sig.arms[0]} "
      f"(checked={sig.check}, generated={sig.generated})")
