"""Fig. 3, end to end: user-provided type signatures for Struct.

A struct field can hold any type by default; the user-written
``add_types`` zips member names with type strings and generates the
getter/setter signatures — "because Hummingbird lets programmers write
arbitrary programs to generate types".

Run: python examples/struct_types.py
"""

from repro import Engine, StaticTypeError
from repro.rstruct import struct_new

engine = Engine()
hb = engine.api()

Transaction = struct_new(engine, "Transaction",
                         "kind", "account_name", "amount")
# The Fig. 3 call: one line types six accessors.
Transaction.add_types("String", "String", "Integer")


class ApplicationRunner:
    def __init__(self, transactions):
        self.transactions = transactions

    @hb.typed("() -> Array<String>")
    def process_transactions(self):
        names: "Array<String>" = []
        for t in self.transactions:
            name = t.account_name   # typed only thanks to add_types
            names.append(name)
        return names

    @hb.typed("() -> Integer")
    def total(self):
        acc = 0
        for t in self.transactions:
            acc = acc + t.amount
        return acc


hb.field_type(ApplicationRunner, "transactions", "Array<Transaction>")

runner = ApplicationRunner([
    Transaction("credit", "alice", 1200),
    Transaction("debit", "bob", 300),
])
print("accounts:", runner.process_transactions())
print("total:   ", runner.total())
print("generated accessor signatures:",
      engine.stats.generated_count())


# A body that misuses a typed accessor fails its just-in-time check:
class Bad:
    def __init__(self, transactions):
        self.transactions = transactions

    @hb.typed("() -> Integer")
    def broken(self):
        acc = 0
        for t in self.transactions:
            acc = acc + t.account_name   # String, not Integer
        return acc


hb.field_type(Bad, "transactions", "Array<Transaction>")
try:
    Bad([Transaction("credit", "alice", 1)]).broken()
except StaticTypeError as exc:
    print("caught:", exc)
