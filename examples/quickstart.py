"""Quickstart: just-in-time static type checking in five minutes.

Run: python examples/quickstart.py
"""

from repro import Engine, StaticTypeError

engine = Engine()
hb = engine.api()


class Greeter:
    """Annotated methods are statically checked at their *first call*."""

    @hb.typed("(String) -> String")
    def greet(self, name):
        return "hello, " + name

    @hb.typed("(Integer) -> String")
    def broken(self, n):
        return n  # wrong: declared to return String


g = Greeter()

# First call: Hummingbird fetches greet's IR and statically checks the
# whole body against the current type table, then memoizes the result.
print(g.greet("world"))
print(f"static checks so far: {engine.stats.static_checks}")

# Later calls hit the cache — no re-checking.
g.greet("again")
g.greet("and again")
print(f"after two more calls:  {engine.stats.static_checks} "
      f"(cache hits: {engine.stats.cache_hits})")

# `broken` was never called, so its bug is still latent — exactly the
# paper's point: checking happens just in time, per method.
try:
    g.broken(3)
except StaticTypeError as exc:
    print(f"caught at first call: {exc}")

# Types can also be attached at run time — metaprogramming style:
class Late:
    pass


def shout(self, text):
    return text.upper() + "!"


engine.define_method(Late, "shout", shout, sig="(String) -> String",
                     check=True)
print(Late().shout("types arrive whenever they like"))
