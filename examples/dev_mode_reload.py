"""Development-mode reloading with cache invalidation (Table 2 in small).

A live app is updated method by method; the reloader diffs each new body
against the old IR, invalidating only what changed (plus dependents),
while untouched methods keep their cached checks.

Run: python examples/dev_mode_reload.py
"""

from repro.rails import AppVersion, RailsApp, Reloader
from repro.rtypes import Sym

app = RailsApp(view_cost=10)
app.db.create_table("posts", ("title", "string", False))


@app.register_model
class Post(app.Model):
    pass


class PostsController(app.Controller):
    pass


app.get("/posts", PostsController, "index")
app.get("/posts/:id", PostsController, "show")

reloader = Reloader(app)
reloader.register_class(PostsController)
reloader.expose(Post=Post, Sym=Sym)

V1 = (AppVersion("v1")
      .add("PostsController", "index", "() -> String",
           "def index(self):\n"
           "    rows = [self.entry(p) for p in Post.all()]\n"
           "    return self.render('posts/index', {Sym('rows'): rows})\n")
      .add("PostsController", "entry", "(Post) -> String",
           "def entry(self, p):\n"
           "    return p.title\n")
      .add("PostsController", "show", "() -> String",
           "def show(self):\n"
           "    p = Post.find(int(self.param(Sym('id'))))\n"
           "    return self.render('posts/show', {Sym('t'): p.title})\n"))

# v2 edits only `entry`; index and show are untouched.
V2 = (AppVersion("v2")
      .add("PostsController", "index", "() -> String",
           V1.methods[0].source)
      .add("PostsController", "entry", "(Post) -> String",
           "def entry(self, p):\n"
           "    return f'* {p.title}'\n")
      .add("PostsController", "show", "() -> String",
           V1.methods[2].source))


def drive(label):
    app.request("GET", "/posts")
    app.request("GET", "/posts/1")
    stats = app.engine.stats
    print(f"{label}: methods checked so far = {stats.methods_checked()}, "
          f"total checks = {stats.static_checks}")


Post.create(title="hello")
Post.create(title="world")

report = reloader.apply(V1)
drive("after initial load  ")

report = reloader.apply(V2)
print(f"reload v2: changed={sorted(report.changed)} "
      f"dependents={sorted(report.dependents)}")
drive("after reloading v2  ")

# Only `entry` (changed) and `index` (its dependent) were re-checked;
# `show` kept its cached check across the reload.
