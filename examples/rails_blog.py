"""Fig. 1, end to end: Rails associations with generated types.

``belongs_to`` creates the ``owner`` getter at run time; the framework's
type-generation hook creates ``() -> User`` for it at the same moment,
which is what lets ``Talk.owner_p`` — whose body calls a method that
exists nowhere in the source — type check.

Run: python examples/rails_blog.py
"""

from repro import StaticTypeError
from repro.rails import RailsApp

app = RailsApp()
hb = app.hb

app.db.create_table("users", ("name", "string", False))
app.db.create_table("talks", ("title", "string", False),
                    ("owner_id", "integer"))


@app.register_model
class User(app.Model):
    pass


@app.register_model
class Talk(app.Model):
    @hb.typed("(User) -> %bool")
    def owner_p(self, user):
        # `owner` is defined nowhere in this file: belongs_to creates it.
        return self.owner == user


# The association can be declared *after* the class — at any point before
# the first call, exactly as the paper stresses.
Talk.belongs_to("owner", class_name="User")

alice = User.create(name="Alice")
bob = User.create(name="Bob")
talk = Talk.create(title="Just-in-Time Static Type Checking",
                   owner_id=alice.id)

print("owner_p(alice):", talk.owner_p(alice))
print("owner_p(bob):  ", talk.owner_p(bob))

stats = app.engine.stats
print(f"dynamically generated signatures: {stats.generated_count()} "
      f"(consulted during checking: {stats.used_generated_count()})")
sig = app.engine.types.lookup("Talk", "owner")
print(f"the generated Fig. 1 signature:   Talk#owner : {sig.arms[0]}")

# Negative control: without the generated types this cannot check.
app.db.create_table("orphans", ("title", "string"))


@app.register_model
class Orphan(app.Model):
    @hb.typed("(User) -> %bool")
    def broken(self, user):
        return self.nonexistent_association == user


try:
    Orphan.create(title="x").broken(alice)
except StaticTypeError as exc:
    print(f"without typegen: {exc}")
