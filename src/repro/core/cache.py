"""The type-check cache — the X of the formalism.

An entry memoizes a successful static check of ``A#m``'s body.  Each entry
records its *dependencies*: every ``B#m'`` whose signature the derivation
consulted (the (TApp) uses of the formalism), every field type read, and
— the dependency-tracked extension — every class whose ancestor
linearization the derivation's subtype queries walked (``hier_deps``).
The edges live in a shared :class:`~repro.core.deps.DepGraph`, so each
kind of mutation removes exactly its dependents:

* **Definition 1** (signature/body change of ``A#m``): entries keyed
  ``A#m`` are removed, and entries whose derivation consulted ``A#m``'s
  slot are removed.  This is *one* level, not transitive: if ``C`` calls
  ``B`` calls ``A``, changing ``A`` invalidates ``B`` (whose derivation
  used ``A``'s signature) but not ``C`` (whose derivation used only
  ``B``'s signature, which did not change).  Entries storing a derivation
  of an *ancestor's* body under a descendant receiver record an explicit
  edge to the ancestor slot (the engine adds the body/signature owner to
  ``deps``), so retyping or redefining the ancestor invalidates exactly
  the receiver-keyed descendants.
* **field change**: entries whose derivations read the field type.
* **hierarchy change**: the engine maps the hierarchy's affected-class
  report onto :meth:`invalidate_hier`, removing entries whose subtype
  reasoning consulted a changed linearization — previously these were
  only caught indirectly (or not at all for receiver-keyed entries).

Cache *upgrading* (Definition 2) is represented by stamping each entry
with the type-table version; since invalidation already removed every
entry that mentioned the changed signature, surviving entries remain
valid under the new table and simply have their stamp refreshed.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .deps import DepGraph, field_resource, lin_resource, sig_resource

Key = Tuple[str, str]  # (class name, method name)


class _TableStamp:
    """A shared, mutable table-version holder (one per cache)."""

    __slots__ = ("version",)

    def __init__(self, version: int = 0) -> None:
        self.version = version


class CacheEntry:
    """A memoized derivation: what was checked and what it relied on.

    ``table_version`` reads through a stamp shared with the owning cache:
    :meth:`CheckCache.upgrade` (Definition 2) restamps every surviving
    entry by writing one integer instead of reallocating each entry.
    """

    __slots__ = ("key", "deps", "field_deps", "hier_deps",
                 "_stored_version", "_stamp")

    def __init__(self, key: Key, deps: Iterable[Key],
                 field_deps: Iterable[Key] = (),
                 hier_deps: Iterable[str] = (), table_version: int = 0,
                 stamp: Optional[_TableStamp] = None) -> None:
        self.key = key
        self.deps = frozenset(deps)
        self.field_deps = frozenset(field_deps)  # (owner, field name) reads
        self.hier_deps = frozenset(hier_deps)    # class linearization reads
        self._stored_version = table_version
        self._stamp = stamp if stamp is not None else _TableStamp(
            table_version)

    @property
    def table_version(self) -> int:
        stamped = self._stamp.version
        return stamped if stamped > self._stored_version \
            else self._stored_version

    def mentions(self, key: Key) -> bool:
        return key in self.deps or key == self.key

    def __repr__(self) -> str:
        return (f"CacheEntry({self.key}, deps={sorted(self.deps)}, "
                f"table_version={self.table_version})")


class CheckCache:
    """Memoized type-check derivations with dependency-based invalidation.

    Thread discipline: membership and entry reads (the warm path) are
    bare dict operations — no lock.  Mutations hold the internal lock so
    the DepGraph's multi-step record/invalidate sequences are atomic.
    Stores only ever happen under the engine's writer lock (inside
    ``jit_check``), which also serializes them against the invalidation
    waves; the internal lock additionally covers direct users such as
    the dev-mode reloader's :meth:`remove` calls.
    """

    def __init__(self) -> None:
        self._entries: Dict[Key, CacheEntry] = {}
        self._deps = DepGraph()
        self._stamp = _TableStamp(0)
        self._lock = threading.RLock()

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Key) -> Optional[CacheEntry]:
        return self._entries.get(key)

    def store(self, key: Key, deps: Iterable[Key],
              field_deps: Iterable[Key] = (),
              hier_deps: Iterable[str] = (),
              table_version: int = 0) -> CacheEntry:
        with self._lock:
            entry = CacheEntry(key, deps, field_deps, hier_deps,
                               table_version, stamp=self._stamp)
            self._entries[key] = entry
            resources = [sig_resource(*dep) for dep in entry.deps]
            resources += [field_resource(*fdep) for fdep in entry.field_deps]
            resources += [lin_resource(cls) for cls in entry.hier_deps]
            self._deps.record(key, resources)
            return entry

    def remove(self, key: Key) -> None:
        with self._lock:
            if self._entries.pop(key, None) is not None:
                self._deps.forget(key)

    def dependents(self, key: Key) -> Set[Key]:
        """Cached methods whose derivations consulted ``key``'s signature."""
        with self._lock:
            return self._deps.dependents(sig_resource(*key))

    def invalidate(self, key: Key) -> Set[Key]:
        """Definition 1: drop ``key`` and every entry that used it."""
        with self._lock:
            removed = self._deps.invalidate(sig_resource(*key))
            if key in self._entries:
                removed.add(key)
            for k in removed:
                self.remove(k)
            return removed

    def invalidate_field(self, owner: str, field_name: str) -> Set[Key]:
        """Drop entries whose derivations read the given field type."""
        with self._lock:
            removed = self._deps.invalidate(field_resource(owner,
                                                           field_name))
            for k in removed:
                self.remove(k)
            return removed

    def invalidate_hier(self, class_name: str) -> Set[Key]:
        """Drop entries whose derivations consulted ``class_name``'s
        linearization (the hierarchy-edge flush rule)."""
        with self._lock:
            removed = self._deps.invalidate(lin_resource(class_name))
            for k in removed:
                self.remove(k)
            return removed

    def upgrade(self, table_version: int) -> None:
        """Definition 2: restamp surviving derivations with the new table.

        Valid only after invalidation removed every entry mentioning the
        changed signature, which :meth:`invalidate` guarantees.  O(1): the
        shared stamp is advanced; entries report the newer of their
        store-time version and the stamp.
        """
        with self._lock:
            if table_version > self._stamp.version:
                self._stamp.version = table_version

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._deps.clear()

    def keys(self) -> Set[Key]:
        return set(self._entries)

    def entries(self) -> List[CacheEntry]:
        """A consistent point-in-time view of every memoized derivation
        (the warm-state snapshot walks this to serialize verdicts)."""
        with self._lock:
            return list(self._entries.values())
