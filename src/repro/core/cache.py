"""The type-check cache — the X of the formalism.

An entry memoizes a successful static check of ``A#m``'s body.  Each entry
records its *dependencies*: every ``B#m'`` whose signature the derivation
consulted (the (TApp) uses of the formalism), plus every field type read.

Invalidation implements Definition 1 exactly:

1. entries keyed ``A#m`` are removed, and
2. entries whose derivation applied (TApp) with ``A#m`` are removed —

note this is *one* level, not transitive: if ``C`` calls ``B`` calls ``A``,
changing ``A`` invalidates ``B`` (whose derivation used ``A``'s signature)
but not ``C`` (whose derivation used only ``B``'s signature, which did not
change).  Cache *upgrading* (Definition 2) is represented by stamping each
entry with the type-table version; since invalidation already removed every
entry that mentioned the changed signature, surviving entries remain valid
under the new table and simply have their stamp refreshed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

Key = Tuple[str, str]  # (class name, method name)


class _TableStamp:
    """A shared, mutable table-version holder (one per cache)."""

    __slots__ = ("version",)

    def __init__(self, version: int = 0) -> None:
        self.version = version


class CacheEntry:
    """A memoized derivation: what was checked and what it relied on.

    ``table_version`` reads through a stamp shared with the owning cache:
    :meth:`CheckCache.upgrade` (Definition 2) restamps every surviving
    entry by writing one integer instead of reallocating each entry.
    """

    __slots__ = ("key", "deps", "field_deps", "_stored_version", "_stamp")

    def __init__(self, key: Key, deps: Iterable[Key],
                 field_deps: Iterable[Key] = (), table_version: int = 0,
                 stamp: Optional[_TableStamp] = None) -> None:
        self.key = key
        self.deps = frozenset(deps)
        self.field_deps = frozenset(field_deps)  # (owner, field name) reads
        self._stored_version = table_version
        self._stamp = stamp if stamp is not None else _TableStamp(
            table_version)

    @property
    def table_version(self) -> int:
        stamped = self._stamp.version
        return stamped if stamped > self._stored_version \
            else self._stored_version

    def mentions(self, key: Key) -> bool:
        return key in self.deps or key == self.key

    def __repr__(self) -> str:
        return (f"CacheEntry({self.key}, deps={sorted(self.deps)}, "
                f"table_version={self.table_version})")


class CheckCache:
    """Memoized type-check derivations with dependency-based invalidation."""

    def __init__(self) -> None:
        self._entries: Dict[Key, CacheEntry] = {}
        self._rdeps: Dict[Key, Set[Key]] = {}        # dep -> dependents
        self._field_rdeps: Dict[Key, Set[Key]] = {}  # field -> dependents
        self._stamp = _TableStamp(0)

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Key) -> Optional[CacheEntry]:
        return self._entries.get(key)

    def store(self, key: Key, deps: Iterable[Key],
              field_deps: Iterable[Key] = (),
              table_version: int = 0) -> CacheEntry:
        entry = CacheEntry(key, deps, field_deps, table_version,
                           stamp=self._stamp)
        self.remove(key)
        self._entries[key] = entry
        for dep in entry.deps:
            self._rdeps.setdefault(dep, set()).add(key)
        for fdep in entry.field_deps:
            self._field_rdeps.setdefault(fdep, set()).add(key)
        return entry

    def remove(self, key: Key) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for dep in entry.deps:
            self._rdeps.get(dep, set()).discard(key)
        for fdep in entry.field_deps:
            self._field_rdeps.get(fdep, set()).discard(key)

    def dependents(self, key: Key) -> Set[Key]:
        """Cached methods whose derivations consulted ``key``'s signature."""
        return set(self._rdeps.get(key, ()))

    def invalidate(self, key: Key) -> Set[Key]:
        """Definition 1: drop ``key`` and every entry that used it."""
        removed = set()
        if key in self._entries:
            removed.add(key)
        removed |= self.dependents(key)
        for k in removed:
            self.remove(k)
        return removed

    def invalidate_field(self, owner: str, field_name: str) -> Set[Key]:
        """Drop entries whose derivations read the given field type."""
        removed = set(self._field_rdeps.get((owner, field_name), ()))
        for k in removed:
            self.remove(k)
        return removed

    def upgrade(self, table_version: int) -> None:
        """Definition 2: restamp surviving derivations with the new table.

        Valid only after invalidation removed every entry mentioning the
        changed signature, which :meth:`invalidate` guarantees.  O(1): the
        shared stamp is advanced; entries report the newer of their
        store-time version and the stamp.
        """
        if table_version > self._stamp.version:
            self._stamp.version = table_version

    def clear(self) -> None:
        self._entries.clear()
        self._rdeps.clear()
        self._field_rdeps.clear()

    def keys(self) -> Set[Key]:
        return set(self._entries)
