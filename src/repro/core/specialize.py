"""Tier-2 specialization — compiling warm call plans into per-site wrappers.

Tier 1 (:mod:`repro.core.plans`) made the steady state "a guard plus a
cache hit", but the guard itself is still ~30 lines of interpreted Python
per call inside ``Engine.invoke``: build the plan key tuple, run
``class_name_of``, fetch thread-locals, branch on the arg/ret modes,
push/pop the checked frame.  Lazy basic block versioning
(Chevalier-Boisvert & Feeley) and "Transient Typechecks are (Almost)
Free" (Roberts et al.) both make the same observation: type guards only
become near-free when they are *compiled into the call site* as
straight-line code.  This module is that move for the CPython substrate.

**Promotion.**  Once a :class:`~repro.core.plans.CallPlan` has served
``plan.promote_at`` warm hits (the engine's ``specialize_threshold``,
or the reduced re-promotion threshold for sites that deopted before)
and its shape is stable — a class-profile-guardable or check-free
configuration — the :class:`Specializer` generates a wrapper function
specialized to exactly that plan: the receiver-class identity guard, the
dominant argument-profile test (the *hottest* profile by pre-promotion
hit counts), the checked-frame push/pop, and (when the plan performs
them) the dynamic return check are emitted as straight-line
local-variable operations, ``exec``-compiled once, closing over the
original function, the plan (whose COW profile sets it re-reads each
call), and the engine's per-thread state.  ``rdl.wrap``'s generic
wrapper is then atomically displaced: one ``setattr`` rebinds the class
attribute, so promotion needs no cooperation from in-flight calls.

**Polymorphic dispatch.**  A promoted slot is no longer owned by the
first hot receiver class: when a *second* receiver class crosses the
threshold on an already-promoted slot (a mixin method hot under two
includers, an inherited method hot under two subclasses), the site is
recompiled into a 2-entry dispatch — two receiver-class guards, each
backed by its own live plan, its own check-cache membership guard, and
its own dominant-profile chain.  Both lazy basic block versioning and
the transient-typecheck work show the near-free-guard result extends to
a small number of observed shapes; ``MAX_POLY_ENTRIES`` caps the chain
at two, and further receiver classes keep the generic tier.

**Kwargs layouts.**  Sites whose keyword traffic resolves to a single
``(positional count, kwargs names)`` layout (see
:meth:`CallPlan.stable_kw_layout`) compile the positional reorder in:
the wrapper checks the literal shape, builds the full positional view
as a tuple expression (``(args[0], kwargs["b"])``), and runs the same
profile machinery over it — keyword calls become straight-line code
instead of the unconditional bail to the generic tier.  Shapes that
cannot be bound contiguously against the callee's parameter list keep
bailing.

A promoted positional-only entry is not stuck with the unconditional
kwargs bail forever: when its plan later stabilizes a keyword layout,
the engine's warm path notices (:meth:`Specializer.needs_kw_recompile`)
and the site recompiles **in place** — the same single-``setattr``
recompile the polymorphic extension uses — swapping the entry for one
with the layout compiled in.

**Tier 3 — static check elimination.**  At promotion time the
:class:`~repro.core.elide.Elider` runs the RIL forward dataflow pass
over the callee's lowered body and reports which per-call safety
operations are *provably redundant* for this site
(:class:`~repro.core.elide.Elision`); the codegen here then **omits**
them instead of partially evaluating them: the check-cache membership
probe, the argument-profile test (arity-guarded when every matching
parameter type is vacuous), the checked-frame push/pop around the call,
and the return conformance walk.  Verdicts that hold only under the
dominant argument profile pin that profile as an *unconditional* guard
chain (no copy-on-write fallback — a miss bails to the generic tier),
so the facts the analysis assumed hold on every call that runs the
elided body.  Counter parity is preserved bump for bump — an elided
wrapper reports exactly what the generic tier would have reported, plus
``checks_elided`` advancing by the number of omitted operations per
call.  Every fact the verdicts consumed becomes a plan-dependency edge
*before* the wrapper is installed, so elided sites deoptimize under
exactly the wave that would invalidate the fact.

**Adaptive re-promotion.**  Deoptimizing a site records its plan key in
a bounded re-warm registry; when the plan is rebuilt, the engine stamps
it with the reduced threshold (``specialize_threshold // 4``), so
dev-mode reload churn re-reaches tier 2 in a fraction of the warmup
(``Stats.repromotions`` counts these).

**Deopt-storm circuit breakers.**  Adaptive re-promotion cuts both
ways: a site whose guard assumptions are invalidated *continuously* —
adversarial reload churn retyping the same method every few
milliseconds — would otherwise cycle promote/deopt forever, paying
wrapper compilation and teardown on every lap.  Two breakers gate the
cycle (``EngineConfig.breaker``; ``REPRO_DISABLE_BREAKER=1`` is the
ungated-thrash ablation):

* **per-site**: each deopt of a key is a *flap*; ``breaker_flap_limit``
  flaps inside ``breaker_window_s`` trip the site — its re-warm
  discount is revoked, promotion is refused for
  ``breaker_cooldown_s``, and the site serves tier 1 (sound, just
  unspecialized).  A flap during the cooldown restarts the quiet
  timer; a flap after it re-arms the site fresh.
  ``Stats.breaker_demotions`` counts trips;
* **engine-wide**: ``breaker_wave_limit`` displacing invalidation
  waves inside the window pause *all* promotion for the cooldown —
  during a storm, compiling wrappers the next wave will tear down is
  pure overhead.

Both are perf governors, never soundness: a blocked promotion leaves
the generic tier-1 wrapper serving every call, and deopt itself is
never gated.  ``Stats.breaker_trips`` counts activations of either.

**Guard failure falls back, never raises.**  Any situation the
straight-line code does not cover — an unknown receiver class, a
keyword shape that was not compiled in, an unseen argument-class tuple,
a missing check-cache entry — bails into ``Engine.invoke`` *before
touching any counter*, so the generic tier observes exactly the call it
would have seen without specialization (including raising the right
``ArgumentTypeError`` and learning new profiles).  A specialized
wrapper is therefore a pure fast-path overlay: it can be wrong about
the future, never about the call it accepts.

**Deoptimization.**  Soundness rides the PR 2 dependency machinery: a
specialized dispatch entry lives exactly as long as the plan it was
compiled from.  Every invalidation wave that drops a plan
(:meth:`CallPlanCache.invalidate_resources`,
:meth:`~repro.core.plans.CallPlanCache.invalidate_cache_keys`,
:meth:`~repro.core.plans.CallPlanCache.clear`, and store-overwrites)
reports the dropped keys through ``CallPlanCache.on_drop``, and the
engine narrows or restores the site *before the wave returns*: a
2-entry site whose other plan is still live recompiles to a 1-entry
wrapper; the last entry restores the displaced generic wrapper.  So by
the time a mutation's caller regains control, no specialized code
embodying the pre-mutation world is reachable from the class.  Epoch
bumps that drop nothing (e.g. a field-type wave whose removal set is
empty) deoptimize nothing: a surviving plan's dependencies were, by
construction of the wave, untouched, so its compiled form is still
valid.  Three further guards close the remaining corners:

* every dispatch entry carries a per-call **liveness guard** — a
  constant-key identity probe that its plan is still the one in the
  plan cache.  Rebinding the class attribute cannot reach bound methods
  Python callers hoisted before the swap; the liveness guard makes
  those references self-invalidating, so deopt-by-rebinding is purely a
  performance recovery, never load-bearing for soundness;
* checked entries additionally test their ``(receiver, method)``
  membership in the check cache per call, so even a direct
  ``CheckCache.clear()`` that bypasses ``Engine.invalidate`` degrades
  the site to the generic path instead of replaying a removed
  derivation — mirroring the tier-1 plan guard;
* promotion re-verifies (after publishing the wrapper) that every
  entry's plan is still live, self-deoptimizing if a wave raced the
  install through a direct cache call that did not hold the engine's
  writer lock.

Contracts (``rdl.wrap`` pre/post hooks) always run in the generic
wrapper; registering a contract deoptimizes every site, and promotion
stays blocked — per method *name* — while a contract on that name
exists anywhere (contract hooks resolve per receiver class, so any
same-named contract may fire for some receiver).  Unrelated names
re-promote freely.

``REPRO_DISABLE_SPECIALIZE=1`` (or ``EngineConfig(specialize=False)``)
turns the tier off — the ``tier1-nospec`` CI job runs the whole suite
that way, and the differential harnesses prove outcome equality between
tier-2, tier-1, and the cache-free oracle.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Iterable, List, Optional, \
    Set, Tuple

from ..rdl.registry import CLASS
from .elide import _contract_blocks
from .plans import (
    ARG_CHECK_ALWAYS, ARG_CHECK_BOUNDARY, ARG_CHECK_NEVER, CallPlan, PlanKey,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .elide import Elision
    from .engine import Engine

#: receiver-class entries one specialized site may dispatch over; further
#: hot receiver classes stay on the generic tier.
MAX_POLY_ENTRIES = 2

#: divisor applied to ``specialize_threshold`` for the re-promotion
#: threshold of sites that deopted and re-warmed.
REWARM_DIVISOR = 4

#: bound on the re-warm registry: reload churn in a long-lived dev
#: server must not accumulate plan keys without limit.
_REWARM_MAX = 4096

#: bound on the breaker's per-site flap/cooldown tracking maps.
_FLAP_TRACK_MAX = 1024


def specialize_disabled_by_env() -> bool:
    """True when ``REPRO_DISABLE_SPECIALIZE`` forces tier-1-only mode."""
    return os.environ.get("REPRO_DISABLE_SPECIALIZE", "") not in (
        "", "0", "false", "no")


def breaker_disabled_by_env() -> bool:
    """True when ``REPRO_DISABLE_BREAKER`` forces ungated re-promotion
    (the thrash ablation the chaos benchmark measures against)."""
    return os.environ.get("REPRO_DISABLE_BREAKER", "") not in (
        "", "0", "false", "no")


class _Entry:
    """One receiver class's compiled dispatch entry inside a site."""

    __slots__ = ("key", "guard_cls", "plan", "kw_layout", "elision")

    def __init__(self, key: PlanKey, guard_cls: type, plan: CallPlan,
                 kw_layout: Optional[Tuple[int, tuple]],
                 elision: Optional["Elision"] = None) -> None:
        self.key = key
        self.guard_cls = guard_cls
        self.plan = plan
        #: ``(positional count, declared-order kwargs names)`` compiled
        #: into the wrapper, or None (keyword calls bail).  Entries may
        #: be :class:`~repro.core.plans.BoundDefault` for defaulted
        #: parameter slots the call shape skips.
        self.kw_layout = kw_layout
        #: the tier-3 verdict: which per-call check operations this
        #: entry's compiled code omits, or None (full tier-2 body).
        self.elision = elision


class _Site:
    """One promoted slot: what was displaced and what displaced it."""

    __slots__ = ("def_owner", "def_cls", "name", "kind", "fn", "generic",
                 "specialized", "was_classmethod", "entries")

    def __init__(self, def_owner: str, def_cls: type, name: str, kind: str,
                 fn, generic, specialized, was_classmethod: bool,
                 entries: Tuple[_Entry, ...]) -> None:
        self.def_owner = def_owner
        self.def_cls = def_cls
        self.name = name
        self.kind = kind
        self.fn = fn
        self.generic = generic
        self.specialized = specialized
        self.was_classmethod = was_classmethod
        self.entries = entries


Slot = Tuple[type, str]


class Specializer:
    """The tier-2 compiler + deopt registry for one engine.

    Locking: :meth:`maybe_promote` runs under the engine's writer lock
    (promotion is a mutation of the class, and serializing with
    invalidation waves makes the is-my-plan-still-live check race-free);
    the internal lock additionally serializes the site registry against
    deopt callbacks arriving from direct ``CallPlanCache`` calls that
    bypass the writer lock.  The specializer never acquires any other
    lock while holding its own.
    """

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._lock = threading.Lock()
        #: (defining class, method name) -> the live promoted site.
        self._sites: Dict[Slot, _Site] = {}
        #: plan key -> the slot whose site carries its dispatch entry.
        self._by_key: Dict[PlanKey, Slot] = {}
        #: plan keys whose sites were deoptimized at least once — these
        #: re-promote at the reduced threshold.  Bounded; read lock-free
        #: on the cold plan-build path, mutated under the internal lock.
        self._rewarm: Dict[PlanKey, bool] = {}
        # The engine's clamped threshold is the single source of truth;
        # re-deriving the clamp here would let the two drift.
        threshold = engine._spec_threshold
        self._threshold = threshold
        self._rewarm_threshold = max(1, threshold // REWARM_DIVISOR)
        # Circuit-breaker state (all mutated under the internal lock;
        # the promotion-path probes are lock-free dict reads).
        cfg = engine.config
        self._breaker = bool(cfg.breaker) and not breaker_disabled_by_env()
        self._flap_limit = max(1, cfg.breaker_flap_limit)
        self._window = float(cfg.breaker_window_s)
        self._cooldown = float(cfg.breaker_cooldown_s)
        self._wave_limit = max(1, cfg.breaker_wave_limit)
        self._clock = time.monotonic
        #: plan key -> deopt timestamps inside the sliding window.
        self._flaps: Dict[PlanKey, List[float]] = {}
        #: tripped plan key -> when its cooldown lapses (re-arm time).
        self._cooling: Dict[PlanKey, float] = {}
        #: timestamps of recent displacing invalidation waves.
        self._wave_times: Deque[float] = deque()
        #: engine-wide promotion pause deadline (0.0 = not paused).
        self._pause_until = 0.0

    def __len__(self) -> int:
        """Live compiled dispatch entries (a 2-entry site counts twice)."""
        return len(self._by_key)

    def promote_threshold(self, key: PlanKey) -> int:
        """The per-site promotion threshold the engine stamps onto a
        freshly built plan: reduced for sites that deopted before (so
        reload churn re-reaches tier 2 quickly), full otherwise.  A
        tripped site lost its discount — the breaker revoked the
        re-warm entry — so it pays the full threshold again."""
        return (self._rewarm_threshold if key in self._rewarm
                else self._threshold)

    # -- circuit breaker ----------------------------------------------------

    def breaker_blocked(self, key: PlanKey) -> bool:
        """Lock-free probe on the promotion path: True while the
        engine-wide pause or this site's cooldown is active.  A cooldown
        found expired re-arms the site (pruning its entry)."""
        if not self._breaker:
            return False
        now = self._clock()
        if now < self._pause_until:
            return True
        cooling = self._cooling
        until = cooling.get(key)
        if until is None:
            return False
        if now < until:
            return True
        with self._lock:
            # Re-arm after quiet time; compare the deadline so a trip
            # that raced this probe keeps its fresh cooldown.
            if cooling.get(key) == until:
                del cooling[key]
        return False

    def _note_flap_locked(self, key: PlanKey) -> None:
        """Record one deopt of ``key`` for the per-site breaker; trips
        it at ``breaker_flap_limit`` flaps inside the window.  Caller
        holds the internal lock."""
        if not self._breaker:
            return
        now = self._clock()
        cooling = self._cooling
        until = cooling.get(key)
        if until is not None:
            if now < until:
                # Still cooling and still flapping: restart the quiet
                # timer, and keep the re-warm discount revoked.
                cooling[key] = now + self._cooldown
                self._rewarm.pop(key, None)
                return
            del cooling[key]  # quiet time served; count flaps fresh
        flaps = self._flaps
        times = flaps.get(key)
        if times is None:
            if len(flaps) >= _FLAP_TRACK_MAX:
                self._prune_flaps_locked(now)
            times = flaps[key] = []
        else:
            times[:] = [t for t in times if now - t < self._window]
        times.append(now)
        if len(times) >= self._flap_limit:
            del flaps[key]
            cooling[key] = now + self._cooldown
            # Revoke the reduced threshold: a chronic flapper must
            # re-earn promotion at the full threshold after cooldown.
            self._rewarm.pop(key, None)
            if len(cooling) > _FLAP_TRACK_MAX:
                self._prune_cooling_locked(now)
            stats = self.engine.stats
            stats.breaker_trips += 1
            stats.breaker_demotions += 1

    def _note_wave_locked(self) -> None:
        """Record one displacing invalidation wave for the engine-wide
        breaker; trips the all-promotion pause at ``breaker_wave_limit``
        waves inside the window.  Caller holds the internal lock."""
        if not self._breaker:
            return
        now = self._clock()
        waves = self._wave_times
        waves.append(now)
        while waves and now - waves[0] >= self._window:
            waves.popleft()
        if len(waves) >= self._wave_limit and now >= self._pause_until:
            self._pause_until = now + self._cooldown
            self.engine.stats.breaker_trips += 1

    def _prune_flaps_locked(self, now: float) -> None:
        window = self._window
        flaps = self._flaps
        for key in [k for k, ts in flaps.items()
                    if not ts or now - ts[-1] >= window]:
            del flaps[key]
        if len(flaps) >= _FLAP_TRACK_MAX:  # all still in-window: drop LRU
            for key in list(flaps)[:_FLAP_TRACK_MAX // 2]:
                del flaps[key]

    def _prune_cooling_locked(self, now: float) -> None:
        cooling = self._cooling
        for key in [k for k, until in cooling.items() if now >= until]:
            del cooling[key]

    def breaker_paused(self) -> bool:
        """Whether the engine-wide promotion pause is currently active
        (introspection for tests and the chaos harness)."""
        return self._breaker and self._clock() < self._pause_until

    # -- promotion ----------------------------------------------------------

    def maybe_promote(self, key: PlanKey, plan: CallPlan, fn, recv,
                      guard_cls: Optional[type] = None) -> bool:
        """Compile ``plan`` into a specialized wrapper and install it.

        Called from the warm path when the plan crosses its hit
        threshold.  Marks the plan ``promoted`` whatever happens — one
        attempt per plan generation; a plan dropped by invalidation and
        rebuilt cold gets a fresh attempt.  When the slot is already
        promoted for a *different* receiver class, the site is extended
        into a polymorphic dispatch (up to ``MAX_POLY_ENTRIES``).

        ``guard_cls`` overrides the receiver-derived guard class: the
        warm-state snapshot restore promotes eagerly, before any request
        has produced a live receiver, and passes the host class of the
        plan's receiver owner instead.
        """
        if self.breaker_blocked(key):
            # Graceful degradation: refuse without consuming the plan's
            # promotion attempt, and push the retry out by a full
            # threshold of warm hits so a cooling site pays one dict
            # probe per threshold window, not per call.
            plan.promote_at = plan.hits + self._threshold
            return False
        plan.promoted = True
        engine = self.engine
        if _contract_blocks(engine, key[2]):
            return False  # contracts only run in the generic wrapper
        if not _plan_specializable(plan):
            return False
        def_owner, recv_owner, name, kind = key
        if guard_cls is None:
            if kind == CLASS:
                if not isinstance(recv, type):
                    return False
                guard_cls = recv
            else:
                guard_cls = type(recv)
        def_cls = engine.host_class(def_owner)
        if def_cls is None:
            return False
        raw = def_cls.__dict__.get(name)
        was_classmethod = isinstance(raw, classmethod)
        inner = raw.__func__ if was_classmethod else raw
        # Only displace the current-generation wrapper for this very
        # function: a stale fn or a foreign wrapper refuses; our own
        # specialized wrapper is the polymorphic-extension case, vetted
        # against the site registry under the locks below.
        if (inner is None
                or getattr(inner, "__hb_original__", None) is not fn):
            return False
        with engine.write_lock:
            if _contract_blocks(engine, name):
                # Re-validated under the lock: a contract registered
                # between the lock-free probe above and here must win —
                # contract registration serializes on the same lock.
                return False
            plans = engine._plans
            if plans is None or plans.get(key) is not plan:
                return False  # a wave dropped the plan while we raced here
            if def_cls.__dict__.get(name) is not raw:
                return False  # the slot changed under us; stay generic
            # Tier 3: run the static analysis under the writer lock (the
            # world it sees is the world the wrapper compiles against)
            # and merge the facts it consumed into the plan's dependency
            # edges *before* the wrapper can be installed — mutating any
            # of them must deopt this site like any tier-2 plan.
            elider = engine._elider
            elision = (elider.analyze(key, plan, fn)
                       if elider is not None else None)
            if elision is not None and not plans.add_resources(
                    key, plan, elision.resources):
                return False  # a direct wave dropped the plan mid-analysis
            entry = _Entry(key, guard_cls, plan, _entry_kw_layout(plan),
                           elision)
            recompiled = False
            with self._lock:
                if key in self._by_key:
                    # Already promoted: the only in-place rebuild is a
                    # positional-only entry whose plan has since
                    # stabilized a kwargs layout — recompile the site
                    # with the layout (and fresh elision) swapped in.
                    newsite = self._recompile_kw_locked(key, entry)
                    if newsite is None:
                        return False
                    entries = newsite.entries
                    recompiled = True
                else:
                    slot = (def_cls, name)
                    site = self._sites.get(slot)
                    if site is None:
                        if getattr(inner, "__hb_specialized__", False):
                            return False  # a specialized slot we don't track
                        entries = (entry,)
                        generic = inner
                    else:
                        # A second receiver class got hot on a promoted
                        # slot: recompile into a polymorphic dispatch.
                        if (site.specialized is not inner
                                or site.kind != kind
                                or len(site.entries) >= MAX_POLY_ENTRIES
                                or any(e.guard_cls is guard_cls
                                       for e in site.entries)):
                            return False
                        entries = site.entries + (entry,)
                        generic = site.generic
                        was_classmethod = site.was_classmethod
                    wrapper = _compile_wrapper(engine, def_owner, name, kind,
                                               fn, entries)
                    newsite = _Site(def_owner, def_cls, name, kind, fn,
                                    generic, wrapper, was_classmethod,
                                    entries)
                    setattr(def_cls, name,
                            classmethod(wrapper) if was_classmethod
                            else wrapper)
                    self._sites[slot] = newsite
                    for e in entries:
                        self._by_key[e.key] = slot
                rewarmed = key in self._rewarm
            stats = engine.stats
            if recompiled:
                stats.kw_promotions += 1
            else:
                stats.promotions += 1
                if len(entries) > 1:
                    stats.poly_promotions += 1
                if entry.kw_layout is not None:
                    stats.kw_promotions += 1
                if rewarmed:
                    stats.repromotions += 1
                if elision is not None:
                    stats.elide_promotions += 1
            stale = tuple(e.key for e in entries
                          if plans.get(e.key) is not e.plan)
        if stale:
            # A direct cache call (no writer lock) dropped a plan
            # between the liveness check and the install racing its
            # on_drop callback; undo — the callback may have run before
            # the entry existed.
            self.deoptimize_keys(stale)
            return False
        return True

    def needs_kw_recompile(self, key: PlanKey, plan: CallPlan) -> bool:
        """True when ``key``'s compiled entry predates the plan's kwargs
        layout — a positional-only promotion now serving keyword traffic
        through the generic fallback that an in-place recompile could
        serve straight-line.  Lock-free probe on the warm path;
        :meth:`maybe_promote` re-validates everything under the locks.
        """
        slot = self._by_key.get(key)
        if slot is None:
            return False
        site = self._sites.get(slot)
        if site is None:
            return False
        for e in site.entries:
            if e.key == key:
                return (e.kw_layout is None and e.plan is plan
                        and _entry_kw_layout(plan) is not None)
        return False

    def _recompile_kw_locked(self, key: PlanKey,
                             entry: _Entry) -> Optional[_Site]:
        """In-place rebuild of an already-promoted entry that has since
        stabilized a kwargs layout (the polymorphic-extension recompile
        applied to a single entry).  Caller holds the writer lock and
        the internal lock; returns the new site, or None to refuse."""
        slot = self._by_key.get(key)
        site = self._sites.get(slot) if slot is not None else None
        if site is None:
            return None
        old = next((e for e in site.entries if e.key == key), None)
        if (old is None or old.plan is not entry.plan
                or old.guard_cls is not entry.guard_cls
                or old.kw_layout is not None or entry.kw_layout is None):
            return None
        raw = site.def_cls.__dict__.get(site.name)
        inner = raw.__func__ if isinstance(raw, classmethod) else raw
        if inner is not site.specialized:
            return None  # the slot was rebound behind our back
        entries = tuple(entry if e.key == key else e for e in site.entries)
        wrapper = _compile_wrapper(self.engine, site.def_owner, site.name,
                                   site.kind, site.fn, entries)
        newsite = _Site(site.def_owner, site.def_cls, site.name, site.kind,
                        site.fn, site.generic, wrapper, site.was_classmethod,
                        entries)
        setattr(site.def_cls, site.name,
                classmethod(wrapper) if site.was_classmethod else wrapper)
        self._sites[slot] = newsite
        return newsite

    # -- deoptimization -----------------------------------------------------

    def deoptimize_keys(self, keys: Iterable[PlanKey]) -> int:
        """Deoptimize the dispatch entry of each promoted ``key``.

        A site whose *other* entry's plan is still live narrows to a
        1-entry wrapper; the last (or only) entry restores the displaced
        generic wrapper.  Only entries whose compiled code was actually
        displaced from the live slot are counted (and reported through
        ``Stats.deopts``): a slot rebound by a re-wrap or unwrap in the
        meantime must neither be clobbered with a resurrected wrapper
        nor counted as a deopt.
        """
        engine = self.engine
        displaced = 0
        elided = 0
        with self._lock:
            dead_by_slot: Dict[Slot, Set[PlanKey]] = {}
            for key in keys:
                slot = self._by_key.pop(key, None)
                if slot is not None:
                    dead_by_slot.setdefault(slot, set()).add(key)
            for slot, dead in dead_by_slot.items():
                site = self._sites.pop(slot, None)
                if site is None:
                    continue
                for key in dead:
                    self._note_rewarm(key)
                raw = site.def_cls.__dict__.get(site.name)
                inner = raw.__func__ if isinstance(raw, classmethod) else raw
                survivors = tuple(e for e in site.entries
                                  if e.key not in dead)
                if inner is not site.specialized:
                    # The slot was rebound behind our back (a direct
                    # setattr bypassing wrap/unwrap): the compiled code
                    # is already unreachable from the class.  Forget the
                    # whole site, restore nothing, count nothing.
                    for e in survivors:
                        self._by_key.pop(e.key, None)
                    continue
                displaced += len(site.entries) - len(survivors)
                elided += sum(1 for e in site.entries
                              if e.key in dead and e.elision is not None)
                if survivors:
                    wrapper = _compile_wrapper(engine, site.def_owner,
                                               site.name, site.kind,
                                               site.fn, survivors)
                    self._sites[slot] = _Site(
                        site.def_owner, site.def_cls, site.name, site.kind,
                        site.fn, site.generic, wrapper, site.was_classmethod,
                        survivors)
                    setattr(site.def_cls, site.name,
                            classmethod(wrapper) if site.was_classmethod
                            else wrapper)
                else:
                    setattr(site.def_cls, site.name,
                            classmethod(site.generic) if site.was_classmethod
                            else site.generic)
            if displaced:
                engine.stats.deopts += displaced
                self._note_wave_locked()
            if elided:
                engine.stats.elide_deopts += elided
        return displaced

    def deoptimize_all(self) -> int:
        """Deoptimize every promoted entry (contract registration, tests)."""
        with self._lock:
            keys = tuple(self._by_key)
        return self.deoptimize_keys(keys)

    def discard_slot(self, def_cls: type, name: str) -> None:
        """Forget (without restoring) the site watching ``def_cls.name``.

        Called by ``wrap_method``/``unwrap_method`` just before they
        rebind the slot themselves: the displaced generic wrapper is
        obsolete, so restoring it later would resurrect a superseded
        function.  The rebind displaces the compiled entries, so they
        count as deopts and their keys enter the re-warm registry.
        """
        with self._lock:
            site = self._sites.pop((def_cls, name), None)
            if site is None:
                return
            for e in site.entries:
                self._by_key.pop(e.key, None)
                self._note_rewarm(e.key)
            self.engine.stats.deopts += len(site.entries)
            self.engine.stats.elide_deopts += sum(
                1 for e in site.entries if e.elision is not None)
            self._note_wave_locked()

    def _note_rewarm(self, key: PlanKey) -> None:
        """Grant ``key`` the reduced re-promotion threshold, evicting
        the least-recently-deopted entry at the bound — never the whole
        registry, which would forget every discount at once and trigger
        a synchronized full-threshold re-promotion wave.  Also feeds the
        per-site breaker, which may immediately revoke the discount."""
        rewarm = self._rewarm
        if key in rewarm:
            del rewarm[key]  # re-insert below: dict order is recency
        elif len(rewarm) >= _REWARM_MAX:
            del rewarm[next(iter(rewarm))]
        rewarm[key] = True
        self._note_flap_locked(key)

    def is_promoted(self, key: PlanKey) -> bool:
        return key in self._by_key

    def promoted_entries(self):
        """Point-in-time view of every installed specialized entry as
        ``(key, elision-or-None)`` pairs — the warm-state snapshot uses
        this to record which sites were promoted and under which tier-3
        verdict, so a warm-started worker can re-promote eagerly."""
        with self._lock:
            return [(entry.key, entry.elision)
                    for site in self._sites.values()
                    for entry in site.entries]


def _plan_specializable(plan: CallPlan) -> bool:
    """Shape stability: every per-call decision must either fold into
    straight-line code or have a sound bail-to-generic exit.

    A dynamic check with no class profile to guard on (arg) or no result
    profile to guard on (ret) in ``always`` mode would bail or re-walk
    conformance on *every* call — promotion would only add overhead."""
    if plan.sig is None:
        return True
    if plan.arg_mode == ARG_CHECK_ALWAYS and not plan.profile_eligible:
        return False
    if plan.ret_mode == ARG_CHECK_ALWAYS and not plan.ret_profile_eligible:
        return False
    return True


def _entry_kw_layout(plan: CallPlan) -> Optional[Tuple[int, tuple]]:
    """The kwargs layout to compile in, or None (keyword calls bail).

    Requires a profile-guardable signature — the compiled reorder feeds
    the profile chain, which is the only sound straight-line check."""
    if plan.sig is None or not plan.profile_eligible:
        return None
    return plan.stable_kw_layout()


#: synthetic filename stem for compiled wrappers (visible in tracebacks).
_CODEGEN_FILE = "<hb-specialized {owner}#{name}>"


def _compile_wrapper(engine: "Engine", def_owner: str, name: str, kind: str,
                     fn, entries: Tuple[_Entry, ...]):
    """``exec``-compile the straight-line dispatch wrapper for ``entries``.

    The emitted code is the tier-1 warm path partially evaluated against
    each entry's plan: every mode branch is resolved at compile time,
    every engine attribute chase becomes a closed-over local, and the
    counter updates match the generic path bump for bump (the
    stats-exactness suite runs with promotion active).  Entries are
    tried in promotion order; a receiver matching no guard bails to the
    generic tier.
    """
    bail = ("return _invoke(_def_owner, _name, _kind, _fn, recv, "
            "args, kwargs)")
    lines = ["def _specialized(recv, *args, **kwargs):"]
    namespace = {
        "_fn": fn,
        "_tls": engine._tls,
        "_invoke": engine.invoke,
        "_def_owner": def_owner,
        "_name": name,
        "_kind": kind,
        "_entries": engine.cache._entries,
        "_live": engine._plans._plans,
        "_ret_check": engine._dynamic_ret_check,
    }
    for i, entry in enumerate(entries):
        guard = (f"recv is _cls{i}" if kind == CLASS
                 else f"type(recv) is _cls{i}")
        lines.append(f"    if {guard}:")
        body, body_ns = _entry_lines(engine, i, entry, name, bail)
        lines += ["        " + ln for ln in body]
        namespace[f"_cls{i}"] = entry.guard_cls
        namespace.update(body_ns)
    lines.append(f"    {bail}")
    source = "\n".join(lines) + "\n"
    filename = _CODEGEN_FILE.format(owner=def_owner, name=name)
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102
    wrapper = namespace["_specialized"]
    wrapper.__name__ = getattr(fn, "__name__", name)
    wrapper.__qualname__ = getattr(fn, "__qualname__", name)
    wrapper.__doc__ = getattr(fn, "__doc__", None)
    wrapper.__module__ = getattr(fn, "__module__", __name__)
    wrapper.__hb_original__ = fn
    wrapper.__hb_engine__ = engine
    wrapper.__hb_specialized__ = True
    wrapper.__hb_source__ = source  # introspection for tests/debugging
    wrapper.__hb_entry_keys__ = tuple(e.key for e in entries)
    return wrapper


def _entry_lines(engine: "Engine", i: int, entry: _Entry, name: str,
                 bail: str) -> Tuple[list, dict]:
    """One dispatch entry's body (unindented), all paths returning.

    When the entry carries a tier-3 :class:`Elision`, the corresponding
    check operations are *not emitted*; the counters still report what
    the generic tier would have reported (the boundary probe still picks
    ``dynamic_arg_checks`` vs ``_skipped`` even when the test itself is
    gone), plus ``checks_elided`` advancing by the number of omitted
    operations."""
    plan = entry.plan
    sig = plan.sig
    checked = plan.checked
    el = entry.elision
    gps = el.guard_profiles if el is not None else None
    recv_owner = entry.key[1]
    ns: dict = {f"_key{i}": entry.key, f"_plan{i}": plan}
    lines = []
    argname = "args"
    if entry.kw_layout is not None:
        # Keyword calls matching the compiled layout reorder into the
        # full positional view as one tuple expression; everything
        # downstream (profile chain, the real call) is positional.  The
        # original ``args``/``kwargs`` are never rebound, so every bail
        # hands the generic tier the call unchanged.
        argname = "vals"
        npos, names = entry.kw_layout
        picks = [f"args[{j}]" for j in range(npos)]
        n_str = 0
        for j, n in enumerate(names):
            if n.__class__ is str:
                picks.append(f"kwargs[{n!r}]")
                n_str += 1
            else:
                # BoundDefault: a defaulted slot the call shape skips;
                # the declared default is a def-time constant, so it
                # closes over like any guard class.
                ns[f"_kwd{i}_{j}"] = n.value
                picks.append(f"_kwd{i}_{j}")
        joined = ", ".join(picks) + ("," if len(picks) == 1 else "")
        lines += [
            "if kwargs:",
            f"    if len(args) != {npos} or len(kwargs) != {n_str}:",
            f"        {bail}",
            "    try:",
            f"        vals = ({joined})",
            "    except KeyError:",
            f"        {bail}",
            "    kw = True",
            "else:",
            "    vals = args",
            "    kw = False",
        ]
    else:
        lines += [
            "if kwargs:",
            f"    {bail}",
        ]
    lines += [
        # Liveness guard: the entry is only valid while the exact plan
        # it was compiled from is still in the plan cache.  Deopt swaps
        # the class attribute, but Python callers may have *hoisted* a
        # bound method before the swap — those references bypass the
        # rebinding, and without this per-call identity probe they would
        # replay the dropped plan's assumptions (e.g. admit an argument
        # profile a retype just outlawed).  One constant-key dict get.
        f"if _live.get(_key{i}) is not _plan{i}:",
        f"    {bail}",
    ]
    cache_guard_elided = checked and el is not None and el.cache_guard
    if checked and not cache_guard_elided:
        # Mirrors the tier-1 guard against direct CheckCache flushes
        # that bypass Engine.invalidate: no entry, no fast path.
        lines += [
            f"if _ckey{i} not in _entries:",
            f"    {bail}",
        ]
        ns[f"_ckey{i}"] = (recv_owner, name)
    if gps:
        # Pinned profile chains: the frame/return verdicts below were
        # proved *under these argument classes*, so the chains guard
        # unconditionally — no copy-on-write fallback; a call matching
        # none of them (another learned profile, a new shape) bails to
        # the generic tier.  Every admitted chain re-proved every seeded
        # verdict, so matching any one of them is sufficient.  A None
        # slot is unpinned (the layout pseudo-profile pins only
        # defaulted slots) and emits no test.
        conds = []
        for p_idx, gp in enumerate(gps):
            tests = [f"len({argname}) == {len(gp)}"]
            for j, cls in enumerate(gp):
                if cls is None:
                    continue
                tests.append(f"type({argname}[{j}]) is _d{i}_{p_idx}_{j}")
                ns[f"_d{i}_{p_idx}_{j}"] = cls
            conds.append("(" + " and ".join(tests) + ")")
        lines += [
            f"if not ({' or '.join(conds)}):",
            f"    {bail}",
        ]
    frame_elided = el is not None and el.frame
    arg_elided = el is not None and el.arg_check
    ret_elided = el is not None and el.ret_check
    do_ret = sig is not None and plan.ret_mode != ARG_CHECK_NEVER
    need_stack = (not frame_elided
                  or (sig is not None
                      and plan.arg_mode == ARG_CHECK_BOUNDARY)
                  or (do_ret and plan.ret_mode != ARG_CHECK_ALWAYS))
    lines.append("tls = _tls")
    if need_stack:
        lines.append("stack = tls.stack")
    kw_arity_free = False
    if sig is None:
        arg_counters = []
    else:
        if gps and el.chain_conforms:
            # The pinned chains above already vetted the arguments
            # (learned profiles only ever contain conforming tuples).
            profile_test = None
        elif arg_elided:
            # Every matching parameter type is vacuous: the dynamic
            # check passes for any value — only the arity it was proved
            # at needs guarding.  At a compiled kwargs layout whose full
            # positional view has exactly that arity, the keyword path
            # *constructs* the view, so its length is a compile-time
            # fact and even the arity test is elided there.
            if entry.kw_layout is not None:
                npos_l, names_l = entry.kw_layout
                kw_arity_free = npos_l + len(names_l) == el.arity
            if kw_arity_free:
                profile_test = [f"if not kw and len({argname}) != {el.arity}:",
                                f"    {bail}"]
            else:
                profile_test = [f"if len({argname}) != {el.arity}:",
                                f"    {bail}"]
        else:
            profile_test, guard_classes = _profile_test_lines(
                i, plan, bail, argname)
            ns.update(guard_classes)
        if plan.arg_mode == ARG_CHECK_BOUNDARY:
            if profile_test is None:
                lines.append("checked_args = not (stack and stack[-1])")
            else:
                lines += [
                    "if stack and stack[-1]:",
                    "    checked_args = False",
                    "else:",
                    *["    " + ln for ln in profile_test],
                    "    checked_args = True",
                ]
            arg_counters = [
                "if checked_args:",
                "    c.dynamic_arg_checks += 1",
                "else:",
                "    c.dynamic_arg_checks_skipped += 1",
            ]
        elif plan.arg_mode == ARG_CHECK_ALWAYS:
            if profile_test is not None:
                lines += profile_test
            arg_counters = ["c.dynamic_arg_checks += 1"]
        else:  # ARG_CHECK_NEVER
            arg_counters = ["c.dynamic_arg_checks_skipped += 1"]
    if do_ret:
        # Decided from the *caller's* frame, before ours pushes —
        # identical to the tier-1 ordering.
        if plan.ret_mode == ARG_CHECK_ALWAYS:
            lines.append("do_ret = True")
        else:
            lines.append("do_ret = True if stack and stack[-1] else False")
    lines += [
        "c = tls.counters",
        "c.calls_intercepted += 1",
        "c.fast_path_hits += 1",
        "c.specialized_hits += 1",
    ]
    if i > 0:
        lines.append("c.poly_spec_hits += 1")
    if entry.kw_layout is not None:
        lines += [
            "if kw:",
            "    c.kw_spec_hits += 1",
        ]
    if checked:
        # Kept even when the membership probe is elided: the memoized
        # derivation is still what admits this call.
        lines.append("c.cache_hits += 1")
    lines += arg_counters
    if el is not None and el.count:
        lines.append(f"c.checks_elided += {el.count}")
    if kw_arity_free:
        # The keyword path skipped even the arity test.
        lines += [
            "if kw:",
            "    c.checks_elided += 1",
        ]
    call = f"_fn(recv, *{argname})"
    if frame_elided:
        # The body provably never re-enters intercepted code, so no
        # callee can read the checked-frame flag: the push/pop (and the
        # try/finally protecting it) are dead.
        lines.append(f"result = {call}" if do_ret else f"return {call}")
    else:
        lines += [
            f"stack.append({checked})",
            "try:",
            f"    result = {call}" if do_ret else f"    return {call}",
            "finally:",
            "    stack.pop()",
        ]
    if do_ret:
        if plan.ret_profile_eligible:
            if ret_elided:
                # Conformance is statically proved for every class the
                # body can return; keep the membership probe purely for
                # counter/profile parity with the generic tier, but the
                # slow conformance walk is gone.
                lines += [
                    "if do_ret:",
                    f"    if type(result) in _plan{i}.ret_profiles:",
                    "        c.ret_profile_hits += 1",
                    "    else:",
                    f"        _plan{i}.learn_ret_profile(type(result))",
                    "    c.dynamic_ret_checks += 1",
                ]
            else:
                lines += [
                    "if do_ret:",
                    f"    if type(result) in _plan{i}.ret_profiles:",
                    "        c.ret_profile_hits += 1",
                    "    else:",
                    f"        _ret_slow{i}(result)",
                    "    c.dynamic_ret_checks += 1",
                ]

                def _ret_slow(result, _engine=engine, _plan=plan,
                              _owner=recv_owner, _name=name):
                    _engine._dynamic_ret_check(_plan.sig, result, _owner,
                                               _name)
                    _plan.learn_ret_profile(type(result))

                ns[f"_ret_slow{i}"] = _ret_slow
        elif ret_elided:
            lines += [
                "if do_ret:",
                "    c.dynamic_ret_checks += 1",
            ]
        else:
            lines += [
                "if do_ret:",
                f"    _ret_check(_sig{i}, result, _recv_owner{i}, _name)",
                "    c.dynamic_ret_checks += 1",
            ]
            ns[f"_sig{i}"] = sig
            ns[f"_recv_owner{i}"] = recv_owner
        lines.append("return result")
    return lines, ns


def _profile_test_lines(i: int, plan: CallPlan, bail: str,
                        argname: str) -> Tuple[list, dict]:
    """The membership test against the plan's COW profile set, fronted
    by an identity guard on the *dominant* profile — the hottest shape
    by pre-promotion hit counts (:meth:`CallPlan.dominant_profile`), so
    the steady state is a ``len``/``type``/``is`` chain with no tuple
    allocation.  Returns the (unindented) lines and the ``_d<i>_<j>``
    guard classes to close over.

    Misses bail to the generic tier, which runs the real conformance
    walk (raising on genuinely bad arguments) and COW-learns passing
    tuples into ``plan.profiles`` — which this code re-reads per call,
    so the specialized site keeps profiting from post-promotion
    learning without recompilation."""
    if not plan.profile_eligible:
        # No sound class guard exists; a check-path call must run the
        # full conformance walk — in the generic tier.
        return [bail], {}
    fallback = [
        f"if tuple(map(type, {argname})) not in _plan{i}.profiles:",
        f"    {bail}",
    ]
    dominant = plan.dominant_profile()
    if dominant is None:
        return fallback, {}
    guard = [f"len({argname}) == {len(dominant)}"]
    guard += [f"type({argname}[{j}]) is _d{i}_{j}"
              for j in range(len(dominant))]
    lines = [
        f"if not ({' and '.join(guard)}):",
        *["    " + ln for ln in fallback],
    ]
    return lines, {f"_d{i}_{j}": cls for j, cls in enumerate(dominant)}
