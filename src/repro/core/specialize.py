"""Tier-2 specialization — compiling warm call plans into per-site wrappers.

Tier 1 (:mod:`repro.core.plans`) made the steady state "a guard plus a
cache hit", but the guard itself is still ~30 lines of interpreted Python
per call inside ``Engine.invoke``: build the plan key tuple, run
``class_name_of``, fetch thread-locals, branch on the arg/ret modes,
push/pop the checked frame.  Lazy basic block versioning
(Chevalier-Boisvert & Feeley) and "Transient Typechecks are (Almost)
Free" (Roberts et al.) both make the same observation: type guards only
become near-free when they are *compiled into the call site* as
straight-line code.  This module is that move for the CPython substrate.

**Promotion.**  Once a :class:`~repro.core.plans.CallPlan` has served
``EngineConfig.specialize_threshold`` warm hits (default 50) and its
shape is stable — a monomorphic receiver class, and either a
class-determined argument profile or a check-free configuration — the
:class:`Specializer` generates a wrapper function specialized to exactly
that plan: the receiver-class identity guard, the dominant
argument-profile test, the checked-frame push/pop, and (when the plan
performs them) the dynamic return check are emitted as straight-line
local-variable operations, ``exec``-compiled once, closing over the
original function, the plan (whose COW profile sets it re-reads each
call), and the engine's per-thread state.  ``rdl.wrap``'s generic
wrapper is then atomically displaced: one ``setattr`` rebinds the class
attribute, so promotion needs no cooperation from in-flight calls.

**Guard failure falls back, never raises.**  Any situation the
straight-line code does not cover — a different receiver class, keyword
arguments, an unseen argument-class tuple, a missing check-cache entry —
bails into ``Engine.invoke`` *before touching any counter*, so the
generic tier observes exactly the call it would have seen without
specialization (including raising the right ``ArgumentTypeError`` and
learning new profiles).  A specialized wrapper is therefore a pure
fast-path overlay: it can be wrong about the future, never about the
call it accepts.

**Deoptimization.**  Soundness rides the PR 2 dependency machinery: a
specialized wrapper lives exactly as long as the plan it was compiled
from.  Every invalidation wave that drops a plan
(:meth:`CallPlanCache.invalidate_resources`,
:meth:`~repro.core.plans.CallPlanCache.invalidate_cache_keys`,
:meth:`~repro.core.plans.CallPlanCache.clear`, and store-overwrites)
reports the dropped keys through ``CallPlanCache.on_drop``, and the
engine swaps the generic wrapper back in *before the wave returns* —
so by the time a mutation's caller regains control, no specialized code
embodying the pre-mutation world is reachable from the class.  Epoch
bumps that drop nothing (e.g. a field-type wave whose removal set is
empty) deoptimize nothing: a surviving plan's dependencies were, by
construction of the wave, untouched, so its compiled form is still
valid.  Three further guards close the remaining corners:

* every specialized wrapper carries a per-call **liveness guard** — a
  constant-key identity probe that its plan is still the one in the
  plan cache.  Rebinding the class attribute cannot reach bound methods
  Python callers hoisted before the swap; the liveness guard makes
  those references self-invalidating, so deopt-by-rebinding is purely a
  performance recovery, never load-bearing for soundness;
* checked wrappers additionally test their ``(receiver, method)``
  membership in the check cache per call, so even a direct
  ``CheckCache.clear()`` that bypasses ``Engine.invalidate`` degrades
  the site to the generic path instead of replaying a removed
  derivation — mirroring the tier-1 plan guard;
* promotion re-verifies (after publishing the wrapper) that its plan is
  still live, self-deoptimizing if a wave raced the install through a
  direct cache call that did not hold the engine's writer lock.

Contracts (``rdl.wrap`` pre/post hooks) always run in the generic
wrapper; registering any contract deoptimizes every site and blocks
further promotion while contracts exist.

``REPRO_DISABLE_SPECIALIZE=1`` (or ``EngineConfig(specialize=False)``)
turns the tier off — the ``tier1-nospec`` CI job runs the whole suite
that way, and the differential harnesses prove outcome equality between
tier-2, tier-1, and the cache-free oracle.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Dict, Iterable, Tuple

from ..rdl.registry import CLASS
from .plans import (
    ARG_CHECK_ALWAYS, ARG_CHECK_BOUNDARY, ARG_CHECK_NEVER, CallPlan, PlanKey,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine


def specialize_disabled_by_env() -> bool:
    """True when ``REPRO_DISABLE_SPECIALIZE`` forces tier-1-only mode."""
    return os.environ.get("REPRO_DISABLE_SPECIALIZE", "") not in (
        "", "0", "false", "no")


class _Site:
    """One promoted call site: what was displaced and what displaced it."""

    __slots__ = ("key", "def_cls", "name", "generic", "specialized",
                 "was_classmethod")

    def __init__(self, key: PlanKey, def_cls: type, name: str, generic,
                 specialized, was_classmethod: bool) -> None:
        self.key = key
        self.def_cls = def_cls
        self.name = name
        self.generic = generic
        self.specialized = specialized
        self.was_classmethod = was_classmethod


class Specializer:
    """The tier-2 compiler + deopt registry for one engine.

    Locking: :meth:`maybe_promote` runs under the engine's writer lock
    (promotion is a mutation of the class, and serializing with
    invalidation waves makes the is-my-plan-still-live check race-free);
    the internal lock additionally serializes the site registry against
    deopt callbacks arriving from direct ``CallPlanCache`` calls that
    bypass the writer lock.  The specializer never acquires any other
    lock while holding its own.
    """

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._lock = threading.Lock()
        self._sites: Dict[PlanKey, _Site] = {}
        #: (defining class, method name) -> plan key, so wrapper-slot
        #: rebinds (re-wrap, unwrap) can discard the registration that
        #: watched the displaced slot.
        self._by_slot: Dict[Tuple[type, str], PlanKey] = {}

    def __len__(self) -> int:
        return len(self._sites)

    # -- promotion ----------------------------------------------------------

    def maybe_promote(self, key: PlanKey, plan: CallPlan, fn, recv) -> bool:
        """Compile ``plan`` into a specialized wrapper and install it.

        Called from the warm path when the plan crosses the hit
        threshold.  Marks the plan ``promoted`` whatever happens — one
        attempt per plan generation; a plan dropped by invalidation and
        rebuilt cold gets a fresh attempt.
        """
        plan.promoted = True
        engine = self.engine
        if engine._contracts:
            return False  # contracts only run in the generic wrapper
        if not _plan_specializable(plan):
            return False
        def_owner, recv_owner, name, kind = key
        if kind == CLASS:
            if not isinstance(recv, type):
                return False
            guard_cls: type = recv
        else:
            guard_cls = type(recv)
        def_cls = engine.host_class(def_owner)
        if def_cls is None:
            return False
        raw = def_cls.__dict__.get(name)
        was_classmethod = isinstance(raw, classmethod)
        inner = raw.__func__ if was_classmethod else raw
        # Only displace the current-generation generic wrapper for this
        # very function: a stale fn, an already-specialized slot (another
        # receiver class won the monomorphic slot), or a foreign wrapper
        # all refuse.
        if (inner is None
                or getattr(inner, "__hb_specialized__", False)
                or getattr(inner, "__hb_original__", None) is not fn):
            return False
        with engine.write_lock:
            if engine._contracts:
                # Re-validated under the lock: a contract registered
                # between the lock-free probe above and here must win —
                # contract registration serializes on the same lock.
                return False
            plans = engine._plans
            if plans is None or plans.get(key) is not plan:
                return False  # a wave dropped the plan while we raced here
            if def_cls.__dict__.get(name) is not raw:
                return False  # the slot changed under us; stay generic
            with self._lock:
                if key in self._sites or (def_cls, name) in self._by_slot:
                    return False
                wrapper = _compile_wrapper(engine, key, plan, fn, guard_cls)
                site = _Site(key, def_cls, name, inner, wrapper,
                             was_classmethod)
                setattr(def_cls, name,
                        classmethod(wrapper) if was_classmethod else wrapper)
                self._sites[key] = site
                self._by_slot[(def_cls, name)] = key
            engine.stats.promotions += 1
            stale = plans.get(key) is not plan
        if stale:
            # A direct cache call (no writer lock) dropped the plan
            # between our liveness check and the install racing its
            # on_drop callback; undo — the callback may have run before
            # the site existed.
            self.deoptimize_keys((key,))
            return False
        return True

    # -- deoptimization -----------------------------------------------------

    def deoptimize_keys(self, keys: Iterable[PlanKey]) -> int:
        """Swap the generic wrapper back in for each promoted ``key``.

        Restores the slot only when it still holds our specialized
        wrapper — a slot rebound by a re-wrap or unwrap in the meantime
        must not be clobbered with a resurrected generic.
        """
        restored = 0
        with self._lock:
            for key in keys:
                site = self._sites.pop(key, None)
                if site is None:
                    continue
                self._by_slot.pop((site.def_cls, site.name), None)
                raw = site.def_cls.__dict__.get(site.name)
                inner = raw.__func__ if isinstance(raw, classmethod) else raw
                if inner is site.specialized:
                    setattr(site.def_cls, site.name,
                            classmethod(site.generic) if site.was_classmethod
                            else site.generic)
                restored += 1
            if restored:
                self.engine.stats.deopts += restored
        return restored

    def deoptimize_all(self) -> int:
        """Deoptimize every promoted site (contract registration, tests)."""
        with self._lock:
            keys = tuple(self._sites)
        return self.deoptimize_keys(keys)

    def discard_slot(self, def_cls: type, name: str) -> None:
        """Forget (without restoring) the site watching ``def_cls.name``.

        Called by ``wrap_method``/``unwrap_method`` just before they
        rebind the slot themselves: the displaced generic wrapper is
        obsolete, so restoring it later would resurrect a superseded
        function.
        """
        with self._lock:
            key = self._by_slot.pop((def_cls, name), None)
            if key is not None:
                self._sites.pop(key, None)
                self.engine.stats.deopts += 1

    def is_promoted(self, key: PlanKey) -> bool:
        return key in self._sites


def _plan_specializable(plan: CallPlan) -> bool:
    """Shape stability: every per-call decision must either fold into
    straight-line code or have a sound bail-to-generic exit.

    A dynamic check with no class profile to guard on (arg) or no result
    profile to guard on (ret) in ``always`` mode would bail or re-walk
    conformance on *every* call — promotion would only add overhead."""
    if plan.sig is None:
        return True
    if plan.arg_mode == ARG_CHECK_ALWAYS and not plan.profile_eligible:
        return False
    if plan.ret_mode == ARG_CHECK_ALWAYS and not plan.ret_profile_eligible:
        return False
    return True


#: synthetic filename stem for compiled wrappers (visible in tracebacks).
_CODEGEN_FILE = "<hb-specialized {owner}#{name}>"


def _compile_wrapper(engine: "Engine", key: PlanKey, plan: CallPlan, fn,
                     guard_cls: type):
    """``exec``-compile the straight-line wrapper for ``plan``.

    The emitted code is the tier-1 warm path partially evaluated against
    the plan: every mode branch is resolved at compile time, every
    engine attribute chase becomes a closed-over local, and the counter
    updates match the generic path bump for bump (the stats-exactness
    suite runs with promotion active).
    """
    def_owner, recv_owner, name, kind = key
    sig = plan.sig
    checked = plan.checked
    bail = ("return _invoke(_def_owner, _name, _kind, _fn, recv, "
            "args, kwargs)")
    recv_guard = "recv is not _cls" if kind == CLASS \
        else "type(recv) is not _cls"
    lines = [
        "def _specialized(recv, *args, **kwargs):",
        f"    if kwargs or {recv_guard}:",
        f"        {bail}",
        # Liveness guard: the wrapper is only valid while the exact plan
        # it was compiled from is still in the plan cache.  Deopt swaps
        # the class attribute, but Python callers may have *hoisted* a
        # bound method before the swap — those references bypass the
        # rebinding, and without this per-call identity probe they would
        # replay the dropped plan's assumptions (e.g. admit an argument
        # profile a retype just outlawed).  One constant-key dict get.
        "    if _live.get(_key) is not _plan:",
        f"        {bail}",
    ]
    if checked:
        # Mirrors the tier-1 guard against direct CheckCache flushes
        # that bypass Engine.invalidate: no entry, no fast path.
        lines += [
            "    if _ckey not in _entries:",
            f"        {bail}",
        ]
    lines += [
        "    tls = _tls",
        "    stack = tls.stack",
    ]
    profile_test, guard_classes = _profile_test_lines(plan, bail)
    if sig is None:
        arg_counters = []
    elif plan.arg_mode == ARG_CHECK_BOUNDARY:
        lines += [
            "    if stack and stack[-1]:",
            "        checked_args = False",
            "    else:",
            *["        " + ln for ln in profile_test],
            "        checked_args = True",
        ]
        arg_counters = [
            "    if checked_args:",
            "        c.dynamic_arg_checks += 1",
            "    else:",
            "        c.dynamic_arg_checks_skipped += 1",
        ]
    elif plan.arg_mode == ARG_CHECK_ALWAYS:
        lines += ["    " + ln for ln in profile_test]
        arg_counters = ["    c.dynamic_arg_checks += 1"]
    else:  # ARG_CHECK_NEVER
        arg_counters = ["    c.dynamic_arg_checks_skipped += 1"]
    do_ret = sig is not None and plan.ret_mode != ARG_CHECK_NEVER
    if do_ret:
        # Decided from the *caller's* frame, before ours pushes —
        # identical to the tier-1 ordering.
        if plan.ret_mode == ARG_CHECK_ALWAYS:
            lines.append("    do_ret = True")
        else:
            lines.append("    do_ret = True if stack and stack[-1] "
                         "else False")
    lines += [
        "    c = tls.counters",
        "    c.calls_intercepted += 1",
        "    c.fast_path_hits += 1",
        "    c.specialized_hits += 1",
    ]
    if checked:
        lines.append("    c.cache_hits += 1")
    lines += arg_counters
    lines += [
        f"    stack.append({checked})",
        "    try:",
        "        result = _fn(recv, *args)" if do_ret
        else "        return _fn(recv, *args)",
        "    finally:",
        "        stack.pop()",
    ]
    if do_ret:
        if plan.ret_profile_eligible:
            lines += [
                "    if do_ret:",
                "        if type(result) in _plan.ret_profiles:",
                "            c.ret_profile_hits += 1",
                "        else:",
                "            _ret_slow(result)",
                "        c.dynamic_ret_checks += 1",
            ]
        else:
            lines += [
                "    if do_ret:",
                "        _ret_check(_sig, result, _recv_owner, _name)",
                "        c.dynamic_ret_checks += 1",
            ]
        lines.append("    return result")
    source = "\n".join(lines) + "\n"
    namespace = {
        "_cls": guard_cls,
        "_fn": fn,
        "_tls": engine._tls,
        "_plan": plan,
        "_invoke": engine.invoke,
        "_def_owner": def_owner,
        "_recv_owner": recv_owner,
        "_name": name,
        "_kind": kind,
        "_ckey": (recv_owner, name),
        "_entries": engine.cache._entries,
        "_key": key,
        "_live": engine._plans._plans,
        "_sig": sig,
        "_ret_check": engine._dynamic_ret_check,
    }
    namespace.update(guard_classes)
    if do_ret and plan.ret_profile_eligible:
        def _ret_slow(result, _engine=engine, _plan=plan,
                      _owner=recv_owner, _name=name):
            _engine._dynamic_ret_check(_plan.sig, result, _owner, _name)
            _plan.learn_ret_profile(type(result))
        namespace["_ret_slow"] = _ret_slow
    filename = _CODEGEN_FILE.format(owner=recv_owner, name=name)
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102
    wrapper = namespace["_specialized"]
    wrapper.__name__ = getattr(fn, "__name__", name)
    wrapper.__qualname__ = getattr(fn, "__qualname__", name)
    wrapper.__doc__ = getattr(fn, "__doc__", None)
    wrapper.__module__ = getattr(fn, "__module__", __name__)
    wrapper.__hb_original__ = fn
    wrapper.__hb_engine__ = engine
    wrapper.__hb_specialized__ = True
    wrapper.__hb_source__ = source  # introspection for tests/debugging
    return wrapper


def _profile_test_lines(plan: CallPlan, bail: str) -> Tuple[list, dict]:
    """The membership test against the plan's COW profile set, fronted
    by an identity guard on the *dominant* profile (the one observed at
    promotion time): the steady state is a ``len``/``type``/``is``
    chain with no tuple allocation.  Returns the (unindented) lines and
    the ``_d<i>`` guard classes to close over.

    Misses bail to the generic tier, which runs the real conformance
    walk (raising on genuinely bad arguments) and COW-learns passing
    tuples into ``plan.profiles`` — which this code re-reads per call,
    so the specialized site keeps profiting from post-promotion
    learning without recompilation."""
    if not plan.profile_eligible:
        # No sound class guard exists; a check-path call must run the
        # full conformance walk — in the generic tier.
        return [bail], {}
    dominant = next(iter(plan.profiles), None)
    fallback = [
        "if tuple(map(type, args)) not in _plan.profiles:",
        f"    {bail}",
    ]
    if dominant is None:
        return fallback, {}
    guard = [f"len(args) == {len(dominant)}"]
    guard += [f"type(args[{i}]) is _d{i}" for i in range(len(dominant))]
    lines = [
        f"if not ({' and '.join(guard)}):",
        *["    " + ln for ln in fallback],
    ]
    return lines, {f"_d{i}": cls for i, cls in enumerate(dominant)}
