"""Trusted type annotations for the core library.

"For all apps, we used common type annotations from RDL for the Ruby core
and standard libraries" (paper, section 5).  This module is that common
annotation set for the Python host, written in the RDL type language.  Two
kinds of selectors appear:

* IR-level selectors the lowering produces (``+``, ``[]``, ``[]=``,
  ``length``, ``include?``, ``to_s``, ``map``, ``select``, ``puts``, …);
* real host method names apps call directly (``append``, ``keys``,
  ``upper``, ``startswith``, ``items``, …).

All of these are *trusted* — their bodies are never statically checked —
exactly as the paper trusts library annotations.
"""

from __future__ import annotations

# (owner, method, signature) triples; repeated (owner, method) pairs build
# intersection types, e.g. Integer#+ below mirrors the paper's Array#[]
# overloading example.
CORE_SIGS = [
    # ---- Object (including Kernel methods available everywhere) ----
    ("Object", "==", "(%any) -> %bool"),
    ("Object", "!=", "(%any) -> %bool"),
    ("Object", "equal?", "(%any) -> %bool"),
    ("Object", "nil?", "() -> %bool"),
    ("Object", "to_s", "() -> String"),
    ("Object", "inspect", "() -> String"),
    ("Object", "hash", "() -> Integer"),
    ("Object", "freeze", "() -> self"),
    ("Object", "dup", "() -> self"),
    ("Object", "respond_to?", "(Symbol or String) -> %bool"),
    ("Object", "puts", "(*%any) -> nil"),
    ("Object", "print", "(*%any) -> nil"),

    # ---- Comparable ----
    ("Comparable", "<", "(self) -> %bool"),
    ("Comparable", "<=", "(self) -> %bool"),
    ("Comparable", ">", "(self) -> %bool"),
    ("Comparable", ">=", "(self) -> %bool"),
    ("Comparable", "between?", "(self, self) -> %bool"),

    # ---- Integer ----
    ("Integer", "+", "(Integer) -> Integer"),
    ("Integer", "+", "(Float) -> Float"),
    ("Integer", "-", "(Integer) -> Integer"),
    ("Integer", "-", "(Float) -> Float"),
    ("Integer", "*", "(Integer) -> Integer"),
    ("Integer", "*", "(Float) -> Float"),
    ("Integer", "/", "(Integer) -> Integer"),
    ("Integer", "/", "(Float) -> Float"),
    ("Integer", "%", "(Integer) -> Integer"),
    ("Integer", "**", "(Integer) -> Integer"),
    ("Integer", "-@", "() -> Integer"),
    ("Integer", "abs", "() -> Integer"),
    ("Integer", "succ", "() -> Integer"),
    ("Integer", "to_i", "() -> Integer"),
    ("Integer", "to_f", "() -> Float"),
    ("Integer", "zero?", "() -> %bool"),
    ("Integer", "even?", "() -> %bool"),
    ("Integer", "odd?", "() -> %bool"),
    ("Integer", "min", "(Integer) -> Integer"),
    ("Integer", "max", "(Integer) -> Integer"),
    ("Integer", "<", "(Numeric) -> %bool"),
    ("Integer", "<=", "(Numeric) -> %bool"),
    ("Integer", ">", "(Numeric) -> %bool"),
    ("Integer", ">=", "(Numeric) -> %bool"),

    # ---- Float ----
    ("Float", "+", "(Numeric) -> Float"),
    ("Float", "-", "(Numeric) -> Float"),
    ("Float", "*", "(Numeric) -> Float"),
    ("Float", "/", "(Numeric) -> Float"),
    ("Float", "%", "(Numeric) -> Float"),
    ("Float", "**", "(Numeric) -> Float"),
    ("Float", "-@", "() -> Float"),
    ("Float", "abs", "() -> Float"),
    ("Float", "round", "(?Integer) -> Integer or Float"),
    ("Float", "to_i", "() -> Integer"),
    ("Float", "to_f", "() -> Float"),
    ("Float", "zero?", "() -> %bool"),
    ("Float", "<", "(Numeric) -> %bool"),
    ("Float", "<=", "(Numeric) -> %bool"),
    ("Float", ">", "(Numeric) -> %bool"),
    ("Float", ">=", "(Numeric) -> %bool"),

    # ---- String (IR selectors + host str methods) ----
    ("String", "+", "(String) -> String"),
    ("String", "*", "(Integer) -> String"),
    ("String", "%", "(%any) -> String"),
    ("String", "[]", "(Integer) -> String"),
    ("String", "[]", "(Range<Integer>) -> String"),
    ("String", "length", "() -> Integer"),
    ("String", "size", "() -> Integer"),
    ("String", "empty?", "() -> %bool"),
    ("String", "include?", "(String) -> %bool"),
    ("String", "to_i", "() -> Integer"),
    ("String", "to_f", "() -> Float"),
    ("String", "to_sym", "() -> Symbol"),
    ("String", "upper", "() -> String"),
    ("String", "lower", "() -> String"),
    ("String", "upcase", "() -> String"),
    ("String", "downcase", "() -> String"),
    ("String", "capitalize", "() -> String"),
    ("String", "title", "() -> String"),
    ("String", "strip", "() -> String"),
    ("String", "lstrip", "() -> String"),
    ("String", "rstrip", "() -> String"),
    ("String", "reverse", "() -> String"),
    ("String", "startswith", "(String) -> %bool"),
    ("String", "endswith", "(String) -> %bool"),
    ("String", "start_with?", "(String) -> %bool"),
    ("String", "end_with?", "(String) -> %bool"),
    ("String", "split", "(?String) -> Array<String>"),
    ("String", "join", "(Array<String>) -> String"),
    ("String", "replace", "(String, String) -> String"),
    ("String", "sub", "(String, String) -> String"),
    ("String", "gsub", "(String, String) -> String"),
    ("String", "find", "(String) -> Integer"),
    ("String", "index", "(String) -> Integer or nil"),
    ("String", "count", "(String) -> Integer"),
    ("String", "isdigit", "() -> %bool"),
    ("String", "isalpha", "() -> %bool"),
    ("String", "zfill", "(Integer) -> String"),
    ("String", "ljust", "(Integer, ?String) -> String"),
    ("String", "rjust", "(Integer, ?String) -> String"),
    ("String", "format", "(*%any) -> String"),
    ("String", "<", "(String) -> %bool"),
    ("String", "<=", "(String) -> %bool"),
    ("String", ">", "(String) -> %bool"),
    ("String", ">=", "(String) -> %bool"),
    ("String", "chars", "() -> Array<String>"),
    ("String", "encode", "(?String) -> %any"),

    # ---- Symbol ----
    ("Symbol", "to_s", "() -> String"),
    ("Symbol", "to_sym", "() -> Symbol"),
    ("Symbol", "name", "() -> String"),

    # ---- NilClass ----
    ("NilClass", "nil?", "() -> %bool"),
    ("NilClass", "to_s", "() -> String"),
    ("NilClass", "to_a", "() -> Array<%any>"),

    # ---- Boolean ----
    ("Boolean", "&", "(%bool) -> %bool"),
    ("Boolean", "|", "(%bool) -> %bool"),

    # ---- Array<t> (IR selectors + host list methods) ----
    ("Array", "[]", "(Integer) -> t"),
    ("Array", "[]", "(Range<Integer>) -> Array<t>"),
    ("Array", "[]=", "(Integer, t) -> t"),
    ("Array", "+", "(Array<t>) -> Array<t>"),
    ("Array", "*", "(Integer) -> Array<t>"),
    ("Array", "length", "() -> Integer"),
    ("Array", "size", "() -> Integer"),
    ("Array", "empty?", "() -> %bool"),
    ("Array", "include?", "(%any) -> %bool"),
    ("Array", "append", "(t) -> nil"),
    ("Array", "push", "(t) -> Array<t>"),
    ("Array", "pop", "() -> t or nil"),
    ("Array", "insert", "(Integer, t) -> nil"),
    ("Array", "remove", "(t) -> nil"),
    ("Array", "extend", "(Array<t>) -> nil"),
    ("Array", "clear", "() -> nil"),
    ("Array", "index", "(t) -> Integer"),
    ("Array", "count", "(?t) -> Integer"),
    ("Array", "first", "() -> t or nil"),
    ("Array", "last", "() -> t or nil"),
    ("Array", "reverse", "() -> Array<t>"),
    ("Array", "sort", "() ?{ (t, t) -> Integer } -> nil"),
    ("Array", "copy", "() -> Array<t>"),
    ("Array", "map", "() { (t) -> u } -> Array<u>"),
    ("Array", "select", "() { (t) -> %any } -> Array<t>"),
    ("Array", "each", "() { (t) -> %any } -> Array<t>"),
    ("Array", "zip", "(Array<u>) -> Array<[t, u]>"),
    ("Array", "join", "(?String) -> String"),
    ("Array", "uniq", "() -> Array<t>"),
    ("Array", "flatten", "() -> Array<%any>"),
    ("Array", "compact", "() -> Array<t>"),
    ("Array", "sum", "() -> t"),
    ("Array", "min", "() -> t or nil"),
    ("Array", "max", "() -> t or nil"),

    # ---- Hash<k, v> (IR selectors + host dict methods) ----
    ("Hash", "[]", "(k) -> v"),
    ("Hash", "[]=", "(k, v) -> v"),
    ("Hash", "get", "(k) -> v or nil"),
    ("Hash", "get", "(k, v) -> v"),
    ("Hash", "fetch", "(k) -> v"),
    ("Hash", "keys", "() -> Array<k>"),
    ("Hash", "values", "() -> Array<v>"),
    ("Hash", "items", "() -> Array<[k, v]>"),
    ("Hash", "key?", "(k) -> %bool"),
    ("Hash", "include?", "(k) -> %bool"),
    ("Hash", "length", "() -> Integer"),
    ("Hash", "size", "() -> Integer"),
    ("Hash", "empty?", "() -> %bool"),
    ("Hash", "pop", "(k, ?v) -> v or nil"),
    ("Hash", "update", "(Hash<k, v>) -> nil"),
    ("Hash", "setdefault", "(k, v) -> v"),
    ("Hash", "copy", "() -> Hash<k, v>"),
    ("Hash", "clear", "() -> nil"),
    ("Hash", "map", "() { (k) -> u } -> Array<u>"),
    ("Hash", "select", "() { (k) -> %any } -> Array<k>"),

    # ---- Range<t> ----
    ("Range", "map", "() { (t) -> u } -> Array<u>"),
    ("Range", "select", "() { (t) -> %any } -> Array<t>"),
    ("Range", "include?", "(t) -> %bool"),
    ("Range", "length", "() -> Integer"),
    ("Range", "size", "() -> Integer"),
    ("Range", "first", "() -> t"),
    ("Range", "last", "() -> t"),
    ("Range", "to_a", "() -> Array<t>"),

    # ---- Set<t> ----
    ("Set", "add", "(t) -> nil"),
    ("Set", "remove", "(t) -> nil"),
    ("Set", "include?", "(t) -> %bool"),
    ("Set", "length", "() -> Integer"),
    ("Set", "size", "() -> Integer"),

    # ---- Proc ----
    ("Proc", "call", "(*%any) -> %any"),

    # ---- Time ----
    ("Time", "strftime", "(String) -> String"),
    ("Time", "year", "() -> Integer"),
    ("Time", "month", "() -> Integer"),
    ("Time", "day", "() -> Integer"),
    ("Time", "hour", "() -> Integer"),
    ("Time", "minute", "() -> Integer"),
    ("Time", "isoformat", "() -> String"),
    ("Time", "timestamp", "() -> Float"),
    ("Time", "date", "() -> Time"),
    ("Time", "<", "(Time) -> %bool"),
    ("Time", "<=", "(Time) -> %bool"),
    ("Time", ">", "(Time) -> %bool"),
    ("Time", ">=", "(Time) -> %bool"),
    ("Time", "-", "(Time) -> %any"),

    # ---- exceptions ----
    ("Exception", "message", "() -> String"),
    ("Exception", "args", "() -> Array<%any>"),
]

#: Host exception classes apps may raise; registered under Object so the
#: checker accepts ``raise ValueError(...)``.
HOST_EXCEPTIONS = [
    "ValueError", "RuntimeError", "KeyError", "IndexError",
    "NotImplementedError", "AttributeError", "StopIteration",
]


def install(engine) -> None:
    """Register the core-library annotations into ``engine``.

    These do not count toward phase tracking or Gen'd statistics — they are
    the library baseline every experiment shares.
    """
    for name in HOST_EXCEPTIONS:
        engine.hier.add_class(name, "StandardError")
    for owner, name, sig in CORE_SIGS:
        engine.types.add(owner, name, sig, check=False, generated=False)
    engine.stats.phase.reset()
