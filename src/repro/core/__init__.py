"""``repro.core`` — the Hummingbird engine (the paper's contribution).

Just-in-time static type checking: annotations execute at run time, method
bodies are statically checked at first call against the current type table,
and successful checks are memoized with dependency-based invalidation.
"""

from .annotations import Api, TypedMethod
from .cache import CacheEntry, CheckCache
from .checker import CheckOutcome, Checker
from .deps import DepGraph
from .elide import Elider, Elision, elide_disabled_by_env
from .engine import Engine, EngineConfig, caches_disabled_by_env
from .errors import (
    ArgumentTypeError, CastError, HummingbirdError, NoMethodBodyError,
    ReturnTypeError, StaticTypeError, TypeSignatureError,
)
from .specialize import (
    Specializer, breaker_disabled_by_env, specialize_disabled_by_env,
)
from .stats import PhaseTracker, Stats

__all__ = [
    "Api", "ArgumentTypeError", "CacheEntry", "CastError", "CheckCache",
    "CheckOutcome", "Checker", "DepGraph", "Elider", "Elision", "Engine",
    "EngineConfig", "HummingbirdError", "NoMethodBodyError", "PhaseTracker",
    "ReturnTypeError", "Specializer", "StaticTypeError", "Stats",
    "TypedMethod", "TypeSignatureError", "breaker_disabled_by_env",
    "caches_disabled_by_env", "elide_disabled_by_env",
    "specialize_disabled_by_env",
]
