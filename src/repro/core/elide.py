"""Tier-3 glue: decide which compiled-in checks a promoted site can drop.

Tier 2 compiles a warm call plan into a straight-line wrapper that still
*performs* every per-call safety operation — the check-cache membership
probe, the argument-profile guard, the checked-frame push/pop, the
dynamic return check.  Tier 3 runs the RIL forward dataflow pass
(:mod:`repro.ril.analysis`) at promotion time and statically discharges
the operations it proves redundant, so the wrapper *omits* them.

Per compiled entry the :class:`Elider` produces an :class:`Elision`
verdict with four independent switches:

``cache_guard``
    The wrapper's ``key in cache`` membership probe re-validates the
    memoized static check on every call.  Every *engine-mediated*
    removal of that derivation (redefinition, retype, hierarchy change)
    also drops the call plan — ``Engine.invalidate`` and the change
    hooks flush plans by cache key — so the wrapper's plan-liveness
    guard already covers it and the probe is provably redundant.  (A
    direct ``CheckCache.clear()`` bypassing the engine is a memo flush,
    not a world mutation: replaying the still-valid derivation is
    sound, it just re-checks lazily instead of eagerly.)

``arg_check``
    When some signature arm accepts the site's arity with *vacuous*
    parameter types (``%any``/type variables), the dynamic argument
    check passes for every value — only the arity needs guarding.

``frame``
    The checked-frame push/pop exists so intercepted *callees* can see
    whether their caller's body was statically checked.  A body the
    analysis proves can never re-enter intercepted code has no reader —
    the frame is dead and the ``try/finally`` around the call is
    dropped ("check once per call" becomes "check zero times").

``ret_check``
    When every return-class the body can produce conforms to the
    signature's return type, the dynamic return check (or return
    profile guard) is dead.

Frame and return verdicts may hold only *under the dominant profile*
(the body is safe when ``n`` is an Integer, not for arbitrary ``n``).
Then the verdict carries ``guard_profile``: the wrapper hoists the
dominant class chain into an **unconditional** guard — no copy-on-write
fallback set, a miss bails to the generic path — so the seeded facts
hold on every call that runs the elided body.  A verdict that already
holds seed-free needs no pin and keeps serving every learned profile.

Soundness: every fact a verdict read (signature slots with negative
probes, linearizations, field types, callee bodies as ``("ir", ...)``
edges) is merged into the site's plan-dependency edges **before** the
wrapper is installed (:meth:`CallPlanCache.add_resources`), so mutating
any of them deopts the elided site exactly like a tier-2 plan.  The
``REPRO_DISABLE_ELIDE=1`` escape hatch (and ``EngineConfig.elide``)
turns the stage off, leaving tier 2 untouched.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..rdl.registry import INSTANCE
from ..ril.registry import RegistrationError
from .deps import Resource, ir_resource, lin_resource
from .plans import ARG_CHECK_NEVER, CallPlan, PlanKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Engine


def elide_disabled_by_env() -> bool:
    """True when ``REPRO_DISABLE_ELIDE`` disables tier-3 elision."""
    return os.environ.get("REPRO_DISABLE_ELIDE", "") not in (
        "", "0", "false", "no")


class Elision:
    """What one compiled entry may omit, and the facts that justify it."""

    __slots__ = ("cache_guard", "frame", "arg_check", "ret_check",
                 "guard_profile", "arity", "count", "resources", "callees")

    def __init__(self, *, cache_guard: bool, frame: bool, arg_check: bool,
                 ret_check: bool, guard_profile: Optional[tuple],
                 arity: Optional[int], resources: Tuple[Resource, ...],
                 callees: Tuple[Tuple[str, str, str], ...]) -> None:
        self.cache_guard = cache_guard
        self.frame = frame
        self.arg_check = arg_check
        self.ret_check = ret_check
        #: dominant-profile classes to pin unconditionally, or ``None``
        #: when every verdict holds seed-free.
        self.guard_profile = guard_profile
        #: arity to guard when ``arg_check`` is elided without a pinned
        #: profile chain (the chain already fixes the length).
        self.arity = arity
        #: per-call check operations the wrapper omits — what the
        #: ``checks_elided`` counter advances by on every elided call.
        self.count = (int(cache_guard) + int(frame) + int(arg_check)
                      + int(ret_check))
        self.resources = resources
        self.callees = callees

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Elision(cache_guard={self.cache_guard}, "
                f"frame={self.frame}, arg_check={self.arg_check}, "
                f"ret_check={self.ret_check}, "
                f"pinned={self.guard_profile is not None})")


def _fixed_arity(arms) -> Optional[int]:
    """The single arity every arm requires, or ``None``."""
    arity: Optional[int] = None
    for arm in arms:
        lo, hi = arm.min_arity(), arm.max_arity()
        if hi is None or lo != hi or (arity is not None and lo != arity):
            return None
        arity = lo
    return arity


class Elider:
    """Per-engine tier-3 stage, invoked by the specializer at promotion.

    Runs under the engine's writer lock (the promotion already holds
    it), so the world it analyzes is the world the wrapper is compiled
    against; the plan-edge merge then extends that atomicity to the
    installed wrapper's lifetime.
    """

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        #: warm-start seeds: key -> (plan, verdict) installed by the
        #: snapshot restore just before it asks the specializer to
        #: promote eagerly.  Consumed (popped) on first analyze; the
        #: plan identity check rejects a seed left for a site whose
        #: plan was dropped and rebuilt in between.
        self._seeds: Dict[PlanKey, Tuple[CallPlan, Elision]] = {}

    def seed(self, key: PlanKey, plan: CallPlan, elision: Elision) -> None:
        """Install a restored verdict for ``key``; the next ``analyze``
        for the same live plan returns it instead of re-deriving.  The
        caller (the snapshot restore) has already re-validated every
        ``("ir", ...)`` resource's fingerprint against the live CFG
        registry — a stale verdict never reaches here."""
        self._seeds[key] = (plan, elision)

    def analyze(self, key: PlanKey, plan: CallPlan, fn) -> Optional[Elision]:
        if self._seeds:
            seeded = self._seeds.pop(key, None)
            if seeded is not None and seeded[0] is plan:
                return seeded[1]
        # Lazy import: repro.ril's package init imports the analysis
        # module, which reaches back into repro.core — importing it at
        # module level here would dead-end when repro.ril loads first.
        from ..ril.analysis import (
            analyze_method, class_conforms, is_vacuous, rdl_class_name,
        )

        engine = self.engine
        def_owner, recv_owner, name, kind = key
        if kind != INSTANCE:
            # Class-method receivers are class objects; the analysis
            # models instance-typed self only.
            return None
        sig = plan.sig
        arms = list(sig.intersection()) if sig is not None else []
        mir = (engine.cfgs.lookup(def_owner, name)
               or engine.cfgs.lookup(recv_owner, name))
        if mir is None:
            try:
                mir = engine.cfgs.register_function(def_owner, name, fn)
            except RegistrationError:
                mir = None

        dominant = plan.dominant_profile()
        arity = len(dominant) if dominant is not None else _fixed_arity(arms)

        # -- argument verdict (signature-only: vacuous types) ----------
        arg_relevant = bool(arms) and plan.arg_mode != ARG_CHECK_NEVER
        arg_ok = (arg_relevant and arity is not None and any(
            arm.block is None and arm.accepts_arity(arity)
            and all(is_vacuous(arm.param_type_at(j)) for j in range(arity))
            for arm in arms))

        # -- frame / return verdicts (dataflow over the body) ----------
        ret_relevant = bool(arms) and plan.ret_mode != ARG_CHECK_NEVER
        hier = engine.hier
        strict = engine.config.strict_nil
        frame_ok = False
        ret_ok = False
        guard_profile: Optional[tuple] = None
        resources: List[Resource] = []
        callees: Tuple[Tuple[str, str, str], ...] = ()

        def ret_provable(report) -> bool:
            if report.ret_classes is None:
                return False
            return all(
                any(class_conforms(cls, arm.ret, hier, strict_nil=strict)
                    for arm in arms)
                for cls in report.ret_classes)

        if mir is not None:
            # The verdicts were derived while *this* body was installed.
            resources.append(ir_resource(mir.owner, name))
            if mir.owner != def_owner:
                resources.append(ir_resource(def_owner, name))
            report = analyze_method(engine, mir, recv_owner, None)
            frame_ok = report.frame_elidable
            ret_ok = ret_relevant and ret_provable(report)
            resources.extend(report.resources)
            callees = report.callees
            if ret_ok:
                resources.extend(
                    lin_resource(cls) for cls in report.ret_classes)
            want_seed = (not frame_ok) or (ret_relevant and not ret_ok)
            if want_seed and plan.profile_eligible and dominant:
                seeds = tuple(rdl_class_name(cls) for cls in dominant)
                seeded = analyze_method(engine, mir, recv_owner, seeds)
                seeded_frame = seeded.frame_elidable
                seeded_ret = ret_relevant and ret_provable(seeded)
                if ((seeded_frame and not frame_ok)
                        or (seeded_ret and not ret_ok)):
                    guard_profile = dominant
                    resources.extend(seeded.resources)
                    callees = callees + seeded.callees
                    if seeded_ret and not ret_ok:
                        resources.extend(
                            lin_resource(cls) for cls in seeded.ret_classes)
                    frame_ok = frame_ok or seeded_frame
                    ret_ok = ret_ok or seeded_ret

        cache_guard = plan.checked
        if not (cache_guard or frame_ok or arg_ok or ret_ok):
            return None
        return Elision(
            cache_guard=cache_guard,
            frame=frame_ok,
            arg_check=arg_ok,
            ret_check=ret_ok,
            guard_profile=guard_profile,
            arity=arity if arg_ok else None,
            resources=tuple(dict.fromkeys(resources)),
            callees=tuple(dict.fromkeys(callees)),
        )
