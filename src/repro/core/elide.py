"""Tier-3 glue: decide which compiled-in checks a promoted site can drop.

Tier 2 compiles a warm call plan into a straight-line wrapper that still
*performs* every per-call safety operation — the check-cache membership
probe, the argument-profile guard, the checked-frame push/pop, the
dynamic return check.  Tier 3 runs the RIL forward dataflow pass
(:mod:`repro.ril.analysis`) at promotion time and statically discharges
the operations it proves redundant, so the wrapper *omits* them.

Per compiled entry the :class:`Elider` produces an :class:`Elision`
verdict with four independent switches:

``cache_guard``
    The wrapper's ``key in cache`` membership probe re-validates the
    memoized static check on every call.  Every *engine-mediated*
    removal of that derivation (redefinition, retype, hierarchy change)
    also drops the call plan — ``Engine.invalidate`` and the change
    hooks flush plans by cache key — so the wrapper's plan-liveness
    guard already covers it and the probe is provably redundant.  (A
    direct ``CheckCache.clear()`` bypassing the engine is a memo flush,
    not a world mutation: replaying the still-valid derivation is
    sound, it just re-checks lazily instead of eagerly.)

``arg_check``
    When some signature arm accepts the site's arity with *vacuous*
    parameter types (``%any``/type variables), the dynamic argument
    check passes for every value — only the arity needs guarding.  At a
    compiled kwargs-layout site even the arity test is dead on the
    keyword path: the layout *constructs* the full positional view, so
    its length is a compile-time constant.

``frame``
    The checked-frame push/pop exists so intercepted *callees* can see
    whether their caller's body was statically checked.  A body the
    analysis proves can never re-enter intercepted code has no reader —
    the frame is dead and the ``try/finally`` around the call is
    dropped ("check once per call" becomes "check zero times").

``ret_check``
    When every return-class the body can produce conforms to the
    signature's return type, the dynamic return check (or return
    profile guard) is dead.

Frame and return verdicts may hold only *under a seeded profile* (the
body is safe when ``n`` is an Integer, not for arbitrary ``n``).  Then
the verdict carries ``guard_profiles``: up to :data:`TOP_K_PROFILES`
learned class chains, each independently re-proving every seeded
verdict, compiled as an **unconditional** OR-of-chains guard — no
copy-on-write fallback set, a miss on every chain bails to the generic
path — so the seeded facts hold on every call that runs the elided
body.  A chain slot may be ``None`` (no pin for that position): the
layout pseudo-profile pins only the slots a stable kwargs layout binds
to declared defaults, and then ``chain_conforms`` is False — the chain
seeds the dataflow but does not certify argument *conformance*, so the
wrapper keeps its profile membership test.  A verdict that already
holds seed-free needs no pin and keeps serving every learned profile.

Soundness: every fact a verdict read (signature slots with negative
probes, linearizations — including the ``("lin", cls)`` leaf-exactness
edges — field types, callee bodies as ``("ir", ...)`` edges along the
whole followed chain) is merged into the site's plan-dependency edges
**before** the wrapper is installed (:meth:`CallPlanCache.add_resources`),
so mutating any of them deopts the elided site exactly like a tier-2
plan.  The ``REPRO_DISABLE_ELIDE=1`` escape hatch (and
``EngineConfig.elide``) turns the stage off, leaving tier 2 untouched.

Every decision — elided or refused — is also explainable:
:meth:`Elider.audit_site` re-derives the verdict for a warm site and
returns a :class:`SiteAudit` naming, per check-op kind, whether it was
proved (seed-free or pinned), inapplicable, or blocked, and on what
(``unknown_join``, ``non_leaf_nominal``, ``budget_exhausted``,
``whitelist_miss``, ...).  ``python -m repro.ril.audit`` aggregates
these over every promoted site.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..rdl.registry import INSTANCE
from ..ril.registry import RegistrationError
from .deps import Resource, ir_resource, lin_resource
from .plans import ARG_CHECK_NEVER, CallPlan, PlanKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Engine

#: learned argument profiles the elider tries to prove under (and the
#: wrapper pins) per site.  Hottest first; chains beyond the first only
#: survive when they re-prove everything the first one proved.
TOP_K_PROFILES = 3

#: the four per-call check operations a verdict rules on, in report
#: order.
CHECK_KINDS = ("cache_guard", "arg_check", "frame", "ret_check")

#: audit statuses.
PROVED = "proved"              # elidable with no profile pin
PROVED_PINNED = "proved_pinned"  # elidable under the pinned chain(s)
NOT_APPLICABLE = "not_applicable"  # the check never runs at this site
BLOCKED = "blocked"            # provability failed; reasons attached

#: blocker code for sites a registered contract pins to the generic
#: wrapper (the analysis-level codes live in :mod:`repro.ril.analysis`).
BLOCK_CONTRACT = "contract"


def elide_disabled_by_env() -> bool:
    """True when ``REPRO_DISABLE_ELIDE`` disables tier-3 elision."""
    return os.environ.get("REPRO_DISABLE_ELIDE", "") not in (
        "", "0", "false", "no")


class Elision:
    """What one compiled entry may omit, and the facts that justify it."""

    __slots__ = ("cache_guard", "frame", "arg_check", "ret_check",
                 "guard_profiles", "chain_conforms", "arity", "count",
                 "resources", "callees")

    def __init__(self, *, cache_guard: bool, frame: bool, arg_check: bool,
                 ret_check: bool,
                 guard_profiles: Optional[Tuple[tuple, ...]],
                 chain_conforms: bool, arity: Optional[int],
                 resources: Tuple[Resource, ...],
                 callees: Tuple[Tuple[str, str, str], ...]) -> None:
        self.cache_guard = cache_guard
        self.frame = frame
        self.arg_check = arg_check
        self.ret_check = ret_check
        #: class chains to pin unconditionally (OR of chains; a ``None``
        #: slot inside a chain means "no pin for this position"), or
        #: ``None`` when every verdict holds seed-free.
        self.guard_profiles = guard_profiles
        #: whether a matched chain also certifies argument conformance
        #: (learned profiles do; the layout pseudo-profile pins classes
        #: for the dataflow only, so the profile test stays).
        self.chain_conforms = chain_conforms
        #: arity to guard when ``arg_check`` is elided without a pinned
        #: profile chain (the chain already fixes the length).
        self.arity = arity
        #: per-call check operations the wrapper omits — what the
        #: ``checks_elided`` counter advances by on every elided call.
        self.count = (int(cache_guard) + int(frame) + int(arg_check)
                      + int(ret_check))
        self.resources = resources
        self.callees = callees

    @property
    def guard_profile(self) -> Optional[tuple]:
        """The hottest pinned chain (compat accessor for single-chain
        consumers; ``None`` when nothing is pinned)."""
        return self.guard_profiles[0] if self.guard_profiles else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Elision(cache_guard={self.cache_guard}, "
                f"frame={self.frame}, arg_check={self.arg_check}, "
                f"ret_check={self.ret_check}, "
                f"pinned={len(self.guard_profiles or ())})")


class SiteAudit:
    """Per-site provability report: one status (and blocking reasons)
    per check-op kind, as derived by :meth:`Elider.audit_site`."""

    __slots__ = ("key", "checks", "pinned", "blockers")

    def __init__(self, key: PlanKey) -> None:
        self.key = key
        #: kind -> (status, reasons); reasons is a tuple of blocker
        #: codes, empty unless status is BLOCKED.
        self.checks: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
        #: number of pinned guard chains (0 = seed-free or refused).
        self.pinned = 0
        #: every (code, detail) blocker the analysis reported, for the
        #: verbose audit listing.
        self.blockers: Tuple[Tuple[str, str], ...] = ()

    def proved(self, kind: str, *, pinned: bool = False) -> None:
        self.checks[kind] = (PROVED_PINNED if pinned else PROVED, ())

    def skipped(self, kind: str) -> None:
        self.checks[kind] = (NOT_APPLICABLE, ())

    def blocked(self, kind: str, reasons: Tuple[str, ...]) -> None:
        self.checks[kind] = (BLOCKED, reasons or ("unproved",))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = ", ".join(f"{k}={v[0]}" for k, v in self.checks.items())
        return f"SiteAudit({self.key!r}: {bits})"


def _fixed_arity(arms) -> Optional[int]:
    """The single arity every arm requires, or ``None``."""
    arity: Optional[int] = None
    for arm in arms:
        lo, hi = arm.min_arity(), arm.max_arity()
        if hi is None or lo != hi or (arity is not None and lo != arity):
            return None
        arity = lo
    return arity


def _contract_blocks(engine: "Engine", name: str) -> bool:
    """Whether a registered contract forces ``name`` to stay generic.

    Contract hooks resolve per (receiver class, method name) with an
    MRO walk, so any contract anywhere on the *name* may fire for some
    receiver of a promoted site — those sites stay on the generic
    wrapper.  Other names promote freely: a metaprogramming contract on
    ``attr_accessor`` must not veto tier 2 for the whole application.
    """
    store = engine._contracts
    if not store:
        return False
    return any(n == name for (_cls, n) in store)


def _layout_pseudo_profile(
        layout: Tuple[int, tuple]) -> Optional[Tuple[Optional[type], ...]]:
    """The partial class chain a stable kwargs layout pins, or ``None``
    when it binds no defaulted slot.

    ``BoundDefault`` slots are filled with a def-time constant by the
    compiled reorder, so their classes are known without any learned
    profile; every other slot stays unpinned (``None``).  The chain is
    sound on the positional path too — there the emitted type tests
    actually guard — so it needs no kw-path condition.
    """
    npos, names = layout
    chain: List[Optional[type]] = [None] * npos
    pinned = False
    for n in names:
        if n.__class__ is str:
            chain.append(None)
        else:  # BoundDefault
            chain.append(type(n.value))
            pinned = True
    if not pinned:
        return None
    return tuple(chain)


class Elider:
    """Per-engine tier-3 stage, invoked by the specializer at promotion.

    Runs under the engine's writer lock (the promotion already holds
    it), so the world it analyzes is the world the wrapper is compiled
    against; the plan-edge merge then extends that atomicity to the
    installed wrapper's lifetime.
    """

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        #: warm-start seeds: key -> (plan, verdict) installed by the
        #: snapshot restore just before it asks the specializer to
        #: promote eagerly.  Consumed (popped) on first analyze; the
        #: plan identity check rejects a seed left for a site whose
        #: plan was dropped and rebuilt in between.
        self._seeds: Dict[PlanKey, Tuple[CallPlan, Elision]] = {}

    def seed(self, key: PlanKey, plan: CallPlan, elision: Elision) -> None:
        """Install a restored verdict for ``key``; the next ``analyze``
        for the same live plan returns it instead of re-deriving.  The
        caller (the snapshot restore) has already re-validated every
        ``("ir", ...)`` resource's fingerprint against the live CFG
        registry — a stale verdict never reaches here."""
        self._seeds[key] = (plan, elision)

    def analyze(self, key: PlanKey, plan: CallPlan, fn) -> Optional[Elision]:
        if self._seeds:
            seeded = self._seeds.pop(key, None)
            if seeded is not None and seeded[0] is plan:
                return seeded[1]
        return self._decide(key, plan, fn)[0]

    def audit_site(self, key: PlanKey, plan: CallPlan, fn) -> SiteAudit:
        """Re-derive the verdict for a live site purely for reporting
        (never consumes snapshot seeds, never installs anything)."""
        return self._decide(key, plan, fn)[1]

    def _decide(self, key: PlanKey, plan: CallPlan,
                fn) -> Tuple[Optional[Elision], SiteAudit]:
        # Lazy import: repro.ril's package init imports the analysis
        # module, which reaches back into repro.core — importing it at
        # module level here would dead-end when repro.ril loads first.
        from ..ril.analysis import (
            BLOCK_NO_IR, analyze_method, class_conforms, is_vacuous,
            rdl_class_name,
        )

        engine = self.engine
        audit = SiteAudit(key)
        def_owner, recv_owner, name, kind = key
        if kind != INSTANCE:
            # Class-method receivers are class objects; the analysis
            # models instance-typed self only.
            for ck in CHECK_KINDS:
                audit.skipped(ck)
            return None, audit
        sig = plan.sig
        arms = list(sig.intersection()) if sig is not None else []
        if _contract_blocks(engine, name):
            # A contract on this method name forces the generic wrapper
            # (the specializer refuses promotion), so no check op here
            # is ever discharged — report every applicable one blocked.
            arg_rel = bool(arms) and plan.arg_mode != ARG_CHECK_NEVER
            ret_rel = bool(arms) and plan.ret_mode != ARG_CHECK_NEVER
            reason = (BLOCK_CONTRACT,)
            audit.blockers = ((BLOCK_CONTRACT, name),)
            if plan.checked:
                audit.blocked("cache_guard", reason)
            else:
                audit.skipped("cache_guard")
            if arg_rel:
                audit.blocked("arg_check", reason)
            else:
                audit.skipped("arg_check")
            audit.blocked("frame", reason)
            if ret_rel:
                audit.blocked("ret_check", reason)
            else:
                audit.skipped("ret_check")
            return None, audit
        mir = (engine.cfgs.lookup(def_owner, name)
               or engine.cfgs.lookup(recv_owner, name))
        if mir is None:
            try:
                mir = engine.cfgs.register_function(def_owner, name, fn)
            except RegistrationError:
                mir = None

        tops = plan.top_profiles(TOP_K_PROFILES) \
            if plan.profile_eligible else ()
        arity = len(tops[0]) if tops else _fixed_arity(arms)

        # -- argument verdict (signature-only: vacuous types) ----------
        arg_relevant = bool(arms) and plan.arg_mode != ARG_CHECK_NEVER
        arg_ok = (arg_relevant and arity is not None and any(
            arm.block is None and arm.accepts_arity(arity)
            and all(is_vacuous(arm.param_type_at(j)) for j in range(arity))
            for arm in arms))

        # -- frame / return verdicts (dataflow over the body) ----------
        ret_relevant = bool(arms) and plan.ret_mode != ARG_CHECK_NEVER
        hier = engine.hier
        strict = engine.config.strict_nil
        frame_ok = False
        ret_ok = False
        guard_profiles: Optional[Tuple[tuple, ...]] = None
        chain_conforms = True
        resources: List[Resource] = []
        callees: Tuple[Tuple[str, str, str], ...] = ()
        blockers: List[Tuple[str, str]] = []

        def ret_provable(report) -> bool:
            if report.ret_classes is None:
                return False
            return all(
                any(class_conforms(cls, arm.ret, hier, strict_nil=strict)
                    for arm in arms)
                for cls in report.ret_classes)

        if mir is None:
            blockers.append((BLOCK_NO_IR, f"{def_owner}#{name}"))
        else:
            # The verdicts were derived while *this* body was installed.
            resources.append(ir_resource(mir.owner, name))
            if mir.owner != def_owner:
                resources.append(ir_resource(def_owner, name))
            report = analyze_method(engine, mir, recv_owner, None)
            frame_ok = report.frame_elidable
            ret_ok = ret_relevant and ret_provable(report)
            resources.extend(report.resources)
            callees = report.callees
            blockers.extend(report.blockers)
            if ret_ok:
                resources.extend(
                    lin_resource(cls) for cls in report.ret_classes)
            want_seed = (not frame_ok) or (ret_relevant and not ret_ok)
            if want_seed and tops:
                # Prove under each hot profile; the hottest sets the
                # target verdict, and further chains are admitted only
                # when they independently re-prove everything a seeded
                # verdict will claim (the wrapper elides whenever *any*
                # admitted chain matches).
                seeded = [
                    (p, analyze_method(
                        engine, mir, recv_owner,
                        tuple(rdl_class_name(c) for c in p)))
                    for p in tops]
                t_frame = seeded[0][1].frame_elidable
                t_ret = ret_relevant and ret_provable(seeded[0][1])
                gain_frame = t_frame and not frame_ok
                gain_ret = t_ret and not ret_ok
                if gain_frame or gain_ret:
                    admitted = []
                    for p, rep in seeded:
                        p_ret = ret_relevant and ret_provable(rep)
                        if ((rep.frame_elidable or not gain_frame)
                                and (p_ret or not gain_ret)):
                            admitted.append((p, rep, p_ret))
                    guard_profiles = tuple(p for p, _, _ in admitted)
                    for _, rep, p_ret in admitted:
                        resources.extend(rep.resources)
                        callees = callees + rep.callees
                        if p_ret and gain_ret:
                            resources.extend(
                                lin_resource(cls)
                                for cls in rep.ret_classes)
                    audit.pinned = len(admitted)
                    frame_ok = frame_ok or t_frame
                    ret_ok = ret_ok or t_ret
                else:
                    for _, rep in seeded:
                        blockers.extend(rep.blockers)
            still_want = (not frame_ok) or (ret_relevant and not ret_ok)
            if still_want and guard_profiles is None:
                # Layout pseudo-profile: a stable kwargs layout that
                # binds defaulted slots pins their classes *by
                # construction* — no learned profile needed.  The chain
                # carries the pins (None for unpinned slots) but does
                # not certify conformance of the unpinned ones, so the
                # wrapper keeps its profile test (``chain_conforms``).
                layout = plan.stable_kw_layout() \
                    if plan.profile_eligible else None
                chain = _layout_pseudo_profile(layout) \
                    if layout is not None else None
                if chain is not None:
                    rep = analyze_method(
                        engine, mir, recv_owner,
                        tuple(rdl_class_name(c) if c is not None else None
                              for c in chain))
                    s_frame = rep.frame_elidable
                    s_ret = ret_relevant and ret_provable(rep)
                    if (s_frame and not frame_ok) or (s_ret and not ret_ok):
                        guard_profiles = (chain,)
                        chain_conforms = False
                        audit.pinned = 1
                        resources.extend(rep.resources)
                        callees = callees + rep.callees
                        if s_ret and not ret_ok:
                            resources.extend(
                                lin_resource(cls)
                                for cls in rep.ret_classes)
                        frame_ok = frame_ok or s_frame
                        ret_ok = ret_ok or s_ret
                    else:
                        blockers.extend(rep.blockers)

        # -- audit assembly --------------------------------------------
        reasons = tuple(dict.fromkeys(code for code, _ in blockers))
        audit.blockers = tuple(dict.fromkeys(blockers))
        pinned = guard_profiles is not None
        if plan.checked:
            audit.proved("cache_guard")
        else:
            audit.skipped("cache_guard")
        if not arg_relevant:
            audit.skipped("arg_check")
        elif arg_ok:
            audit.proved("arg_check")
        else:
            audit.blocked("arg_check", ("non_vacuous_params",))
        if frame_ok:
            audit.proved("frame", pinned=pinned)
        else:
            audit.blocked("frame", reasons)
        if not ret_relevant:
            audit.skipped("ret_check")
        elif ret_ok:
            audit.proved("ret_check", pinned=pinned)
        else:
            audit.blocked("ret_check", reasons)

        cache_guard = plan.checked
        if not (cache_guard or frame_ok or arg_ok or ret_ok):
            return None, audit
        return Elision(
            cache_guard=cache_guard,
            frame=frame_ok,
            arg_check=arg_ok,
            ret_check=ret_ok,
            guard_profiles=guard_profiles,
            chain_conforms=chain_conforms,
            arity=arity if arg_ok else None,
            resources=tuple(dict.fromkeys(resources)),
            callees=tuple(dict.fromkeys(callees)),
        ), audit
