"""The public annotation API — what app code imports and uses.

``hb = engine.api()`` gives a bound helper with:

* ``@hb.typed("(User) -> %bool")`` — annotate-and-check a method where it
  is defined (the paper's ``type :owner?, "(User) -> %bool"``);
* ``hb.annotate(cls, "owner", "() -> User", generated=True)`` — the dynamic
  form metaprogramming hooks call (Fig. 1's generated getter/setter types);
* ``hb.field_type(cls, "transactions", "Array<Transaction>")`` — Fig. 3;
* ``hb.cast(value, "T")`` — ``rdl_cast``;
* ``hb.pre(cls, "belongs_to", fn)`` / ``hb.post`` — RDL contracts;
* ``hb.define_method(cls, "owner", fn, sig=...)`` — run-time method
  definition with IR registration and cache invalidation (``def A.m``).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..rdl.registry import CLASS, INSTANCE
from ..rdl.wrap import add_post, add_pre, staticmethod_refusal


class TypedMethod:
    """Descriptor placed by ``@typed``; finalizes at class creation.

    ``__set_name__`` fires while the class body is being installed, which
    is exactly when Ruby would execute a ``type`` call written above a
    ``def`` — the annotation executes at (class-)load time.
    """

    def __init__(self, fn: Callable, sig: str, engine, *, check: bool,
                 kind: str, app_level: bool):
        self.fn = fn
        self.sig = sig
        self.engine = engine
        self.check = check
        self.kind = kind
        self.app_level = app_level

    def __set_name__(self, owner: type, name: str) -> None:
        fn = self.fn
        if isinstance(fn, staticmethod):
            # A staticmethod has no receiver for the JIT protocol to key
            # on; the old conversion to classmethod silently prepended
            # ``cls`` to every call.  A *checked* annotation cannot be
            # honored at all, so refuse it loudly rather than record a
            # signature that would never be enforced.
            if self.check:
                raise staticmethod_refusal(owner.__name__, name)
            # Trusted signature: keep the staticmethod untouched and
            # record it without interception (``wrap_method`` likewise
            # refuses staticmethod slots).  CLASS kind matches where
            # callers look the receiver-less signature up.
            setattr(owner, name, fn)
            self.engine.register_class(owner)
            self.engine.annotate(owner, name, self.sig, kind=CLASS,
                                 check=False, app_level=self.app_level,
                                 wrap=False, fn=fn.__func__)
            return
        if isinstance(fn, classmethod):
            kind = CLASS
            fn = fn.__func__
        else:
            kind = self.kind
        setattr(owner, name, classmethod(fn) if kind == CLASS else fn)
        self.engine.register_class(owner)
        self.engine.annotate(owner, name, self.sig, kind=kind,
                             check=self.check, app_level=self.app_level,
                             fn=fn)

    def __call__(self, *args, **kwargs):  # pragma: no cover - guidance only
        raise TypeError(
            "@typed methods must be used inside a class body so "
            "__set_name__ can install them")


class Api:
    """Annotation helpers bound to one engine."""

    def __init__(self, engine):
        self.engine = engine

    # -- decorators ----------------------------------------------------------

    def typed(self, sig: str, *, check: bool = True, kind: str = INSTANCE,
              app_level: bool = True):
        """Annotate the decorated method; its body will be statically
        checked just in time at its first call (unless ``check=False``,
        which records a trusted signature)."""
        def deco(fn):
            return TypedMethod(fn, sig, self.engine, check=check, kind=kind,
                               app_level=app_level)
        return deco

    def trusted(self, sig: str, *, kind: str = INSTANCE):
        """A trusted (unchecked) signature — for framework/helper methods
        whose types we assert rather than verify."""
        return self.typed(sig, check=False, kind=kind)

    # -- dynamic forms ---------------------------------------------------------

    def annotate(self, owner, name: str, sig: str, *, check: bool = False,
                 generated: bool = False, kind: str = INSTANCE,
                 app_level: bool = False, wrap: bool = True):
        """The run-time ``type`` call: give ``owner#name`` a signature now.

        Metaprogramming hooks call this with ``generated=True`` — these are
        the "Dynamic types" of Table 1.  ``wrap=False`` records a signature
        for a method dispatched dynamically (``__getattr__``-backed
        framework attributes) that has no concrete function to intercept.
        """
        return self.engine.annotate(owner, name, sig, kind=kind, check=check,
                                    generated=generated,
                                    app_level=app_level, wrap=wrap)

    def field_type(self, owner, field_name: str, type_text: str) -> None:
        self.engine.field_type(owner, field_name, type_text)

    def define_method(self, owner: type, name: str, fn, *, sig=None,
                      check: bool = False, generated: bool = False,
                      kind: str = INSTANCE, source: Optional[str] = None):
        self.engine.define_method(owner, name, fn, sig=sig, check=check,
                                  generated=generated, kind=kind,
                                  source=source)

    def cast(self, value, type_text: str):
        return self.engine.cast(value, type_text)

    def pre(self, owner: type, name: str, contract: Callable) -> None:
        add_pre(self.engine, owner, name, contract)

    def post(self, owner: type, name: str, contract: Callable) -> None:
        add_post(self.engine, owner, name, contract)

    def register_class(self, pycls: type, **kwargs) -> str:
        return self.engine.register_class(pycls, **kwargs)

    def check_now(self, owner, name: str, kind: str = INSTANCE) -> None:
        self.engine.check_method_now(owner, name, kind)
