"""The Hummingbird engine: just-in-time static type checking.

The protocol (paper sections 1, 3, 4):

1. Type annotations *execute at run time*, adding signatures to the type
   table (:class:`~repro.rdl.registry.TypeRegistry`).  Metaprogramming code
   generates annotations the same way it generates methods.
2. Every annotated method is wrapped.  When a wrapped method is called:

   * **cache hit** (EAppHit) — the body was already checked under the
     current table; only the dynamic argument check may run;
   * **cache miss** (EAppMiss) — the body's IR is fetched from the registry
     and statically checked against the current table *now*; the derivation
     and its dependency set are memoized.

3. Dynamic argument checks run only when the immediate caller is not
   itself statically checked (the section 4 optimization), tracked with a
   per-engine call stack.
4. Defining a method (EDef) or changing a signature (EType) invalidates the
   cache entry and its dependents (Definitions 1 and 2).

Invalidation is *dependency-tracked*: every cached judgment (check-cache
entry, call plan, subtype-memo line) records exactly which signature
slots, field types, and class linearizations it read, and each mutation
removes exactly the dependents of what it changed (see
:mod:`repro.core.deps` and ``docs/performance.md``).

Different :class:`EngineConfig` settings give the paper's measurement
modes: ``intercept=False`` is "Orig", ``caching=False`` is "No$", defaults
are "Hum".  Setting ``REPRO_DISABLE_CACHES=1`` in the environment (or
``Engine(..., disable_caches=True)``) builds a *cache-free oracle*: call
plans off, check memoization off, subtype/linearization memos off — every
judgment recomputed from scratch.  The differential soundness harness
runs workloads in both modes and asserts identical outcomes.

Concurrency discipline (lock-free read, locked write):

* the **warm path** — plan lookup, check-cache membership, signature and
  hierarchy reads, argument profiles — takes *no lock*: it is single
  dict/set operations, each atomic under the GIL;
* every **mutation** (define/redefine/retype/subclass/include/field
  retype) runs under one per-engine writer :attr:`~Engine.write_lock`
  (re-entrant; shared with the type registry and the hierarchy), so a
  mutation's DepGraph invalidation wave is atomic with respect to every
  other mutation *and* every in-flight ``jit_check`` (which takes the
  same lock);
* cold-path **memo stores** that run outside the writer lock (call
  plans, subtype-memo lines, linearization memos) are *epoch-guarded*:
  the builder snapshots an epoch before resolving, and the store is
  discarded if any invalidation wave ran in between — a judgment
  resolved against a half-mutated world is never memoized;
* per-call mutable state (the checked-frame stack, hierarchy read
  traces, hot stats counters) is **thread-local**.

Tiered execution: once a call plan has served ``specialize_threshold``
warm hits with a stable shape, the engine promotes the site to **tier
2** — an exec-generated wrapper with the plan's guards compiled to
straight-line code (:mod:`repro.core.specialize`).  Every invalidation
wave that drops a plan deoptimizes its specialized wrapper before the
wave returns, and any guard failure inside a specialized wrapper falls
back into :meth:`Engine.invoke` rather than raising.  Setting
``REPRO_DISABLE_SPECIALIZE=1`` (or ``EngineConfig(specialize=False)``)
pins every site to tier 1 — the ``tier1-nospec`` differential mode.
"""

from __future__ import annotations

import inspect
import os
import threading
import warnings
import weakref
from dataclasses import dataclass, field, replace as dc_replace
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..rdl.registry import CLASS, INSTANCE, MethodSig, TypeRegistry
from ..ril import CFGRegistry, bodies_differ
from ..ril.registry import MethodIR, RegistrationError
from ..rtypes import (
    ANY,
    ClassObjectType, MethodType, NominalType, Type, class_name_of,
    default_hierarchy, is_class_determined, parse_type, value_conforms,
)
from .builtins_sigs import install as install_builtins
from .cache import CheckCache
from .checker import Checker
from .deps import (
    Resource, field_resource, ir_resource, lin_resource, sig_resource,
)
from .elide import Elider, elide_disabled_by_env
from .errors import (
    ArgumentTypeError, CastError, NoMethodBodyError, ReturnTypeError,
    StaticTypeError, TypeSignatureError,
)
from .plans import (
    ARG_CHECK_ALWAYS, ARG_CHECK_BOUNDARY, ARG_CHECK_NEVER, ARG_MODES,
    RET_MODES, CallPlan, CallPlanCache,
)
from .specialize import Specializer, specialize_disabled_by_env
from .stats import Stats

Key = Tuple[str, str]


class _PerThreadState(threading.local):
    """Each thread's engine-call state: the stack of "is the active
    frame statically checked?" flags (the section 4 boundary-check
    bookkeeping) plus the thread's hot-counter shard.  One engine serves
    many request threads, and a caller's checkedness must never leak
    into another thread's frames.  Bundling the counters here keeps the
    warm path at a single thread-local fetch per intercepted call.

    ``threading.local`` re-runs ``__init__`` (with these constructor
    arguments) in every thread that touches the object — that is what
    makes ``stats.local()`` register exactly one shard per thread.
    """

    def __init__(self, stats: Stats) -> None:
        self.stack: List[bool] = []
        self.counters = stats.local()


def caches_disabled_by_env() -> bool:
    """True when ``REPRO_DISABLE_CACHES`` asks for the cache-free oracle."""
    return os.environ.get("REPRO_DISABLE_CACHES", "") not in (
        "", "0", "false", "no")


@dataclass
class EngineConfig:
    """Knobs for the paper's measurement modes and ablations."""

    #: wrap annotated methods at all; False reproduces the "Orig" column.
    intercept: bool = True
    #: perform JIT static checks; False turns wrapping into plain contracts.
    static_checking: bool = True
    #: memoize static checks; False reproduces the "No$" column.
    caching: bool = True
    #: dynamic argument checks: "boundary" (only from unchecked callers —
    #: the paper's optimization), "always", or "never" (ablations).
    dynamic_arg_checks: str = "boundary"
    #: dynamic *return* checks for trusted (unchecked) signatures — the
    #: RDL-style contract Hummingbird's static check replaces for checked
    #: methods.  "never" (paper semantics, default), "boundary" (only when
    #: the immediate caller is statically checked, i.e. its derivation
    #: relied on this return type), or "always".
    dynamic_ret_checks: str = "never"
    #: strict-nil subtyping ablation (the paper uses nil <= A).
    strict_nil: bool = False
    #: occurrence-typing narrowing extension.
    narrowing: bool = True
    #: memoize warm call sites as CallPlans (the steady-state fast path);
    #: False falls back to full per-call resolution (perf ablation).
    call_plans: bool = True
    #: tier-2: compile stable warm plans into exec-generated per-site
    #: wrappers (:mod:`repro.core.specialize`).  False (or the
    #: ``REPRO_DISABLE_SPECIALIZE=1`` environment switch) stays on the
    #: tier-1 generic path — the ``tier1-nospec`` differential mode.
    specialize: bool = True
    #: warm hits a call plan must serve before promotion to tier 2.
    specialize_threshold: int = 50
    #: tier-3: statically discharge per-call checks the RIL dataflow
    #: pass proves redundant, so promoted wrappers *omit* them
    #: (:mod:`repro.core.elide`).  False (or ``REPRO_DISABLE_ELIDE=1``)
    #: keeps tier-2 wrappers performing every check — the
    #: ``tier1-noelide`` differential mode.
    elide: bool = True
    #: deopt-storm circuit breaker: demote chronically flapping sites to
    #: tier 1 with a cooldown, and pause all promotion during an
    #: invalidation-wave storm (:mod:`repro.core.specialize`).  False
    #: (or ``REPRO_DISABLE_BREAKER=1``) re-promotes forever — the
    #: ungated-thrash ablation mode.
    breaker: bool = True
    #: deopts of one site within ``breaker_window_s`` that count as a
    #: flap storm and trip the per-site breaker.
    breaker_flap_limit: int = 8
    #: sliding window (seconds) for both the per-site flap count and
    #: the engine-wide displacing-wave count.
    breaker_window_s: float = 1.0
    #: how long (seconds) a tripped site (or the whole engine) stays
    #: demoted before the breaker re-arms.
    breaker_cooldown_s: float = 2.0
    #: displacing invalidation waves within ``breaker_window_s`` that
    #: trip the engine-wide promotion pause.
    breaker_wave_limit: int = 32


class Engine:
    """One Hummingbird instance: type table, IR registry, cache, stats."""

    def __init__(self, config: Optional[EngineConfig] = None, *,
                 builtins: bool = True,
                 disable_caches: Optional[bool] = None):
        self.config = config or EngineConfig()
        if disable_caches is None:
            disable_caches = caches_disabled_by_env()
        #: the differential-soundness oracle: recompute every judgment.
        self.caches_disabled = disable_caches
        if disable_caches:
            self.config = dc_replace(self.config, caching=False,
                                     call_plans=False)
        #: the single writer lock: every mutation path (and every cold
        #: jit_check) serializes on it; warm reads never touch it.  It is
        #: re-entrant because mutations nest (annotate -> registry notify
        #: -> invalidate) and is *shared* with the registry and hierarchy
        #: so direct mutations of either serialize with engine mutations.
        self.write_lock = threading.RLock()
        self.hier = default_hierarchy()
        self.hier.lock = self.write_lock
        if disable_caches:
            self.hier.subtype_cache.enabled = False
            self.hier.memo_enabled = False
        self.types = TypeRegistry()
        self.types.lock = self.write_lock
        self.cfgs = CFGRegistry()
        self.cache = CheckCache()
        self.stats = Stats()
        self.checker = Checker(self)
        self._tls = _PerThreadState(self.stats)  # frames + counter shard
        self._app_classes: Dict[str, type] = {}
        #: names mid-registration (guarded by write_lock); membership in
        #: _app_classes is deferred until registration completes.
        self._registering: Set[str] = set()
        self._pending_wraps: Set[Tuple[str, str, str]] = set()
        #: warm call-site inline caches; None disables the fast path.
        self._plans: Optional[CallPlanCache] = (
            CallPlanCache() if self.config.call_plans else None)
        #: the clamped promotion threshold — the single source the
        #: specializer's full/re-warm thresholds derive from.
        self._spec_threshold: int = max(1, self.config.specialize_threshold)
        #: tier-2 specializer; None keeps every site on the generic
        #: wrapper (config off, env off, plans off, or oracle mode).
        self._specializer: Optional[Specializer] = None
        if (self._plans is not None and self.config.specialize
                and not specialize_disabled_by_env()):
            self._specializer = Specializer(self)
            # Deopt hook: any wave that drops a plan swaps the generic
            # wrapper back in before the wave returns.
            self._plans.on_drop = self._specializer.deoptimize_keys
        #: tier-3 elision stage, consulted by the specializer at
        #: promotion time; None compiles tier-2 wrappers with every
        #: check intact.
        self._elider: Optional[Elider] = None
        if (self._specializer is not None and self.config.elide
                and not elide_disabled_by_env()):
            self._elider = Elider(self)
        self._arg_mode: int = ARG_MODES.get(self.config.dynamic_arg_checks,
                                            ARG_CHECK_BOUNDARY)
        if self.config.dynamic_ret_checks not in RET_MODES:
            raise ValueError(
                f"unknown dynamic_ret_checks mode "
                f"{self.config.dynamic_ret_checks!r}; "
                f"expected one of {sorted(RET_MODES)}")
        self._ret_mode: int = RET_MODES[self.config.dynamic_ret_checks]
        self._contracts: Dict = {}  # populated by rdl.wrap pre/post hooks
        self.types.on_change(self._on_type_change)
        self.hier.on_change(self._on_hier_change)
        if builtins:
            install_builtins(self)

    # -- public API surface ---------------------------------------------------

    def api(self):
        """A bound annotation helper (``hb = engine.api()``)."""
        from .annotations import Api
        return Api(self)

    def stats_snapshot(self) -> dict:
        """The :meth:`Stats.snapshot` dict, with the substrate counters
        (the subtype memo lives on the hierarchy, not the engine) synced
        into the stats object first."""
        cache = self.hier.subtype_cache
        self.stats.subtype_cache_hits = cache.hits
        self.stats.subtype_cache_misses = cache.misses
        self.stats.subtype_lru_evictions = cache.evictions
        return self.stats.snapshot()

    # -- class registration -----------------------------------------------------

    def register_class(self, pycls: type, *, module: bool = False) -> str:
        """Record a host class in the hierarchy.

        The first base is the superclass; remaining bases are treated as
        mixins (Ruby ``include``).  Classes marked ``__hb_module__`` are
        modules.
        """
        name = pycls.__name__
        # Lock-free fast path: safe because _register_class_locked
        # publishes into _app_classes *last*, after the hierarchy entry
        # and mixin edges exist — membership implies fully registered.
        if name in self._app_classes:
            return name
        with self.write_lock:
            return self._register_class_locked(pycls, name, module)

    def _register_class_locked(self, pycls: type, name: str,
                               module: bool) -> str:
        if name in self._app_classes:  # lost the registration race
            return name
        if name in self._registering:  # re-entrant cycle guard
            return name
        self._registering.add(name)
        try:
            bases = [b for b in pycls.__bases__ if b is not object]
            for base in bases:
                self.register_class(base)
            # Module-ness must not be inherited: a class mixing a module
            # in is still a class, so consult the class's own __dict__
            # only.
            is_module = module or bool(pycls.__dict__.get("__hb_module__"))
            if is_module:
                self.hier.add_module(name)
            else:
                supers = [b for b in bases
                          if not b.__dict__.get("__hb_module__")]
                parent = supers[0].__name__ if supers else "Object"
                if not self.hier.is_known(name):
                    self.hier.add_class(name, parent)
                    # A genuinely-new subclass makes its parent a
                    # non-leaf: tier-3 elisions that proved exactness
                    # from the parent's leafness carry a
                    # ("lin", parent) edge and must fall.  Plans only —
                    # the check cache and subtype memos never read
                    # leafness (a new leaf class changes no
                    # linearization), so they stay warm.
                    if self._plans is not None:
                        self.stats.plan_invalidations += \
                            self._plans.invalidate_resources(
                                (lin_resource(parent),))
            for base in bases:
                if base.__dict__.get("__hb_module__"):
                    self.hier.include_module(name, base.__name__)
            # Publish only now: a concurrent thread that sees the class
            # in _app_classes may immediately resolve signatures through
            # its (complete) linearization.
            self._app_classes[name] = pycls
        finally:
            self._registering.discard(name)
        self._rewrap_pending(name)
        return name

    def host_class(self, name: str) -> Optional[type]:
        return self._app_classes.get(name)

    def lookup_callable(self, owner: str, name: str, kind: str = INSTANCE):
        """The unwrapped callable for ``owner#name`` (MRO walk, wrappers
        stripped), or None.  The warm-state snapshot restore uses this to
        re-promote a site eagerly without a live receiver in hand."""
        pycls = self._app_classes.get(owner)
        if pycls is None:
            return None
        return _find_callable(pycls, name, kind)

    # -- annotation --------------------------------------------------------------

    def annotate(self, owner, name: str, sig, *, kind: str = INSTANCE,
                 check: bool = False, generated: bool = False,
                 app_level: bool = True, wrap: bool = True,
                 fn=None) -> MethodSig:
        """Execute a type annotation: record the signature now, and wrap the
        method so calls are intercepted.

        ``owner`` may be a host class or a class name.  There is no
        ordering requirement between annotation and definition — if the
        method does not exist yet, wrapping happens at definition time
        (:meth:`define_method`), exactly like the formalism's independent
        ``type`` and ``def`` expressions.
        """
        with self.write_lock:
            return self._annotate_locked(owner, name, sig, kind=kind,
                                         check=check, generated=generated,
                                         app_level=app_level, wrap=wrap,
                                         fn=fn)

    def _annotate_locked(self, owner, name: str, sig, *, kind: str,
                         check: bool, generated: bool, app_level: bool,
                         wrap: bool, fn) -> MethodSig:
        pycls = owner if isinstance(owner, type) else self._app_classes.get(
            owner)
        owner_name = owner.__name__ if isinstance(owner, type) else owner
        if wrap and self.config.intercept and pycls is not None:
            # Refuse staticmethod slots *before* touching the registry:
            # recording a signature that the raise below would then
            # leave uninterceptable (and, for check=True, unenforced)
            # is exactly the silent soundness hole the refusal exists
            # to close.  wrap_method raises the same error for callers
            # that reach it directly.
            def_cls = _staticmethod_slot(pycls, name)
            if def_cls is not None:
                from ..rdl.wrap import staticmethod_refusal
                raise staticmethod_refusal(def_cls.__name__, name)
        if pycls is not None:
            self.register_class(pycls)
        elif not self.hier.is_known(owner_name):
            self.hier.add_class(owner_name)
        existing = self.types.lookup(owner_name, name, kind)
        arms_before = len(existing.arms) if existing is not None else 0
        entry = self.types.add(owner_name, name, sig, kind=kind, check=check,
                               generated=generated)
        if len(entry.arms) != arms_before:
            # "Adding the same type again is harmless" — duplicates are
            # dropped by the registry and not double-counted here (a
            # duplicate arm that merely upgrades check= bumps the table
            # version for invalidation but is not a new annotation).
            self.stats.record_annotation(check=check, generated=generated,
                                         app_level=app_level,
                                         key=(owner_name, name))
        if wrap and self.config.intercept:
            target = fn
            if target is None and pycls is not None:
                target = _find_callable(pycls, name, kind)
            if pycls is not None and target is not None:
                self._install_wrapper(pycls, name, kind, target)
            else:
                self._pending_wraps.add((owner_name, name, kind))
        return entry

    def field_type(self, owner, field_name: str, type_text) -> None:
        """Record an instance-field type (Fig. 3's ``field_type``)."""
        with self.write_lock:
            owner_name = owner.__name__ if isinstance(owner, type) else owner
            if isinstance(owner, type):
                self.register_class(owner)
            self.types.add_field(owner_name, field_name, type_text)

    def define_method(self, owner: type, name: str, fn, *, sig=None,
                      kind: str = INSTANCE, check: bool = False,
                      generated: bool = False, source: Optional[str] = None
                      ) -> None:
        """The formalism's ``def A.m``: (re)define a method at run time.

        Installs ``fn`` on the class, registers its IR if it will be
        statically checked, wraps it if it has a signature, and invalidates
        the cache when an existing body actually changed (the IR diff used
        by dev-mode reloading).
        """
        with self.write_lock:
            self.register_class(owner)
            owner_name = owner.__name__
            if source is not None:
                fn.__hb_source__ = source
            old = self.cfgs.lookup(owner_name, name)
            setattr(owner, name, classmethod(fn) if kind == CLASS else fn)
            if sig is not None:
                self.annotate(owner, name, sig, kind=kind, check=check,
                              generated=generated, fn=fn)
            else:
                existing = self.types.lookup(owner_name, name, kind)
                if existing is not None:
                    self._install_wrapper(owner, name, kind, fn)
            new = self.cfgs.lookup(owner_name, name)
            if old is not None and (new is None or bodies_differ(old, new)):
                self.invalidate(owner_name, name)

    def method_removed(self, owner_name: str, name: str) -> None:
        """Ruby's ``method_removed`` hook: drop IR and invalidate."""
        with self.write_lock:
            self.cfgs.forget(owner_name, name)
            self.invalidate(owner_name, name)

    # -- signature resolution -------------------------------------------------------

    def resolve_sig(self, owner: str, name: str, kind: str = INSTANCE,
                    trace: Optional[List[Resource]] = None
                    ) -> Optional[Tuple[str, MethodSig]]:
        """Look up a signature through the ancestor linearization.

        With ``trace``, every resource the walk consulted is appended:
        the owner's linearization and each probed signature slot —
        *including negative probes*, so a signature later appearing on a
        closer ancestor invalidates plans that resolved past its slot.
        """
        if not self.hier.is_known(owner):
            if trace is not None:
                trace.append(lin_resource(owner))
                trace.append(sig_resource(owner, name, kind))
            sig = self.types.lookup(owner, name, kind)
            return (owner, sig) if sig is not None else None
        if trace is not None:
            trace.append(lin_resource(owner))
        for ancestor in self.hier.ancestors(owner):
            if trace is not None:
                trace.append(sig_resource(ancestor, name, kind))
            sig = self.types.lookup(ancestor, name, kind)
            if sig is not None:
                return ancestor, sig
        return None

    # -- the JIT protocol -------------------------------------------------------------

    def invoke(self, def_owner: str, name: str, kind: str, fn, recv,
               args: tuple, kwargs: dict):
        """Intercepted call path (the (EApp*) rules).

        ``def_owner`` is the class the wrapped function was found on;
        the *receiver's* class keys the cache, so module methods mixed into
        several classes are checked separately per class (section 4).

        Warm call sites take the *fast path*: a
        :class:`~repro.core.plans.CallPlan` built by a previous slow call
        replays the resolved dispatch decision, so the steady state is a
        dict hit plus (at most) an argument-profile check instead of
        signature resolution + jit_check + mode dispatch.  Hot plans are
        further promoted to tier 2 — a specialized per-site wrapper that
        bypasses this method entirely until deoptimized (specialized
        wrappers re-enter here only on guard failure, so this path also
        serves as their fallback).  There are no
        version guards: the dependency graph flushed the plan *eagerly*
        if anything it resolved through changed; the one remaining guard
        (checked plans require their memoized derivation to still be in
        the check cache) protects against direct ``cache.clear()`` calls
        that bypass ``Engine.invalidate``.
        """
        tls = self._tls
        stats = tls.counters
        stats.calls_intercepted += 1
        if kind == CLASS:
            owner = recv.__name__ if isinstance(recv, type) else \
                class_name_of(recv)
        else:
            owner = class_name_of(recv)
        plans = self._plans
        if plans is not None:
            plan = plans.get((def_owner, owner, name, kind))
            if (plan is not None
                    # checked plans require their memoized derivation to
                    # still be present, so even a direct cache flush
                    # (bypassing Engine.invalidate) cannot leave a stale
                    # fast path.
                    and (not plan.checked or (owner, name) in self.cache)):
                stats.fast_path_hits += 1
                spec = self._specializer
                if spec is not None and not plan.promoted:
                    # Tiering: count warm hits; at the plan's threshold
                    # (the global default, or the specializer's reduced
                    # re-promotion threshold stamped at plan build), try
                    # to compile this plan into a per-site wrapper.  The
                    # racy increment only ever delays the threshold.
                    # A kwargs-bearing call defers promotion until the
                    # plan has memoized at least one kwargs shape —
                    # otherwise a short (re-promotion) threshold could
                    # compile the site before its layout is learnable.
                    plan.hits = hits = plan.hits + 1
                    if hits >= plan.promote_at and (
                            not kwargs or plan.kw_layouts):
                        spec.maybe_promote((def_owner, owner, name, kind),
                                           plan, fn, recv)
                elif (spec is not None and kwargs
                      and spec.needs_kw_recompile(
                          (def_owner, owner, name, kind), plan)):
                    # A positional-only promotion would otherwise serve
                    # kwargs calls through this tier-1 fallback forever;
                    # once the site's kwargs traffic has resolved to a
                    # single stable layout, recompile the wrapper in
                    # place with the layout (and a fresh tier-3 verdict)
                    # compiled in.
                    spec.maybe_promote((def_owner, owner, name, kind),
                                       plan, fn, recv)
                checked = plan.checked
                sig = plan.sig
                stack = tls.stack
                do_ret = False
                if sig is not None:
                    if checked:
                        stats.cache_hits += 1
                    mode = plan.arg_mode
                    if mode == ARG_CHECK_BOUNDARY:
                        do_check = not (stack and stack[-1])
                    else:
                        do_check = mode == ARG_CHECK_ALWAYS
                    if do_check:
                        if plan.profile_eligible:
                            if kwargs:
                                # kwargs fast path: a memoized layout
                                # reorders this call shape into the full
                                # positional view, so the profile set
                                # covers keyword calls too.
                                # BoundDefault entries carry a skipped
                                # parameter's default value directly.
                                layout = plan.kw_layouts.get(
                                    (len(args), tuple(kwargs)))
                                vals = (args + tuple(
                                    kwargs[n] if n.__class__ is str
                                    else n.value for n in layout)
                                        if layout is not None else None)
                            else:
                                vals = args
                            if vals is None:
                                self._dynamic_arg_check(
                                    sig, fn, recv, args, kwargs, owner,
                                    name, kind)
                                # The full check passed: memoize how this
                                # kwargs shape maps onto the parameters,
                                # and learn the passing profile from the
                                # reordered view so the next call of this
                                # shape is a profile hit, not a re-walk.
                                layout = plan.learn_kw_layout(fn, args,
                                                              kwargs)
                                if layout is not None:
                                    plan.learn_profile(tuple(map(
                                        type, args + tuple(
                                            kwargs[n] if n.__class__ is str
                                            else n.value
                                            for n in layout))))
                            else:
                                profile = tuple(map(type, vals))
                                if profile not in plan.profiles:
                                    self._dynamic_arg_check(
                                        sig, fn, recv, args, kwargs, owner,
                                        name, kind)
                                    plan.learn_profile(profile)
                                elif spec is not None and not plan.promoted:
                                    # Feed the dominant-profile pick; only
                                    # while a promotion can still consume
                                    # it, so pinned-tier-1 engines (and
                                    # promoted sites) pay nothing.
                                    plan.note_profile_hit(profile)
                        else:
                            self._dynamic_arg_check(sig, fn, recv, args,
                                                    kwargs, owner, name,
                                                    kind)
                        stats.dynamic_arg_checks += 1
                    else:
                        stats.dynamic_arg_checks_skipped += 1
                    ret_mode = plan.ret_mode
                    if ret_mode != ARG_CHECK_NEVER:
                        # "boundary" returns: check when the *caller* was
                        # statically checked (its derivation trusted this
                        # return type); decided before our frame pushes.
                        do_ret = (ret_mode == ARG_CHECK_ALWAYS
                                  or bool(stack and stack[-1]))
                stack.append(checked)
                try:
                    result = fn(recv, *args, **kwargs)
                finally:
                    stack.pop()
                if do_ret:
                    if plan.ret_profile_eligible:
                        rcls = type(result)
                        if rcls in plan.ret_profiles:
                            stats.ret_profile_hits += 1
                        else:
                            self._dynamic_ret_check(sig, result, owner,
                                                    name)
                            plan.learn_ret_profile(rcls)
                    else:
                        self._dynamic_ret_check(sig, result, owner, name)
                    stats.dynamic_ret_checks += 1
                return result
        return self._invoke_slow(def_owner, owner, name, kind, fn, recv,
                                 args, kwargs)

    def _invoke_slow(self, def_owner: str, owner: str, name: str, kind: str,
                     fn, recv, args: tuple, kwargs: dict):
        """Cold call path: full resolution, then memoize a CallPlan along
        with the dependency edges the resolution consulted.

        Runs without the writer lock (only ``jit_check`` inside takes
        it), so the plan store is epoch-guarded: if any invalidation wave
        runs between the epoch snapshot below and the store, the plan is
        discarded — it may have resolved through a half-mutated world."""
        plans = self._plans
        plannable = plans is not None
        epoch = plans.epoch if plannable else 0
        trace: Optional[List[Resource]] = [] if plannable else None
        resolved = self.resolve_sig(owner, name, kind, trace=trace)
        if resolved is None:
            resolved = self.resolve_sig(def_owner, name, kind, trace=trace)
        checked = False
        sig_owner: Optional[str] = None
        sig: Optional[MethodSig] = None
        do_ret = False
        tls = self._tls
        stack = tls.stack
        hot = tls.counters
        if resolved is not None:
            sig_owner, sig = resolved
            key = (owner, name)
            if sig.check and self.config.static_checking:
                self.jit_check(key, sig, def_owner, kind,
                               sig_owner=sig_owner)
                checked = True
                if not self.config.caching:
                    # No$ mode re-checks on every call by design; a plan
                    # would wrongly skip the re-check.
                    plannable = False
            if self._should_check_args(sig):
                self._dynamic_arg_check(sig, fn, recv, args, kwargs, owner,
                                        name, kind)
                hot.dynamic_arg_checks += 1
            else:
                hot.dynamic_arg_checks_skipped += 1
            ret_mode = self._ret_mode
            if ret_mode != ARG_CHECK_NEVER and not checked:
                do_ret = (ret_mode == ARG_CHECK_ALWAYS
                          or bool(stack and stack[-1]))
        if plannable:
            ret_checking = (sig is not None and not checked
                            and self._ret_mode != ARG_CHECK_NEVER)
            plan = CallPlan(
                sig_owner, sig, checked, self._arg_mode,
                sig is not None and _profile_eligible(sig),
                self._ret_mode if ret_checking else ARG_CHECK_NEVER,
                ret_checking and _ret_profile_eligible(sig))
            spec = self._specializer
            # Per-site adaptive threshold: a site the specializer saw
            # deoptimize re-promotes at a fraction of the global
            # threshold, cutting deopt-churn latency under reload.
            plan.promote_at = (
                spec.promote_threshold((def_owner, owner, name, kind))
                if spec is not None else self._spec_threshold)
            plans.store((def_owner, owner, name, kind), plan, trace,
                        epoch=epoch)
        stack.append(checked)
        try:
            result = fn(recv, *args, **kwargs)
        finally:
            stack.pop()
        if do_ret:
            self._dynamic_ret_check(sig, result, owner, name)
            hot.dynamic_ret_checks += 1
        return result

    def jit_check(self, key: Key, sig: MethodSig, def_owner: str,
                  kind: str = INSTANCE,
                  sig_owner: Optional[str] = None) -> None:
        """Check ``key``'s body now unless a valid cached check exists.

        The stored entry's dependency set is extended beyond the (TApp)
        consultations with two explicit edges: the class the checked
        *body* lives on and the class the *signature* resolved to.  For a
        receiver-keyed entry (``key[0]`` a descendant), these are the
        ancestor-retype edges: redefining or retyping the ancestor now
        invalidates exactly the descendants that checked its body, which
        the per-key ``(owner, name)`` match alone would miss.

        Cold checks run under the writer lock, which gives invalidation
        atomicity for free: a mutation wave can never interleave between
        a derivation and the store of its dependency edges, and two
        threads racing to check the same cold body serialize (the loser
        re-reads the cache and returns a hit).
        """
        if self.config.caching and key in self.cache:
            self.stats.local().cache_hits += 1
            return
        with self.write_lock:
            # Double-checked: another thread may have completed this very
            # check while we waited for the lock.
            if self.config.caching and key in self.cache:
                self.stats.local().cache_hits += 1
                return
            self.stats.local().cache_misses += 1
            mir = self.cfgs.lookup(def_owner, key[1])
            mir_owner = def_owner
            if mir is None:
                mir = self.cfgs.lookup(key[0], key[1])
                mir_owner = key[0]
            if mir is None:
                # Lazy registration from the live callable: a method
                # defined while its signature was check=False has no
                # eagerly-registered CFG (_install_wrapper only registers
                # checked slots), and whether promotion registered it
                # since is a cache artifact the outcome must not depend
                # on (the cache-free oracle never promotes).
                for probe in (def_owner, key[0]):
                    live = self.lookup_callable(probe, key[1], kind)
                    if live is None:
                        continue
                    try:
                        mir = self.cfgs.register_function(probe, key[1],
                                                          live)
                        mir_owner = probe
                        break
                    except RegistrationError:
                        continue
            if mir is None:
                raise NoMethodBodyError(
                    f"{key[0]}#{key[1]} has a type signature but no method "
                    f"body is registered for checking")
            self_type: Type = (ClassObjectType(key[0]) if kind == CLASS
                               else self._self_type(key[0]))
            with self.hier.trace() as hier_reads:
                outcome = self.checker.check_method(mir, sig.intersection(),
                                                    self_type)
            self.stats.record_static_check(key)
            self.stats.record_consulted(outcome.deps)
            for used in outcome.used_generated:
                self.stats.record_generated_use(used)
            self.stats.cast_sites |= outcome.cast_sites
            if self.config.caching:
                deps = set(outcome.deps)
                deps.add((mir_owner, key[1]))
                if sig_owner is not None:
                    deps.add((sig_owner, key[1]))
                    # The resolution walk's *negative* probes: every slot
                    # between the receiver and ``sig_owner`` was consulted
                    # and found empty.  A signature appearing later on a
                    # closer ancestor changes what this derivation should
                    # have checked against, so each walked-past slot is a
                    # dependency — exactly the edges the plan cache already
                    # records via its resolution trace.
                    hier_reads = set(hier_reads)
                    if self.hier.is_known(key[0]):
                        hier_reads.add(key[0])  # walk order = receiver lin
                        for anc in self.hier.ancestors(key[0]):
                            if anc == sig_owner:
                                break
                            deps.add((anc, key[1]))
                deps.discard(key)  # no self-loops; invalidate(key) covers it
                self.cache.store(key, deps, outcome.field_deps, hier_reads,
                                 self.types.version)

    def _self_type(self, owner: str) -> Type:
        arity = self.hier.generic_arity(owner) if self.hier.is_known(owner) \
            else 0
        if arity:
            return NominalType(owner)  # raw generic self
        return NominalType(owner)

    def check_method_now(self, owner, name: str,
                         kind: str = INSTANCE) -> None:
        """Force a JIT check without calling the method (used by tests and
        the historical-error harness)."""
        owner_name = owner.__name__ if isinstance(owner, type) else owner
        resolved = self.resolve_sig(owner_name, name, kind)
        if resolved is None:
            raise TypeSignatureError(f"{owner_name}#{name} has no signature")
        sig_owner, sig = resolved
        self.jit_check((owner_name, name), sig, sig_owner, kind,
                       sig_owner=sig_owner)

    # -- dynamic checks ------------------------------------------------------------------

    def _should_check_args(self, sig: MethodSig) -> bool:
        mode = self.config.dynamic_arg_checks
        if mode == "always":
            return True
        if mode == "never":
            return False
        # "boundary": skip when the immediate caller was statically checked
        # (section 4's optimization).
        stack = self._tls.stack
        return not (stack and stack[-1])

    def _dynamic_arg_check(self, sig: MethodSig, fn, recv, args, kwargs,
                           owner: str, name: str, kind: str) -> None:
        values = _positional_view(fn, recv, args, kwargs)
        for arm in sig.arms:
            checked = values
            if (arm.block is not None and checked
                    and callable(checked[-1])
                    and not arm.accepts_arity(len(checked))):
                # The code block is passed as the final host parameter;
                # higher-order checks are skipped (section 4).
                checked = checked[:-1]
            if not arm.accepts_arity(len(checked)):
                continue
            if all(self._value_ok(v, arm.param_type_at(i))
                   for i, v in enumerate(checked)):
                return
        raise ArgumentTypeError(
            f"{owner}#{name} called with "
            f"({', '.join(type(v).__name__ for v in values)}), which "
            f"matches no signature arm of {sig.arms}")

    def _dynamic_ret_check(self, sig: MethodSig, result, owner: str,
                           name: str) -> None:
        """RDL-style dynamic return check for *trusted* signatures: the
        result must conform to at least one arm's declared return type.
        Statically checked methods never reach here — their return types
        are verified by the derivation."""
        for arm in sig.arms:
            if self._value_ok(result, arm.ret):
                return
        raise ReturnTypeError(
            f"{owner}#{name} returned {type(result).__name__}, which "
            f"conforms to no declared return type of {sig.arms}")

    def _value_ok(self, value, expected: Optional[Type]) -> bool:
        if expected is None:
            return False
        if callable(value) and not isinstance(value, type):
            # Higher-order contract checks are not implemented (section 4:
            # "simply assumes code block arguments are type safe").
            return True
        return value_conforms(value, expected, self.hier,
                              strict_nil=self.config.strict_nil)

    def cast(self, value, type_text: str):
        """``rdl_cast``: dynamic conformance check, returns the value.

        For arrays/hashes the check iterates through elements, as described
        in section 4.
        """
        t = parse_type(type_text)
        self.stats.local().casts += 1
        if not value_conforms(value, t, self.hier,
                              strict_nil=self.config.strict_nil):
            raise CastError(
                f"value {value!r} does not conform to {type_text}")
        return value

    def validate_untrusted_hash(self, h: dict, type_text: str) -> None:
        """Dynamic check for untrusted inputs (the Rails ``params`` hash is
        always checked, section 4)."""
        t = parse_type(type_text)
        if not value_conforms(h, t, self.hier,
                              strict_nil=self.config.strict_nil):
            raise ArgumentTypeError(
                f"untrusted hash {h!r} does not conform to {type_text}")

    # -- invalidation ----------------------------------------------------------------------

    def invalidate(self, owner: str, name: str) -> Set[Key]:
        """Definition 1 + Definition 2 for ``owner#name``.

        Per-key throughout: the check cache drops the keyed entry plus
        the entries whose derivations consulted it; call plans are
        flushed only if they resolved through ``owner``'s signature slot
        or their memoized derivation was just removed.  Plans for other
        methods — and for the same method name on unrelated classes —
        stay warm.
        """
        with self.write_lock:
            key = (owner, name)
            removed = self.cache.invalidate(key)
            if removed:
                self.stats.record_invalidation(removed)
                self.stats.retype_edge_invalidations += len(removed - {key})
            if self._plans is not None:
                flushed = self._plans.invalidate_resources(
                    (sig_resource(owner, name, INSTANCE),
                     sig_resource(owner, name, CLASS),
                     # tier-3 body edge: a plan whose elision verdict was
                     # derived from this method's IR must fall even when
                     # its own resolution never probed the slot.
                     ir_resource(owner, name)))
                flushed += self._plans.invalidate_cache_keys(removed | {key})
                self.stats.plan_invalidations += flushed
            self.cache.upgrade(self.types.version)
            return removed

    def _on_type_change(self, owner: str, name: str, kind: str) -> None:
        # Fired by the registry while it holds the shared writer lock
        # (acquiring it again here is a no-op re-entry, but keeps the
        # invariant visible if a future registry drops the sharing).
        with self.write_lock:
            if kind == "field":
                removed = self.cache.invalidate_field(owner, name)
                if removed:
                    self.stats.record_invalidation(removed)
                    self.stats.retype_edge_invalidations += len(removed)
                    if self._plans is not None:
                        # Plans never read field types directly; flushing
                        # the ones whose derivation just fell keeps the
                        # counterable invariant "removed entry => no plan
                        # replays it".
                        self.stats.plan_invalidations += \
                            self._plans.invalidate_cache_keys(removed)
                if self._plans is not None:
                    # Tier-3 elision verdicts read field types directly;
                    # their plans carry ("field", owner, name) edges.
                    # This wave also bumps the epoch, so even when it
                    # drops nothing, in-flight plan builds discard
                    # rather than memoize against the pre-mutation
                    # world.
                    self.stats.plan_invalidations += \
                        self._plans.invalidate_resources(
                            (field_resource(owner, name),))
                self.cache.upgrade(self.types.version)
                return
            self.invalidate(owner, name)

    def _on_hier_change(self, affected: FrozenSet[str]) -> None:
        """A structural hierarchy mutation changed exactly ``affected``
        classes' linearizations: drop the check-cache entries whose
        derivations consulted them and the plans that resolved through
        them.  A new leaf class affects only itself, so warm caches for
        everything else survive (the dev-mode reload win)."""
        with self.write_lock:
            removed: Set[Key] = set()
            for cls in affected:
                removed |= self.cache.invalidate_hier(cls)
            if removed:
                self.stats.record_invalidation(removed)
                self.stats.hier_edge_invalidations += len(removed)
            if self._plans is not None:
                flushed = self._plans.invalidate_resources(
                    [lin_resource(cls) for cls in affected])
                if removed:
                    flushed += self._plans.invalidate_cache_keys(removed)
                self.stats.plan_invalidations += flushed

    # -- wrapping ---------------------------------------------------------------------------

    def _install_wrapper(self, pycls: type, name: str, kind: str,
                         fn) -> None:
        from ..rdl.wrap import wrap_method
        sig = self.types.lookup(pycls.__name__, name, kind)
        if sig is not None and sig.check:
            try:
                self.cfgs.register_function(pycls.__name__, name, fn)
            except RegistrationError:
                pass  # surfaces as NoMethodBodyError at first call
        if self.config.intercept:
            wrap_method(self, pycls, name, kind=kind, fn=fn)
        self._pending_wraps.discard((pycls.__name__, name, kind))

    def _rewrap_pending(self, owner_name: str) -> None:
        pycls = self._app_classes.get(owner_name)
        if pycls is None:
            return
        for pending in [p for p in self._pending_wraps
                        if p[0] == owner_name]:
            _, name, kind = pending
            def_cls = _staticmethod_slot(pycls, name)
            if def_cls is not None:
                # A deferred annotation (recorded before the class
                # existed) resolved onto a staticmethod slot.  Raising
                # here would abort register_class after the hierarchy
                # mutation already happened and leave the pending entry
                # to re-trip, so warn instead — loudly naming the
                # signature that will never be enforced — and drop the
                # pending wrap.  Direct annotation paths raise.
                from ..rdl.wrap import staticmethod_refusal
                self._pending_wraps.discard(pending)
                warnings.warn(
                    f"annotation will not be enforced: "
                    f"{staticmethod_refusal(def_cls.__name__, name)}",
                    RuntimeWarning, stacklevel=2)
                continue
            fn = _find_callable(pycls, name, kind)
            if fn is not None:
                self._install_wrapper(pycls, name, kind, fn)


def _profile_eligible(sig: MethodSig) -> bool:
    """True when a passing argument-class tuple is a sound inline-cache
    guard for ``sig``: no block arms (whose callable-trimming depends on
    arity juggling) and every parameter type class-determined."""
    for arm in sig.arms:
        if arm.block is not None:
            return False
        for p in arm.params:
            if not is_class_determined(p.ty):
                return False
    return True


def _ret_profile_eligible(sig: MethodSig) -> bool:
    """True when a passing result class soundly predicts future passes:
    every arm's return type must be class-determined."""
    return all(is_class_determined(arm.ret) for arm in sig.arms)


def _staticmethod_slot(pycls: type, name: str) -> Optional[type]:
    """The class along ``pycls``'s MRO whose ``name`` slot holds a
    staticmethod, or None — the interception-refusal probe."""
    for klass in pycls.__mro__:
        if name in klass.__dict__:
            return klass if isinstance(klass.__dict__[name],
                                       staticmethod) else None
    return None


def _find_callable(pycls: type, name: str, kind: str):
    """The raw function for ``name`` along the MRO, unwrapping descriptors
    and previously-installed wrappers."""
    for klass in pycls.__mro__:
        if name in klass.__dict__:
            raw = klass.__dict__[name]
            if isinstance(raw, (classmethod, staticmethod)):
                raw = raw.__func__
            original = getattr(raw, "__hb_original__", None)
            if original is not None:
                return original
            return raw if callable(raw) else None
    return None


#: fn -> inspect.Signature.  Building a Signature object is far more
#: expensive than binding one; kwargs-carrying calls reuse it per function.
#: Weak keys: superseded functions (dev-mode redefinitions) must not be
#: pinned for process lifetime by their memo entry.  Reads are plain dict
#: gets (GIL-atomic); writes take a lock because WeakKeyDictionary
#: insertion is a multi-step pure-Python operation.
_SIGNATURE_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_SIGNATURE_MEMO_LOCK = threading.Lock()


def _positional_view(fn, recv, args: tuple, kwargs: dict) -> list:
    """Flatten a call's arguments into declared positional order so each
    value lines up with the signature's parameter list."""
    if not kwargs:
        return list(args)
    sig = _SIGNATURE_MEMO.get(fn)
    if sig is None:
        try:
            sig = inspect.signature(fn)
        except (TypeError, ValueError):
            return list(args) + list(kwargs.values())
        try:
            with _SIGNATURE_MEMO_LOCK:
                _SIGNATURE_MEMO[fn] = sig
        except TypeError:
            pass  # non-weakref-able callable; just don't memoize it
    try:
        bound = sig.bind(recv, *args, **kwargs)
    except TypeError:
        return list(args) + list(kwargs.values())
    # Fill *gaps* only — defaulted parameters the call skipped before a
    # later named one (f(x, y=2, z=3) called as f(1, z=5)): without the
    # default in y's slot, z's value would slide into it and be checked
    # against y's type.  Trailing defaults the call never reached stay
    # out of the view, so a fixed-arity signature arm still matches
    # calls that simply omit them.
    values = []
    pending = []  # defaulted slots not yet known to precede a bound one
    params = list(bound.signature.parameters.values())[1:]  # drop self
    for param in params:
        if param.name not in bound.arguments:
            if param.default is not inspect.Parameter.empty:
                pending.append(param.default)
            continue
        got = bound.arguments[param.name]
        if param.kind == inspect.Parameter.VAR_POSITIONAL:
            if got:
                values.extend(pending)
                pending.clear()
                values.extend(got)
        elif param.kind == inspect.Parameter.VAR_KEYWORD:
            if got:
                values.extend(pending)
                pending.clear()
                values.append(got)
        else:
            values.extend(pending)
            pending.clear()
            values.append(got)
    return values
