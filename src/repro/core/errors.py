"""Error types for the Hummingbird engine.

Three families mirror the paper:

* :class:`StaticTypeError` — the just-in-time *static* check of a method
  body failed at call time (the errors Table "Type Errors in Talks"
  reports);
* :class:`ArgumentTypeError` / :class:`ReturnTypeError` / :class:`CastError`
  — *dynamic* checks failed (the (EApp*) side conditions and ``rdl_cast``);
* :class:`NoMethodBodyError` — a method has a signature but no body/IR, the
  third blame case of the formalism.
"""

from __future__ import annotations

from typing import Optional


class HummingbirdError(Exception):
    """Base class for all engine-raised errors."""


class StaticTypeError(HummingbirdError):
    """A method body failed its just-in-time static type check."""

    def __init__(self, message: str, *, owner: str = "?", method: str = "?",
                 line: Optional[int] = None, source_file: str = "?"):
        self.owner = owner
        self.method = method
        self.line = line
        self.source_file = source_file
        where = f"{owner}#{method}"
        if line:
            where += f" ({source_file}:{line})"
        super().__init__(f"{where}: {message}")
        self.message = message


class ArgumentTypeError(HummingbirdError):
    """A dynamic argument check at a statically-typed method's entry failed
    (the ``type_of(v2) <= tau1`` side condition of (EApp*))."""


class ReturnTypeError(HummingbirdError):
    """A dynamic return check (``post`` contract) failed."""


class CastError(HummingbirdError):
    """``cast(v, "T")`` failed its run-time conformance check."""


class NoMethodBodyError(HummingbirdError):
    """A method with a type signature has no retrievable body to check —
    the formalism's third blame case (typed but undefined)."""


class TypeSignatureError(HummingbirdError):
    """An annotation itself is malformed (bad arity vs. the function,
    unparseable string, unknown class)."""
