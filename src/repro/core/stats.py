"""Statistics the evaluation needs (everything in Table 1 and Table 2).

* annotation counts, split into statically-checked app methods ("Chk'd"),
  trusted app methods ("App"), and everything incl. library sigs ("All");
* dynamically generated types ("Gen'd") and how many were consulted during
  checking ("Used");
* run-time casts ("Casts");
* phases ("Phs"): a phase is "a sequence of type annotation calls with no
  intervening static type checks, followed by a sequence of static type
  checks with no intervening annotations" — computed from the event stream;
* cache hits/misses, per-method check counts (Table 2 "Chk'd", and the
  no-cache recheck claim for Pubs), invalidation counts.

Concurrency discipline: the counters bumped on the *unlocked* hot path
(every intercepted call) are sharded per thread — ``Stats.local()``
returns the calling thread's :class:`HotCounters` shard, and the public
attributes aggregate across shards on read.  A plain ``self.x += 1``
from many threads loses updates (the read-modify-write is three
bytecodes, and the GIL can switch between them); per-thread shards make
every total *exact* with no lock and no contention.  Counters mutated
only under the engine's writer lock (annotation records, check counts,
invalidation sets) stay plain attributes.
"""

from __future__ import annotations

import threading
import weakref
from collections import Counter
from typing import List, Set, Tuple

Key = Tuple[str, str]

#: counters bumped on the lock-free intercepted-call path; these live in
#: per-thread shards and are summed on read.
HOT_COUNTER_FIELDS = (
    "calls_intercepted",
    "fast_path_hits",
    "specialized_hits",
    "poly_spec_hits",
    "kw_spec_hits",
    "cache_hits",
    "cache_misses",
    "dynamic_arg_checks",
    "dynamic_arg_checks_skipped",
    "dynamic_ret_checks",
    "ret_profile_hits",
    "checks_elided",
    "casts",
)


class HotCounters:
    """One thread's shard of the hot-path counters (plain ints, no lock:
    only the owning thread ever writes them)."""

    __slots__ = HOT_COUNTER_FIELDS

    def __init__(self) -> None:
        for field in HOT_COUNTER_FIELDS:
            setattr(self, field, 0)


class PhaseTracker:
    """Counts annotation/check phases from an event stream."""

    def __init__(self) -> None:
        self._events: List[str] = []  # 'A' (annotation) or 'C' (check)

    def annotation(self) -> None:
        self._events.append("A")

    def check(self) -> None:
        self._events.append("C")

    def phases(self) -> int:
        """Number of maximal annotation-run + check-run blocks."""
        if not self._events:
            return 0
        count = 1
        for prev, cur in zip(self._events, self._events[1:]):
            if prev == "C" and cur == "A":
                count += 1
        return count

    def reset(self) -> None:
        self._events.clear()


class Stats:
    """Mutable counters owned by one engine.

    Hot-path counters (:data:`HOT_COUNTER_FIELDS`) are per-thread shards
    reached through :meth:`local`; everything else is mutated only while
    the engine's writer lock is held.
    """

    def __init__(self) -> None:
        #: (thread weakref, shard) pairs for live threads; dead threads'
        #: shards are folded into ``_folded`` so a long-lived server with
        #: request-thread churn does not accumulate a shard per thread
        #: ever created.
        self._shards: List[tuple] = []
        self._folded = HotCounters()
        self._shard_lock = threading.Lock()
        self._shard_tl = threading.local()
        self.phase = PhaseTracker()
        # annotations
        self.annotations_total = 0
        self.annotations_checked = 0       # app methods we statically check
        self.annotations_app_trusted = 0   # app methods with trusted sigs
        self.annotations_generated = 0     # created by metaprogramming hooks
        self.generated_keys: Set[Key] = set()
        self.used_generated: Set[Key] = set()
        self.app_annotation_keys: Set[Key] = set()
        self.consulted_keys: Set[Key] = set()  # sigs looked up during checks
        self.cast_sites: Set[Tuple[str, str, int]] = set()
        # checking (cache_hits / cache_misses live in the thread shards)
        self.static_checks = 0
        self.check_counts: Counter = Counter()   # key -> times checked
        self.invalidations = 0
        self.invalidated_keys: Set[Key] = set()
        # dynamic checks and the call-plan fast path are all sharded:
        # casts, dynamic_arg_checks(_skipped), dynamic_ret_checks,
        # calls_intercepted, fast_path_hits, ret_profile_hits are
        # aggregate properties over the per-thread HotCounters.
        self.plan_invalidations = 0      # plans dropped by invalidation
        # tiered execution (the tier-2 specializer); promotions happen
        # under the writer lock and deopts under the specializer's lock,
        # so plain attributes suffice (specialized_hits is sharded).
        self.promotions = 0              # call sites compiled to tier 2
        self.deopts = 0                  # specialized entries actually
        #                                  displaced from a live slot
        #: promotions that produced a 2-entry polymorphic dispatch
        #: (poly_spec_hits shards count the calls its 2nd entry serves).
        self.poly_promotions = 0
        #: promotions that compiled a kwargs layout into the wrapper
        #: (kw_spec_hits shards count kwargs calls served straight-line).
        self.kw_promotions = 0
        #: promotions that fired at the reduced re-promotion threshold
        #: (the site deopted before and re-warmed).
        self.repromotions = 0
        #: promotions whose wrapper statically elided at least one
        #: per-call check op (tier 3; checks_elided shards count the
        #: per-call ops actually skipped).
        self.elide_promotions = 0
        #: tier-3 entries among the displaced deopt counts — elided
        #: wrappers torn down by an invalidation wave.
        self.elide_deopts = 0
        #: circuit-breaker activations: per-site flap trips plus
        #: engine-wide promotion pauses (see core/specialize.py).
        self.breaker_trips = 0
        #: chronic flappers demoted to tier 1 with a cooldown — the
        #: per-site subset of breaker_trips.
        self.breaker_demotions = 0
        #: requests completed on a retry attempt after their original
        #: worker crashed or hung (bumped by the supervised driver).
        self.requests_replayed = 0
        #: worker processes respawned by the supervisor.
        self.workers_restarted = 0
        self.subtype_cache_hits = 0      # synced by Engine.stats_snapshot
        self.subtype_cache_misses = 0
        # dependency-tracked invalidation (the deps.DepGraph subsystem)
        #: cache entries/plans invalidated through an edge whose key is
        #: *not* the mutated method itself — e.g. retyping an ancestor
        #: signature removing a descendant's receiver-keyed derivation.
        self.retype_edge_invalidations = 0
        #: subtype-memo lines evicted by LRU overflow (not invalidation);
        #: synced from the hierarchy by Engine.stats_snapshot.
        self.subtype_lru_evictions = 0
        #: cache entries removed because a consulted linearization changed.
        self.hier_edge_invalidations = 0

    # -- per-thread hot counters ----------------------------------------------

    def local(self) -> HotCounters:
        """The calling thread's hot-counter shard (created on first use).

        Shard creation doubles as the pruning point: dead threads'
        shards are folded into the base counters then dropped, bounding
        the shard list by the number of *concurrently live* threads.
        """
        shard = getattr(self._shard_tl, "shard", None)
        if shard is None:
            shard = HotCounters()
            ref = weakref.ref(threading.current_thread())
            with self._shard_lock:
                self._fold_dead_locked()
                self._shards.append((ref, shard))
            self._shard_tl.shard = shard
        return shard

    def _fold_dead_locked(self) -> None:
        alive = []
        folded = self._folded
        for ref, shard in self._shards:
            thread = ref()
            if thread is None or not thread.is_alive():
                for field in HOT_COUNTER_FIELDS:
                    setattr(folded, field,
                            getattr(folded, field) + getattr(shard, field))
            else:
                alive.append((ref, shard))
        self._shards[:] = alive

    # -- recording -----------------------------------------------------------

    def record_annotation(self, *, check: bool, generated: bool,
                          app_level: bool, key: Key) -> None:
        self.annotations_total += 1
        self.phase.annotation()
        if generated:
            self.annotations_generated += 1
            self.generated_keys.add(key)
        if check:
            self.annotations_checked += 1
        elif app_level:
            self.annotations_app_trusted += 1
        if app_level and not generated:
            self.app_annotation_keys.add(key)

    def record_static_check(self, key: Key) -> None:
        self.static_checks += 1
        self.check_counts[key] += 1
        self.phase.check()

    def record_consulted(self, keys) -> None:
        self.consulted_keys |= set(keys)

    def record_generated_use(self, key: Key) -> None:
        if key in self.generated_keys:
            self.used_generated.add(key)

    def record_invalidation(self, keys) -> None:
        keys = set(keys)
        self.invalidations += len(keys)
        self.invalidated_keys |= keys

    # -- Table 1 views ---------------------------------------------------------

    def chkd(self) -> int:
        """'Chk'd': annotations for app methods whose bodies we check."""
        return self.annotations_checked

    def app_count(self) -> int:
        """'App': checked + trusted app-specific annotations."""
        return self.annotations_checked + self.annotations_app_trusted

    def all_count(self) -> int:
        """'All': the 'App' count plus library annotations for methods
        actually referred to during type checking (paper's definition)."""
        library = {k for k in self.consulted_keys
                   if k not in self.app_annotation_keys
                   and k not in self.generated_keys}
        return self.app_count() + len(library)

    def cast_site_count(self) -> int:
        """'Casts': distinct cast sites encountered during checking."""
        return len(self.cast_sites)

    def generated_count(self) -> int:
        return self.annotations_generated

    def used_generated_count(self) -> int:
        return len(self.used_generated)

    def phases(self) -> int:
        return self.phase.phases()

    def methods_checked(self) -> int:
        """Distinct methods checked at least once (Table 2 'Chk'd')."""
        return len(self.check_counts)

    def max_rechecks(self) -> int:
        """The hottest method's check count (the Pubs ~13,000 claim)."""
        return max(self.check_counts.values(), default=0)

    def snapshot(self) -> dict:
        """A plain-dict summary for harness printing."""
        return {
            "chkd": self.chkd(),
            "app": self.app_count(),
            "all": self.all_count(),
            "generated": self.generated_count(),
            "used": self.used_generated_count(),
            "casts": self.cast_site_count(),
            "phases": self.phases(),
            "static_checks": self.static_checks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "calls_intercepted": self.calls_intercepted,
            "fast_path_hits": self.fast_path_hits,
            "specialized_hits": self.specialized_hits,
            "poly_spec_hits": self.poly_spec_hits,
            "kw_spec_hits": self.kw_spec_hits,
            "promotions": self.promotions,
            "poly_promotions": self.poly_promotions,
            "kw_promotions": self.kw_promotions,
            "repromotions": self.repromotions,
            "deopts": self.deopts,
            "checks_elided": self.checks_elided,
            "elide_promotions": self.elide_promotions,
            "elide_deopts": self.elide_deopts,
            "plan_invalidations": self.plan_invalidations,
            "breaker_trips": self.breaker_trips,
            "breaker_demotions": self.breaker_demotions,
            "requests_replayed": self.requests_replayed,
            "workers_restarted": self.workers_restarted,
            "ret_profile_hits": self.ret_profile_hits,
            "dynamic_ret_checks": self.dynamic_ret_checks,
            "subtype_cache_hits": self.subtype_cache_hits,
            "subtype_cache_misses": self.subtype_cache_misses,
            "subtype_lru_evictions": self.subtype_lru_evictions,
            "retype_edge_invalidations": self.retype_edge_invalidations,
            "hier_edge_invalidations": self.hier_edge_invalidations,
        }


def _aggregate(field: str) -> property:
    def total(self: Stats) -> int:
        # Under the shard lock so a concurrent fold (dead shard moving
        # into the base counters) can neither double-count nor drop it.
        # Aggregate reads are snapshot/assertion paths, never the
        # per-call hot path, so the lock costs nothing that matters.
        with self._shard_lock:
            return getattr(self._folded, field) + sum(
                getattr(shard, field) for _, shard in self._shards)
    total.__name__ = field
    total.__doc__ = f"Total {field} across live shards + folded dead ones."
    return property(total)


for _field in HOT_COUNTER_FIELDS:
    setattr(Stats, _field, _aggregate(_field))
del _field
