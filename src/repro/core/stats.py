"""Statistics the evaluation needs (everything in Table 1 and Table 2).

* annotation counts, split into statically-checked app methods ("Chk'd"),
  trusted app methods ("App"), and everything incl. library sigs ("All");
* dynamically generated types ("Gen'd") and how many were consulted during
  checking ("Used");
* run-time casts ("Casts");
* phases ("Phs"): a phase is "a sequence of type annotation calls with no
  intervening static type checks, followed by a sequence of static type
  checks with no intervening annotations" — computed from the event stream;
* cache hits/misses, per-method check counts (Table 2 "Chk'd", and the
  no-cache recheck claim for Pubs), invalidation counts.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Set, Tuple

Key = Tuple[str, str]


class PhaseTracker:
    """Counts annotation/check phases from an event stream."""

    def __init__(self) -> None:
        self._events: List[str] = []  # 'A' (annotation) or 'C' (check)

    def annotation(self) -> None:
        self._events.append("A")

    def check(self) -> None:
        self._events.append("C")

    def phases(self) -> int:
        """Number of maximal annotation-run + check-run blocks."""
        if not self._events:
            return 0
        count = 1
        for prev, cur in zip(self._events, self._events[1:]):
            if prev == "C" and cur == "A":
                count += 1
        return count

    def reset(self) -> None:
        self._events.clear()


class Stats:
    """Mutable counters owned by one engine."""

    def __init__(self) -> None:
        self.phase = PhaseTracker()
        # annotations
        self.annotations_total = 0
        self.annotations_checked = 0       # app methods we statically check
        self.annotations_app_trusted = 0   # app methods with trusted sigs
        self.annotations_generated = 0     # created by metaprogramming hooks
        self.generated_keys: Set[Key] = set()
        self.used_generated: Set[Key] = set()
        self.app_annotation_keys: Set[Key] = set()
        self.consulted_keys: Set[Key] = set()  # sigs looked up during checks
        self.cast_sites: Set[Tuple[str, str, int]] = set()
        # checking
        self.static_checks = 0
        self.check_counts: Counter = Counter()   # key -> times checked
        self.cache_hits = 0
        self.cache_misses = 0
        self.invalidations = 0
        self.invalidated_keys: Set[Key] = set()
        # dynamic checks
        self.casts = 0
        self.dynamic_arg_checks = 0
        self.dynamic_arg_checks_skipped = 0
        self.dynamic_ret_checks = 0
        self.calls_intercepted = 0
        # hot path: call-plan inline caches + memoized subtyping
        self.fast_path_hits = 0          # calls served by a warm CallPlan
        self.plan_invalidations = 0      # plans dropped by invalidation
        self.ret_profile_hits = 0        # return checks skipped via profile
        self.subtype_cache_hits = 0      # synced by Engine.stats_snapshot
        self.subtype_cache_misses = 0
        # dependency-tracked invalidation (the deps.DepGraph subsystem)
        #: cache entries/plans invalidated through an edge whose key is
        #: *not* the mutated method itself — e.g. retyping an ancestor
        #: signature removing a descendant's receiver-keyed derivation.
        self.retype_edge_invalidations = 0
        #: subtype-memo lines evicted by LRU overflow (not invalidation);
        #: synced from the hierarchy by Engine.stats_snapshot.
        self.subtype_lru_evictions = 0
        #: cache entries removed because a consulted linearization changed.
        self.hier_edge_invalidations = 0

    # -- recording -----------------------------------------------------------

    def record_annotation(self, *, check: bool, generated: bool,
                          app_level: bool, key: Key) -> None:
        self.annotations_total += 1
        self.phase.annotation()
        if generated:
            self.annotations_generated += 1
            self.generated_keys.add(key)
        if check:
            self.annotations_checked += 1
        elif app_level:
            self.annotations_app_trusted += 1
        if app_level and not generated:
            self.app_annotation_keys.add(key)

    def record_static_check(self, key: Key) -> None:
        self.static_checks += 1
        self.check_counts[key] += 1
        self.phase.check()

    def record_consulted(self, keys) -> None:
        self.consulted_keys |= set(keys)

    def record_generated_use(self, key: Key) -> None:
        if key in self.generated_keys:
            self.used_generated.add(key)

    def record_invalidation(self, keys) -> None:
        keys = set(keys)
        self.invalidations += len(keys)
        self.invalidated_keys |= keys

    # -- Table 1 views ---------------------------------------------------------

    def chkd(self) -> int:
        """'Chk'd': annotations for app methods whose bodies we check."""
        return self.annotations_checked

    def app_count(self) -> int:
        """'App': checked + trusted app-specific annotations."""
        return self.annotations_checked + self.annotations_app_trusted

    def all_count(self) -> int:
        """'All': the 'App' count plus library annotations for methods
        actually referred to during type checking (paper's definition)."""
        library = {k for k in self.consulted_keys
                   if k not in self.app_annotation_keys
                   and k not in self.generated_keys}
        return self.app_count() + len(library)

    def cast_site_count(self) -> int:
        """'Casts': distinct cast sites encountered during checking."""
        return len(self.cast_sites)

    def generated_count(self) -> int:
        return self.annotations_generated

    def used_generated_count(self) -> int:
        return len(self.used_generated)

    def phases(self) -> int:
        return self.phase.phases()

    def methods_checked(self) -> int:
        """Distinct methods checked at least once (Table 2 'Chk'd')."""
        return len(self.check_counts)

    def max_rechecks(self) -> int:
        """The hottest method's check count (the Pubs ~13,000 claim)."""
        return max(self.check_counts.values(), default=0)

    def snapshot(self) -> dict:
        """A plain-dict summary for harness printing."""
        return {
            "chkd": self.chkd(),
            "app": self.app_count(),
            "all": self.all_count(),
            "generated": self.generated_count(),
            "used": self.used_generated_count(),
            "casts": self.cast_site_count(),
            "phases": self.phases(),
            "static_checks": self.static_checks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "calls_intercepted": self.calls_intercepted,
            "fast_path_hits": self.fast_path_hits,
            "plan_invalidations": self.plan_invalidations,
            "ret_profile_hits": self.ret_profile_hits,
            "dynamic_ret_checks": self.dynamic_ret_checks,
            "subtype_cache_hits": self.subtype_cache_hits,
            "subtype_cache_misses": self.subtype_cache_misses,
            "subtype_lru_evictions": self.subtype_lru_evictions,
            "retype_edge_invalidations": self.retype_edge_invalidations,
            "hier_edge_invalidations": self.hier_edge_invalidations,
        }
