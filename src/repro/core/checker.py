"""The flow-sensitive static checker run just in time at method entry.

Given a method's IR body, its declared signature (possibly an intersection
of arms), and the receiver's class, this module re-creates the paper's
typing judgment ``TT |- <Gamma, e> => <Gamma', tau>``:

* the type environment is threaded through statements (flow-sensitive, so
  assignments change variables' types);
* conditionals join branch environments and branch types exactly as (TIf),
  with an occurrence-typing extension for ``is None`` / ``isinstance``
  tests (documented extension; can be disabled);
* method calls are (TApp): look up the callee's signature in the *current*
  type table under the receiver's static type, record the lookup as a
  dependency for cache invalidation, check arguments against parameters,
  produce the declared return type;
* union receivers check once per arm and union the returns (section 4);
* intersection signatures (overloads) select the first arm that fits;
* code blocks are checked against the callee's block type, including
  lightweight inference of method-level type variables (``map``'s ``u``);
* ``cast(e, "T")`` gives ``e`` type ``T`` statically (counted for Table 1).

The outcome records every signature and field type consulted, which the
cache stores as the entry's dependency set (Definition 1, part 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Set, Tuple

from ..ril import ir
from ..ril.registry import MethodIR, ParamSpec
from ..rtypes import (
    ANY, BOOL, BOT, NIL,
    AnyType, BlockType, BoolType, BotType, ClassObjectType, FiniteHashType,
    GenericType, IntersectionType, MethodType, NilType, NominalType,
    OptionalParam, RequiredParam, SingletonType, StructuralType, TupleType,
    Type, UnionType, VarType, VarargParam,
    array_of, instantiate_for_receiver, is_subtype, join, join_all,
    parse_type, substitute, union_of,
)
from .errors import StaticTypeError, TypeSignatureError

Env = Dict[str, Type]
Key = Tuple[str, str]

_MAX_LOOP_PASSES = 10


@dataclass
class CheckOutcome:
    """What one successful method check produced and consulted."""

    deps: Set[Key] = dc_field(default_factory=set)
    field_deps: Set[Key] = dc_field(default_factory=set)
    used_generated: Set[Key] = dc_field(default_factory=set)
    cast_sites: Set[Tuple[str, str, int]] = dc_field(default_factory=set)


class Checker:
    """Checks method bodies against the engine's current type table."""

    def __init__(self, engine):
        self.engine = engine

    # -- entry point ---------------------------------------------------------

    def check_method(self, mir: MethodIR, arms: List[MethodType],
                     self_type: Type) -> CheckOutcome:
        """Check ``mir``'s body against every signature arm.

        Raises :class:`StaticTypeError` on the first violation.
        """
        run = _Run(self.engine, mir)
        for arm in arms:
            env = run.initial_env(arm, self_type)
            run.expected_ret = arm.ret
            body_t, out_env = run.visit(mir.body, env)
            if not _always_returns(mir.body):
                # Falling off the end returns nil in the host language.
                if not run.le(NIL, arm.ret):
                    run.fail(mir.body,
                             f"method may return nil but is declared to "
                             f"return {arm.ret}")
        return run.outcome


class _Run:
    """One checking run: environment plumbing plus the visit dispatcher."""

    def __init__(self, engine, mir: MethodIR):
        self.engine = engine
        self.mir = mir
        self.hier = engine.hier
        self.types = engine.types
        self.strict_nil = engine.config.strict_nil
        self.narrowing = engine.config.narrowing
        self.outcome = CheckOutcome()
        self.expected_ret: Type = ANY

    # -- helpers -------------------------------------------------------------

    def le(self, s: Type, t: Type) -> bool:
        return is_subtype(s, t, self.hier, strict_nil=self.strict_nil)

    def join2(self, a: Type, b: Type) -> Type:
        return join(a, b, self.hier, strict_nil=self.strict_nil)

    def fail(self, node: ir.Node, message: str) -> None:
        raise StaticTypeError(
            message, owner=self.mir.owner, method=self.mir.name,
            line=getattr(node, "pos", ir.NOWHERE).line or None,
            source_file=self.mir.source_file)

    def initial_env(self, arm: MethodType, self_type: Type) -> Env:
        env: Env = {"self": self_type}
        for name, ty in self.mir.captures.items():
            env[name] = ty if isinstance(ty, Type) else parse_type(str(ty))
        specs = list(self.mir.params)
        block = arm.block
        if block is not None and specs and not specs[-1].vararg:
            # The host passes the code block as the final parameter.
            env[specs[-1].name] = block.sig
            specs = specs[:-1]
        fixed = [p for p in specs if not p.vararg]
        rest = [p for p in specs if p.vararg]
        max_arity = arm.max_arity()
        if max_arity is not None and not rest and max_arity > len(fixed):
            raise TypeSignatureError(
                f"{self.mir.owner}#{self.mir.name}: signature {arm} has more "
                f"parameters than the method accepts")
        for i, spec in enumerate(fixed):
            ty = arm.param_type_at(i)
            if ty is None:
                raise TypeSignatureError(
                    f"{self.mir.owner}#{self.mir.name}: signature {arm} has "
                    f"no type for parameter {spec.name!r}")
            if spec.optional and not self.le(NIL, ty):
                ty = union_of(ty, NIL)
            env[spec.name] = ty
        if rest:
            vararg_types = [p.ty for p in arm.params
                            if isinstance(p, VarargParam)]
            extra = [arm.param_type_at(i)
                     for i in range(len(fixed), len(arm.params))]
            pool = vararg_types or [t for t in extra if t is not None] or [ANY]
            env[rest[0].name] = array_of(join_all(
                pool, self.hier, strict_nil=self.strict_nil))
        return env

    def join_env(self, a: Env, b: Env) -> Env:
        """(TIf)'s environment join: keep variables bound on both sides."""
        out: Env = {}
        for name, ta in a.items():
            tb = b.get(name)
            if tb is not None:
                out[name] = self.join2(ta, tb)
        return out

    # -- dispatcher ----------------------------------------------------------

    def visit(self, node: ir.Node, env: Env) -> Tuple[Type, Env]:
        method = getattr(self, f"_visit_{type(node).__name__}", None)
        if method is None:  # pragma: no cover - all nodes covered
            self.fail(node, f"checker cannot handle {type(node).__name__}")
        return method(node, env)

    # -- literals ------------------------------------------------------------

    def _visit_NilLit(self, node, env):
        return NIL, env

    def _visit_BoolLit(self, node, env):
        return BOOL, env

    def _visit_IntLit(self, node, env):
        return NominalType("Integer"), env

    def _visit_FloatLit(self, node, env):
        return NominalType("Float"), env

    def _visit_StrLit(self, node, env):
        return NominalType("String"), env

    def _visit_SymLit(self, node, env):
        return SingletonType(node.name, "Symbol"), env

    def _visit_ArrayLit(self, node, env):
        elems = []
        for e in node.elems:
            t, env = self.visit(e, env)
            elems.append(t)
        return TupleType(tuple(elems)), env

    def _visit_HashLit(self, node, env):
        fields = []
        literal_keys = True
        key_ts, val_ts = [], []
        for k, v in node.pairs:
            kt, env = self.visit(k, env)
            vt, env = self.visit(v, env)
            key_ts.append(kt)
            val_ts.append(vt)
            if isinstance(k, ir.SymLit):
                fields.append((k.name, vt))
            elif isinstance(k, ir.StrLit):
                fields.append((k.value, vt))
            else:
                literal_keys = False
        if literal_keys and fields:
            return FiniteHashType(tuple(fields)), env
        if not node.pairs:
            return GenericType("Hash", (ANY, ANY)), env
        return GenericType(
            "Hash",
            (join_all(key_ts, self.hier, strict_nil=self.strict_nil),
             join_all(val_ts, self.hier, strict_nil=self.strict_nil))), env

    def _visit_RangeLit(self, node, env):
        lo_t, env = self.visit(node.lo, env)
        hi_t, env = self.visit(node.hi, env)
        for t, which in ((lo_t, node.lo), (hi_t, node.hi)):
            if not self.le(t, NominalType("Integer")):
                self.fail(which, f"range bound must be an Integer, got {t}")
        return GenericType("Range", (NominalType("Integer"),)), env

    def _visit_StrFormat(self, node, env):
        # Interpolation calls to_s, defined on Object: any type is fine.
        for part in node.parts:
            if isinstance(part, ir.Node):
                _, env = self.visit(part, env)
        return NominalType("String"), env

    # -- names ---------------------------------------------------------------

    def _visit_SelfRef(self, node, env):
        return env["self"], env

    def _visit_VarRead(self, node, env):
        if node.name in env:
            return env[node.name], env
        # Ruby's bare-name ambiguity: an unbound name is treated as a
        # no-argument method on self — exactly how the paper's Talks
        # errors ("undefined variable old_talk") surface.
        return self.check_call(node, env, env["self"], node.name, [], None,
                               bare_name=node.name)

    def _visit_ConstRead(self, node, env):
        if not self.hier.is_known(node.name):
            self.fail(node, f"uninitialized constant {node.name}")
        return ClassObjectType(node.name), env

    def _visit_IVarRead(self, node, env):
        ft, owner = self._field_lookup(env["self"], node.name)
        if ft is not None:
            self.outcome.field_deps.add((owner, node.name))
            return ft, env
        return self.check_call(node, env, env["self"], node.name, [], None)

    def _visit_VarWrite(self, node, env):
        t, env = self.visit(node.value, env)
        new_env = dict(env)
        new_env[node.name] = t
        return t, new_env

    def _visit_IVarWrite(self, node, env):
        vt, env = self.visit(node.value, env)
        ft, owner = self._field_lookup(env["self"], node.name)
        if ft is not None:
            self.outcome.field_deps.add((owner, node.name))
            if not self.le(vt, ft):
                self.fail(node, f"cannot assign {vt} to field "
                                f"{owner}.{node.name} of type {ft}")
            return vt, env
        t, env = self.check_call(node, env, env["self"], f"{node.name}=",
                                 [vt], None, arg_nodes=[node.value])
        return vt, env

    def _field_lookup(self, self_type: Type,
                      name: str) -> Tuple[Optional[Type], str]:
        cls = _class_name_of(self_type)
        if cls is None:
            return None, ""
        for ancestor in self._safe_ancestors(cls):
            ft = self.types.lookup_field(ancestor, name)
            if ft is not None:
                return ft, ancestor
        return None, ""

    def _safe_ancestors(self, cls: str):
        if not self.hier.is_known(cls):
            return [cls]
        return list(self.hier.ancestors(cls))

    # -- control flow ----------------------------------------------------------

    def _visit_Seq(self, node, env):
        t: Type = NIL
        for stmt in node.stmts:
            t, env = self.visit(stmt, env)
        return t, env

    def _visit_If(self, node, env):
        _, env = self.visit(node.test, env)
        env_true, env_false = self._narrow(node.test, env)
        t1, out1 = self.visit(node.then, env_true)
        t2, out2 = self.visit(node.orelse, env_false)
        return self.join2(t1, t2), self.join_env(out1, out2)

    def _visit_While(self, node, env):
        def bind(e: Env) -> Env:
            _, after_test = self.visit(node.test, e)
            true_env, _ = self._narrow(node.test, after_test)
            return true_env

        stable = self._loop_fixpoint(bind, node.body, env)
        _, after_test = self.visit(node.test, stable)
        return NIL, after_test

    def _visit_ForEach(self, node, env):
        it_t, env = self.visit(node.iterable, env)
        elem = self._element_type(node, it_t)

        def bind(e: Env) -> Env:
            out = dict(e)
            out[node.var] = elem
            return out

        stable = self._loop_fixpoint(bind, node.body, env)
        return it_t, stable

    def _loop_fixpoint(self, bind, body, env: Env) -> Env:
        current = env
        for _ in range(_MAX_LOOP_PASSES):
            _, out = self.visit(body, bind(current))
            merged = self.join_env(current, out)
            if merged == current:
                return current
            current = merged
        return current

    def _element_type(self, node, t: Type) -> Type:
        if isinstance(t, AnyType):
            return ANY
        if isinstance(t, GenericType) and t.name in ("Array", "Set", "Range"):
            return t.args[0] if t.args else ANY
        if isinstance(t, NominalType) and t.name in ("Array", "Set", "Range"):
            return ANY
        if isinstance(t, TupleType):
            if not t.elems:
                return ANY
            return join_all(t.elems, self.hier, strict_nil=self.strict_nil)
        if isinstance(t, GenericType) and t.name == "Hash":
            return t.args[0]  # host iteration over a Hash yields keys
        if isinstance(t, FiniteHashType):
            return union_of(*(SingletonType(k, "Symbol")
                              for k, _ in t.fields)) if t.fields else ANY
        if isinstance(t, UnionType):
            return join_all(
                [self._element_type(node, a) for a in t.arms],
                self.hier, strict_nil=self.strict_nil)
        self.fail(node, f"cannot iterate over a value of type {t}")

    def _visit_Return(self, node, env):
        if node.value is None:
            t: Type = NIL
        else:
            t, env = self.visit(node.value, env)
        if not self.le(t, self.expected_ret):
            self.fail(node, f"returns {t} but is declared to return "
                            f"{self.expected_ret}")
        return BOT, env

    def _visit_Break(self, node, env):
        return BOT, env

    def _visit_Next(self, node, env):
        return BOT, env

    def _visit_Raise(self, node, env):
        if node.value is not None:
            _, env = self.visit(node.value, env)
        return BOT, env

    def _visit_Try(self, node, env):
        body_t, body_env = self.visit(node.body, env)
        branch_ts = [body_t]
        branch_envs = [body_env]
        for handler in node.handlers:
            h_env = dict(env)
            if handler.var is not None:
                h_env[handler.var] = (NominalType(handler.class_name)
                                      if handler.class_name else
                                      NominalType("StandardError"))
            t, out = self.visit(handler.body, h_env)
            branch_ts.append(t)
            branch_envs.append(out)
        if node.orelse is not None:
            t, out = self.visit(node.orelse, body_env)
            branch_ts.append(t)
            branch_envs.append(out)
        merged_env = branch_envs[0]
        for other in branch_envs[1:]:
            merged_env = self.join_env(merged_env, other)
        result = join_all(branch_ts, self.hier, strict_nil=self.strict_nil)
        if node.final is not None:
            _, merged_env = self.visit(node.final, merged_env)
        return result, merged_env

    # -- boolean forms -----------------------------------------------------------

    def _visit_BoolOp(self, node, env):
        parts = []
        for i, part in enumerate(node.parts):
            t, env = self.visit(part, env)
            parts.append(t)
            if self.narrowing and node.op == "and" and i < len(node.parts) - 1:
                env, _ = self._narrow(part, env)
        if node.op == "or":
            # a or b yields a (truthy, so nil is stripped) or b.
            collected = [_remove_nil(t) for t in parts[:-1]] + [parts[-1]]
            return join_all(collected, self.hier,
                            strict_nil=self.strict_nil), env
        return join_all(parts, self.hier, strict_nil=self.strict_nil), env

    def _visit_Not(self, node, env):
        _, env = self.visit(node.value, env)
        return BOOL, env

    def _visit_IsNil(self, node, env):
        _, env = self.visit(node.value, env)
        return BOOL, env

    def _visit_IsA(self, node, env):
        _, env = self.visit(node.value, env)
        if not self.hier.is_known(node.class_name):
            self.fail(node, f"uninitialized constant {node.class_name}")
        return BOOL, env

    def _narrow(self, test: ir.Node, env: Env) -> Tuple[Env, Env]:
        """Occurrence-typing extension for nil and isinstance tests."""
        if not self.narrowing:
            return env, env
        if isinstance(test, ir.Not):
            f, t = self._narrow(test.value, env)
            return t, f
        if isinstance(test, ir.IsNil) and isinstance(test.value, ir.VarRead):
            name = test.value.name
            if name in env:
                env_true = dict(env)
                env_true[name] = NIL
                env_false = dict(env)
                env_false[name] = _remove_nil(env[name])
                return env_true, env_false
        if isinstance(test, ir.IsA) and isinstance(test.value, ir.VarRead):
            name = test.value.name
            if name in env:
                env_true = dict(env)
                env_true[name] = NominalType(test.class_name)
                return env_true, env
        if isinstance(test, ir.VarRead) and test.name in env:
            env_true = dict(env)
            env_true[test.name] = _remove_nil(env[test.name])
            return env_true, env
        if isinstance(test, ir.BoolOp) and test.op == "and":
            env_true = env
            for part in test.parts:
                env_true, _ = self._narrow(part, env_true)
            return env_true, env
        return env, env

    # -- casts -------------------------------------------------------------------

    def _visit_Cast(self, node, env):
        _, env = self.visit(node.value, env)
        try:
            t = parse_type(node.type_text)
        except Exception as exc:
            self.fail(node, f"bad cast type {node.type_text!r}: {exc}")
        self.outcome.cast_sites.add(
            (self.mir.owner, self.mir.name, node.pos.line))
        return t, env

    # -- calls ---------------------------------------------------------------------

    def _visit_BlockFn(self, node, env):
        # A block not attached to a call site (stored in a variable).
        return NominalType("Proc"), env

    def _visit_Call(self, node, env):
        # Bare call: local Proc/block first, then implicit self.
        if node.recv is None:
            bound = env.get(node.name)
            if bound is not None:
                return self._call_proc(node, env, bound)
            arg_ts, env = self._visit_args(node.args, env)
            return self.check_call(node, env, env["self"], node.name,
                                   arg_ts, node.block,
                                   arg_nodes=list(node.args),
                                   bare_name=node.name)
        recv_t, env = self.visit(node.recv, env)
        arg_ts, env = self._visit_args(node.args, env)
        return self.check_call(node, env, recv_t, node.name, arg_ts,
                               node.block, arg_nodes=list(node.args))

    def _visit_args(self, args, env):
        out = []
        for a in args:
            t, env = self.visit(a, env)
            out.append(t)
        return out, env

    def _call_proc(self, node, env, bound: Type):
        """Calling a local variable holding a code block — the block-call
        case the paper notes Hummingbird left unimplemented (section 4);
        we implement it as an extension."""
        arg_ts, env = self._visit_args(node.args, env)
        if isinstance(bound, MethodType):
            if not bound.accepts_arity(len(arg_ts)):
                self.fail(node, f"block takes {len(bound.params)} arguments, "
                                f"given {len(arg_ts)}")
            for i, at in enumerate(arg_ts):
                pt = bound.param_type_at(i)
                if pt is not None and not self.le(at, pt):
                    self.fail(node, f"block argument {i + 1} is {at}, "
                                    f"expected {pt}")
            return bound.ret, env
        if isinstance(bound, (AnyType,)) or (
                isinstance(bound, NominalType) and bound.name == "Proc"):
            return ANY, env
        # The local is not callable: treat as a self-method (Ruby would
        # shadow, but host semantics call the local).
        self.fail(node, f"{node.name} has type {bound} and is not callable")

    def check_call(self, node, env, recv_t: Type, name: str,
                   arg_ts: List[Type], block: Optional[ir.BlockFn],
                   arg_nodes: Optional[list] = None,
                   bare_name: Optional[str] = None) -> Tuple[Type, Env]:
        """(TApp) for one call site; handles union receivers per arm."""
        if isinstance(recv_t, BotType):
            return BOT, env
        if isinstance(recv_t, AnyType):
            if block is not None:
                _, env = self._check_block_body(
                    node, env, block,
                    MethodType(tuple(RequiredParam(ANY)
                                     for _ in block.params), None, ANY), {})
            return ANY, env
        if isinstance(recv_t, UnionType):
            results = []
            for arm in recv_t.arms:
                t, env = self.check_call(node, env, arm, name, arg_ts, block,
                                         arg_nodes, bare_name)
                results.append(t)
            return join_all(results, self.hier,
                            strict_nil=self.strict_nil), env
        if isinstance(recv_t, MethodType) and name == "call":
            fake = ir.Call(None, "call", (), None, node.pos)
            if not recv_t.accepts_arity(len(arg_ts)):
                self.fail(node, "wrong number of block arguments")
            for i, at in enumerate(arg_ts):
                pt = recv_t.param_type_at(i)
                if pt is not None and not self.le(at, pt):
                    self.fail(node, f"block argument {i + 1} is {at}, "
                                    f"expected {pt}")
            return recv_t.ret, env
        if isinstance(recv_t, StructuralType):
            sig = recv_t.method_map().get(name)
            if sig is None:
                self.fail(node, f"undefined method {name!r} for structural "
                                f"type {recv_t}")
            return self._apply_arms(node, env, recv_t, name, [sig], arg_ts,
                                    block)

        kind = "class" if isinstance(recv_t, ClassObjectType) else "instance"
        cls = _class_name_of(recv_t)
        if cls is None:
            self.fail(node, f"cannot call {name!r} on a value of type "
                            f"{recv_t}")
        found = self.engine.resolve_sig(cls, name, kind)
        if found is None and kind == "class" and name == "new":
            return self._default_new(node, env, recv_t, arg_ts)
        if found is None:
            # Host attributes are public: a zero-argument "call" on another
            # object may be a typed field read (and `name=` a field write).
            field_hit = self._field_as_method(node, env, recv_t, name,
                                              arg_ts, block)
            if field_hit is not None:
                return field_hit
            self._fail_missing(node, recv_t, name, bare_name)
        sig_owner, sig = found
        self.outcome.deps.add((cls, name))
        if sig_owner != cls:
            self.outcome.deps.add((sig_owner, name))
        if sig.generated:
            self.outcome.used_generated.add((sig_owner, name))
        # In a class-method signature, `self` means an *instance* of the
        # receiver class (so Model.find's "(Integer) -> self" gives Talk).
        recv_for_self = (NominalType(cls)
                         if isinstance(recv_t, ClassObjectType) else recv_t)
        arms = [instantiate_for_receiver(arm, recv_for_self, self.hier)
                for arm in sig.arms]
        return self._apply_arms(node, env, recv_t, name, arms, arg_ts, block)

    def _field_as_method(self, node, env, recv_t, name, arg_ts, block):
        """Resolve ``obj.attr`` / ``obj.attr = v`` against field types."""
        if block is not None:
            return None
        target = name[:-1] if name.endswith("=") and len(arg_ts) == 1 \
            else name
        if target != name and not target:
            return None
        if name.endswith("=") is False and arg_ts:
            return None
        ft, owner = self._field_lookup(recv_t, target)
        if ft is None:
            return None
        self.outcome.field_deps.add((owner, target))
        if name.endswith("="):
            if not self.le(arg_ts[0], ft):
                self.fail(node, f"cannot assign {arg_ts[0]} to field "
                                f"{owner}.{target} of type {ft}")
            return arg_ts[0], env
        return ft, env

    def _fail_missing(self, node, recv_t, name, bare_name):
        if isinstance(recv_t, NilType):
            self.fail(node, f"undefined method {name!r} for nil")
        if bare_name is not None:
            self.fail(node, f"{bare_name!r} is an unbound local variable "
                            f"and is not a method of {recv_t}")
        self.fail(node, f"{recv_t} does not have method {name!r} "
                        f"in the current type table")

    def _default_new(self, node, env, recv_t: ClassObjectType, arg_ts):
        """``A.new`` with no explicit signature: check the constructor's
        declared type if one exists, else accept as in the formalism's
        (TNew)."""
        init = self.engine.resolve_sig(recv_t.name, "initialize", "instance")
        if init is not None:
            owner, sig = init
            self.outcome.deps.add((recv_t.name, "initialize"))
            if sig.generated:
                self.outcome.used_generated.add((owner, "initialize"))
            arms = [instantiate_for_receiver(a, NominalType(recv_t.name),
                                             self.hier) for a in sig.arms]
            self._apply_arms(node, env, NominalType(recv_t.name),
                             "initialize", arms, arg_ts, None)
        return NominalType(recv_t.name), env

    def _apply_arms(self, node, env, recv_t, name, arms, arg_ts, block):
        """Select the first intersection arm the call matches."""
        failures = []
        for arm in arms:
            ok, bindings, why = self._match_arm(arm, arg_ts, block)
            if not ok:
                failures.append(f"{arm}: {why}")
                continue
            if block is not None and arm.block is not None:
                ret_bind, env = self._check_block_body(
                    node, env, block, substitute(arm.block.sig, bindings),
                    bindings)
                bindings.update(ret_bind)
            result = substitute(arm.ret, bindings)
            result = _close_vars(result)
            return result, env
        detail = "; ".join(failures) if failures else "no signature arms"
        self.fail(node, f"no matching signature for "
                        f"{_class_name_of(recv_t)}#{name}"
                        f"({', '.join(map(str, arg_ts))})"
                        f"{' with a block' if block else ''} — {detail}")

    def _match_arm(self, arm: MethodType, arg_ts, block):
        if not arm.accepts_arity(len(arg_ts)):
            lo, hi = arm.min_arity(), arm.max_arity()
            expected = str(lo) if hi == lo else f"{lo}..{hi or 'n'}"
            return False, {}, (f"wrong number of arguments "
                               f"(given {len(arg_ts)}, expected {expected})")
        if block is not None and arm.block is None:
            # The paper's Talks error 1/7/12-5: upcoming does not take a
            # block (Ruby would silently ignore it; Hummingbird flags it).
            return False, {}, "does not take a block"
        if block is None and arm.block is not None and not arm.block.optional:
            return False, {}, "expects a block"
        bindings: Dict[str, Type] = {}
        for i, at in enumerate(arg_ts):
            pt = arm.param_type_at(i)
            if pt is None:
                return False, {}, f"no parameter for argument {i + 1}"
            _infer_vars(pt, at, bindings, self.hier, self.strict_nil)
            bound = substitute(pt, bindings)
            if not self.le(at, _open_vars_to_any(bound)):
                return False, {}, (f"argument {i + 1} is {at}, "
                                   f"expected {pt}")
        return True, bindings, ""

    def _check_block_body(self, node, env, block: ir.BlockFn,
                          sig: MethodType, bindings: Dict[str, Type]):
        """Check a code block argument against the expected block type —
        the first code-block case of section 4."""
        if not sig.accepts_arity(len(block.params)):
            self.fail(node, f"block takes {len(block.params)} parameters "
                            f"but its type is {sig}")
        inner = dict(env)
        for i, pname in enumerate(block.params):
            pt = sig.param_type_at(i)
            inner[pname] = _open_vars_to_any(pt) if pt is not None else ANY
        body_t, out_env = self.visit(block.body, inner)
        ret_bind: Dict[str, Type] = {}
        expected = sig.ret
        if isinstance(expected, VarType) and expected.name not in bindings:
            ret_bind[expected.name] = body_t
        elif not self.le(body_t, _open_vars_to_any(expected)):
            self.fail(node, f"block returns {body_t}, expected {expected}")
        # Blocks share their enclosing scope's locals.
        merged = self.join_env(env, out_env)
        for name in env:
            merged.setdefault(name, env[name])
        return ret_bind, merged


# -- module-level helpers ------------------------------------------------------


def _remove_nil(t: Type) -> Type:
    if isinstance(t, UnionType):
        arms = [a for a in t.arms if not isinstance(a, NilType)]
        if arms:
            return union_of(*arms)
    return t


def _class_name_of(t: Type) -> Optional[str]:
    if isinstance(t, NominalType):
        return t.name
    if isinstance(t, GenericType):
        return t.name
    if isinstance(t, ClassObjectType):
        return t.name
    if isinstance(t, BoolType):
        return "Boolean"
    if isinstance(t, NilType):
        return "NilClass"
    if isinstance(t, SingletonType):
        return t.base
    if isinstance(t, TupleType):
        return "Array"
    if isinstance(t, FiniteHashType):
        return "Hash"
    if isinstance(t, MethodType):
        return "Proc"
    return None


def _infer_vars(expected: Type, actual: Type, bindings: Dict[str, Type],
                hier, strict_nil: bool) -> None:
    """Bind method-level type variables from an (expected, actual) pair."""
    if isinstance(expected, VarType):
        if isinstance(actual, BotType):
            return
        prev = bindings.get(expected.name)
        bindings[expected.name] = (actual if prev is None else
                                   join(prev, actual, hier,
                                        strict_nil=strict_nil))
        return
    if isinstance(expected, GenericType) and isinstance(actual, GenericType) \
            and expected.name == actual.name \
            and len(expected.args) == len(actual.args):
        for e, a in zip(expected.args, actual.args):
            _infer_vars(e, a, bindings, hier, strict_nil)
        return
    if isinstance(expected, GenericType) and expected.name == "Array" \
            and isinstance(actual, TupleType) and len(expected.args) == 1:
        for e in actual.elems:
            _infer_vars(expected.args[0], e, bindings, hier, strict_nil)
        return
    if isinstance(expected, GenericType) and expected.name == "Hash" \
            and isinstance(actual, FiniteHashType) \
            and len(expected.args) == 2:
        for k, v in actual.fields:
            _infer_vars(expected.args[0], SingletonType(k, "Symbol"),
                        bindings, hier, strict_nil)
            _infer_vars(expected.args[1], v, bindings, hier, strict_nil)
        return
    if isinstance(expected, UnionType):
        for arm in expected.arms:
            _infer_vars(arm, actual, bindings, hier, strict_nil)


def _open_vars_to_any(t: Type) -> Type:
    """Unbound method-level variables accept anything (raw default)."""
    from ..rtypes import free_vars
    fv = free_vars(t)
    if not fv:
        return t
    return substitute(t, {v: ANY for v in fv})


def _close_vars(t: Type) -> Type:
    return _open_vars_to_any(t)


def _always_returns(node: ir.Node) -> bool:
    """Conservative: does every path through ``node`` return or raise?"""
    if isinstance(node, (ir.Return, ir.Raise)):
        return True
    if isinstance(node, ir.Seq):
        return any(_always_returns(s) for s in node.stmts)
    if isinstance(node, ir.If):
        return _always_returns(node.then) and _always_returns(node.orelse)
    if isinstance(node, ir.Try):
        handlers_ok = all(_always_returns(h.body) for h in node.handlers)
        return _always_returns(node.body) and handlers_ok
    return False
