"""The invalidation dependency graph — fine-grained edges for every cache.

PR 1's hot-path caches were guarded by two *coarse* version counters: any
type-table or hierarchy mutation made every call plan unusable, and a
body redefinition flushed plans by method *name* across all receivers.
That is sound but hostile to dev-mode reload churn — one retyped method
evicted every warm call site in the process.

This module replaces the counters with explicit dependency edges.  A
:class:`DepGraph` is a bipartite map between *resources* (the mutable
facts a cached judgment read) and *tokens* (the cache entries that read
them).  Mutating a resource pops exactly its dependents — per key, not
per name, and never "everything".

Resource taxonomy (plain tuples, so they hash fast and print readably):

``("sig", owner, name[, kind])``
    a method-signature slot.  Recorded for every slot a resolution walk
    *consulted* — including negative lookups, so a signature appearing on
    a closer ancestor correctly invalidates plans that previously
    resolved past it.  Check-cache entries record the kind-less form
    (the checker's (TApp) dependency keys).

``("lin", class_name)``
    the ancestor linearization of ``class_name``.  Recorded by anything
    that walked or consulted the class's place in the hierarchy; the
    hierarchy reports exactly which classes' linearizations a structural
    mutation changed (a new leaf class changes nobody's).

``("field", owner, field_name)``
    an instance/class field type read by a checked derivation.

``("ir", owner, name)``
    the lowered body of ``owner#name``, as consulted by the tier-3
    elision analysis (:mod:`repro.ril.analysis`).  Redefining the method
    fires this edge even when the signature slot is untouched — a return
    fact derived from the *old* body must not outlive it.

Users: the engine's :class:`~repro.core.plans.CallPlanCache` (per-plan
resolution dependencies), the :class:`~repro.core.cache.CheckCache`
(per-derivation signature/field/hierarchy edges), and — with class names
as resources — the per-line read sets of the subtype memo
(:class:`repro.rtypes.hierarchy.SubtypeCache`).

Locking contract: a :class:`DepGraph` is **not** internally
synchronized — ``record``/``forget``/``invalidate`` are multi-step
mutations of two dicts.  Every owner wraps its graph in its own lock
(the plan cache's and check cache's internal locks); keeping the graph
lock-free avoids double-locking on the owners' already-serialized
mutation paths.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Set, Tuple

Resource = Tuple
Token = Hashable


def sig_resource(owner: str, name: str, kind: str = None) -> Resource:
    """The resource key for a signature slot (kind-less when ``None``)."""
    if kind is None:
        return ("sig", owner, name)
    return ("sig", owner, name, kind)


def lin_resource(class_name: str) -> Resource:
    """The resource key for a class's ancestor linearization."""
    return ("lin", class_name)


def field_resource(owner: str, field_name: str) -> Resource:
    """The resource key for a field-type slot."""
    return ("field", owner, field_name)


def ir_resource(owner: str, name: str) -> Resource:
    """The resource key for a method body's lowered IR."""
    return ("ir", owner, name)


class DepGraph:
    """A bipartite dependency graph: resources -> dependent tokens.

    ``record`` replaces a token's edge set wholesale (a rebuilt cache
    entry re-reads its world from scratch); ``invalidate`` pops a
    resource's dependents and severs all their edges, so a token is
    returned at most once per invalidation wave.
    """

    __slots__ = ("_fwd", "_rev")

    def __init__(self) -> None:
        self._fwd: Dict[Token, Tuple[Resource, ...]] = {}
        self._rev: Dict[Resource, Set[Token]] = {}

    def __len__(self) -> int:
        return len(self._fwd)

    def resource_count(self) -> int:
        return len(self._rev)

    def record(self, token: Token, resources: Iterable[Resource]) -> None:
        """Set ``token``'s dependencies, replacing any previous edges."""
        if token in self._fwd:
            self.forget(token)
        deduped = tuple(dict.fromkeys(resources))
        self._fwd[token] = deduped
        rev = self._rev
        for resource in deduped:
            bucket = rev.get(resource)
            if bucket is None:
                rev[resource] = {token}
            else:
                bucket.add(token)

    def forget(self, token: Token) -> None:
        """Drop ``token`` and its edges (the entry was removed directly)."""
        resources = self._fwd.pop(token, None)
        if resources is None:
            return
        rev = self._rev
        for resource in resources:
            bucket = rev.get(resource)
            if bucket is not None:
                bucket.discard(token)
                if not bucket:
                    del rev[resource]

    def dependents(self, resource: Resource) -> Set[Token]:
        """The tokens currently depending on ``resource`` (a copy)."""
        return set(self._rev.get(resource, ()))

    def resources_of(self, token: Token) -> Tuple[Resource, ...]:
        """The resources ``token`` currently depends on."""
        return self._fwd.get(token, ())

    def invalidate(self, resource: Resource) -> Set[Token]:
        """Pop ``resource``'s dependents, severing all their edges."""
        tokens = self._rev.pop(resource, None)
        if not tokens:
            return set()
        popped = set(tokens)
        for token in popped:
            self.forget(token)
        return popped

    def invalidate_many(self, resources: Iterable[Resource]) -> Set[Token]:
        """Union of :meth:`invalidate` over ``resources``."""
        popped: Set[Token] = set()
        for resource in resources:
            popped |= self.invalidate(resource)
        return popped

    def clear(self) -> None:
        self._fwd.clear()
        self._rev.clear()
