"""Call plans — per-call-site inline caches for the steady-state JIT path.

The paper's headline performance result (Orig < Hum << No$) rests on the
intercepted-call path being cheap once a method is warm.  Without plans,
every call re-resolves the signature through the ancestor linearization,
re-enters ``jit_check`` (to discover the check is already cached), and
re-derives the argument-check decision.  A :class:`CallPlan` memoizes the
outcome of one warm call per ``(defining class, receiver class, method,
kind)`` site so the hot loop collapses to a guard plus a dict hit — the
same move as the polymorphic inline caches of "Transient Typechecks are
(Almost) Free" (Roberts et al.) and the shape tests of lazy basic block
versioning (Chevalier-Boisvert & Feeley).

Soundness / invalidation:

* a plan embeds the type-table version and hierarchy version it was built
  under; the engine compares both integers before trusting it, so any
  annotation (``type``), field-type change, or hierarchy mutation (new
  class, module inclusion) makes every affected plan unusable;
* body redefinitions do not bump the type table, so
  :meth:`Engine.invalidate` also flushes plans by method name explicitly
  (Definition 1's removal set), which keeps dev-mode reloading correct;
* ``No$`` mode (``caching=False``) never builds plans for statically
  checked methods — re-checking on every call is that mode's point.

Argument-class profiles: when every signature arm is *class-determined*
(:func:`repro.rtypes.typeof.is_class_determined` — conformance depends only
on each argument's host class), a plan additionally remembers the argument
class tuples that already passed the dynamic check.  A repeat call with the
same classes skips the conformance walk entirely: guard + set hit.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

PlanKey = Tuple[str, str, str, str]  # (def_owner, recv class, method, kind)

#: ``EngineConfig.dynamic_arg_checks`` precompiled to an int for the fast
#: path ("boundary" also covers unknown modes, matching the slow path).
ARG_CHECK_NEVER = 0
ARG_CHECK_BOUNDARY = 1
ARG_CHECK_ALWAYS = 2
ARG_MODES = {"never": ARG_CHECK_NEVER, "boundary": ARG_CHECK_BOUNDARY,
             "always": ARG_CHECK_ALWAYS}

#: Cap on remembered passing argument-class profiles per plan; beyond it
#: the dynamic check still runs, it just stops learning new profiles.
MAX_PROFILES = 64


class CallPlan:
    """The fully-resolved outcome of one warm intercepted call."""

    __slots__ = ("sig_owner", "sig", "checked", "arg_mode",
                 "profile_eligible", "profiles", "types_version",
                 "hier_version")

    def __init__(self, sig_owner: Optional[str], sig, checked: bool,
                 arg_mode: int, profile_eligible: bool,
                 types_version: int, hier_version: int) -> None:
        #: ancestor the signature was found on (None when unannotated).
        self.sig_owner = sig_owner
        #: the resolved MethodSig, or None for wrapped-but-unannotated.
        self.sig = sig
        #: the JIT static check is satisfied and memoized in the check
        #: cache; also what the checked-frame stack records for callees.
        self.checked = checked
        self.arg_mode = arg_mode
        self.profile_eligible = profile_eligible
        self.profiles: Set[tuple] = set()
        self.types_version = types_version
        self.hier_version = hier_version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CallPlan(owner={self.sig_owner!r}, checked={self.checked}, "
                f"profiles={len(self.profiles)})")


class CallPlanCache:
    """Per-engine map of call sites to :class:`CallPlan`."""

    def __init__(self) -> None:
        self._plans: Dict[PlanKey, CallPlan] = {}
        #: total plans dropped by explicit invalidation (not version drift).
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, key: PlanKey) -> Optional[CallPlan]:
        return self._plans.get(key)

    def store(self, key: PlanKey, plan: CallPlan) -> None:
        self._plans[key] = plan

    def invalidate_method(self, name: str) -> int:
        """Drop every plan for method ``name``, on any receiver class.

        Name-granular on purpose: a signature found on an ancestor serves
        plans keyed by many receiver classes, and Definition 1's removal
        set can touch several owners; a flushed plan just rebuilds on the
        next call, so over-approximating costs one slow call per site.
        """
        stale = [k for k in self._plans if k[2] == name]
        for k in stale:
            del self._plans[k]
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> int:
        dropped = len(self._plans)
        self._plans.clear()
        self.invalidations += dropped
        return dropped
