"""Call plans — per-call-site inline caches for the steady-state JIT path.

The paper's headline performance result (Orig < Hum << No$) rests on the
intercepted-call path being cheap once a method is warm.  Without plans,
every call re-resolves the signature through the ancestor linearization,
re-enters ``jit_check`` (to discover the check is already cached), and
re-derives the argument-check decision.  A :class:`CallPlan` memoizes the
outcome of one warm call per ``(defining class, receiver class, method,
kind)`` site so the hot loop collapses to a guard plus a dict hit — the
same move as the polymorphic inline caches of "Transient Typechecks are
(Almost) Free" (Roberts et al.) and the shape tests of lazy basic block
versioning (Chevalier-Boisvert & Feeley).

Soundness / invalidation (the dependency-tracked scheme):

* while a plan is built, the slow path records every resource the
  resolution consulted — the ``("sig", C, name, kind)`` slot of each
  ancestor it probed (negative probes included) and the ``("lin", C)``
  linearization it walked.  The cache keeps those edges in a
  :class:`~repro.core.deps.DepGraph`; mutating one resource pops exactly
  its dependent plans (:meth:`CallPlanCache.invalidate_resources`),
  instead of the old scheme's global version counters that made *every*
  plan unusable after *any* table or hierarchy change;
* plans whose memoized check-cache entry is removed (body redefinitions,
  field retypes, Definition 1 removal sets) are flushed per *(receiver,
  method)* key (:meth:`CallPlanCache.invalidate_cache_keys`), not per
  method name — redefining ``A#m`` leaves ``B#m`` plans warm;
* checked plans additionally guard on their derivation still being in the
  check cache, so even a direct ``cache.clear()`` that bypasses
  ``Engine.invalidate`` cannot leave a stale fast path;
* ``No$`` mode (``caching=False``) never builds plans for statically
  checked methods — re-checking on every call is that mode's point.

Argument-class profiles: when every signature arm is *class-determined*
(:func:`repro.rtypes.typeof.is_class_determined` — conformance depends only
on each argument's host class), a plan additionally remembers the argument
class tuples that already passed the dynamic check.  A repeat call with the
same classes skips the conformance walk entirely: guard + set hit.  Plans
for *trusted* (unchecked) signatures can likewise profile the dynamic
return check (``EngineConfig.dynamic_ret_checks``): once a result class
passed conformance against a class-determined return type, repeat results
of the same class skip the walk (``Stats.ret_profile_hits``).

Profiles are **copy-on-write frozensets**: the lock-free warm path reads
``plan.profiles`` (one attribute load of an immutable set) and learners
publish ``plan.profiles = profiles | {new}`` — an atomic reference swap.
Concurrent learners may lose each other's update (the next identical
call just re-runs the conformance walk and re-learns), but no thread
can ever observe a set mid-mutation, which a shared ``set.add`` from
many threads would permit.

Keyword calls: a plan memoizes, per observed kwargs *shape*, how the
names map onto the callee's positional parameters
(:meth:`CallPlan.learn_kw_layout`); bindable shapes rebuild the full
positional view with plain dict gets — shapes that skip a defaulted
parameter bind the declared default into the layout
(:class:`BoundDefault`) — so the profile set covers keyword calls
without re-entering ``Signature.bind``.

Tiering: a plan also carries the tier-2 promotion state — ``hits``, a
heuristic warm-call counter (racy increments only delay promotion),
``promote_at``, the per-site threshold the engine stamps at build time
(reduced for sites the specializer saw deoptimize), ``profile_hits``,
the pre-promotion per-profile counts the dominant-profile guard is
compiled from, and ``promoted``, set once the specializer has attempted
to compile the site (:mod:`repro.core.specialize`).  The cache's
``on_drop`` callback reports every explicitly dropped plan key so the
engine can deoptimize the specialized dispatch entries riding those
plans before the wave returns.
"""

from __future__ import annotations

import inspect
import threading
from typing import (
    Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple,
)

from .deps import DepGraph, Resource

PlanKey = Tuple[str, str, str, str]  # (def_owner, recv class, method, kind)
CacheKey = Tuple[str, str]           # (recv class, method) — check-cache key

#: ``EngineConfig.dynamic_arg_checks`` precompiled to an int for the fast
#: path ("boundary" also covers unknown modes, matching the slow path).
ARG_CHECK_NEVER = 0
ARG_CHECK_BOUNDARY = 1
ARG_CHECK_ALWAYS = 2
ARG_MODES = {"never": ARG_CHECK_NEVER, "boundary": ARG_CHECK_BOUNDARY,
             "always": ARG_CHECK_ALWAYS}

#: ``EngineConfig.dynamic_ret_checks`` uses the same encoding, but its
#: "boundary" is the *opposite* edge: a return check matters when the
#: immediate caller **is** statically checked, because that caller's
#: derivation trusted this signature's return type.
RET_MODES = {"never": ARG_CHECK_NEVER, "boundary": ARG_CHECK_BOUNDARY,
             "always": ARG_CHECK_ALWAYS}

#: Cap on remembered passing argument-class profiles per plan; beyond it
#: the dynamic check still runs, it just stops learning new profiles.
MAX_PROFILES = 64

#: Cap on memoized kwargs-shape layouts per plan (shapes are keyed by the
#: call's literal ``(len(args), tuple(kwargs))``, so permutations of the
#: same semantic layout occupy separate lines).
MAX_KW_SHAPES = 16


class CallPlan:
    """The fully-resolved outcome of one warm intercepted call."""

    __slots__ = ("sig_owner", "sig", "checked", "arg_mode",
                 "profile_eligible", "profiles", "profile_hits",
                 "kw_layouts", "ret_mode", "ret_profile_eligible",
                 "ret_profiles", "hits", "promote_at", "promoted")

    def __init__(self, sig_owner: Optional[str], sig, checked: bool,
                 arg_mode: int, profile_eligible: bool,
                 ret_mode: int = ARG_CHECK_NEVER,
                 ret_profile_eligible: bool = False) -> None:
        #: ancestor the signature was found on (None when unannotated).
        self.sig_owner = sig_owner
        #: the resolved MethodSig, or None for wrapped-but-unannotated.
        self.sig = sig
        #: the JIT static check is satisfied and memoized in the check
        #: cache; also what the checked-frame stack records for callees.
        self.checked = checked
        self.arg_mode = arg_mode
        self.profile_eligible = profile_eligible
        #: copy-on-write: always reassigned (never mutated in place) so
        #: lock-free readers see a complete set or the previous one.
        self.profiles: FrozenSet[tuple] = frozenset()
        #: pre-promotion warm-hit counts per passing profile, so the
        #: specializer's dominant-profile guard targets the *hottest*
        #: shape, not an arbitrary frozenset-iteration-first one.  Racy
        #: per-key increments (lost updates only skew the heuristic);
        #: only bumped while the plan is unpromoted, so the steady state
        #: pays nothing.
        self.profile_hits: Dict[tuple, int] = {}
        #: kwargs-shape layouts: the call's literal
        #: ``(len(args), tuple(kwargs))`` -> the kwargs names reordered
        #: into declared parameter order (``None`` when the shape cannot
        #: be bound contiguously, so it is never re-derived).  Learned on
        #: the full-check path; read lock-free (single dict get).
        self.kw_layouts: Dict[Tuple[int, tuple], Optional[tuple]] = {}
        #: ARG_CHECK_NEVER unless this plan performs dynamic return checks
        #: (trusted signature + engine mode), so the fast path pays one
        #: attribute compare when the feature is off.
        self.ret_mode = ret_mode
        self.ret_profile_eligible = ret_profile_eligible
        self.ret_profiles: FrozenSet[type] = frozenset()
        #: warm-hit counter driving tier-2 promotion; bumped lock-free,
        #: so lost increments merely postpone the threshold.
        self.hits = 0
        #: per-site promotion threshold (the engine sets it at plan
        #: build: the full ``specialize_threshold``, or the specializer's
        #: reduced re-promotion threshold for sites that deopted before).
        self.promote_at = 0
        #: the specializer attempted (or declined) to compile this plan;
        #: one attempt per plan generation — a dropped-and-rebuilt plan
        #: starts fresh.
        self.promoted = False

    def learn_profile(self, profile: tuple) -> None:
        """COW-publish a passing argument-class tuple (capped)."""
        profiles = self.profiles
        if len(profiles) < MAX_PROFILES:
            self.profiles = profiles | {profile}

    def note_profile_hit(self, profile: tuple) -> None:
        """Count a warm profile hit (pre-promotion only — the caller
        gates on ``promoted``).  Plain-dict read-modify-write: racy
        under threads, but the count is a compile-time heuristic and a
        lost increment cannot affect soundness."""
        hits = self.profile_hits
        hits[profile] = hits.get(profile, 0) + 1

    def dominant_profile(self) -> Optional[tuple]:
        """The hottest passing profile by pre-promotion hit counts
        (falling back to any profile when nothing was counted — e.g.
        boundary mode with every caller statically checked)."""
        profiles = self.profiles
        if not profiles:
            return None
        counts = dict(self.profile_hits)  # snapshot vs racy writers
        return max(profiles, key=lambda p: counts.get(p, 0))

    def top_profiles(self, k: int) -> Tuple[tuple, ...]:
        """The up-to-``k`` hottest passing profiles by pre-promotion hit
        counts, hottest first.  Ties break on the profile's class names,
        so two engines warmed by the same traffic pin identical guard
        chains (the warm-state snapshot round-trip depends on that)."""
        profiles = self.profiles
        if not profiles:
            return ()
        counts = dict(self.profile_hits)  # snapshot vs racy writers
        ranked = sorted(
            profiles,
            key=lambda p: (-counts.get(p, 0),
                           tuple(c.__qualname__ for c in p)))
        return tuple(ranked[:k])

    def learn_kw_layout(self, fn, args: tuple, kwargs: dict
                        ) -> Optional[tuple]:
        """Memoize how this call shape's kwargs map onto ``fn``'s
        positional parameters (after a *passing* full dynamic check, so
        a memoized layout only ever replays views the checker already
        accepted).  Unresolvable shapes memoize ``None`` — negative
        caching, so the signature walk runs once per shape.  Returns
        the shape's (possibly just-memoized) layout so the caller can
        learn the reordered view's profile without a second lookup."""
        layouts = self.kw_layouts
        shape = (len(args), tuple(kwargs))
        if shape in layouts:
            return layouts[shape]
        if len(layouts) >= MAX_KW_SHAPES:
            return None
        layout = kw_layout_for(fn, len(args), shape[1])
        layouts[shape] = layout
        return layout

    def stable_kw_layout(self) -> Optional[Tuple[int, tuple]]:
        """The single ``(positional count, declared-order kwargs names)``
        layout this site's kwargs traffic resolves to, or ``None`` when
        no shape resolved or several distinct layouts were observed
        (a compiled reorder would thrash between them)."""
        resolved = {(shape[0], names)
                    for shape, names in dict(self.kw_layouts).items()
                    if names is not None}
        if len(resolved) != 1:
            return None
        return next(iter(resolved))

    def learn_ret_profile(self, rcls: type) -> None:
        """COW-publish a passing result class (capped)."""
        ret_profiles = self.ret_profiles
        if len(ret_profiles) < MAX_PROFILES:
            self.ret_profiles = ret_profiles | {rcls}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CallPlan(owner={self.sig_owner!r}, checked={self.checked}, "
                f"profiles={len(self.profiles)})")


class BoundDefault:
    """A defaulted parameter slot a kwargs layout fills at bind time.

    A layout entry is normally a kwargs *name* (fetch ``kwargs[name]``);
    a :class:`BoundDefault` entry stands for a parameter the call shape
    skipped, carrying the declared default value so the positional view
    can be rebuilt without re-entering ``Signature.bind``.  Defaults are
    evaluated once at ``def`` time, so the carried value — and hence its
    class, which is all profiles and class-determined checks consult —
    is the same for every call of the shape.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value) -> None:
        self.name = name
        self.value = value

    def __eq__(self, other) -> bool:
        return (isinstance(other, BoundDefault) and other.name == self.name
                and other.value is self.value)

    def __hash__(self) -> int:
        return hash((self.name, id(self.value)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundDefault({self.name}={self.value!r})"


def kw_layout_for(fn, npos: int, names: tuple) -> Optional[tuple]:
    """Bind a call shape (``npos`` positional args + ``names`` keyword
    args) against ``fn``'s parameter list.

    Returns the kwargs names reordered into declared parameter order.
    When the names fill the parameter slots ``npos .. npos+len(names)-1``
    *contiguously*, the layout is plain names: then
    ``fn(recv, *args, **kwargs)`` is exactly
    ``fn(recv, *args, kwargs[n1], ..., kwargs[nk])`` and the positional
    view the dynamic checker derives via ``Signature.bind`` is exactly
    ``args + that reorder``.  Shapes that *skip* a defaulted parameter
    (``f(x, y=2, z=3)`` called as ``f(1, z=5)``) fill the gap with a
    :class:`BoundDefault` carrying the declared default — the value the
    host call binds anyway.  Shapes that name an already-filled
    positional slot, skip a parameter with no default, name a
    positional-only/keyword-only parameter, or meet ``*args`` /
    ``**kwargs`` in the signature return ``None`` — those calls keep the
    generic path.
    """
    try:
        params = list(inspect.signature(fn).parameters.values())[1:]
    except (TypeError, ValueError):
        return None
    if npos > len(params):
        return None
    plain = (inspect.Parameter.POSITIONAL_ONLY,
             inspect.Parameter.POSITIONAL_OR_KEYWORD)
    if any(p.kind not in plain for p in params):
        return None
    index = {p.name: i for i, p in enumerate(params)
             if p.kind == inspect.Parameter.POSITIONAL_OR_KEYWORD}
    try:
        placed = sorted((index[n], n) for n in names)
    except KeyError:
        return None
    positions = [i for i, _ in placed]
    if positions == list(range(npos, npos + len(names))):
        return tuple(n for _, n in placed)
    if not placed or positions[0] < npos:
        return None  # a kwarg names a slot args already filled: TypeError
    by_pos = dict(placed)
    layout = []
    for j in range(npos, positions[-1] + 1):
        name = by_pos.get(j)
        if name is not None:
            layout.append(name)
            continue
        param = params[j]
        if param.default is inspect.Parameter.empty:
            return None  # required slot skipped: the call itself raises
        layout.append(BoundDefault(param.name, param.default))
    return tuple(layout)


class CallPlanCache:
    """Per-engine map of call sites to :class:`CallPlan`, with the
    dependency edges that invalidate them.

    Thread discipline: :meth:`get` (the warm path) is a bare dict read —
    no lock.  Every mutation (store, the invalidation waves, clear)
    holds the internal lock, and each invalidation wave bumps
    :attr:`epoch`.  A slow-path plan build snapshots the epoch *before*
    resolving and passes it to :meth:`store`; if any wave ran in
    between, the store is discarded — otherwise a plan resolved against
    the pre-mutation world could be memoized *after* the wave that
    should have flushed it (the lost-invalidation race).

    :attr:`on_drop` (set by the engine) is called with the plan keys an
    invalidation wave explicitly dropped, *after* the internal lock is
    released but before the wave returns — the tier-2 deopt hook: any
    specialized wrapper compiled from a dropped plan is swapped back to
    the generic wrapper before the mutation wave completes.
    """

    def __init__(self) -> None:
        self._plans: Dict[PlanKey, CallPlan] = {}
        self._deps = DepGraph()
        self._lock = threading.Lock()
        #: bumped (under the lock) by every invalidation wave; stale
        #: epoch => a concurrent mutation => the plan must not be stored.
        self.epoch = 0
        #: (receiver, method) -> plan keys; Definition-1 removal sets are
        #: check-cache keys, so this index makes their flush O(set size).
        self._by_cache_key: Dict[CacheKey, Set[PlanKey]] = {}
        #: total plans dropped by explicit invalidation.
        self.invalidations = 0
        #: deopt listener: called (outside the lock) with each wave's
        #: dropped plan keys, and with a replaced key on store overwrite.
        self.on_drop: Optional[Callable[[Tuple[PlanKey, ...]], None]] = None

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, key: PlanKey) -> Optional[CallPlan]:
        return self._plans.get(key)

    def items(self) -> List[Tuple[PlanKey, CallPlan]]:
        """A consistent point-in-time view of every live plan (the
        warm-state snapshot walks this to serialize call sites)."""
        with self._lock:
            return list(self._plans.items())

    def store(self, key: PlanKey, plan: CallPlan,
              resources: Iterable[Resource] = (),
              epoch: Optional[int] = None) -> bool:
        """Memoize ``plan`` unless an invalidation wave ran since the
        caller snapshotted ``epoch``.  Returns whether it was stored.

        Overwriting a live plan (a checked plan whose derivation was
        removed behind the cache's back gets rebuilt here) reports the
        key through :attr:`on_drop`: a specialized wrapper compiled from
        the displaced plan must not keep serving the site while the
        generic path consults the replacement.
        """
        with self._lock:
            if epoch is not None and epoch != self.epoch:
                return False
            replaced = (key in self._plans
                        and self._plans[key] is not plan)
            self._plans[key] = plan
            self._deps.record(key, resources)
            self._by_cache_key.setdefault((key[1], key[2]), set()).add(key)
        if replaced and self.on_drop is not None:
            self.on_drop((key,))
        return True

    def add_resources(self, key: PlanKey, plan: CallPlan,
                      resources: Iterable[Resource]) -> bool:
        """Merge ``resources`` into ``key``'s dependency edges.

        The tier-3 promotion stage reads extra world facts (field types,
        callee bodies, linearizations) *after* the plan was stored; the
        elided wrapper is only sound if mutating any of them drops the
        plan, so its edges must be registered before the wrapper is
        installed.  Returns ``False`` — and records nothing — when the
        stored plan is no longer ``plan`` (a wave dropped it mid-stage);
        the caller must then abandon the promotion.
        """
        with self._lock:
            if self._plans.get(key) is not plan:
                return False
            merged = tuple(self._deps.resources_of(key)) + tuple(resources)
            self._deps.record(key, merged)
        return True

    def bump_epoch(self) -> None:
        """Mark a mutation wave that flushed nothing: in-flight plan
        builds must still discard (they may have read mid-mutation)."""
        with self._lock:
            self.epoch += 1

    def _drop(self, key: PlanKey) -> bool:
        if self._plans.pop(key, None) is None:
            return False
        self._deps.forget(key)
        bucket = self._by_cache_key.get((key[1], key[2]))
        if bucket is not None:
            bucket.discard(key)
            if not bucket:
                del self._by_cache_key[(key[1], key[2])]
        return True

    def invalidate_resources(self, resources: Iterable[Resource]) -> int:
        """Drop every plan depending on any of ``resources`` (per key)."""
        with self._lock:
            self.epoch += 1
            dropped = []
            for key in self._deps.invalidate_many(resources):
                if self._drop(key):
                    dropped.append(key)
            self.invalidations += len(dropped)
        self._notify_drop(dropped)
        return len(dropped)

    def invalidate_cache_keys(self, cache_keys: Iterable[CacheKey]) -> int:
        """Drop plans whose *(receiver, method)* check-cache key is in
        ``cache_keys`` — Definition 1's removal set, per key not per name."""
        with self._lock:
            self.epoch += 1
            stale: Set[PlanKey] = set()
            for ckey in cache_keys:
                stale |= self._by_cache_key.get(ckey, set())
            dropped = []
            for key in stale:
                if self._drop(key):
                    dropped.append(key)
            self.invalidations += len(dropped)
        self._notify_drop(dropped)
        return len(dropped)

    def clear(self) -> int:
        with self._lock:
            self.epoch += 1
            dropped = list(self._plans)
            self._plans.clear()
            self._deps.clear()
            self._by_cache_key.clear()
            self.invalidations += len(dropped)
        self._notify_drop(dropped)
        return len(dropped)

    def _notify_drop(self, keys) -> None:
        """Fire the deopt listener outside the internal lock (the
        listener rebinds class attributes; keeping it lock-free here
        rules out lock-order cycles with the specializer's own lock)."""
        if keys and self.on_drop is not None:
            self.on_drop(tuple(keys))
