"""``repro.concurrency`` — the multi-threaded request workload layer.

The ROADMAP north star is a production-scale system serving heavy
traffic, which means many request threads hitting the same engine — the
same call plans, check cache, and subtype memo — concurrently.  The
engine's locking discipline (lock-free warm reads, one writer lock,
epoch-guarded memo stores; see ``docs/performance.md`` "Concurrency")
makes that safe; this package makes it *drivable and measurable*:

* :class:`~repro.concurrency.driver.ConcurrentDriver` — replays a
  request mix through an app from N worker threads, optionally with a
  dev-mode churn thread retyping/redefining methods mid-flight, and
  reports aggregate throughput, per-request outcomes, and warm-path
  hit rates;
* :class:`~repro.concurrency.driver.MultiProcessDriver` — the pre-fork
  serving mode: forks N workers that inherit the parent's (optionally
  snapshot-warmed) engine copy-on-write, run disjoint slices of the
  same schedule, and ship outcomes/latency samples/stats deltas back
  over a queue for exact aggregate percentiles and per-worker oracle
  comparison;
* :mod:`~repro.concurrency.workload` — the pubs/cct/talks request
  mixes (read-only, so concurrent outcomes are deterministic and
  comparable against a single-threaded oracle) and reload-churn
  recipes.

``benchmarks/bench_concurrency.py`` builds the committed
``BENCH_concurrency.json`` baseline on top of these, and
``tests/core/test_thread_safety.py`` uses the same driver for the
threaded differential-soundness harness.
"""

from .driver import (
    ConcurrentDriver, DriverRun, MultiProcessDriver, MultiProcessRun,
    WorkerReport, fork_available, normalize_outcome,
)
from .supervise import SupervisedDriver, SupervisedRun
from .workload import (
    build_concurrent_world, churn_recipe, request_thunks,
)

__all__ = [
    "ConcurrentDriver",
    "DriverRun",
    "MultiProcessDriver",
    "MultiProcessRun",
    "SupervisedDriver",
    "SupervisedRun",
    "WorkerReport",
    "fork_available",
    "normalize_outcome",
    "build_concurrent_world",
    "churn_recipe",
    "request_thunks",
]
