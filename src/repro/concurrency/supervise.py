"""Supervised multi-process serving: crash detection, warm respawn,
and exact work accounting.

:class:`~repro.concurrency.driver.MultiProcessDriver` is the pre-fork
measurement harness — a worker crash simply voids the run.  This module
is the fault-*tolerant* sibling the ROADMAP's production framing calls
for: a parent supervisor that watches forked workers, detects crashes
and hangs, respawns replacements forked from the parent's still-warm
engine (plans, check cache, promoted wrappers — the same copy-on-write
inheritance a snapshot-warmed deploy gets), reassigns the unfinished
remainder of the dead worker's schedule slice, and gives up only after
a bounded retry budget with exponential backoff.

**Protocol.**  Each worker streams one queue message per completed
request — ``("req", slot, attempt, sched_idx, outcome, dt)`` — and a
terminal ``("done", slot, attempt, stats_delta)``.  The per-request
messages double as heartbeats: a live worker is never silent for longer
than one request, so the supervisor needs no side channel to detect a
hang.  A worker that dies mid-request (``os._exit``, OOM-kill, a
poisoned deserializer) just stops talking; the supervisor notices the
dead process, drains whatever made it through the pipe, and computes
the remainder.

**Delivery is at-most-once, and that is sufficient.**  A killed worker
can lose queue messages still buffered in its feeder thread, so the
supervisor may respawn work that actually completed — the replay
re-executes it.  Conversely a message can arrive *after* its worker was
declared dead and its slice reassigned, so the same schedule index can
be reported twice.  Outcomes are deduplicated by schedule index (first
report wins), which is sound because request recipes are deterministic
over disjoint resources: any two executions of the same schedule index
produce the same outcome, and the differential harness asserts exactly
that by replaying every *accepted* outcome against the cache-free
oracle.  If two reports for one index ever disagree, the run records a
crash — that would be a soundness bug, not a delivery artifact.

**Accounting invariant.**  Every scheduled request ends in exactly one
of three buckets::

    scheduled == completed_first + completed_retried + abandoned

``completed_first`` are outcomes accepted from attempt 0,
``completed_retried`` from respawned attempts (these increment the
engine's ``requests_replayed`` counter), and ``abandoned`` is the
remainder left when a slice keeps dying past ``max_retries``.  A
healthy run has ``abandoned == 0`` and the run reports 100% of the
schedule, oracle-identically, even with kill faults injected.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Callable, Counter as CounterType, Dict, List, Optional, Sequence, Set, Tuple
from collections import Counter

from .driver import (
    JOIN_TIMEOUT_S, STATS_DELTA_FIELDS, MultiProcessDriver,
    normalize_outcome,
)

#: how often the supervisor wakes to check for dead/hung workers when
#: no messages are arriving.
_POLL_INTERVAL_S = 0.05


@dataclass
class _WorkerState:
    """Supervisor-side bookkeeping for one worker slot's current
    attempt."""

    slot: int
    attempt: int
    #: schedule indices assigned to this attempt (first attempt: the
    #: full slice; retries: the unfinished remainder).
    indices: List[int]
    process: object
    #: schedule indices this slot has reported (any attempt) — what the
    #: next remainder is computed against.
    received: Set[int] = field(default_factory=set)
    #: last time a message from this slot arrived (heartbeat).
    last_seen: float = 0.0
    finished: bool = False


@dataclass
class SupervisedRun:
    """One supervised execution: accepted outcomes + exact accounting."""

    workers: int
    requests: int
    elapsed_s: float = 0.0
    #: outcomes accepted from first attempts (attempt 0).
    completed_first: int = 0
    #: outcomes accepted from respawned attempts (attempt >= 1) — the
    #: requests that only completed because supervision replayed them.
    completed_retried: int = 0
    #: scheduled requests still unfinished when their slice exhausted
    #: the retry budget (or the run deadline fired).
    abandoned: int = 0
    #: worker respawns performed (mirrors ``stats.workers_restarted``).
    restarts: int = 0
    #: schedule index -> (slot, attempt, outcome tuple), deduplicated
    #: first-report-wins.
    outcomes: Dict[int, Tuple[int, int, tuple]] = field(default_factory=dict)
    #: thunk-only latencies of accepted first-attempt outcomes.
    first_samples: List[float] = field(default_factory=list)
    #: thunk-only latencies of accepted replayed outcomes — kept apart
    #: so recovery cost shows up in its own percentile column instead
    #: of silently fattening the steady-state tail.
    replay_samples: List[float] = field(default_factory=list)
    #: STATS_DELTA_FIELDS summed over every attempt that sent "done".
    stats_delta: Dict[str, int] = field(default_factory=dict)
    #: human-readable supervision events (deaths, hangs, respawns,
    #: budget exhaustion) in order.
    restart_log: List[str] = field(default_factory=list)
    abandoned_indices: List[int] = field(default_factory=list)
    #: protocol violations and diagnoses that void the run's guarantees
    #: (garbled messages, outcome-dedup disagreement, deadline hit).
    crashes: List[str] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return self.completed_first + self.completed_retried

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s else 0.0

    def accounting_ok(self) -> bool:
        """The invariant: every scheduled request is in exactly one
        bucket."""
        return (self.requests
                == self.completed_first + self.completed_retried
                + self.abandoned)

    def outcome_multiset(self) -> CounterType:
        return Counter(outcome for _, _, outcome in self.outcomes.values())


class SupervisedDriver(MultiProcessDriver):
    """A :class:`MultiProcessDriver` wrapped in a supervision loop.

    The schedule split, fork inheritance, and per-worker stats probes
    are inherited unchanged; what changes is the child protocol (one
    streamed message per request instead of one payload at the end) and
    the parent loop (an event loop that heartbeats workers and respawns
    the dead instead of a drain-then-join).

    ``max_retries`` bounds respawns *per slot* (attempt numbers run
    0..max_retries); ``backoff_base_s`` doubles per attempt up to
    ``backoff_cap_s``; ``hang_timeout_s`` is how long a worker may go
    silent before it is declared hung, terminated, and replayed.
    """

    def __init__(self, thunks: Sequence[Callable[[], object]], *,
                 workers: int = 4, requests: int = 400,
                 io_wait_s: float = 0.0, engine=None,
                 faults=None,
                 max_retries: int = 2,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 1.0,
                 hang_timeout_s: float = 5.0) -> None:
        super().__init__(thunks, workers=workers, requests=requests,
                         io_wait_s=io_wait_s, engine=engine,
                         faults=faults)
        self.max_retries = max(0, max_retries)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.hang_timeout_s = hang_timeout_s

    # -- child ---------------------------------------------------------------

    def _supervised_child(self, slot: int, attempt: int,
                          indices: List[int], result_queue) -> None:
        thunks = self.thunks
        n = len(thunks)
        faults = self.faults
        clock = time.perf_counter
        io_wait = self.io_wait_s
        try:
            before = self._stats_probe()
            for ordinal, sched_idx in enumerate(indices):
                if faults is not None:
                    # KILL faults os._exit here: no cleanup, no queue
                    # flush — buffered messages are lost, exactly the
                    # at-most-once delivery the supervisor assumes.
                    faults.on_request(slot, attempt, ordinal,
                                      in_process=True)
                started = clock()
                outcome = normalize_outcome(thunks[sched_idx % n])
                dt = clock() - started
                result_queue.put(
                    ("req", slot, attempt, sched_idx, outcome, dt))
                if io_wait:
                    time.sleep(io_wait)
            after = self._stats_probe()
            delta = {name: after[name] - before[name] for name in before}
            result_queue.put(("done", slot, attempt, delta))
        except BaseException:  # noqa: BLE001 - infra failure, not outcome
            # An injected ERROR (or any infrastructure exception) kills
            # this attempt; tell the supervisor rather than making it
            # wait out the hang timeout.  Never an outcome: the request
            # it pre-empted completes on replay.
            import traceback as tb
            try:
                result_queue.put(
                    ("crash", slot, attempt, tb.format_exc()))
            except Exception:  # pragma: no cover - queue already broken
                pass

    # -- parent --------------------------------------------------------------

    def _spawn(self, ctx, result_queue, slot: int, attempt: int,
               indices: List[int], received: Set[int]) -> _WorkerState:
        process = ctx.Process(
            target=self._supervised_child,
            args=(slot, attempt, indices, result_queue), daemon=True)
        process.start()
        return _WorkerState(slot=slot, attempt=attempt, indices=indices,
                            process=process, received=received,
                            last_seen=time.perf_counter())

    def _bump_engine(self, name: str, amount: int = 1) -> None:
        if self.engine is not None and amount:
            stats = self.engine.stats
            setattr(stats, name, getattr(stats, name) + amount)

    def run(self) -> SupervisedRun:
        ctx = multiprocessing.get_context("fork")
        result_queue = ctx.Queue()
        run = SupervisedRun(self.workers, self.requests)
        run.stats_delta = {name: 0 for name in STATS_DELTA_FIELDS}
        states: Dict[int, _WorkerState] = {}
        for slot in range(self.workers):
            states[slot] = self._spawn(ctx, result_queue, slot, 0,
                                       self.schedule_indices(slot), set())
        started = time.perf_counter()
        deadline = started + JOIN_TIMEOUT_S

        def active() -> List[_WorkerState]:
            return [s for s in states.values() if not s.finished]

        def accept(slot: int, attempt: int, sched_idx: int,
                   outcome: tuple, dt: float) -> None:
            state = states[slot]
            state.received.add(sched_idx)
            state.last_seen = time.perf_counter()
            prior = run.outcomes.get(sched_idx)
            if prior is not None:
                # Duplicate delivery (late message after reassignment,
                # or a replay of work whose report was lost).  Sound
                # only because outcomes are deterministic — verify.
                if prior[2] != outcome:
                    run.crashes.append(
                        f"outcome disagreement at schedule index "
                        f"{sched_idx}: {prior[2]!r} vs {outcome!r}")
                return
            run.outcomes[sched_idx] = (slot, attempt, outcome)
            if attempt == 0:
                run.completed_first += 1
                run.first_samples.append(dt)
            else:
                run.completed_retried += 1
                run.replay_samples.append(dt)

        def drain_once(timeout: Optional[float]) -> bool:
            """Process one queue message; False when none arrived."""
            try:
                if timeout is None:
                    message = result_queue.get_nowait()
                else:
                    message = result_queue.get(timeout=timeout)
            except queue_module.Empty:
                return False
            except Exception as exc:  # noqa: BLE001 - truncated pickle
                # A worker killed mid-put can leave a torn message in
                # the pipe; the request it reported will be replayed.
                run.crashes.append(f"garbled queue message: {exc!r}")
                return True
            kind = message[0]
            if kind == "req":
                _, slot, attempt, sched_idx, outcome, dt = message
                accept(slot, attempt, sched_idx, outcome, dt)
            elif kind == "done":
                _, slot, attempt, delta = message
                state = states[slot]
                state.last_seen = time.perf_counter()
                for name, value in delta.items():
                    run.stats_delta[name] = (
                        run.stats_delta.get(name, 0) + value)
                if attempt == state.attempt:
                    state.finished = True
            elif kind == "crash":
                _, slot, attempt, text = message
                state = states[slot]
                state.last_seen = time.perf_counter()
                if attempt == state.attempt and not state.finished:
                    run.restart_log.append(
                        f"slot {slot} attempt {attempt} crashed: "
                        f"{text.strip().splitlines()[-1]}")
                    handle_failure(state, reason="crashed")
            return True

        def handle_failure(state: _WorkerState, *, reason: str) -> None:
            # Retire this attempt immediately: the drain below can
            # surface a "crash" message for this very slot, and the
            # finished flag is what stops it re-entering us.
            state.finished = True
            process = state.process
            if process.is_alive():
                process.terminate()
            process.join(5.0)
            # Late messages may still be sitting in the pipe; fold them
            # in before computing the remainder so replays are minimal.
            while drain_once(None):
                pass
            remainder = [idx for idx in state.indices
                         if idx not in run.outcomes]
            if not remainder:
                return
            if state.attempt >= self.max_retries:
                run.restart_log.append(
                    f"slot {state.slot} {reason} on attempt "
                    f"{state.attempt}; retry budget exhausted, "
                    f"abandoning {len(remainder)} request(s)")
                run.abandoned += len(remainder)
                run.abandoned_indices.extend(remainder)
                return
            backoff = min(self.backoff_cap_s,
                          self.backoff_base_s * (2 ** state.attempt))
            run.restart_log.append(
                f"slot {state.slot} {reason} on attempt {state.attempt} "
                f"(exit code {process.exitcode}); respawning "
                f"{len(remainder)} request(s) after {backoff:.3f}s")
            if backoff:
                time.sleep(backoff)
            run.restarts += 1
            self._bump_engine("workers_restarted")
            # Forked from the parent's still-warm engine: the respawn
            # starts with every plan/cache/wrapper the parent has.
            states[state.slot] = self._spawn(
                ctx, result_queue, state.slot, state.attempt + 1,
                remainder, state.received)

        while active():
            now = time.perf_counter()
            if now > deadline:
                for state in active():
                    if state.process.is_alive():
                        state.process.terminate()
                        state.process.join(5.0)
                    remainder = [idx for idx in state.indices
                                 if idx not in run.outcomes]
                    run.abandoned += len(remainder)
                    run.abandoned_indices.extend(remainder)
                    state.finished = True
                run.crashes.append(
                    f"supervision deadline ({JOIN_TIMEOUT_S}s) hit")
                break
            if drain_once(_POLL_INTERVAL_S):
                continue
            for state in active():
                if not state.process.is_alive():
                    handle_failure(state, reason="died")
                elif (time.perf_counter() - state.last_seen
                        > self.hang_timeout_s):
                    run.restart_log.append(
                        f"slot {state.slot} attempt {state.attempt} "
                        f"silent for {self.hang_timeout_s}s; declaring "
                        f"hung")
                    handle_failure(state, reason="hung")
        # Stragglers that arrived after their slice finished.
        while drain_once(None):
            pass
        run.elapsed_s = time.perf_counter() - started
        for state in states.values():
            state.process.join(1.0)
        self._bump_engine("requests_replayed", run.completed_retried)
        return run
