"""The multi-threaded request driver.

Models the production shape the ROADMAP aims at: N worker threads pull
requests from a shared schedule and push them through one engine, while
optional *churn* (mutator) threads — one per recipe — perform dev-mode
reload mutations (retype/redefine/reload/typegen) mid-flight.  Workers never take the engine's writer
lock — a request's warm path is lock-free — so aggregate throughput
should scale with threads whenever per-request I/O (database, network,
template writes) dominates, which is exactly the Rails profile the
paper measures.

``io_wait_s`` simulates that per-request I/O with a sleep, which
releases the GIL: it is the stand-in for the time a real request spends
off-CPU.  With it at zero the driver measures pure interpreter
throughput (GIL-bound by construction — useful for overhead and
soundness runs, meaningless for scaling).

Outcomes are recorded per request with :func:`normalize_outcome` — the
same ``("ok", repr) | ("err", type, str)`` shape the differential
cache-soundness harness uses — so a concurrent run can be compared
against a single-threaded oracle replay of the same schedule.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
import traceback
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

Churn = Callable[[int], object]

#: a worker either completed every scheduled request or died; joins use
#: a generous timeout so a deadlock fails the run instead of hanging it.
JOIN_TIMEOUT_S = 120.0


def normalize_outcome(thunk: Callable[[], object]) -> tuple:
    """Run ``thunk``; normalize result-or-error exactly like the
    differential harness (the *error identity* is part of the outcome)."""
    try:
        return ("ok", repr(thunk()))
    except Exception as exc:  # noqa: BLE001 - identity is the point
        return ("err", type(exc).__name__, str(exc))


@dataclass
class DriverRun:
    """One driver execution: timings, outcomes, and error census."""

    threads: int
    requests: int
    elapsed_s: float
    #: requests that actually completed (== ``requests`` unless a worker
    #: crashed); throughput is computed from this, never the schedule.
    completed: int = 0
    #: flat list of (thread index, schedule index, outcome tuple).
    outcomes: List[Tuple[int, int, tuple]] = field(default_factory=list)
    #: how many mutations the churn (mutator) threads applied, summed
    #: across all of them.
    churn_applied: int = 0
    #: exceptions that escaped a *worker loop* (not a request — request
    #: errors are outcomes); always a bug when non-empty.
    crashes: List[str] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def error_outcomes(self) -> List[Tuple[int, int, tuple]]:
        return [o for o in self.outcomes if o[2][0] == "err"]

    def outcome_multiset(self) -> Counter:
        """Outcome tuple -> count, ignoring thread/schedule position —
        the comparable view when requests interleave nondeterministically."""
        return Counter(outcome for _, _, outcome in self.outcomes)


class ConcurrentDriver:
    """Replay ``thunks`` (zero-arg request callables) from worker threads.

    The schedule is round-robin over the thunk list, ``requests`` total,
    dealt to ``threads`` workers; each worker starts at a different
    offset so concurrent traffic mixes request kinds (two threads are
    rarely in the same controller action at once, like real traffic).
    """

    def __init__(self, thunks: Sequence[Callable[[], object]], *,
                 threads: int = 8, requests: int = 400,
                 io_wait_s: float = 0.0,
                 churn: Union[Churn, Sequence[Churn], None] = None,
                 churn_interval_s: float = 0.01,
                 record_outcomes: bool = True,
                 faults=None) -> None:
        if not thunks:
            raise ValueError("need at least one request thunk")
        self.thunks = list(thunks)
        self.threads = threads
        self.requests = requests
        self.io_wait_s = io_wait_s
        #: optional :class:`repro.faults.FaultPlan`; None (production)
        #: keeps every loop on the exact pre-existing code path.  In
        #: threads, a KILL degrades to a raised worker-loop crash (the
        #: process must survive); HANG sleeps; CHURN_DIE kills the
        #: scripted mutator thread mid-wave-sequence.
        self.faults = faults
        # ``churn`` is one mutation recipe or a list of them; each gets a
        # dedicated mutator thread (the serving harness runs dev-mode
        # reloads, schema retypes, and signature churn side by side).
        if churn is None:
            self.churns: List[Churn] = []
        elif callable(churn):
            self.churns = [churn]
        else:
            self.churns = list(churn)
        self.churn = self.churns[0] if self.churns else None
        self.churn_interval_s = churn_interval_s
        self.record_outcomes = record_outcomes

    def schedule_for(self, worker: int) -> List[Tuple[int, Callable]]:
        """Worker ``worker``'s (schedule index, thunk) list."""
        per = self.requests // self.threads
        extra = self.requests % self.threads
        count = per + (1 if worker < extra else 0)
        start = worker * per + min(worker, extra)
        thunks = self.thunks
        n = len(thunks)
        return [(start + i, thunks[(start + i) % n]) for i in range(count)]

    def run(self) -> DriverRun:
        result = DriverRun(self.threads, self.requests, 0.0)
        outcomes_lock = threading.Lock()
        start_barrier = threading.Barrier(self.threads + 1)
        stop_churn = threading.Event()
        io_wait = self.io_wait_s

        faults = self.faults

        def worker(idx: int) -> None:
            mine: List[Tuple[int, int, tuple]] = []
            done = 0
            try:
                schedule = self.schedule_for(idx)
                start_barrier.wait(timeout=JOIN_TIMEOUT_S)
                for ordinal, (sched_idx, thunk) in enumerate(schedule):
                    if faults is not None:
                        # Fires *before* the request: an injected fault
                        # crashes this worker loop (never becomes an
                        # outcome), so completed counts stay honest.
                        faults.on_request(idx, 0, ordinal,
                                          in_process=False)
                    outcome = normalize_outcome(thunk)
                    done += 1
                    if io_wait:
                        time.sleep(io_wait)
                    if self.record_outcomes:
                        mine.append((idx, sched_idx, outcome))
            except Exception as exc:  # noqa: BLE001 - driver-level crash
                result.crashes.append(f"worker {idx}: {exc!r}")
            finally:
                with outcomes_lock:
                    result.completed += done
                    if mine:
                        result.outcomes.extend(mine)

        def churner(churn_idx: int, fn: Churn) -> None:
            step = 0
            try:
                while not stop_churn.is_set():
                    if faults is not None:
                        # Mutator death mid-wave-sequence: requests keep
                        # serving; the engine's writer lock made each
                        # individual wave atomic, so this must be safe.
                        faults.on_churn_step(churn_idx, step)
                    fn(step)
                    step += 1
                    with outcomes_lock:
                        result.churn_applied += 1
                    if stop_churn.wait(self.churn_interval_s):
                        break
            except Exception as exc:  # noqa: BLE001 - driver-level crash
                result.crashes.append(f"churn step {step}: {exc!r}")

        workers = [threading.Thread(target=worker, args=(i,), daemon=True)
                   for i in range(self.threads)]
        churn_threads = [threading.Thread(target=churner, args=(ci, fn),
                                          daemon=True)
                         for ci, fn in enumerate(self.churns)]
        for t in workers:
            t.start()
        for t in churn_threads:
            t.start()
        start_barrier.wait(timeout=JOIN_TIMEOUT_S)
        started = time.perf_counter()
        # One shared deadline across all joins, so a multi-worker
        # deadlock is reported after JOIN_TIMEOUT_S total — not
        # threads * JOIN_TIMEOUT_S, which would outlive CI's
        # faulthandler timeout and lose this curated diagnostic.
        deadline = started + JOIN_TIMEOUT_S
        for t in workers:
            t.join(timeout=max(0.0, deadline - time.perf_counter()))
        result.elapsed_s = time.perf_counter() - started
        stop_churn.set()
        for t in churn_threads:
            t.join(timeout=max(1.0, deadline - time.perf_counter()))
        hung = [i for i, t in enumerate(workers) if t.is_alive()]
        churn_hung = [i for i, t in enumerate(churn_threads)
                      if t.is_alive()]
        if hung or churn_hung:
            raise RuntimeError(
                f"driver deadlock: workers {hung} (churn threads alive: "
                f"{churn_hung}) did not finish within {JOIN_TIMEOUT_S}s")
        result.outcomes.sort(key=lambda o: o[1])
        return result

    def run_single_threaded_oracle(self) -> DriverRun:
        """The comparison baseline: the same total schedule, one thread,
        no churn — deterministic outcomes for multiset comparison."""
        single = ConcurrentDriver(
            self.thunks, threads=1, requests=self.requests,
            io_wait_s=0.0, churn=None,
            record_outcomes=self.record_outcomes)
        return single.run()


# -- pre-fork multi-process serving ------------------------------------------


def fork_available() -> bool:
    """Whether this platform can pre-fork workers.  The multi-process
    mode requires the ``fork`` start method: request thunks close over
    live app objects and are deliberately unpicklable, so workers must
    inherit the warm world copy-on-write."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


#: engine counters whose per-worker delta the parent aggregates — the
#: tier-transition story of each worker's run (how much cold start it
#: actually paid), shipped back over the result queue.
STATS_DELTA_FIELDS = (
    "static_checks", "cache_hits", "cache_misses", "promotions",
    "repromotions", "deopts", "elide_promotions", "plan_invalidations",
)


@dataclass
class WorkerReport:
    """One forked worker's shipped-back results."""

    worker: int
    completed: int = 0
    #: wall-clock of the worker's whole request loop.
    elapsed_s: float = 0.0
    #: wall-clock from loop start until the first full pass over the
    #: thunk list completed — the cold-start window where this worker
    #: pays static checks, profiling, and promotions (near zero when
    #: warm-started from a snapshot).
    first_pass_s: float = 0.0
    #: (worker index, schedule index, outcome tuple), as in DriverRun.
    outcomes: List[Tuple[int, int, tuple]] = field(default_factory=list)
    #: the worker's latency reservoir, shipped raw so the parent can
    #: merge across workers for exact aggregate percentiles.
    samples: List[float] = field(default_factory=list)
    #: how many latencies were recorded (== len(samples) unless the
    #: reservoir overflowed into sampling).
    sample_count: int = 0
    #: per-worker deltas of STATS_DELTA_FIELDS across the run.
    stats_delta: Dict[str, int] = field(default_factory=dict)

    def outcome_multiset(self) -> Counter:
        return Counter(outcome for _, _, outcome in self.outcomes)


@dataclass
class MultiProcessRun:
    """One multi-process execution: per-worker reports + aggregates."""

    workers: int
    requests: int
    elapsed_s: float
    completed: int = 0
    #: scheduled requests that never completed — the slices of crashed
    #: or silent workers, computed from the schedule split (not derived
    #: as ``requests - completed``, so ``completed + lost == requests``
    #: is a real accounting check rather than a tautology).
    lost: int = 0
    reports: List[WorkerReport] = field(default_factory=list)
    #: worker tracebacks and lost-worker diagnoses; a crash means the
    #: run proves nothing — always assert this is empty.
    crashes: List[str] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def error_outcomes(self) -> List[Tuple[int, int, tuple]]:
        return [o for r in self.reports for o in r.outcomes
                if o[2][0] == "err"]

    @property
    def first_pass_s(self) -> float:
        """Time-to-steady-state for the run: the *slowest* worker's
        first full pass (the deploy is warm when the last worker is)."""
        return max((r.first_pass_s for r in self.reports), default=0.0)

    def outcome_multiset(self) -> Counter:
        merged: Counter = Counter()
        for report in self.reports:
            merged.update(report.outcome_multiset())
        return merged

    def merged_samples(self) -> Tuple[List[float], int]:
        """(all workers' latency samples, total recorded count) — exact
        aggregate percentiles whenever no per-worker reservoir
        overflowed (count == len(samples))."""
        samples: List[float] = []
        count = 0
        for report in self.reports:
            samples.extend(report.samples)
            count += report.sample_count
        return samples, count

    def stats_total(self) -> Dict[str, int]:
        """STATS_DELTA_FIELDS summed across workers."""
        total = {name: 0 for name in STATS_DELTA_FIELDS}
        for report in self.reports:
            for name, value in report.stats_delta.items():
                total[name] = total.get(name, 0) + value
        return total


class MultiProcessDriver:
    """Replay the round-robin schedule from ``workers`` forked processes.

    The pre-fork serving shape: the parent builds (and optionally
    snapshot-warms) the world, then forks; each worker inherits the
    whole warm engine copy-on-write — plans, check cache, promoted
    wrappers and all — runs its slice of the schedule against its own
    engine copy, and ships outcomes, latency samples, and stats deltas
    back over a queue.  Nothing is shared after the fork, so there is
    no cross-process locking to validate — what this mode buys is
    N cores instead of one, and what the snapshot buys is each worker
    skipping the cold-start window.

    The schedule split is identical to :class:`ConcurrentDriver`'s
    (same formula over ``workers``), so a worker's outcome multiset can
    be replayed index-by-index against a cache-free oracle world.
    """

    def __init__(self, thunks: Sequence[Callable[[], object]], *,
                 workers: int = 4, requests: int = 400,
                 io_wait_s: float = 0.0, engine=None,
                 reservoir_capacity: int = 16384,
                 first_pass: Optional[int] = None,
                 faults=None) -> None:
        if not thunks:
            raise ValueError("need at least one request thunk")
        if not fork_available():
            raise RuntimeError(
                "multi-process driver requires the 'fork' start method")
        self.thunks = list(thunks)
        self.workers = workers
        self.requests = requests
        self.io_wait_s = io_wait_s
        #: optional :class:`repro.faults.FaultPlan`; in forked workers a
        #: KILL fault calls ``os._exit`` — no cleanup, no queue flush —
        #: so the parent sees a silent worker with a nonzero exit code.
        self.faults = faults
        #: the engine the thunks run against, for per-worker stats
        #: deltas (optional: without it deltas are empty).
        self.engine = engine
        self.reservoir_capacity = reservoir_capacity
        #: requests counted as the worker's first pass (default: one
        #: full trip around the thunk list).
        self.first_pass = (first_pass if first_pass is not None
                           else len(self.thunks))

    def schedule_for(self, worker: int) -> List[Tuple[int, Callable]]:
        """Worker ``worker``'s (schedule index, thunk) list — the same
        deal as the threaded driver, over processes."""
        per = self.requests // self.workers
        extra = self.requests % self.workers
        count = per + (1 if worker < extra else 0)
        start = worker * per + min(worker, extra)
        thunks = self.thunks
        n = len(thunks)
        return [(start + i, thunks[(start + i) % n]) for i in range(count)]

    def schedule_indices(self, worker: int) -> List[int]:
        """Just the schedule indices — what an oracle replay maps back
        onto its own thunk list (``index % len(thunks)``)."""
        return [sched_idx for sched_idx, _ in self.schedule_for(worker)]

    def _stats_probe(self) -> Dict[str, int]:
        if self.engine is None:
            return {}
        snap = self.engine.stats_snapshot()
        return {name: int(snap.get(name, 0))
                for name in STATS_DELTA_FIELDS}

    def _child_main(self, idx: int, barrier, result_queue) -> None:
        # Imported lazily: repro.serving imports this module back.
        from ..serving.latency import Reservoir
        payload: Dict[str, object] = {"worker": idx, "error": None}
        try:
            schedule = self.schedule_for(idx)
            reservoir = Reservoir(self.reservoir_capacity, seed=idx + 1)
            before = self._stats_probe()
            io_wait = self.io_wait_s
            first_pass = min(self.first_pass, len(schedule))
            outcomes: List[Tuple[int, int, tuple]] = []
            clock = time.perf_counter
            barrier.wait(JOIN_TIMEOUT_S)
            loop_start = clock()
            first_pass_s = 0.0
            faults = self.faults
            for done, (sched_idx, thunk) in enumerate(schedule, start=1):
                if faults is not None:
                    faults.on_request(idx, 0, done - 1, in_process=True)
                started = clock()
                outcome = normalize_outcome(thunk)
                # thunk-only latency: the simulated I/O sleep below
                # models off-CPU time, same as LatencyRecorder.timed.
                reservoir.record(clock() - started)
                if done == first_pass:
                    first_pass_s = clock() - loop_start
                outcomes.append((idx, sched_idx, outcome))
                if io_wait:
                    time.sleep(io_wait)
            elapsed = clock() - loop_start
            after = self._stats_probe()
            payload.update(
                completed=len(outcomes), elapsed_s=elapsed,
                first_pass_s=first_pass_s, outcomes=outcomes,
                samples=reservoir.samples(),
                sample_count=reservoir.count,
                stats_delta={name: after[name] - before[name]
                             for name in before})
        except Exception:  # noqa: BLE001 - ship the whole traceback
            payload["error"] = traceback.format_exc()
        result_queue.put(payload)

    def run(self) -> MultiProcessRun:
        ctx = multiprocessing.get_context("fork")
        result_queue = ctx.Queue()
        # workers + the parent: timing starts when every forked child
        # is imported, scheduled, and standing at the line.
        barrier = ctx.Barrier(self.workers + 1)
        processes = [
            ctx.Process(target=self._child_main,
                        args=(idx, barrier, result_queue), daemon=True)
            for idx in range(self.workers)]
        for process in processes:
            process.start()
        barrier.wait(JOIN_TIMEOUT_S)
        started = time.perf_counter()
        deadline = started + JOIN_TIMEOUT_S
        run = MultiProcessRun(self.workers, self.requests, 0.0)
        # Drain results BEFORE joining: a child flushing a large result
        # through the queue's pipe cannot exit until the parent reads
        # it — join-first would deadlock.
        pending = self.workers
        reported: set = set()
        graced = False
        while pending:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                payload = result_queue.get(timeout=min(0.25, remaining))
            except queue_module.Empty:
                # A dead child can never report; waiting out the full
                # deadline for one would stall a crashed run for
                # minutes.  One extra grace poll covers a payload still
                # in flight through the queue's feeder pipe.
                dead = sum(1 for idx in range(self.workers)
                           if idx not in reported
                           and not processes[idx].is_alive())
                if dead == pending:
                    if graced:
                        break
                    graced = True
                continue
            graced = False
            reported.add(payload["worker"])
            pending -= 1
            if payload.get("error"):
                run.crashes.append(
                    f"worker {payload['worker']}: {payload['error']}")
                continue
            run.reports.append(WorkerReport(
                worker=payload["worker"],
                completed=payload["completed"],
                elapsed_s=payload["elapsed_s"],
                first_pass_s=payload["first_pass_s"],
                outcomes=payload["outcomes"],
                samples=payload["samples"],
                sample_count=payload["sample_count"],
                stats_delta=payload["stats_delta"]))
            run.completed += payload["completed"]
        run.elapsed_s = time.perf_counter() - started
        if pending:
            missing = sorted(set(range(self.workers)) - reported)
            run.crashes.append(
                f"{pending} worker(s) sent no report "
                f"(workers {missing})")
        for process in processes:
            process.join(timeout=max(0.1, deadline - time.perf_counter()))
        for idx, process in enumerate(processes):
            if process.is_alive():
                process.terminate()
                process.join(5.0)
                run.crashes.append(f"worker {idx}: terminated (hung)")
            elif process.exitcode not in (0, None) and not any(
                    f"worker {idx}:" in crash for crash in run.crashes):
                run.crashes.append(
                    f"worker {idx}: exit code {process.exitcode}")
        run.reports.sort(key=lambda report: report.worker)
        reported = {report.worker: report.completed
                    for report in run.reports}
        run.lost = sum(len(self.schedule_for(idx)) - reported.get(idx, 0)
                       for idx in range(self.workers))
        return run
