"""The multi-threaded request driver.

Models the production shape the ROADMAP aims at: N worker threads pull
requests from a shared schedule and push them through one engine, while
optional *churn* (mutator) threads — one per recipe — perform dev-mode
reload mutations (retype/redefine/reload/typegen) mid-flight.  Workers never take the engine's writer
lock — a request's warm path is lock-free — so aggregate throughput
should scale with threads whenever per-request I/O (database, network,
template writes) dominates, which is exactly the Rails profile the
paper measures.

``io_wait_s`` simulates that per-request I/O with a sleep, which
releases the GIL: it is the stand-in for the time a real request spends
off-CPU.  With it at zero the driver measures pure interpreter
throughput (GIL-bound by construction — useful for overhead and
soundness runs, meaningless for scaling).

Outcomes are recorded per request with :func:`normalize_outcome` — the
same ``("ok", repr) | ("err", type, str)`` shape the differential
cache-soundness harness uses — so a concurrent run can be compared
against a single-threaded oracle replay of the same schedule.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple, Union

Churn = Callable[[int], object]

#: a worker either completed every scheduled request or died; joins use
#: a generous timeout so a deadlock fails the run instead of hanging it.
JOIN_TIMEOUT_S = 120.0


def normalize_outcome(thunk: Callable[[], object]) -> tuple:
    """Run ``thunk``; normalize result-or-error exactly like the
    differential harness (the *error identity* is part of the outcome)."""
    try:
        return ("ok", repr(thunk()))
    except Exception as exc:  # noqa: BLE001 - identity is the point
        return ("err", type(exc).__name__, str(exc))


@dataclass
class DriverRun:
    """One driver execution: timings, outcomes, and error census."""

    threads: int
    requests: int
    elapsed_s: float
    #: requests that actually completed (== ``requests`` unless a worker
    #: crashed); throughput is computed from this, never the schedule.
    completed: int = 0
    #: flat list of (thread index, schedule index, outcome tuple).
    outcomes: List[Tuple[int, int, tuple]] = field(default_factory=list)
    #: how many mutations the churn (mutator) threads applied, summed
    #: across all of them.
    churn_applied: int = 0
    #: exceptions that escaped a *worker loop* (not a request — request
    #: errors are outcomes); always a bug when non-empty.
    crashes: List[str] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def error_outcomes(self) -> List[Tuple[int, int, tuple]]:
        return [o for o in self.outcomes if o[2][0] == "err"]

    def outcome_multiset(self) -> Counter:
        """Outcome tuple -> count, ignoring thread/schedule position —
        the comparable view when requests interleave nondeterministically."""
        return Counter(outcome for _, _, outcome in self.outcomes)


class ConcurrentDriver:
    """Replay ``thunks`` (zero-arg request callables) from worker threads.

    The schedule is round-robin over the thunk list, ``requests`` total,
    dealt to ``threads`` workers; each worker starts at a different
    offset so concurrent traffic mixes request kinds (two threads are
    rarely in the same controller action at once, like real traffic).
    """

    def __init__(self, thunks: Sequence[Callable[[], object]], *,
                 threads: int = 8, requests: int = 400,
                 io_wait_s: float = 0.0,
                 churn: Union[Churn, Sequence[Churn], None] = None,
                 churn_interval_s: float = 0.01,
                 record_outcomes: bool = True) -> None:
        if not thunks:
            raise ValueError("need at least one request thunk")
        self.thunks = list(thunks)
        self.threads = threads
        self.requests = requests
        self.io_wait_s = io_wait_s
        # ``churn`` is one mutation recipe or a list of them; each gets a
        # dedicated mutator thread (the serving harness runs dev-mode
        # reloads, schema retypes, and signature churn side by side).
        if churn is None:
            self.churns: List[Churn] = []
        elif callable(churn):
            self.churns = [churn]
        else:
            self.churns = list(churn)
        self.churn = self.churns[0] if self.churns else None
        self.churn_interval_s = churn_interval_s
        self.record_outcomes = record_outcomes

    def schedule_for(self, worker: int) -> List[Tuple[int, Callable]]:
        """Worker ``worker``'s (schedule index, thunk) list."""
        per = self.requests // self.threads
        extra = self.requests % self.threads
        count = per + (1 if worker < extra else 0)
        start = worker * per + min(worker, extra)
        thunks = self.thunks
        n = len(thunks)
        return [(start + i, thunks[(start + i) % n]) for i in range(count)]

    def run(self) -> DriverRun:
        result = DriverRun(self.threads, self.requests, 0.0)
        outcomes_lock = threading.Lock()
        start_barrier = threading.Barrier(self.threads + 1)
        stop_churn = threading.Event()
        io_wait = self.io_wait_s

        def worker(idx: int) -> None:
            mine: List[Tuple[int, int, tuple]] = []
            done = 0
            try:
                schedule = self.schedule_for(idx)
                start_barrier.wait(timeout=JOIN_TIMEOUT_S)
                for sched_idx, thunk in schedule:
                    outcome = normalize_outcome(thunk)
                    done += 1
                    if io_wait:
                        time.sleep(io_wait)
                    if self.record_outcomes:
                        mine.append((idx, sched_idx, outcome))
            except Exception as exc:  # noqa: BLE001 - driver-level crash
                result.crashes.append(f"worker {idx}: {exc!r}")
            finally:
                with outcomes_lock:
                    result.completed += done
                    if mine:
                        result.outcomes.extend(mine)

        def churner(fn: Churn) -> None:
            step = 0
            try:
                while not stop_churn.is_set():
                    fn(step)
                    step += 1
                    with outcomes_lock:
                        result.churn_applied += 1
                    if stop_churn.wait(self.churn_interval_s):
                        break
            except Exception as exc:  # noqa: BLE001 - driver-level crash
                result.crashes.append(f"churn step {step}: {exc!r}")

        workers = [threading.Thread(target=worker, args=(i,), daemon=True)
                   for i in range(self.threads)]
        churn_threads = [threading.Thread(target=churner, args=(fn,),
                                          daemon=True)
                         for fn in self.churns]
        for t in workers:
            t.start()
        for t in churn_threads:
            t.start()
        start_barrier.wait(timeout=JOIN_TIMEOUT_S)
        started = time.perf_counter()
        # One shared deadline across all joins, so a multi-worker
        # deadlock is reported after JOIN_TIMEOUT_S total — not
        # threads * JOIN_TIMEOUT_S, which would outlive CI's
        # faulthandler timeout and lose this curated diagnostic.
        deadline = started + JOIN_TIMEOUT_S
        for t in workers:
            t.join(timeout=max(0.0, deadline - time.perf_counter()))
        result.elapsed_s = time.perf_counter() - started
        stop_churn.set()
        for t in churn_threads:
            t.join(timeout=max(1.0, deadline - time.perf_counter()))
        hung = [i for i, t in enumerate(workers) if t.is_alive()]
        churn_hung = [i for i, t in enumerate(churn_threads)
                      if t.is_alive()]
        if hung or churn_hung:
            raise RuntimeError(
                f"driver deadlock: workers {hung} (churn threads alive: "
                f"{churn_hung}) did not finish within {JOIN_TIMEOUT_S}s")
        result.outcomes.sort(key=lambda o: o[1])
        return result

    def run_single_threaded_oracle(self) -> DriverRun:
        """The comparison baseline: the same total schedule, one thread,
        no churn — deterministic outcomes for multiset comparison."""
        single = ConcurrentDriver(
            self.thunks, threads=1, requests=self.requests,
            io_wait_s=0.0, churn=None,
            record_outcomes=self.record_outcomes)
        return single.run()
