"""Request mixes and churn recipes for the concurrent workloads.

The three representative apps (pubs, cct, talks) get *read-only*
request thunks: a GET never mutates the database, so every thunk's
outcome is deterministic and a concurrent run's outcome multiset can be
compared against a single-threaded oracle replay — the threaded
extension of the differential cache-soundness harness.  (POSTs mutate
shared app state and are exercised by the single-threaded suites; under
concurrency the *mutations* come from the churn recipe instead, which
is the interesting contention anyway.)

Churn recipes model what a dev-mode reload does while traffic is in
flight, exactly like ``bench_hotpath.measure_reload`` but concurrent:
re-execute one method's annotation (``types.replace`` with the same
signature — a real invalidation wave), register a fresh class, and
re-run an identical ``field_type``.  Because the retype is
*semantics-preserving*, every request outcome must still match the
no-churn oracle — any divergence is a stale- or torn-cache bug.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..apps import World, all_builders

#: per-app reduced workload knobs (the benchmark sizes).
DEFAULT_CFG: Dict[str, dict] = {
    "pubs": {"publications": 12},
    "cct": {"repeats": 1},
    "talks": {},
}

#: per-app (owner, method, signature) retyped by the churn recipe — a
#: hot, statically-checked method whose plans/derivations are warm.
CHURN_TARGETS: Dict[str, Tuple[str, str, str]] = {
    "pubs": ("Author", "last_name", "() -> String"),
    "cct": ("CardValidator", "masked", "(String) -> String"),
    "talks": ("User", "display_name", "() -> String"),
}


def build_concurrent_world(app_name: str, engine=None,
                           cfg: Optional[dict] = None) -> World:
    """Build + seed one of the concurrent subject apps."""
    if app_name not in DEFAULT_CFG:
        raise ValueError(f"no concurrent workload for {app_name!r}; "
                         f"pick one of {sorted(DEFAULT_CFG)}")
    knobs = dict(DEFAULT_CFG[app_name])
    knobs.update(cfg or {})
    world = all_builders()[app_name](engine, **knobs)
    world.seed()
    return world


def request_thunks(world: World) -> List[Callable[[], object]]:
    """The read-only request mix for ``world`` (one thunk per request)."""
    if world.name == "pubs":
        return _pubs_thunks(world)
    if world.name == "cct":
        return _cct_thunks(world)
    if world.name == "talks":
        return _talks_thunks(world)
    raise ValueError(f"no request mix for {world.name!r}")


def _pubs_thunks(world: World) -> List[Callable[[], object]]:
    app = world.extras["app"]

    def get(path: str) -> Callable[[], object]:
        return lambda: app.request("GET", path)

    thunks = [get("/pubs"), get("/pubs/bibtex"), get("/venues")]
    thunks += [get(f"/pubs/year/{year}")
               for year in ("2008", "2010", "2012")]
    thunks += [get(f"/pubs/{pub_id}") for pub_id in ("1", "3", "7")]
    return thunks


def _cct_thunks(world: World) -> List[Callable[[], object]]:
    runner = world.extras["state"]["runner"]
    # Runner methods build fresh locals per call (no shared mutable
    # state), so many threads may share one runner.
    return [
        lambda: runner.process_transactions(),
        lambda: runner.count_valid(),
        lambda: runner.summary(),
        lambda: runner.audit_lines(),
    ]


def _talks_thunks(world: World) -> List[Callable[[], object]]:
    app = world.extras["app"]

    def get(path: str) -> Callable[[], object]:
        return lambda: app.request("GET", path)

    thunks = [get("/talks"), get("/talks/upcoming"), get("/lists"),
              get("/users")]
    thunks += [get(f"/talks/{talk_id}") for talk_id in ("1", "2", "5")]
    thunks += [get("/talks/by_owner/1"), get("/users/1/talks"),
               get("/lists/2")]
    return thunks


def churn_recipe(world: World) -> Callable[[int], None]:
    """A dev-mode reload step for ``world``: retype one hot method with
    its unchanged signature (a full invalidation wave), register a fresh
    class, and re-run an identical ``field_type`` — the same noise
    ``bench_hotpath.measure_reload`` models, applied while N request
    threads are mid-flight."""
    engine = world.engine
    owner, method, sig = CHURN_TARGETS[world.name]
    counter = {"fresh": 0}

    def step(step_index: int) -> None:
        engine.types.replace(owner, method, sig, check=True)
        if step_index % 4 == 0:
            counter["fresh"] += 1
            fresh = type(f"ReloadScratch{world.name.title()}"
                         f"{counter['fresh']}", (object,), {})
            engine.register_class(fresh)
        engine.field_type(owner, "reload_scratch", "Integer")

    return step
