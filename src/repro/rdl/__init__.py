"""``repro.rdl`` — the contract-system substrate (RDL analog).

Stores method type signatures at run time (:mod:`~repro.rdl.registry`),
wraps methods to intercept calls, and provides ``pre``/``post`` contracts
(:mod:`~repro.rdl.wrap`) — the machinery Hummingbird builds on.
"""

from .registry import CLASS, INSTANCE, MethodSig, TypeRegistry
from .wrap import (
    ContractViolation, add_post, add_pre, is_wrapped, unwrap_method,
    wrap_method,
)

__all__ = [
    "CLASS", "ContractViolation", "INSTANCE", "MethodSig", "TypeRegistry",
    "add_post", "add_pre", "is_wrapped", "unwrap_method", "wrap_method",
]
