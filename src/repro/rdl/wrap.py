"""Method wrapping — the interception machinery RDL provides Hummingbird.

"Hummingbird's type annotation stores type information in a map and wraps
the associated method to intercept calls to it" (section 4).  This module
does the wrapping on host classes: the wrapper forwards every call through
:meth:`repro.core.engine.Engine.invoke`, which runs the JIT protocol, then
calls the original.

Wrapping happens once per *defining* class; the engine keys checking and
caching by the *receiver's* class, so mixin methods are checked per
including class (the paper's module-handling strategy).

``pre``/``post`` contracts (the RDL feature Figs. 1 and 2 use to generate
types when metaprogramming runs) are implemented here too: contracts run
inside the wrapper, before and after the original body.  Contract
*resolution* (which ``(class, name)`` entry applies to a receiver) is
memoized per ``(defining owner, receiver class, name)`` and flushed
whenever a contract store is created — contracted metaprogramming calls
no longer re-walk the receiver MRO with per-class dict probes.  The
memo is bounded (``_CONTRACT_MEMO_MAX``): its keys hold live class
objects, and dev-mode reload churn must not pin every receiver class
generation for the engine's lifetime.

Tier-2 interplay: the engine's specializer
(:mod:`repro.core.specialize`) may displace a generic wrapper installed
here with a compiled per-site wrapper.  Both :func:`wrap_method` and
:func:`unwrap_method` therefore notify the specializer before rebinding
a slot themselves, so a stale deopt can never resurrect a superseded
wrapper; and registering any contract deoptimizes every promoted site —
contracts only run in the generic wrapper.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List, Tuple

from ..rdl.registry import CLASS, INSTANCE


class ContractViolation(Exception):
    """A ``pre`` or ``post`` contract returned a falsy value."""


# Contracts keyed by (class name, method name); run by the wrapper.
_PRE_KEY = "__hb_pres__"
_POST_KEY = "__hb_posts__"

#: memo-miss sentinel (None is a legitimate negative resolution).
_UNRESOLVED = object()

#: bound on the contract-resolution memo.  Its keys hold live class
#: objects; unbounded, dev-mode reload churn (a fresh class per reload)
#: would pin every receiver class ever seen for the engine's lifetime.
#: At the cap the memo is dropped wholesale — it is a pure cache, and
#: the next resolution rebuilds the hot entries.
_CONTRACT_MEMO_MAX = 512


def staticmethod_refusal(owner_name: str, name: str) -> Exception:
    """The single source of the staticmethod-interception refusal,
    shared by :func:`wrap_method`, ``Engine._annotate_locked``, and
    ``annotations.TypedMethod`` so the policy and wording cannot
    drift."""
    from ..core.errors import TypeSignatureError
    return TypeSignatureError(
        f"{owner_name}#{name} is a staticmethod — there is no receiver "
        f"class to key the JIT protocol on, so it cannot be intercepted; "
        f"make it an instance/class method, or record a trusted signature "
        f"without wrapping (annotate(wrap=False) / @typed(check=False))")


def wrap_method(engine, pycls: type, name: str, *, kind: str = INSTANCE,
                fn=None) -> None:
    """Install (or refresh) the interception wrapper for ``pycls.name``.

    Staticmethods are refused **loudly**: the interception protocol
    keys checking by the receiver's class, and a staticmethod has no
    receiver — the old behavior (extracting ``__func__`` and
    re-installing the wrapper as a plain function) shifted the call's
    first real argument into the wrapper's ``recv`` slot, silently
    corrupting every call.  Raising keeps the refusal visible on every
    path that reaches here (annotation, contract registration, pending
    re-wraps) instead of silently recording signatures or contracts
    that would never be enforced.
    """
    def_cls = _defining_class(pycls, name)
    if def_cls is None:
        def_cls = pycls
    raw = def_cls.__dict__.get(name)
    if isinstance(raw, staticmethod):
        raise staticmethod_refusal(def_cls.__name__, name)
    _discard_specialization(engine, def_cls, name)
    was_classmethod = isinstance(raw, classmethod)
    if fn is None:
        fn = raw.__func__ if isinstance(raw, classmethod) else raw
    original = getattr(fn, "__hb_original__", fn)
    def_owner = def_cls.__name__

    invoke = engine.invoke

    @functools.wraps(original)
    def wrapper(recv, *args, **kwargs):
        # Contracts are rare (metaprogramming hooks); the common wrapper
        # does exactly one call into the engine's JIT protocol.
        if not engine._contracts:
            return invoke(def_owner, name, kind, original, recv, args,
                          kwargs)
        _run_contracts(engine, recv, def_owner, name, _PRE_KEY, args, kwargs)
        result = invoke(def_owner, name, kind, original, recv, args, kwargs)
        _run_contracts(engine, recv, def_owner, name, _POST_KEY, args,
                       kwargs, result=result)
        return result

    wrapper.__hb_original__ = original
    wrapper.__hb_engine__ = engine
    installed = classmethod(wrapper) if (kind == CLASS or was_classmethod) \
        else wrapper
    setattr(def_cls, name, installed)


def unwrap_method(pycls: type, name: str) -> None:
    """Restore the original method (used by engine teardown in tests)."""
    def_cls = _defining_class(pycls, name)
    if def_cls is None:
        return
    raw = def_cls.__dict__.get(name)
    fn = raw.__func__ if isinstance(raw, (classmethod, staticmethod)) else raw
    original = getattr(fn, "__hb_original__", None)
    if original is not None:
        engine = getattr(fn, "__hb_engine__", None)
        if engine is not None:
            _discard_specialization(engine, def_cls, name)
        setattr(def_cls, name, original)


def _discard_specialization(engine, def_cls: type, name: str) -> None:
    """Tell the engine's specializer this slot is being rebound by hand:
    its record of the displaced generic wrapper is now obsolete."""
    specializer = getattr(engine, "_specializer", None)
    if specializer is not None:
        specializer.discard_slot(def_cls, name)


def is_wrapped(pycls: type, name: str) -> bool:
    def_cls = _defining_class(pycls, name)
    if def_cls is None:
        return False
    raw = def_cls.__dict__.get(name)
    fn = raw.__func__ if isinstance(raw, (classmethod, staticmethod)) else raw
    return getattr(fn, "__hb_original__", None) is not None


def add_pre(engine, pycls: type, name: str, contract: Callable) -> None:
    """Attach a precondition — runs with the call's arguments before the
    method body.  Figs. 1 and 2 use exactly this to generate types as
    metaprogramming executes."""
    _contracts_on(engine, pycls, name).setdefault(_PRE_KEY, []).append(
        contract)


def add_post(engine, pycls: type, name: str, contract: Callable) -> None:
    """Attach a postcondition — runs with (result, *args) after the body."""
    _contracts_on(engine, pycls, name).setdefault(_POST_KEY, []).append(
        contract)


def _contracts_on(engine, pycls: type, name: str) -> Dict[str, List]:
    # Contract registration is a mutation wave: it runs under the
    # engine's writer lock so it serializes with tier-2 promotion (which
    # re-validates contracts-empty under the same lock) — otherwise a
    # promotion in flight could install a specialized wrapper, which
    # never runs contract hooks, after deoptimize_all() below ran.
    with engine.write_lock:
        store = engine.__dict__.setdefault("_contracts", {})
        key = (pycls.__name__, name)
        if key not in store:
            # Wrap *before* creating the store entry: wrap_method
            # refuses staticmethod slots by raising, and a failed
            # registration must not leave an empty entry behind — a
            # non-empty ``_contracts`` blocks tier-2 promotion
            # engine-wide.  Contracts are Hummingbird instrumentation:
            # in "Orig" mode (intercept=False) nothing is wrapped and
            # no hooks run.
            if engine.config.intercept and not is_wrapped(pycls, name):
                wrap_method(engine, pycls, name)
            store[key] = {}
        # Any contract mutation invalidates memoized resolutions (a new
        # (class, name) entry can shadow an ancestor's for some
        # receivers) and deoptimizes every tier-2 site: specialized
        # wrappers never run contract hooks, so contracts force the
        # generic wrapper everywhere.
        engine.__dict__["_contract_memo"] = {}
        specializer = getattr(engine, "_specializer", None)
        if specializer is not None:
            specializer.deoptimize_all()
        return store[key]


def _run_contracts(engine, recv, owner: str, name: str, which: str,
                   args, kwargs, result=None) -> None:
    store = engine.__dict__.get("_contracts", {})
    cls = type(recv) if not isinstance(recv, type) else recv
    # Resolution memo: the (owner-probe, MRO walk) below depends only on
    # the defining owner, the receiver's class, and the method name.
    # Reads and the idempotent insert are GIL-atomic dict ops; the memo
    # dict is replaced wholesale when contracts change.
    memo = engine.__dict__.get("_contract_memo")
    if memo is None:
        memo = engine.__dict__.setdefault("_contract_memo", {})
    memo_key = (owner, cls, name)
    entry = memo.get(memo_key, _UNRESOLVED)
    if entry is _UNRESOLVED:
        entry = store.get((owner, name))
        if not entry:
            for klass in getattr(cls, "__mro__", ()):
                entry = store.get((klass.__name__, name))
                if entry:
                    break
        if len(memo) >= _CONTRACT_MEMO_MAX:
            # Bounded: reload churn mints a fresh receiver class per
            # reload, and a key pins its class object; dropping the
            # memo wholesale un-pins the dead generations.
            memo.clear()
        memo[memo_key] = entry if entry else None
    if not entry:
        return
    for contract in entry.get(which, ()):  # pragma: no branch
        if which == _PRE_KEY:
            ok = contract(recv, *args, **kwargs)
        else:
            ok = contract(recv, result, *args, **kwargs)
        if not ok:
            kind = "pre" if which == _PRE_KEY else "post"
            raise ContractViolation(
                f"{kind}-condition on {owner}#{name} failed")


def _defining_class(pycls: type, name: str):
    for klass in getattr(pycls, "__mro__", (pycls,)):
        if name in klass.__dict__:
            return klass
    return None
