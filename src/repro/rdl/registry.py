"""The run-time type table (RDL analog).

"Hummingbird's type annotation stores type information in a map and wraps
the associated method to intercept calls to it" (paper, section 4).  This
module is the map: signatures keyed by (owner class/module, method name,
instance/class kind), where repeated ``type`` calls on the same method
accumulate *intersection arms* (the paper's ``Array#[]`` example), plus
instance/class field types (Hummingbird's addition to RDL).

Mutations bump a version counter and notify listeners; the engine listens
to drive cache invalidation (the formalism's (EType) rule) and phase
accounting.

Concurrency discipline: lookups are bare dict reads (atomic under the
GIL, no lock).  Mutations hold :attr:`TypeRegistry.lock` — re-entrant,
and replaced by the engine with its own writer lock so that a direct
``engine.types.replace(...)`` serializes with every other engine
mutation (listeners fire while the lock is held, and the engine's
listener re-enters the same lock).  :meth:`replace` installs the new
entry with a single dict assignment so concurrent readers see the old
or the new signature, never a gap.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..rtypes import MethodType, Type, parse_method_type, parse_type

INSTANCE = "instance"
CLASS = "class"

Key = Tuple[str, str, str]  # (owner, name, kind)


@dataclass
class MethodSig:
    """All typing information recorded for one method."""

    owner: str
    name: str
    kind: str  # INSTANCE or CLASS
    arms: List[MethodType] = field(default_factory=list)
    #: statically check the body at calls (app methods); library and
    #: framework annotations are trusted (paper: "we trusted the
    #: annotations for all these libraries").
    check: bool = False
    #: created at run time by metaprogramming hooks (Table 1 "Gen'd").
    generated: bool = False

    def intersection(self) -> List[MethodType]:
        return list(self.arms)


class TypeRegistry:
    """Signatures + field types, with change notification."""

    def __init__(self) -> None:
        self._sigs: Dict[Key, MethodSig] = {}
        self._fields: Dict[Tuple[str, str], Type] = {}
        self.version = 0
        #: writer lock; the engine replaces it with its shared writer
        #: lock so direct registry mutations serialize with the engine.
        self.lock = threading.RLock()
        self._listeners: List[Callable[[str, str, str], None]] = []

    # -- mutation ------------------------------------------------------------

    def add(self, owner: str, name: str, sig: "MethodType | str", *,
            kind: str = INSTANCE, check: bool = False,
            generated: bool = False) -> MethodSig:
        """Record a signature; repeated calls add intersection arms.

        Matching the paper, "adding the same type again is harmless":
        a duplicate arm is ignored (and does not invalidate anything).
        """
        mt = parse_method_type(sig) if isinstance(sig, str) else sig
        if not isinstance(mt, MethodType):
            raise TypeError(f"not a method type: {sig!r}")
        with self.lock:
            key = (owner, name, kind)
            entry = self._sigs.get(key)
            if entry is None:
                # Built fully before the dict insert: a lock-free reader
                # must never observe a published signature with no arms
                # (an empty-armed entry turns a correct call into a
                # spurious ArgumentTypeError).
                entry = MethodSig(owner, name, kind, arms=[mt], check=check,
                                  generated=generated)
                self._sigs[key] = entry
                self.version += 1
                self._notify(owner, name, kind)
                return entry
            if mt in entry.arms:
                if check and not entry.check:
                    # Upgrading a trusted signature to a checked one is a
                    # real table change even though the arm is a duplicate:
                    # bump and notify so caches (and call plans) can't keep
                    # skipping the static check.
                    entry.check = True
                    self.version += 1
                    self._notify(owner, name, kind)
                return entry
            entry.arms.append(mt)
            entry.check = entry.check or check
            entry.generated = entry.generated or generated
            self.version += 1
            self._notify(owner, name, kind)
            return entry

    def replace(self, owner: str, name: str, sig: "MethodType | str", *,
                kind: str = INSTANCE, check: bool = False,
                generated: bool = False) -> MethodSig:
        """Drop previous arms and install a single new signature.

        The paper notes full invalidation support "will likely require an
        explicit mechanism for replacing earlier type definitions" — this
        is that mechanism.  The new entry lands in one dict assignment:
        a concurrent reader resolves the old signature or the new one,
        never a missing slot.
        """
        mt = parse_method_type(sig) if isinstance(sig, str) else sig
        if not isinstance(mt, MethodType):
            raise TypeError(f"not a method type: {sig!r}")
        with self.lock:
            key = (owner, name, kind)
            entry = MethodSig(owner, name, kind, arms=[mt], check=check,
                              generated=generated)
            self._sigs[key] = entry
            self.version += 1
            self._notify(owner, name, kind)
            return entry

    def add_field(self, owner: str, field_name: str,
                  t: "Type | str") -> None:
        """Record an instance/class field type (paper Fig. 3's
        ``field_type :@transactions, "Array<Transaction>"``).

        Re-recording the *same* type is harmless (the method-signature
        rule applied to fields): a dev-mode reload re-executes every
        ``field_type`` call, and an identical type cannot change any
        judgment, so it must not invalidate anything.
        """
        ty = parse_type(t) if isinstance(t, str) else t
        with self.lock:
            key = (owner, field_name)
            if self._fields.get(key) == ty:
                return
            self._fields[key] = ty
            self.version += 1
            self._notify(owner, field_name, "field")

    # -- queries -------------------------------------------------------------

    def lookup(self, owner: str, name: str,
               kind: str = INSTANCE) -> Optional[MethodSig]:
        return self._sigs.get((owner, name, kind))

    def lookup_field(self, owner: str, field_name: str) -> Optional[Type]:
        return self._fields.get((owner, field_name))

    def sigs(self) -> Iterable[MethodSig]:
        return self._sigs.values()

    def sig_count(self) -> int:
        return len(self._sigs)

    def methods_of(self, owner: str) -> List[MethodSig]:
        return [s for s in self._sigs.values() if s.owner == owner]

    # -- notification ----------------------------------------------------------

    def on_change(self, listener: Callable[[str, str, str], None]) -> None:
        """Register a callback fired as (owner, name, kind) on mutation."""
        self._listeners.append(listener)

    def _notify(self, owner: str, name: str, kind: str) -> None:
        for listener in self._listeners:
            listener(owner, name, kind)
