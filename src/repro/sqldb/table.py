"""Tables: rows with autoincrement ids, equality queries, updates."""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from .schema import Schema, SchemaError

Row = Dict[str, object]


class Table:
    """One table's rows.  Rows are plain dicts including ``id``."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._next_id = 1

    # -- writes ------------------------------------------------------------

    def insert(self, **values: object) -> Row:
        self.schema.validate_row(values)
        row: Row = {"id": self._next_id}
        for col in self.schema.columns:
            row[col.name] = values.get(col.name)
        self._rows[self._next_id] = row
        self._next_id += 1
        return dict(row)

    def update(self, row_id: int, **values: object) -> Optional[Row]:
        self.schema.validate_row(values)
        row = self._rows.get(row_id)
        if row is None:
            return None
        row.update(values)
        return dict(row)

    def delete(self, row_id: int) -> bool:
        return self._rows.pop(row_id, None) is not None

    def clear(self) -> None:
        self._rows.clear()
        self._next_id = 1

    # -- reads ---------------------------------------------------------------

    def find(self, row_id: object) -> Optional[Row]:
        if not isinstance(row_id, int):
            return None
        row = self._rows.get(row_id)
        return dict(row) if row is not None else None

    def all_rows(self) -> List[Row]:
        return [dict(r) for r in self._rows.values()]

    def where(self, **conditions: object) -> List[Row]:
        for name in conditions:
            if name != "id" and self.schema.column(name) is None:
                raise SchemaError(
                    f"{self.schema.table_name} has no column {name!r}")
        return [dict(r) for r in self._rows.values()
                if all(r.get(k) == v for k, v in conditions.items())]

    def first_where(self, **conditions: object) -> Optional[Row]:
        matches = self.where(**conditions)
        return matches[0] if matches else None

    def count(self, **conditions: object) -> int:
        if not conditions:
            return len(self._rows)
        return len(self.where(**conditions))

    def order_by(self, column: str, reverse: bool = False) -> List[Row]:
        rows = self.all_rows()
        rows.sort(key=lambda r: (r.get(column) is None, r.get(column)),
                  reverse=reverse)
        return rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.all_rows())
