"""Tables: rows with autoincrement ids, equality queries, updates.

Concurrency discipline (the PR 3 engine rules, applied to the data
layer): *reads are lock-free, writes are locked copy-on-write*.  The
row store is published as a plain dict that is never mutated in place —
every write builds a fresh dict (and fresh row dicts) under the table
lock and swaps it in with one reference assignment.  A reader therefore
grabs one immutable snapshot and can iterate it while any number of
writers insert/update/delete concurrently: no torn rows (an update
publishes a complete row or nothing), no ``RuntimeError: dictionary
changed size during iteration``, and no duplicate autoincrement ids
(the id counter advances only under the lock).

Tables in this workload are small (tens of rows), so the O(rows) copy
per write is noise next to the request work around it; what matters is
that the serving harness's write-heavy request mixes — N threads doing
create/update/destroy cycles against one table — stay exact.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional

from .schema import Schema, SchemaError

Row = Dict[str, object]


class Table:
    """One table's rows.  Rows are plain dicts including ``id``."""

    def __init__(self, schema: Schema):
        self.schema = schema
        #: the published snapshot; replaced wholesale by writers, never
        #: mutated in place.  Readers must capture it once per query.
        self._rows: Dict[int, Row] = {}
        self._next_id = 1
        self._lock = threading.Lock()

    # -- writes (locked, copy-on-write) ------------------------------------

    def insert(self, **values: object) -> Row:
        self.schema.validate_row(values)
        with self._lock:
            row: Row = {"id": self._next_id}
            for col in self.schema.columns:
                row[col.name] = values.get(col.name)
            rows = dict(self._rows)
            rows[self._next_id] = row
            self._next_id += 1
            self._rows = rows
        return dict(row)

    def update(self, row_id: int, **values: object) -> Optional[Row]:
        self.schema.validate_row(values)
        with self._lock:
            row = self._rows.get(row_id)
            if row is None:
                return None
            # A fresh row dict so concurrent readers holding the old
            # snapshot never observe a half-applied multi-column update.
            new_row = dict(row)
            new_row.update(values)
            rows = dict(self._rows)
            rows[row_id] = new_row
            self._rows = rows
        return dict(new_row)

    def delete(self, row_id: int) -> bool:
        with self._lock:
            if row_id not in self._rows:
                return False
            rows = dict(self._rows)
            del rows[row_id]
            self._rows = rows
        return True

    def clear(self) -> None:
        with self._lock:
            self._rows = {}
            self._next_id = 1

    # -- reads (lock-free over one snapshot) -------------------------------

    def find(self, row_id: object) -> Optional[Row]:
        if not isinstance(row_id, int):
            return None
        row = self._rows.get(row_id)
        return dict(row) if row is not None else None

    def all_rows(self) -> List[Row]:
        rows = self._rows
        return [dict(r) for r in rows.values()]

    def where(self, **conditions: object) -> List[Row]:
        for name in conditions:
            if name != "id" and self.schema.column(name) is None:
                raise SchemaError(
                    f"{self.schema.table_name} has no column {name!r}")
        rows = self._rows
        return [dict(r) for r in rows.values()
                if all(r.get(k) == v for k, v in conditions.items())]

    def first_where(self, **conditions: object) -> Optional[Row]:
        matches = self.where(**conditions)
        return matches[0] if matches else None

    def count(self, **conditions: object) -> int:
        if not conditions:
            return len(self._rows)
        return len(self.where(**conditions))

    def order_by(self, column: str, reverse: bool = False) -> List[Row]:
        rows = self.all_rows()
        rows.sort(key=lambda r: (r.get(column) is None, r.get(column)),
                  reverse=reverse)
        return rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.all_rows())
