"""``repro.sqldb`` — the in-memory relational database substrate.

The paper's Rails apps sit on a SQL database whose *schema drives
metaprogramming*: ActiveRecord defines attribute methods and finders from
the columns.  This package provides the equivalent storage layer: tables
with typed columns, autoincrement primary keys, equality queries, and the
column-type → RDL-type mapping the type-generation hooks use.
"""

from .schema import Column, Schema, column_rdl_type
from .table import Row, Table
from .database import Database

__all__ = ["Column", "Database", "Row", "Schema", "Table",
           "column_rdl_type"]
