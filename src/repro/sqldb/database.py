"""The database: named tables created through a migration-style DSL."""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from .schema import Column, Schema, SchemaError
from .table import Table


class Database:
    """A named collection of tables.

    ``create_table`` is the migration DSL; columns are (name, type) pairs
    with an optional ``null=False``::

        db.create_table("talks",
                        ("title", "string"),
                        ("owner_id", "integer"),
                        ("starts_at", "datetime"))
    """

    def __init__(self) -> None:
        #: published snapshot, copy-on-write like ``Table._rows`` — table
        #: creation/drop is rare (migrations), reads are every query.
        self._tables: Dict[str, Table] = {}
        self._lock = threading.Lock()

    def create_table(self, name: str, *columns, **options) -> Table:
        cols: List[Column] = []
        for spec in columns:
            if isinstance(spec, Column):
                cols.append(spec)
            else:
                cname, ctype, *rest = spec
                null = rest[0] if rest else True
                cols.append(Column(cname, ctype, null=null))
        table = Table(Schema(name, cols))
        with self._lock:
            if name in self._tables:
                raise SchemaError(f"table {name!r} already exists")
            tables = dict(self._tables)
            tables[name] = table
            self._tables = tables
        return table

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise SchemaError(f"no such table {name!r}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def reset(self) -> None:
        """Truncate every table (the Table 2 experiment resets the database
        between versions 'so that we run all versions with the same initial
        data')."""
        for table in self._tables.values():
            table.clear()

    def drop_all(self) -> None:
        with self._lock:
            self._tables = {}
