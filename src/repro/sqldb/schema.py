"""Table schemas and the column-type → RDL-type mapping.

"We added code to dynamically generate types for model getters and setters
based on the database schema" (paper, section 5) — this mapping is what
that generation consults.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: column type -> (RDL type, host Python types accepted)
_COLUMN_TYPES = {
    "integer": ("Integer", (int,)),
    "float": ("Float", (float, int)),
    "string": ("String", (str,)),
    "text": ("String", (str,)),
    "boolean": ("%bool", (bool,)),
    "datetime": ("Time", (datetime.datetime, datetime.date)),
}


class SchemaError(ValueError):
    """Bad schema definition or value/column mismatch."""


@dataclass(frozen=True)
class Column:
    """One typed column.  ``null=True`` columns get ``T or nil``."""

    name: str
    ctype: str
    null: bool = True

    def __post_init__(self):
        if self.ctype not in _COLUMN_TYPES:
            raise SchemaError(f"unknown column type {self.ctype!r}")

    def rdl_type(self) -> str:
        base, _ = _COLUMN_TYPES[self.ctype]
        return f"{base} or nil" if self.null else base

    def accepts(self, value: object) -> bool:
        if value is None:
            return self.null
        _, host_types = _COLUMN_TYPES[self.ctype]
        if isinstance(value, bool) and self.ctype != "boolean":
            return False
        return isinstance(value, host_types)


def column_rdl_type(ctype: str, null: bool = True) -> str:
    """The RDL type string for a raw column type."""
    return Column("_", ctype, null).rdl_type()


@dataclass
class Schema:
    """An ordered set of columns; ``id`` is implicit and autoincremented."""

    table_name: str
    columns: List[Column] = field(default_factory=list)

    def __post_init__(self):
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column in {self.table_name}")
        if "id" in names:
            raise SchemaError("id is implicit; do not declare it")

    def column(self, name: str) -> Optional[Column]:
        for c in self.columns:
            if c.name == name:
                return c
        return None

    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def validate_row(self, values: Dict[str, object]) -> None:
        for name, value in values.items():
            col = self.column(name)
            if col is None:
                raise SchemaError(
                    f"{self.table_name} has no column {name!r}")
            if not col.accepts(value):
                raise SchemaError(
                    f"{self.table_name}.{name} ({col.ctype}) rejects "
                    f"{value!r}")
