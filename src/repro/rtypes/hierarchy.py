"""Class hierarchy: superclass edges, module mixins, and generic arity.

The formalism omits inheritance for simplicity, but the paper's
implementation handles it (section 3), so we do too.  A
:class:`ClassHierarchy` records, per class name:

* its superclass (every class except ``Object`` has one),
* the modules mixed into it, in inclusion order (paper section 4 "Modules":
  module methods are tracked per *including* class, which is why the
  hierarchy needs mixin edges for method lookup), and
* its generic arity and the names of its type variables
  (``Array`` has one, ``Hash`` two).

``BasicObject``-style roots are not modelled; ``Object`` is the root.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class UnknownClassError(KeyError):
    """Raised when a class name is not registered in the hierarchy."""


class ClassHierarchy:
    """A registry of class names with superclass, mixin, and generic info."""

    def __init__(self) -> None:
        self._parent: Dict[str, Optional[str]] = {"Object": None}
        self._mixins: Dict[str, List[str]] = {"Object": []}
        self._modules: set = set()
        self._typevars: Dict[str, Tuple[str, ...]] = {}

    # -- registration ------------------------------------------------------

    def add_class(self, name: str, superclass: str = "Object",
                  typevars: Sequence[str] = ()) -> None:
        """Register ``name`` with the given superclass and type variables.

        Re-registering with the same superclass is harmless (mirrors Ruby's
        re-opening of classes); changing the superclass is an error.
        """
        if name in self._parent:
            existing = self._parent[name]
            if existing != superclass and name != "Object":
                raise ValueError(
                    f"class {name} already registered with superclass "
                    f"{existing}, cannot change to {superclass}")
            return
        if superclass not in self._parent:
            # Auto-register unknown superclasses under Object so load order
            # does not matter (Ruby-style open-world loading).
            self.add_class(superclass)
        self._parent[name] = superclass
        self._mixins.setdefault(name, [])
        if typevars:
            self._typevars[name] = tuple(typevars)

    def add_module(self, name: str) -> None:
        """Register a module (mixin); modules have no superclass."""
        self._modules.add(name)
        self._mixins.setdefault(name, [])
        self._parent.setdefault(name, None)

    def include_module(self, cls: str, module: str) -> None:
        """Mix ``module`` into ``cls`` (Ruby ``include``)."""
        if cls not in self._parent:
            self.add_class(cls)
        if module not in self._modules:
            self.add_module(module)
        mixins = self._mixins.setdefault(cls, [])
        if module not in mixins:
            mixins.insert(0, module)  # later includes take precedence

    # -- queries -----------------------------------------------------------

    def is_known(self, name: str) -> bool:
        return name in self._parent

    def is_module(self, name: str) -> bool:
        return name in self._modules

    def superclass(self, name: str) -> Optional[str]:
        if name not in self._parent:
            raise UnknownClassError(name)
        return self._parent[name]

    def mixins(self, name: str) -> Tuple[str, ...]:
        return tuple(self._mixins.get(name, ()))

    def ancestors(self, name: str) -> Iterator[str]:
        """Linearized lookup order: the class, its mixins, then the
        superclass chain (each with its own mixins) — an MRO-lite."""
        if name not in self._parent:
            raise UnknownClassError(name)
        current: Optional[str] = name
        while current is not None:
            yield current
            for mod in self._mixins.get(current, ()):
                yield mod
            current = self._parent.get(current)

    def is_subclass(self, sub: str, sup: str) -> bool:
        """True when ``sup`` appears in ``sub``'s ancestor linearization."""
        if sub == sup:
            return True
        if sub not in self._parent:
            return False
        return any(a == sup for a in self.ancestors(sub))

    def typevars(self, name: str) -> Tuple[str, ...]:
        return self._typevars.get(name, ())

    def generic_arity(self, name: str) -> int:
        return len(self._typevars.get(name, ()))

    def class_names(self) -> Tuple[str, ...]:
        return tuple(self._parent)

    def snapshot(self) -> "ClassHierarchy":
        """A deep copy, used by engines that must not mutate the default."""
        out = ClassHierarchy()
        out._parent = dict(self._parent)
        out._mixins = {k: list(v) for k, v in self._mixins.items()}
        out._modules = set(self._modules)
        out._typevars = dict(self._typevars)
        return out


def default_hierarchy() -> ClassHierarchy:
    """The built-in classes every engine starts from.

    Mirrors the Ruby core classes the paper's annotations cover, mapped onto
    Python host values: ``int`` is ``Integer``, ``float`` is ``Float``,
    ``str`` is ``String``, ``list`` is ``Array``, ``dict`` is ``Hash``.
    The numeric tower is ``Integer <= Numeric`` and ``Float <= Numeric``
    (the Bignum overflow case is omitted, exactly as in paper section 4).
    """
    h = ClassHierarchy()
    h.add_class("Comparable")
    h.add_class("Numeric", "Comparable")
    h.add_class("Integer", "Numeric")
    h.add_class("Float", "Numeric")
    h.add_class("String", "Comparable")
    h.add_class("Symbol")
    h.add_class("Boolean")
    h.add_class("NilClass")
    h.add_class("Array", typevars=("t",))
    h.add_class("Hash", typevars=("k", "v"))
    h.add_class("Range", typevars=("t",))
    h.add_class("Set", typevars=("t",))
    h.add_class("Proc")
    h.add_class("Time", "Comparable")
    h.add_class("Date", "Comparable")
    h.add_class("Regexp")
    h.add_class("IO")
    h.add_class("File", "IO")
    h.add_class("Exception")
    h.add_class("StandardError", "Exception")
    h.add_class("ArgumentError", "StandardError")
    h.add_class("TypeError", "StandardError")
    h.add_class("Struct")
    h.add_class("Kernel")
    return h
