"""Class hierarchy: superclass edges, module mixins, and generic arity.

The formalism omits inheritance for simplicity, but the paper's
implementation handles it (section 3), so we do too.  A
:class:`ClassHierarchy` records, per class name:

* its superclass (every class except ``Object`` has one),
* the modules mixed into it, in inclusion order (paper section 4 "Modules":
  module methods are tracked per *including* class, which is why the
  hierarchy needs mixin edges for method lookup), and
* its generic arity and the names of its type variables
  (``Array`` has one, ``Hash`` two).

``BasicObject``-style roots are not modelled; ``Object`` is the root.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class UnknownClassError(KeyError):
    """Raised when a class name is not registered in the hierarchy."""


class SubtypeCache:
    """Memoized ``is_subtype`` answers for one hierarchy.

    The table maps ``(s, t, strict_nil)`` to a bool.  It is owned by the
    hierarchy because answers depend on its edges: every structural
    mutation (:meth:`ClassHierarchy._bump`) clears the table, so a stored
    answer is always valid for the current hierarchy.  Queries that carry a
    method resolver (structural-type checks) bypass the cache entirely —
    see ``repro.rtypes.subtype.is_subtype``.
    """

    __slots__ = ("table", "hits", "misses", "enabled", "max_entries")

    def __init__(self, max_entries: int = 16384) -> None:
        self.table: Dict[tuple, bool] = {}
        self.hits = 0
        self.misses = 0
        self.enabled = True
        #: bound on the table; when full it is dropped wholesale (the
        #: working set of distinct queries is far smaller in practice).
        self.max_entries = max_entries


class ClassHierarchy:
    """A registry of class names with superclass, mixin, and generic info.

    Mutations bump :attr:`version` so dependent caches (subtype memo,
    ancestor linearizations, the engine's call plans) can detect staleness
    with a single integer compare.
    """

    def __init__(self) -> None:
        self._parent: Dict[str, Optional[str]] = {"Object": None}
        self._mixins: Dict[str, List[str]] = {"Object": []}
        self._modules: set = set()
        self._typevars: Dict[str, Tuple[str, ...]] = {}
        #: bumped on every structural change (new class/module/mixin edge).
        self.version = 0
        self.subtype_cache = SubtypeCache()
        self._linearizations: Dict[str, Tuple[str, ...]] = {}
        self._ancestor_sets: Dict[str, frozenset] = {}

    def _bump(self) -> None:
        self.version += 1
        self._linearizations.clear()
        self._ancestor_sets.clear()
        self.subtype_cache.table.clear()

    # -- registration ------------------------------------------------------

    def add_class(self, name: str, superclass: str = "Object",
                  typevars: Sequence[str] = ()) -> None:
        """Register ``name`` with the given superclass and type variables.

        Re-registering with the same superclass is harmless (mirrors Ruby's
        re-opening of classes); changing the superclass is an error.
        """
        if name in self._parent:
            existing = self._parent[name]
            if existing != superclass and name != "Object":
                raise ValueError(
                    f"class {name} already registered with superclass "
                    f"{existing}, cannot change to {superclass}")
            return
        if superclass not in self._parent:
            # Auto-register unknown superclasses under Object so load order
            # does not matter (Ruby-style open-world loading).
            self.add_class(superclass)
        self._parent[name] = superclass
        self._mixins.setdefault(name, [])
        if typevars:
            self._typevars[name] = tuple(typevars)
        self._bump()

    def add_module(self, name: str) -> None:
        """Register a module (mixin); modules have no superclass."""
        if name in self._modules:
            return
        self._modules.add(name)
        self._mixins.setdefault(name, [])
        self._parent.setdefault(name, None)
        self._bump()

    def include_module(self, cls: str, module: str) -> None:
        """Mix ``module`` into ``cls`` (Ruby ``include``)."""
        if cls not in self._parent:
            self.add_class(cls)
        if module not in self._modules:
            self.add_module(module)
        mixins = self._mixins.setdefault(cls, [])
        if module not in mixins:
            mixins.insert(0, module)  # later includes take precedence
            self._bump()

    # -- queries -----------------------------------------------------------

    def is_known(self, name: str) -> bool:
        return name in self._parent

    def is_module(self, name: str) -> bool:
        return name in self._modules

    def superclass(self, name: str) -> Optional[str]:
        if name not in self._parent:
            raise UnknownClassError(name)
        return self._parent[name]

    def mixins(self, name: str) -> Tuple[str, ...]:
        return tuple(self._mixins.get(name, ()))

    def ancestors(self, name: str) -> Iterator[str]:
        """Linearized lookup order: the class, its mixins, then the
        superclass chain (each with its own mixins) — an MRO-lite."""
        return iter(self.linearization(name))

    def linearization(self, name: str) -> Tuple[str, ...]:
        """The ancestor walk as a cached tuple (signature resolution and
        subtyping are hot; the walk is rebuilt only after mutations)."""
        lin = self._linearizations.get(name)
        if lin is None:
            if name not in self._parent:
                raise UnknownClassError(name)
            out: List[str] = []
            current: Optional[str] = name
            while current is not None:
                out.append(current)
                out.extend(self._mixins.get(current, ()))
                current = self._parent.get(current)
            lin = tuple(out)
            self._linearizations[name] = lin
        return lin

    def is_subclass(self, sub: str, sup: str) -> bool:
        """True when ``sup`` appears in ``sub``'s ancestor linearization."""
        if sub == sup:
            return True
        if sub not in self._parent:
            return False
        ancestors = self._ancestor_sets.get(sub)
        if ancestors is None:
            ancestors = frozenset(self.linearization(sub))
            self._ancestor_sets[sub] = ancestors
        return sup in ancestors

    def typevars(self, name: str) -> Tuple[str, ...]:
        return self._typevars.get(name, ())

    def generic_arity(self, name: str) -> int:
        return len(self._typevars.get(name, ()))

    def class_names(self) -> Tuple[str, ...]:
        return tuple(self._parent)

    def snapshot(self) -> "ClassHierarchy":
        """A deep copy, used by engines that must not mutate the default."""
        out = ClassHierarchy()
        out._parent = dict(self._parent)
        out._mixins = {k: list(v) for k, v in self._mixins.items()}
        out._modules = set(self._modules)
        out._typevars = dict(self._typevars)
        out.version = self.version
        return out


def default_hierarchy() -> ClassHierarchy:
    """The built-in classes every engine starts from.

    Mirrors the Ruby core classes the paper's annotations cover, mapped onto
    Python host values: ``int`` is ``Integer``, ``float`` is ``Float``,
    ``str`` is ``String``, ``list`` is ``Array``, ``dict`` is ``Hash``.
    The numeric tower is ``Integer <= Numeric`` and ``Float <= Numeric``
    (the Bignum overflow case is omitted, exactly as in paper section 4).
    """
    h = ClassHierarchy()
    h.add_class("Comparable")
    h.add_class("Numeric", "Comparable")
    h.add_class("Integer", "Numeric")
    h.add_class("Float", "Numeric")
    h.add_class("String", "Comparable")
    h.add_class("Symbol")
    h.add_class("Boolean")
    h.add_class("NilClass")
    h.add_class("Array", typevars=("t",))
    h.add_class("Hash", typevars=("k", "v"))
    h.add_class("Range", typevars=("t",))
    h.add_class("Set", typevars=("t",))
    h.add_class("Proc")
    h.add_class("Time", "Comparable")
    h.add_class("Date", "Comparable")
    h.add_class("Regexp")
    h.add_class("IO")
    h.add_class("File", "IO")
    h.add_class("Exception")
    h.add_class("StandardError", "Exception")
    h.add_class("ArgumentError", "StandardError")
    h.add_class("TypeError", "StandardError")
    h.add_class("Struct")
    h.add_class("Kernel")
    return h
