"""Class hierarchy: superclass edges, module mixins, and generic arity.

The formalism omits inheritance for simplicity, but the paper's
implementation handles it (section 3), so we do too.  A
:class:`ClassHierarchy` records, per class name:

* its superclass (every class except ``Object`` has one),
* the modules mixed into it, in inclusion order (paper section 4 "Modules":
  module methods are tracked per *including* class, which is why the
  hierarchy needs mixin edges for method lookup), and
* its generic arity and the names of its type variables
  (``Array`` has one, ``Hash`` two).

``BasicObject``-style roots are not modelled; ``Object`` is the root.

Invalidation contract (the dependency-tracked scheme):

* every structural mutation computes exactly which classes' ancestor
  linearizations it changed — a new leaf class or module changes
  *nobody's*; ``include_module(cls, m)`` changes ``cls`` and every class
  that linearizes through it — and reports that *affected set* to
  registered :meth:`on_change` listeners (the engine maps each name to a
  ``("lin", name)`` dependency edge);
* the per-class linearization/ancestor-set memos are dropped only for
  affected classes;
* the subtype memo evicts only the lines whose recorded hierarchy reads
  intersect the affected set (see :class:`SubtypeCache`).

Read tracing: while a :meth:`trace` context is active, every hierarchy
query records the class names it consulted — including *negative*
lookups, so registering a previously-unknown class invalidates answers
that observed its absence.  The subtype memo stores each line's read set
and replays it into the active trace on a hit, keeping outer read sets
complete without re-walking.  Trace stacks are **thread-local**: one
hierarchy serves many request threads, and an inner trace must merge
into *its own thread's* enclosing trace, never another's.

Concurrency discipline (lock-free read, locked write):

* queries read the edge dicts with bare ``dict.get`` — atomic under the
  GIL, no lock;
* structural mutations hold :attr:`ClassHierarchy.lock` (re-entrant;
  the engine replaces it with its own writer lock so hierarchy
  mutations serialize with every other engine mutation) and mutate
  copy-on-write, so a concurrent reader sees the old edges or the new
  edges, never a half-rewritten list;
* the linearization/ancestor-set memos are *version-guarded*: a reader
  that rebuilt a walk stores it only if no mutation ran meanwhile
  (otherwise the stale walk would be memoized *after* the mutation's
  memo flush — the lost-invalidation race);
* the subtype memo's store path is epoch-guarded the same way, and its
  LRU bookkeeping takes an internal leaf lock (never held while calling
  back out).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import (
    Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Set,
    Tuple,
)


class UnknownClassError(KeyError):
    """Raised when a class name is not registered in the hierarchy."""


class SubtypeCache:
    """Memoized ``is_subtype`` answers for one hierarchy — a bounded LRU.

    Each line maps ``(s, t, strict_nil)`` to ``(answer, reads)`` where
    ``reads`` is the frozenset of class names whose hierarchy placement
    the computation consulted.  The cache is owned by the hierarchy
    because answers depend on its edges: a structural mutation evicts
    exactly the lines whose reads intersect the affected classes
    (:meth:`invalidate_classes`), so a stored answer is always valid for
    the current hierarchy.  When full, the least-recently-used line is
    evicted (``evictions`` counts them) instead of dropping the table
    wholesale — hot pairs stay resident across overflow.  Queries that
    carry a method resolver (structural-type checks) bypass the cache
    entirely — see ``repro.rtypes.subtype.is_subtype``.
    """

    __slots__ = ("table", "hits", "misses", "evictions", "enabled",
                 "max_entries", "_by_class", "_lock", "epoch")

    def __init__(self, max_entries: int = 16384) -> None:
        #: key -> (answer, reads); ordered oldest-first for LRU eviction.
        self.table: "OrderedDict[tuple, Tuple[bool, FrozenSet[str]]]" = \
            OrderedDict()
        #: hit/miss counters are bumped on the unlocked read path, so
        #: under concurrency they are monotonic but may undercount
        #: (approximate observability; the engine Stats shards are the
        #: exact ones).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.enabled = True
        self.max_entries = max_entries
        #: leaf lock for stores/evictions/invalidation; never held while
        #: calling out, so it cannot participate in a lock cycle.
        self._lock = threading.Lock()
        #: bumped by every invalidation; :meth:`store` discards lines
        #: computed before a concurrent invalidation wave.
        self.epoch = 0
        #: class name -> keys of lines whose reads include it.
        self._by_class: Dict[str, Set[tuple]] = {}

    def store(self, key: tuple, answer: bool, reads: FrozenSet[str],
              epoch: Optional[int] = None) -> bool:
        """Insert a memo line unless the hierarchy was mutated since the
        caller snapshotted ``epoch``.  Returns whether it was stored."""
        with self._lock:
            if epoch is not None and epoch != self.epoch:
                return False
            table = self.table
            if key in table:
                self._unindex(key)
            while len(table) >= self.max_entries:
                old_key, (_, old_reads) = table.popitem(last=False)
                self.evictions += 1
                self._unindex(old_key, old_reads)
            table[key] = (answer, reads)
            by_class = self._by_class
            for name in reads:
                bucket = by_class.get(name)
                if bucket is None:
                    by_class[name] = {key}
                else:
                    bucket.add(key)
            return True

    def touch(self, key: tuple) -> None:
        """Opportunistic LRU recency bump for a hit: contended attempts
        are simply skipped (recency is a heuristic; a read must never
        block on the memo's bookkeeping)."""
        lock = self._lock
        if lock.acquire(blocking=False):
            try:
                if key in self.table:
                    self.table.move_to_end(key)
            finally:
                lock.release()

    def _unindex(self, key: tuple,
                 reads: Optional[FrozenSet[str]] = None) -> None:
        if reads is None:
            line = self.table.get(key)
            if line is None:
                return
            reads = line[1]
        by_class = self._by_class
        for name in reads:
            bucket = by_class.get(name)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del by_class[name]

    def invalidate_classes(self, names) -> int:
        """Evict every line whose reads mention any of ``names``."""
        with self._lock:
            self.epoch += 1
            stale: Set[tuple] = set()
            by_class = self._by_class
            for name in names:
                stale |= by_class.pop(name, set())
            for key in stale:
                line = self.table.pop(key, None)
                if line is not None:
                    self._unindex(key, line[1])
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self.epoch += 1
            self.table.clear()
            self._by_class.clear()


class ClassHierarchy:
    """A registry of class names with superclass, mixin, and generic info.

    Mutations bump :attr:`version` (kept for observability and for
    snapshot comparison) and notify :meth:`on_change` listeners with the
    precise set of classes whose linearizations changed, so dependent
    caches invalidate per key instead of wholesale.
    """

    def __init__(self) -> None:
        self._parent: Dict[str, Optional[str]] = {"Object": None}
        self._mixins: Dict[str, List[str]] = {"Object": []}
        self._modules: set = set()
        self._typevars: Dict[str, Tuple[str, ...]] = {}
        #: bumped on every structural change (new class/module/mixin edge);
        #: doubles as the version guard for the walk memos below.
        self.version = 0
        #: writer lock for structural mutations and memo stores.  Public
        #: and replaceable: the engine assigns its own re-entrant writer
        #: lock here so hierarchy mutations serialize with every other
        #: engine mutation under a single lock (no ordering cycles).
        self.lock = threading.RLock()
        self.subtype_cache = SubtypeCache()
        #: memoize linearizations/ancestor sets; the cache-disabled
        #: differential oracle turns this off to recompute every walk.
        self.memo_enabled = True
        self._linearizations: Dict[str, Tuple[str, ...]] = {}
        self._ancestor_sets: Dict[str, frozenset] = {}
        self._listeners: List[Callable[[FrozenSet[str]], None]] = []
        #: per-thread stacks of active read-trace sets (see :meth:`trace`).
        self._trace_tl = threading.local()

    # -- read tracing ------------------------------------------------------

    def _trace_frames(self) -> List[Set[str]]:
        frames = getattr(self._trace_tl, "frames", None)
        if frames is None:
            frames = self._trace_tl.frames = []
        return frames

    @contextmanager
    def trace(self):
        """Collect the class names consulted while the context is active.

        Traces nest *per thread*: popping an inner trace merges its reads
        into the same thread's enclosing one, so an outer consumer (a
        checked derivation) sees the union of everything its sub-queries
        read — and never another thread's reads.
        """
        reads: Set[str] = set()
        stack = self._trace_frames()
        stack.append(reads)
        try:
            yield reads
        finally:
            stack.pop()
            if stack:
                stack[-1] |= reads

    def _touch(self, name: str) -> None:
        stack = getattr(self._trace_tl, "frames", None)
        if stack:
            stack[-1].add(name)

    def replay_reads(self, names) -> None:
        """Merge a memoized read set into the active trace (if any)."""
        stack = getattr(self._trace_tl, "frames", None)
        if stack:
            stack[-1] |= names

    # -- change notification -----------------------------------------------

    def on_change(self, listener: Callable[[FrozenSet[str]], None]) -> None:
        """Register a callback fired with the affected class-name set."""
        self._listeners.append(listener)

    def _changed(self, affected: Set[str]) -> None:
        self.version += 1
        for name in affected:
            self._linearizations.pop(name, None)
            self._ancestor_sets.pop(name, None)
        self.subtype_cache.invalidate_classes(affected)
        frozen = frozenset(affected)
        for listener in self._listeners:
            listener(frozen)

    def _classes_linearizing_through(self, name: str) -> Set[str]:
        """Every class whose current linearization mentions ``name``
        (computed *before* a mutation, to know whom it will affect)."""
        affected = {name}
        for cls in self._parent:
            if cls == name or cls in affected:
                continue
            if name in self.linearization(cls):
                affected.add(cls)
        return affected

    # -- registration ------------------------------------------------------

    def add_class(self, name: str, superclass: str = "Object",
                  typevars: Sequence[str] = ()) -> None:
        """Register ``name`` with the given superclass and type variables.

        Re-registering with the same superclass is harmless (mirrors Ruby's
        re-opening of classes); changing the superclass is an error.  A new
        class appears in no existing linearization, so only ``name`` itself
        is reported as affected — warm caches for other classes survive.
        """
        with self.lock:
            if name in self._parent:
                existing = self._parent[name]
                if existing != superclass and name != "Object":
                    raise ValueError(
                        f"class {name} already registered with superclass "
                        f"{existing}, cannot change to {superclass}")
                return
            if superclass not in self._parent:
                # Auto-register unknown superclasses under Object so load
                # order does not matter (Ruby-style open-world loading).
                self.add_class(superclass)
            self._parent[name] = superclass
            self._mixins.setdefault(name, [])
            if typevars:
                self._typevars[name] = tuple(typevars)
            self._changed({name})

    def add_module(self, name: str) -> None:
        """Register a module (mixin); modules have no superclass."""
        with self.lock:
            if name in self._modules:
                return
            self._modules.add(name)
            self._mixins.setdefault(name, [])
            self._parent.setdefault(name, None)
            self._changed({name})

    def include_module(self, cls: str, module: str) -> None:
        """Mix ``module`` into ``cls`` (Ruby ``include``).

        This is the one mutation that rewrites *existing* linearizations:
        ``cls``'s and that of every class inheriting through it.  Exactly
        those classes are reported as affected.
        """
        with self.lock:
            if cls not in self._parent:
                self.add_class(cls)
            if module not in self._modules:
                self.add_module(module)
            mixins = self._mixins.setdefault(cls, [])
            if module not in mixins:
                affected = self._classes_linearizing_through(cls)
                # Copy-on-write (later includes take precedence): a
                # concurrent reader walking the old list sees old-or-new
                # atomically, never a list mutated mid-iteration.
                self._mixins[cls] = [module] + mixins
                self._changed(affected)

    # -- queries -----------------------------------------------------------

    def is_known(self, name: str) -> bool:
        self._touch(name)
        return name in self._parent

    def is_module(self, name: str) -> bool:
        self._touch(name)
        return name in self._modules

    def is_leaf(self, name: str) -> bool:
        """True when no registered class subclasses ``name`` and nothing
        mixes it in — i.e. every live instance whose RDL class is ``name``
        is *exactly* a ``name`` today.

        This is a whole-hierarchy negative fact, so unlike the other
        queries it scans under the lock (it runs at promotion time, not
        per call).  Consumers that cache a leaf verdict must pin it on
        the ``("lin", name)`` resource: the engine bumps the *parent's*
        lin edge when a genuinely-new subclass registers, and module
        inclusion bumps the included name itself.
        """
        self._touch(name)
        with self.lock:
            if any(parent == name for parent in self._parent.values()):
                return False
            return all(name not in mixed for mixed in self._mixins.values())

    def superclass(self, name: str) -> Optional[str]:
        self._touch(name)
        if name not in self._parent:
            raise UnknownClassError(name)
        return self._parent[name]

    def mixins(self, name: str) -> Tuple[str, ...]:
        self._touch(name)
        return tuple(self._mixins.get(name, ()))

    def ancestors(self, name: str) -> Iterator[str]:
        """Linearized lookup order: the class, its mixins, then the
        superclass chain (each with its own mixins) — an MRO-lite."""
        return iter(self.linearization(name))

    def linearization(self, name: str) -> Tuple[str, ...]:
        """The ancestor walk as a cached tuple (signature resolution and
        subtyping are hot; the walk is rebuilt only after mutations that
        actually touched this class's ancestry)."""
        self._touch(name)
        lin = self._linearizations.get(name) if self.memo_enabled else None
        if lin is None:
            if name not in self._parent:
                raise UnknownClassError(name)
            ver = self.version
            out: List[str] = []
            current: Optional[str] = name
            while current is not None:
                out.append(current)
                out.extend(self._mixins.get(current, ()))
                current = self._parent.get(current)
            lin = tuple(out)
            if self.memo_enabled:
                # Version-guarded store: if a mutation ran while we
                # walked, this walk may predate the mutation's memo flush
                # and must not be memoized after it.
                with self.lock:
                    if ver == self.version:
                        self._linearizations[name] = lin
        return lin

    def is_subclass(self, sub: str, sup: str) -> bool:
        """True when ``sup`` appears in ``sub``'s ancestor linearization."""
        if sub == sup:
            return True
        self._touch(sub)
        if sub not in self._parent:
            return False
        ancestors = self._ancestor_sets.get(sub) if self.memo_enabled \
            else None
        if ancestors is None:
            ver = self.version
            ancestors = frozenset(self.linearization(sub))
            if self.memo_enabled:
                with self.lock:  # same version guard as linearization
                    if ver == self.version:
                        self._ancestor_sets[sub] = ancestors
        return sup in ancestors

    def typevars(self, name: str) -> Tuple[str, ...]:
        self._touch(name)
        return self._typevars.get(name, ())

    def generic_arity(self, name: str) -> int:
        self._touch(name)
        return len(self._typevars.get(name, ()))

    def class_names(self) -> Tuple[str, ...]:
        return tuple(self._parent)

    def snapshot(self) -> "ClassHierarchy":
        """A deep copy, used by engines that must not mutate the default.
        Listeners, memo state, and the lock are deliberately not carried
        over (the copy gets a fresh lock of its own)."""
        with self.lock:
            out = ClassHierarchy()
            out._parent = dict(self._parent)
            out._mixins = {k: list(v) for k, v in self._mixins.items()}
            out._modules = set(self._modules)
            out._typevars = dict(self._typevars)
            out.version = self.version
            return out


def default_hierarchy() -> ClassHierarchy:
    """The built-in classes every engine starts from.

    Mirrors the Ruby core classes the paper's annotations cover, mapped onto
    Python host values: ``int`` is ``Integer``, ``float`` is ``Float``,
    ``str`` is ``String``, ``list`` is ``Array``, ``dict`` is ``Hash``.
    The numeric tower is ``Integer <= Numeric`` and ``Float <= Numeric``
    (the Bignum overflow case is omitted, exactly as in paper section 4).
    """
    h = ClassHierarchy()
    h.add_class("Comparable")
    h.add_class("Numeric", "Comparable")
    h.add_class("Integer", "Numeric")
    h.add_class("Float", "Numeric")
    h.add_class("String", "Comparable")
    h.add_class("Symbol")
    h.add_class("Boolean")
    h.add_class("NilClass")
    h.add_class("Array", typevars=("t",))
    h.add_class("Hash", typevars=("k", "v"))
    h.add_class("Range", typevars=("t",))
    h.add_class("Set", typevars=("t",))
    h.add_class("Proc")
    h.add_class("Time", "Comparable")
    h.add_class("Date", "Comparable")
    h.add_class("Regexp")
    h.add_class("IO")
    h.add_class("File", "IO")
    h.add_class("Exception")
    h.add_class("StandardError", "Exception")
    h.add_class("ArgumentError", "StandardError")
    h.add_class("TypeError", "StandardError")
    h.add_class("Struct")
    h.add_class("Kernel")
    return h
