"""Tokenizer for the RDL-style type annotation language.

The surface syntax mirrors RDL's:

* ``(User, ?String, *Integer) { (T) -> U } -> %bool`` — method types
* ``Array<Integer>`` — generics
* ``[Integer, String]`` — tuples; ``[to_s: () -> String]`` — structural types
* ``{name: String}`` — finite hashes
* ``A or B``, ``A and B`` — unions and intersections
* ``:sym``, ``42`` — singletons; ``%any``, ``%bool``, ``%bot``, ``nil``,
  ``self`` — specials
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


class TypeSyntaxError(ValueError):
    """Raised for malformed type annotation strings."""

    def __init__(self, message: str, text: str, pos: int):
        super().__init__(f"{message} at position {pos} in {text!r}")
        self.text = text
        self.pos = pos


@dataclass(frozen=True)
class Token:
    kind: str        # NAME, LNAME, SYMBOL, INT, SPECIAL, punctuation kinds
    value: str
    pos: int


_PUNCT = {
    "(": "LPAREN", ")": "RPAREN",
    "<": "LT", ">": "GT",
    "[": "LBRACK", "]": "RBRACK",
    "{": "LBRACE", "}": "RBRACE",
    ",": "COMMA", ":": "COLON",
    "?": "QUESTION", "*": "STAR",
}

_KEYWORDS = {"or": "OR", "and": "AND", "nil": "NIL", "self": "SELF"}


def tokenize(text: str) -> List[Token]:
    """Tokenize a type annotation string; raises :class:`TypeSyntaxError`."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("->", i):
            yield Token("ARROW", "->", i)
            i += 2
            continue
        if ch in _PUNCT:
            yield Token(_PUNCT[ch], ch, i)
            i += 1
            continue
        if ch == "%":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word not in ("%any", "%bool", "%bot"):
                raise TypeSyntaxError(f"unknown special type {word!r}", text, i)
            yield Token("SPECIAL", word, i)
            i = j
            continue
        if ch == ":":  # unreachable: ':' is punctuation; symbols handled below
            i += 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            yield Token("INT", text[i:j], i)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word in _KEYWORDS:
                yield Token(_KEYWORDS[word], word, i)
            elif word[0].isupper():
                yield Token("NAME", word, i)
            else:
                yield Token("LNAME", word, i)
            i = j
            continue
        raise TypeSyntaxError(f"unexpected character {ch!r}", text, i)
    yield Token("EOF", "", n)


def tokenize_with_symbols(text: str) -> List[Token]:
    """Tokenize, merging ``COLON NAME/LNAME`` pairs into SYMBOL tokens when
    the colon is in prefix position (start, or after a delimiter)."""
    raw = tokenize(text)
    out: List[Token] = []
    i = 0
    prefix_ok = {"LPAREN", "LBRACK", "LBRACE", "COMMA", "ARROW", "LT",
                 "OR", "AND", "COLON", "QUESTION", "STAR"}
    while i < len(raw):
        tok = raw[i]
        if (tok.kind == "COLON" and i + 1 < len(raw)
                and raw[i + 1].kind in ("NAME", "LNAME")
                and (not out or out[-1].kind in prefix_ok)):
            out.append(Token("SYMBOL", raw[i + 1].value, tok.pos))
            i += 2
            continue
        out.append(tok)
        i += 1
    return out
