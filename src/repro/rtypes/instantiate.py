"""Type-variable substitution and receiver-side instantiation.

When the checker looks up ``push`` on a receiver of type ``Array<Integer>``,
the stored signature ``(t) -> Array<t>`` must be instantiated with
``t := Integer``; on a *raw* ``Array`` receiver the paper's rule applies —
raw generics behave as if instantiated at ``%any`` until a cast adds
parameters.  ``self`` types are resolved to the receiver type at the same
moment.
"""

from __future__ import annotations

from typing import Dict, Set

from .hierarchy import ClassHierarchy
from .types import (
    ANY,
    BlockType, FiniteHashType, GenericType, IntersectionType, MethodType,
    NominalType, OptionalParam, Param, RequiredParam, SelfType,
    StructuralType, TupleType, Type, UnionType, VarType, VarargParam,
    intersection_of, union_of,
)


def free_vars(t: Type) -> Set[str]:
    """The names of type variables occurring in ``t``."""
    out: Set[str] = set()
    _collect(t, out)
    return out


def _collect(t: Type, out: Set[str]) -> None:
    if isinstance(t, VarType):
        out.add(t.name)
    elif isinstance(t, GenericType):
        for a in t.args:
            _collect(a, out)
    elif isinstance(t, TupleType):
        for e in t.elems:
            _collect(e, out)
    elif isinstance(t, FiniteHashType):
        for _, v in t.fields:
            _collect(v, out)
    elif isinstance(t, (UnionType, IntersectionType)):
        for a in t.arms:
            _collect(a, out)
    elif isinstance(t, MethodType):
        for p in t.params:
            _collect(p.ty, out)
        if t.block is not None:
            _collect(t.block.sig, out)
        _collect(t.ret, out)
    elif isinstance(t, StructuralType):
        for _, sig in t.methods:
            _collect(sig, out)


def substitute(t: Type, mapping: Dict[str, Type]) -> Type:
    """Replace type variables in ``t`` according to ``mapping``.

    Unmapped variables are left untouched, so partial instantiation works.
    """
    if not mapping:
        return t
    return _subst(t, mapping)


def _subst(t: Type, m: Dict[str, Type]) -> Type:
    if isinstance(t, VarType):
        return m.get(t.name, t)
    if isinstance(t, GenericType):
        return GenericType(t.name, tuple(_subst(a, m) for a in t.args))
    if isinstance(t, TupleType):
        return TupleType(tuple(_subst(e, m) for e in t.elems))
    if isinstance(t, FiniteHashType):
        return FiniteHashType(tuple((k, _subst(v, m)) for k, v in t.fields))
    if isinstance(t, UnionType):
        return union_of(*(_subst(a, m) for a in t.arms))
    if isinstance(t, IntersectionType):
        return intersection_of(*(_subst(a, m) for a in t.arms))
    if isinstance(t, MethodType):
        return MethodType(tuple(_subst_param(p, m) for p in t.params),
                          (BlockType(_subst(t.block.sig, m), t.block.optional)
                           if t.block is not None else None),
                          _subst(t.ret, m))
    if isinstance(t, StructuralType):
        return StructuralType(tuple((n, _subst(sig, m))
                                    for n, sig in t.methods))
    return t


def _subst_param(p: Param, m: Dict[str, Type]) -> Param:
    if isinstance(p, RequiredParam):
        return RequiredParam(_subst(p.ty, m))
    if isinstance(p, OptionalParam):
        return OptionalParam(_subst(p.ty, m))
    if isinstance(p, VarargParam):
        return VarargParam(_subst(p.ty, m))
    raise TypeError(f"unknown param kind {p!r}")


def resolve_self(t: Type, self_ty: Type) -> Type:
    """Replace ``self`` with the receiver type ``self_ty``."""
    if isinstance(t, SelfType):
        return self_ty
    if isinstance(t, GenericType):
        return GenericType(t.name,
                           tuple(resolve_self(a, self_ty) for a in t.args))
    if isinstance(t, TupleType):
        return TupleType(tuple(resolve_self(e, self_ty) for e in t.elems))
    if isinstance(t, FiniteHashType):
        return FiniteHashType(tuple((k, resolve_self(v, self_ty))
                                    for k, v in t.fields))
    if isinstance(t, UnionType):
        return union_of(*(resolve_self(a, self_ty) for a in t.arms))
    if isinstance(t, IntersectionType):
        return intersection_of(*(resolve_self(a, self_ty) for a in t.arms))
    if isinstance(t, MethodType):
        return MethodType(
            tuple(_self_param(p, self_ty) for p in t.params),
            (BlockType(resolve_self(t.block.sig, self_ty), t.block.optional)
             if t.block is not None else None),
            resolve_self(t.ret, self_ty))
    return t


def _self_param(p: Param, self_ty: Type) -> Param:
    if isinstance(p, RequiredParam):
        return RequiredParam(resolve_self(p.ty, self_ty))
    if isinstance(p, OptionalParam):
        return OptionalParam(resolve_self(p.ty, self_ty))
    if isinstance(p, VarargParam):
        return VarargParam(resolve_self(p.ty, self_ty))
    raise TypeError(f"unknown param kind {p!r}")


def receiver_bindings(recv: Type, hier: ClassHierarchy) -> Dict[str, Type]:
    """Type-variable bindings induced by a receiver type.

    ``Array<Integer>`` binds ``t := Integer``; a raw ``Array`` binds
    ``t := %any`` (the paper's raw-generic default); non-generic receivers
    bind nothing.
    """
    if isinstance(recv, GenericType):
        names = hier.typevars(recv.name)
        if len(names) == len(recv.args):
            return dict(zip(names, recv.args))
        return {}
    if isinstance(recv, NominalType):
        names = hier.typevars(recv.name)
        return {n: ANY for n in names}
    if isinstance(recv, TupleType):
        # Tuples respond to Array methods; bind t to the element join-as-union.
        if not recv.elems:
            return {"t": ANY}
        return {"t": union_of(*recv.elems)}
    if isinstance(recv, FiniteHashType):
        if not recv.fields:
            return {"k": ANY, "v": ANY}
        from .types import SingletonType
        keys = union_of(*(SingletonType(k, "Symbol") for k, _ in recv.fields))
        vals = union_of(*(v for _, v in recv.fields))
        return {"k": keys, "v": vals}
    return {}


def instantiate_for_receiver(mt: MethodType, recv: Type,
                             hier: ClassHierarchy) -> MethodType:
    """Instantiate a stored method signature for a concrete receiver type:
    bind the receiver class's type variables and resolve ``self``."""
    bound = substitute(mt, receiver_bindings(recv, hier))
    resolved = resolve_self(bound, recv)
    assert isinstance(resolved, MethodType)
    return resolved
