"""Mapping host-language (Python) run-time values onto RDL types.

Two operations:

* :func:`type_of` — the ``type_of(v)`` of the paper's dynamic semantics,
  extended from {nil, [A]} to the full host language.  Used by the engine's
  dynamic argument checks (EApp* side conditions).
* :func:`value_conforms` — a *deep* check ``v : t`` used by ``rdl_cast``
  (the paper iterates through arrays/hashes when casting to a generic) and
  by dynamic checks against generic expected types.

User-defined classes map to their Python class name; Ruby symbols are
modelled by :class:`Sym`, an interned identifier class the substrates use
for things like Rails ``params`` keys.
"""

from __future__ import annotations

import datetime
from typing import Callable, Optional

from .hierarchy import ClassHierarchy
from .subtype import is_subtype
from .types import (
    ANY, BOOL, NIL,
    AnyType, BoolType, BotType, ClassObjectType, FiniteHashType, GenericType,
    IntersectionType, MethodType, NilType, NominalType, SelfType,
    SingletonType, StructuralType, TupleType, Type, UnionType, VarType,
    union_of,
)


class Sym:
    """An interned symbol, the host stand-in for Ruby's ``Symbol``.

    ``Sym("owner") is Sym("owner")`` holds, mirroring Ruby symbol identity.
    """

    _interned: dict = {}
    __slots__ = ("name",)

    def __new__(cls, name: str) -> "Sym":
        existing = cls._interned.get(name)
        if existing is not None:
            return existing
        sym = super().__new__(cls)
        object.__setattr__(sym, "name", name)
        # setdefault is atomic under the GIL: if two threads race to
        # intern the same name, both get the single winner — identity
        # (which Sym equality and dict keys rely on) stays an invariant.
        return cls._interned.setdefault(name, sym)

    def __setattr__(self, *_args) -> None:
        raise AttributeError("Sym is immutable")

    def __repr__(self) -> str:
        return f":{self.name}"

    def __str__(self) -> str:
        return self.name

    def to_s(self) -> str:
        return self.name


# Sample at most this many elements when computing the type of a collection.
_SAMPLE_LIMIT = 50

# host class -> RDL class name.  class_name_of runs on every intercepted
# call (the engine keys checking by the receiver's class), and its answer
# depends only on the value's exact class, so one isinstance cascade per
# distinct host class suffices.  Lock-free under threads: the mapping is
# idempotent (racing writers store the same value), and dict get/set are
# each atomic under the GIL.
_CLASS_NAME_MEMO: dict = {}


def class_name_of(value: object) -> str:
    """The RDL class name for a host value (``int`` -> ``Integer`` etc.)."""
    if value is None:
        return "NilClass"
    cls = type(value)
    name = _CLASS_NAME_MEMO.get(cls)
    if name is None:
        name = _class_name_of_uncached(value)
        _CLASS_NAME_MEMO[cls] = name
    return name


def _class_name_of_uncached(value: object) -> str:
    if isinstance(value, bool):
        return "Boolean"
    if isinstance(value, int):
        return "Integer"
    if isinstance(value, float):
        return "Float"
    if isinstance(value, str):
        return "String"
    if isinstance(value, Sym):
        return "Symbol"
    if isinstance(value, list):
        return "Array"
    if isinstance(value, tuple):
        return "Array"
    if isinstance(value, dict):
        return "Hash"
    if isinstance(value, set):
        return "Set"
    if isinstance(value, range):
        return "Range"
    if isinstance(value, (datetime.datetime, datetime.date)):
        return "Time"
    if isinstance(value, type):
        return "Class"
    if callable(value):
        return "Proc"
    return type(value).__name__


def type_of(value: object) -> Type:
    """The run-time type of a host value.

    Collections are typed by joining a sample of their element types
    (capped, so dynamic checks stay cheap); empty collections are typed at
    ``%any`` elements, matching the raw-generic default.
    """
    if value is None:
        return NIL
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return NominalType("Integer")
    if isinstance(value, float):
        return NominalType("Float")
    if isinstance(value, str):
        return NominalType("String")
    if isinstance(value, Sym):
        return SingletonType(value.name, "Symbol")
    if isinstance(value, (list, tuple)):
        return GenericType("Array", (_elem_type(list(value)),))
    if isinstance(value, dict):
        return GenericType("Hash", (_elem_type(list(value.keys())),
                                    _elem_type(list(value.values()))))
    if isinstance(value, set):
        return GenericType("Set", (_elem_type(list(value)),))
    if isinstance(value, range):
        return GenericType("Range", (NominalType("Integer"),))
    if isinstance(value, (datetime.datetime, datetime.date)):
        return NominalType("Time")
    if isinstance(value, type):
        return ClassObjectType(value.__name__)
    if callable(value):
        return NominalType("Proc")
    return NominalType(type(value).__name__)


def _elem_type(items: list) -> Type:
    if not items:
        return ANY
    sample = items[:_SAMPLE_LIMIT]
    arms = {type_of(v) for v in sample}
    if len(items) > _SAMPLE_LIMIT:
        arms.add(ANY)
    return union_of(*arms) if arms else ANY


def value_conforms(value: object, t: Type, hier: ClassHierarchy, *,
                   strict_nil: bool = False) -> bool:
    """Deep run-time conformance check ``value : t``.

    Unlike ``is_subtype(type_of(v), t)``, this iterates through collections
    against generic element types (the paper's ``rdl_cast`` behaviour) and
    checks finite-hash fields one by one.
    """
    if isinstance(t, (AnyType, VarType)):
        return True
    if value is None:
        return strict_nil is False or isinstance(t, NilType) or (
            isinstance(t, NominalType) and t.name == "NilClass") or (
            isinstance(t, UnionType)
            and any(value_conforms(value, a, hier, strict_nil=strict_nil)
                    for a in t.arms))
    if isinstance(t, NilType):
        return value is None
    if isinstance(t, BotType):
        return False
    if isinstance(t, UnionType):
        return any(value_conforms(value, a, hier, strict_nil=strict_nil)
                   for a in t.arms)
    if isinstance(t, IntersectionType):
        return all(value_conforms(value, a, hier, strict_nil=strict_nil)
                   for a in t.arms)
    if isinstance(t, BoolType):
        return isinstance(value, bool)
    if isinstance(t, SingletonType):
        if t.base == "Symbol":
            return isinstance(value, Sym) and value.name == t.value
        return value == t.value and not isinstance(value, bool)
    if isinstance(t, SelfType):
        return True  # resolved before dynamic checks in well-formed engines
    if isinstance(t, TupleType):
        if not isinstance(value, (list, tuple)):
            return False
        return (len(value) == len(t.elems)
                and all(value_conforms(v, e, hier, strict_nil=strict_nil)
                        for v, e in zip(value, t.elems)))
    if isinstance(t, FiniteHashType):
        if not isinstance(value, dict):
            return False
        for key, ft in t.fields:
            if Sym(key) in value:
                item = value[Sym(key)]
            elif key in value:
                item = value[key]
            else:
                return isinstance(ft, NilType) or _allows_nil(ft, hier,
                                                              strict_nil)
            if not value_conforms(item, ft, hier, strict_nil=strict_nil):
                return False
        return True
    if isinstance(t, GenericType):
        if not is_subtype(NominalType(class_name_of(value)),
                          NominalType(t.name), hier, strict_nil=strict_nil):
            return False
        if t.name in ("Array", "Set") and len(t.args) == 1 and isinstance(
                value, (list, tuple, set)):
            return all(value_conforms(v, t.args[0], hier,
                                      strict_nil=strict_nil) for v in value)
        if t.name == "Hash" and len(t.args) == 2 and isinstance(value, dict):
            key_t, val_t = t.args
            return all(
                value_conforms(k, key_t, hier, strict_nil=strict_nil)
                and value_conforms(v, val_t, hier, strict_nil=strict_nil)
                for k, v in value.items())
        return True
    if isinstance(t, ClassObjectType):
        return (isinstance(value, type)
                and hier.is_subclass(value.__name__, t.name))
    if isinstance(t, MethodType):
        return callable(value)
    if isinstance(t, StructuralType):
        return all(hasattr(value, name) for name, _ in t.methods)
    if isinstance(t, NominalType):
        # Equivalent to is_subtype(type_of(value), t, ...) but skips
        # collection element sampling: against a *nominal* expectation the
        # subtype rules only consult the value's class name (GenericType /
        # SingletonType / %bool sources all reduce to their base class).
        return is_subtype(NominalType(class_name_of(value)), t, hier,
                          strict_nil=strict_nil)
    return False


def is_class_determined(t: Type) -> bool:
    """True when ``value_conforms(v, t, ...)`` depends only on ``type(v)``.

    This is what makes an argument-class *profile* a sound inline-cache
    guard (the engine's call plans): once a call with argument classes
    ``(C1, ..., Cn)`` passed the dynamic check against such types, any
    later call with the same classes must pass too.  Deep or
    value-dependent expectations (generics with element types, tuples,
    finite hashes, singletons, structural types, class objects) are
    excluded.
    """
    if isinstance(t, (AnyType, VarType, BoolType, NilType, NominalType,
                      MethodType, SelfType, BotType)):
        return True
    if isinstance(t, (UnionType, IntersectionType)):
        return all(is_class_determined(a) for a in t.arms)
    return False


def _allows_nil(t: Type, hier: ClassHierarchy, strict_nil: bool) -> bool:
    return is_subtype(NIL, t, hier, strict_nil=strict_nil)
