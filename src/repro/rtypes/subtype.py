"""Subtyping and least upper bounds for the RDL type language.

The relation follows the paper:

* ``nil <= A`` for every ``A`` (formalism, section 3) — standard for
  languages with ``nil``.  A *strict-nil* mode (ablation) turns this off.
* ``A <= A`` and nominal subtyping through the class hierarchy (the
  implementation handles inheritance even though the formalism omits it).
* ``%any`` is RDL's dynamic type: compatible in both directions.
* Union receivers/arguments use the usual arm-wise rules.
* Method types are contravariant in parameters and blocks, covariant in
  return types.

:func:`join` is the least upper bound used at conditional merges:
``A ⊔ A = A`` and ``nil ⊔ τ = τ`` exactly as in the paper's (TIf); unrelated
types join to a union (more precise than climbing to ``Object``).
"""

from __future__ import annotations

from typing import Callable, Optional

from .hierarchy import ClassHierarchy
from .types import (
    ANY, BOOL, NIL,
    AnyType, BlockType, BoolType, BotType, ClassObjectType, FiniteHashType,
    GenericType, IntersectionType, MethodType, NilType, NominalType,
    OptionalParam, RequiredParam, SelfType, SingletonType, StructuralType,
    TupleType, Type, UnionType, VarType, VarargParam,
    union_of,
)

# Resolves (class name, method name) -> method Type, for structural checks.
MethodResolver = Callable[[str, str], Optional[Type]]


def is_subtype(s: Type, t: Type, hier: ClassHierarchy, *,
               strict_nil: bool = False,
               resolver: Optional[MethodResolver] = None) -> bool:
    """True when ``s <= t`` under hierarchy ``hier``.

    Memoized per hierarchy: answers live in ``hier.subtype_cache``, a
    bounded LRU keyed ``(s, t, strict_nil)``.  Each line also records the
    class names whose hierarchy placement the computation consulted, so
    a structural mutation evicts exactly the lines it could have changed
    (dependency-tracked invalidation) and an overflow evicts the
    least-recently-used line instead of the whole table.  This is safe
    because types are immutable (and usually interned, making the key
    hash cheap).  Queries carrying a ``resolver`` bypass the cache —
    structural checks depend on which method table the resolver reads,
    which is not part of the key.
    """
    if s is t:
        return True
    cache = hier.subtype_cache
    if resolver is not None or not cache.enabled:
        return _is_subtype(s, t, hier, strict_nil, resolver)
    key = (s, t, strict_nil)
    line = cache.table.get(key)
    if line is not None:
        cache.hits += 1      # approximate under threads (monotonic)
        cache.touch(key)     # opportunistic LRU recency; never blocks
        answer, reads = line
        if reads:
            # Keep enclosing read traces complete: a memo hit consulted
            # (transitively) everything the original computation did.
            hier.replay_reads(reads)
        return answer
    cache.misses += 1
    # Epoch-guarded store: if a hierarchy mutation invalidates lines
    # while we compute, this answer may predate the mutation and must
    # not be memoized after its eviction wave (lost-invalidation race).
    epoch = cache.epoch
    with hier.trace() as reads:
        result = _is_subtype(s, t, hier, strict_nil, None)
    cache.store(key, result, frozenset(reads), epoch=epoch)
    return result


def _is_subtype(s: Type, t: Type, hier: ClassHierarchy,
                strict_nil: bool,
                resolver: Optional[MethodResolver]) -> bool:
    """The uncached structural dispatch behind :func:`is_subtype`.

    Recursive positions call back through the public entry point so every
    sub-query lands in (and benefits from) the memo table.
    """
    if s == t:
        return True
    if isinstance(s, BotType):
        return True
    if isinstance(s, AnyType) or isinstance(t, AnyType):
        return True

    # nil <= A (paper); in strict mode nil only flows to nil/NilClass/unions.
    if isinstance(s, NilType):
        if not strict_nil:
            return True
        if isinstance(t, NominalType) and t.name == "NilClass":
            return True
        if isinstance(t, UnionType):
            return any(is_subtype(s, arm, hier, strict_nil=strict_nil,
                                  resolver=resolver) for arm in t.arms)
        return False

    # Union / intersection structural rules (left before right).
    if isinstance(s, UnionType):
        return all(is_subtype(arm, t, hier, strict_nil=strict_nil,
                              resolver=resolver) for arm in s.arms)
    if isinstance(t, IntersectionType):
        return all(is_subtype(s, arm, hier, strict_nil=strict_nil,
                              resolver=resolver) for arm in t.arms)
    if isinstance(t, UnionType):
        return any(is_subtype(s, arm, hier, strict_nil=strict_nil,
                              resolver=resolver) for arm in t.arms)
    if isinstance(s, IntersectionType):
        return any(is_subtype(arm, t, hier, strict_nil=strict_nil,
                              resolver=resolver) for arm in s.arms)

    # Everything is an Object.
    if isinstance(t, NominalType) and t.name == "Object":
        return True

    # %bool is interchangeable with the nominal Boolean.
    if isinstance(s, BoolType):
        return _bool_le(t, hier)
    if isinstance(t, BoolType):
        return isinstance(s, NominalType) and s.name == "Boolean"

    if isinstance(s, SingletonType):
        if isinstance(t, SingletonType):
            return s == t
        return is_subtype(NominalType(s.base), t, hier,
                          strict_nil=strict_nil, resolver=resolver)

    if isinstance(t, StructuralType):
        return _le_structural(s, t, hier, strict_nil, resolver)

    if isinstance(s, NominalType):
        if isinstance(t, NominalType):
            return hier.is_subclass(s.name, t.name)
        if isinstance(t, GenericType):
            # Raw generics are treated as instantiated at %any (paper:
            # generic instances get their raw type by default).
            if hier.is_subclass(s.name, t.name):
                return True
        return False

    if isinstance(s, GenericType):
        if isinstance(t, NominalType):
            return hier.is_subclass(s.name, t.name)
        if isinstance(t, GenericType):
            if not hier.is_subclass(s.name, t.name):
                return False
            if len(s.args) != len(t.args):
                return False
            return all(is_subtype(a, b, hier, strict_nil=strict_nil,
                                  resolver=resolver)
                       for a, b in zip(s.args, t.args))
        return False

    if isinstance(s, TupleType):
        if isinstance(t, TupleType):
            return (len(s.elems) == len(t.elems)
                    and all(is_subtype(a, b, hier, strict_nil=strict_nil,
                                       resolver=resolver)
                            for a, b in zip(s.elems, t.elems)))
        if isinstance(t, GenericType) and t.name == "Array" and len(t.args) == 1:
            return all(is_subtype(e, t.args[0], hier, strict_nil=strict_nil,
                                  resolver=resolver) for e in s.elems)
        if isinstance(t, NominalType):
            return hier.is_subclass("Array", t.name)
        return False

    if isinstance(s, FiniteHashType):
        if isinstance(t, FiniteHashType):
            mine = s.field_map()
            return all(k in mine and is_subtype(mine[k], v, hier,
                                                strict_nil=strict_nil,
                                                resolver=resolver)
                       for k, v in t.fields)
        if isinstance(t, GenericType) and t.name == "Hash" and len(t.args) == 2:
            key_t, val_t = t.args
            return all(
                is_subtype(SingletonType(k, "Symbol"), key_t, hier,
                           strict_nil=strict_nil, resolver=resolver)
                and is_subtype(v, val_t, hier, strict_nil=strict_nil,
                               resolver=resolver)
                for k, v in s.fields)
        if isinstance(t, NominalType):
            return hier.is_subclass("Hash", t.name)
        return False

    if isinstance(s, ClassObjectType):
        if isinstance(t, ClassObjectType):
            return hier.is_subclass(s.name, t.name)
        return isinstance(t, NominalType) and t.name in ("Class", "Object")

    if isinstance(s, MethodType):
        if isinstance(t, MethodType):
            return _le_method(s, t, hier, strict_nil, resolver)
        return isinstance(t, NominalType) and t.name == "Proc"

    if isinstance(s, (SelfType, VarType)):
        return s == t  # resolved before subtyping in well-formed queries

    # Structural-vs-structural is handled by the `isinstance(t,
    # StructuralType)` dispatch above (via _le_structural); no case
    # remains here.
    return False


def _bool_le(t: Type, hier: ClassHierarchy) -> bool:
    if isinstance(t, BoolType):
        return True
    return isinstance(t, NominalType) and hier.is_subclass("Boolean", t.name)


def _le_method(s: MethodType, t: MethodType, hier: ClassHierarchy,
               strict_nil: bool, resolver: Optional[MethodResolver]) -> bool:
    """``s <= t``: s is usable wherever t is expected (contra/co-variance)."""
    # s must accept every arity t accepts.
    if s.min_arity() > t.min_arity():
        return False
    s_max, t_max = s.max_arity(), t.max_arity()
    if s_max is not None and (t_max is None or t_max > s_max):
        return False
    width = t_max if t_max is not None else max(len(s.params), len(t.params))
    for i in range(width):
        sp, tp = s.param_type_at(i), t.param_type_at(i)
        if tp is None:
            continue
        if sp is None:
            return False
        if not is_subtype(tp, sp, hier, strict_nil=strict_nil,
                          resolver=resolver):  # contravariant
            return False
    if t.block is not None:
        if s.block is None:
            if not t.block.optional:
                return False
        elif not _le_method(t.block.sig, s.block.sig, hier, strict_nil,
                            resolver):  # contravariant
            return False
    elif s.block is not None and not s.block.optional:
        return False
    return is_subtype(s.ret, t.ret, hier, strict_nil=strict_nil,
                      resolver=resolver)


def _le_structural(s: Type, t: StructuralType, hier: ClassHierarchy,
                   strict_nil: bool,
                   resolver: Optional[MethodResolver]) -> bool:
    if isinstance(s, StructuralType):
        mine = s.method_map()
        return all(m in mine and _le_method(mine[m], sig, hier, strict_nil,
                                            resolver)
                   for m, sig in t.methods)
    if resolver is None:
        return False
    name = _class_name_of(s)
    if name is None:
        return False
    for meth, want in t.methods:
        got = resolver(name, meth)
        if got is None:
            return False
        arms = got.arms if isinstance(got, IntersectionType) else (got,)
        if not any(isinstance(a, MethodType)
                   and _le_method(a, want, hier, strict_nil, resolver)
                   for a in arms):
            return False
    return True


def _class_name_of(t: Type) -> Optional[str]:
    if isinstance(t, NominalType):
        return t.name
    if isinstance(t, GenericType):
        return t.name
    if isinstance(t, BoolType):
        return "Boolean"
    if isinstance(t, SingletonType):
        return t.base
    if isinstance(t, TupleType):
        return "Array"
    if isinstance(t, FiniteHashType):
        return "Hash"
    return None


def equivalent(s: Type, t: Type, hier: ClassHierarchy, *,
               strict_nil: bool = False) -> bool:
    """Mutual subtyping."""
    return (is_subtype(s, t, hier, strict_nil=strict_nil)
            and is_subtype(t, s, hier, strict_nil=strict_nil))


def join(a: Type, b: Type, hier: ClassHierarchy, *,
         strict_nil: bool = False) -> Type:
    """Least upper bound used at conditional merges.

    Follows the paper's (TIf): ``A ⊔ A = A``, ``nil ⊔ τ = τ`` (when nil is a
    universal bottom-ish type); otherwise the union of the two sides, which
    is the most precise upper bound expressible in the language.
    """
    if not strict_nil:
        if isinstance(a, NilType):
            return b
        if isinstance(b, NilType):
            return a
    if isinstance(a, BotType):
        return b
    if isinstance(b, BotType):
        return a
    if is_subtype(a, b, hier, strict_nil=strict_nil):
        return b
    if is_subtype(b, a, hier, strict_nil=strict_nil):
        return a
    return union_of(a, b)


def join_all(types, hier: ClassHierarchy, *, strict_nil: bool = False) -> Type:
    """Fold :func:`join` over a non-empty iterable of types."""
    it = iter(types)
    try:
        acc = next(it)
    except StopIteration:
        raise ValueError("join_all requires at least one type") from None
    for t in it:
        acc = join(acc, t, hier, strict_nil=strict_nil)
    return acc
