"""``repro.rtypes`` — the RDL-style type language.

The substrate Hummingbird's checking is built on: type objects
(:mod:`~repro.rtypes.types`), concrete syntax
(:mod:`~repro.rtypes.parser`), the class hierarchy
(:mod:`~repro.rtypes.hierarchy`), subtyping and joins
(:mod:`~repro.rtypes.subtype`), generic instantiation
(:mod:`~repro.rtypes.instantiate`), and run-time value typing
(:mod:`~repro.rtypes.typeof`).
"""

from .hierarchy import (
    ClassHierarchy, SubtypeCache, UnknownClassError, default_hierarchy,
)
from .instantiate import (
    free_vars, instantiate_for_receiver, receiver_bindings, resolve_self,
    substitute,
)
from .lexer import TypeSyntaxError
from .parser import parse_method_type, parse_type
from .subtype import equivalent, is_subtype, join, join_all
from .typeof import (
    Sym, class_name_of, is_class_determined, type_of, value_conforms,
)
from .types import (
    ANY, BOOL, BOT, NIL, OBJECT, SELF,
    AnyType, BlockType, BoolType, BotType, ClassObjectType, FiniteHashType,
    GenericType, IntersectionType, MethodType, NilType, NominalType,
    OptionalParam, Param, RequiredParam, SelfType, SingletonType,
    StructuralType, TupleType, Type, UnionType, VarType, VarargParam,
    array_of, generic, hash_of, int_singleton, intersection_of, method_arms,
    method_type, nominal, optional, symbol, union_of,
)

__all__ = [
    "ANY", "BOOL", "BOT", "NIL", "OBJECT", "SELF",
    "AnyType", "BlockType", "BoolType", "BotType", "ClassHierarchy",
    "ClassObjectType", "FiniteHashType", "GenericType", "IntersectionType",
    "MethodType", "NilType", "NominalType", "OptionalParam", "Param",
    "RequiredParam", "SelfType", "SingletonType", "StructuralType",
    "SubtypeCache", "Sym",
    "TupleType", "Type", "TypeSyntaxError", "UnionType", "UnknownClassError",
    "VarType", "VarargParam",
    "array_of", "class_name_of", "default_hierarchy", "equivalent",
    "free_vars", "generic", "hash_of", "instantiate_for_receiver",
    "int_singleton", "intersection_of", "is_class_determined", "is_subtype",
    "join", "join_all",
    "method_arms", "method_type", "nominal", "optional",
    "parse_method_type", "parse_type", "receiver_bindings", "resolve_self",
    "substitute", "symbol", "type_of", "union_of", "value_conforms",
]
