"""Recursive-descent parser for the RDL-style type annotation language.

Entry points:

* :func:`parse_type` — parse any type (``"Array<Integer> or nil"``).
* :func:`parse_method_type` — parse a method signature
  (``"(User) -> %bool"``); rejects non-method types.

``str()`` on the returned objects produces syntax this parser accepts, and
``parse_type(str(t)) == t`` (property-tested in the test suite).
"""

from __future__ import annotations

from typing import List, Optional

from .lexer import Token, TypeSyntaxError, tokenize_with_symbols
from .types import (
    ANY, BOOL, BOT, NIL, SELF,
    BlockType, ClassObjectType, FiniteHashType, GenericType, IntersectionType,
    MethodType, NominalType, OptionalParam, Param, RequiredParam,
    SingletonType, StructuralType, TupleType, Type, VarType, VarargParam,
    intersection_of, union_of,
)

_SPECIALS = {"%any": ANY, "%bool": BOOL, "%bot": BOT}


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.toks: List[Token] = tokenize_with_symbols(text)
        self.i = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        j = min(self.i + offset, len(self.toks) - 1)
        return self.toks[j]

    def next(self) -> Token:
        tok = self.toks[self.i]
        if tok.kind != "EOF":
            self.i += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.next()
        if tok.kind != kind:
            raise TypeSyntaxError(
                f"expected {kind}, found {tok.value!r}", self.text, tok.pos)
        return tok

    def at(self, kind: str) -> bool:
        return self.peek().kind == kind

    def error(self, message: str) -> TypeSyntaxError:
        tok = self.peek()
        return TypeSyntaxError(message, self.text, tok.pos)

    # -- grammar -----------------------------------------------------------

    def parse_full(self) -> Type:
        t = self.union()
        self.expect("EOF")
        return t

    def union(self) -> Type:
        arms = [self.inter()]
        while self.at("OR"):
            self.next()
            arms.append(self.inter())
        return union_of(*arms)

    def inter(self) -> Type:
        arms = [self.atom()]
        while self.at("AND"):
            self.next()
            arms.append(self.atom())
        return intersection_of(*arms)

    def atom(self) -> Type:
        tok = self.peek()
        if tok.kind == "SPECIAL":
            self.next()
            return _SPECIALS[tok.value]
        if tok.kind == "NIL":
            self.next()
            return NIL
        if tok.kind == "SELF":
            self.next()
            return SELF
        if tok.kind == "SYMBOL":
            self.next()
            return SingletonType(tok.value, "Symbol")
        if tok.kind == "INT":
            self.next()
            return SingletonType(int(tok.value), "Integer")
        if tok.kind == "NAME":
            return self.named()
        if tok.kind == "LNAME":
            self.next()
            return VarType(tok.value)
        if tok.kind == "LBRACK":
            return self.bracketed()
        if tok.kind == "LBRACE":
            return self.finite_hash()
        if tok.kind == "LPAREN":
            return self.parens()
        raise self.error(f"unexpected token {tok.value!r}")

    def named(self) -> Type:
        name = self.expect("NAME").value
        if not self.at("LT"):
            return NominalType(name)
        self.next()
        args = [self.union()]
        while self.at("COMMA"):
            self.next()
            args.append(self.union())
        self.expect("GT")
        if name == "Class":
            if len(args) == 1 and isinstance(args[0], NominalType):
                return ClassObjectType(args[0].name)
            raise self.error("Class<...> takes exactly one class name")
        return GenericType(name, tuple(args))

    def bracketed(self) -> Type:
        """``[T, U]`` tuple or ``[m: (..) -> ..]`` structural type."""
        self.expect("LBRACK")
        if self.at("RBRACK"):
            self.next()
            return TupleType(())
        structural = (self.peek().kind in ("LNAME", "NAME")
                      and self.peek(1).kind == "COLON")
        if structural:
            methods = [self.struct_member()]
            while self.at("COMMA"):
                self.next()
                methods.append(self.struct_member())
            self.expect("RBRACK")
            return StructuralType(tuple(methods))
        elems = [self.union()]
        while self.at("COMMA"):
            self.next()
            elems.append(self.union())
        self.expect("RBRACK")
        return TupleType(tuple(elems))

    def struct_member(self) -> tuple:
        name_tok = self.next()
        if name_tok.kind not in ("LNAME", "NAME"):
            raise self.error("expected method name in structural type")
        self.expect("COLON")
        sig = self.parens()
        if not isinstance(sig, MethodType):
            raise self.error("structural member must be a method type")
        return (name_tok.value, sig)

    def finite_hash(self) -> Type:
        self.expect("LBRACE")
        fields = [self.hash_field()]
        while self.at("COMMA"):
            self.next()
            fields.append(self.hash_field())
        self.expect("RBRACE")
        return FiniteHashType(tuple(fields))

    def hash_field(self) -> tuple:
        name_tok = self.next()
        if name_tok.kind not in ("LNAME", "NAME", "SYMBOL"):
            raise self.error("expected field name in finite hash")
        self.expect("COLON")
        return (name_tok.value, self.union())

    def parens(self) -> Type:
        """Either a method type ``(..) {..}? -> T`` or a grouped type."""
        self.expect("LPAREN")
        params: List[Param] = []
        if not self.at("RPAREN"):
            params.append(self.param())
            while self.at("COMMA"):
                self.next()
                params.append(self.param())
        self.expect("RPAREN")
        block = self.maybe_block()
        if block is not None or self.at("ARROW"):
            self.expect("ARROW")
            ret = self.union()
            return MethodType(tuple(params), block, ret)
        # Plain grouping: exactly one required parameter, no block.
        if len(params) == 1 and isinstance(params[0], RequiredParam):
            return params[0].ty
        raise self.error("expected '->' after method parameter list")

    def param(self) -> Param:
        if self.at("QUESTION") and self.peek(1).kind != "LBRACE":
            self.next()
            return OptionalParam(self.union())
        if self.at("STAR"):
            self.next()
            return VarargParam(self.union())
        ty = self.union()
        if self.at("LNAME"):  # optional parameter name, e.g. (Integer x)
            self.next()
        return RequiredParam(ty)

    def maybe_block(self) -> Optional[BlockType]:
        optional = False
        if self.at("QUESTION") and self.peek(1).kind == "LBRACE":
            self.next()
            optional = True
        if not self.at("LBRACE"):
            return None
        self.next()
        sig = self.parens()
        if not isinstance(sig, MethodType):
            raise self.error("block type must be a method type")
        self.expect("RBRACE")
        return BlockType(sig, optional)


import functools


@functools.lru_cache(maxsize=4096)
def parse_type(text: str) -> Type:
    """Parse a type annotation string into a :class:`~repro.rtypes.types.Type`.

    Memoized: annotation strings are parsed hot (dynamic checks and casts
    re-parse their expected types), and the type objects are immutable, so
    sharing results is safe.

    >>> parse_type("Array<Integer> or nil")
    UnionType(Array<Integer> or nil)
    """
    return _Parser(text).parse_full()


def parse_method_type(text: str) -> MethodType:
    """Parse a method signature; raises :class:`TypeSyntaxError` if the
    string is not a (single, non-overloaded) method type.

    >>> parse_method_type("(User) -> %bool")
    MethodType((User) -> %bool)
    """
    t = parse_type(text)
    if not isinstance(t, MethodType):
        raise TypeSyntaxError("expected a method type", text, 0)
    return t
