"""Type object model for the RDL-style type annotation language.

Hummingbird piggybacks on RDL's type language (paper, section 4): nominal
types, union types, intersection types, optional and variable-length
arguments, block (higher-order method) types, singleton types, structural
types, a self type, generics, and heterogeneous arrays and hashes.  This
module defines the object model for all of those; parsing lives in
``repro.rtypes.parser`` and the subtype relation in ``repro.rtypes.subtype``.

All types are immutable and hashable, so they can be used as cache keys and
stored in derivations.  ``str()`` on any type produces concrete syntax that
``repro.rtypes.parser.parse_type`` parses back to an equal type; this
round-trip is property-tested.

The common constructors are *hash-consed*: building ``NominalType("User")``
twice yields the same object, so equal types are usually identity-equal and
the memoized subtype cache (``repro.rtypes.subtype``) can key on them
cheaply.  Interning is an optimization, not an invariant — structural
``__eq__``/``__hash__`` remain authoritative, and un-interned construction
paths (e.g. building a ``UnionType`` directly) still compare correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

#: The hash-consing table shared by every interned constructor.  Keys embed
#: the concrete class, so subclasses (none exist today) would not collide.
#: Unbounded, but bounded in practice by the distinct types a program
#: mentions; entries are tiny immutable objects.
_INTERN: dict = {}


def _intern(cls, key, args):
    """Return the canonical instance for ``cls(*args)``, allocating one on
    first use.  Falls back to a fresh instance when ``key`` is unhashable
    (e.g. a caller passed a list where a tuple was expected).

    Thread-safe without a lock: ``dict.setdefault`` is atomic under the
    GIL, so two threads racing to intern the same key both get the one
    winning instance (identity stays stable, keeping ``s is t`` fast
    paths and memo keys honest)."""
    try:
        cached = _INTERN.get(key)
    except TypeError:
        return object.__new__(cls)
    if cached is None:
        cached = _INTERN.setdefault(key, object.__new__(cls))
    return cached


class Type:
    """Base class for every type in the RDL type language."""

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}({self})"


@dataclass(frozen=True, repr=False)
class AnyType(Type):
    """``%any`` — the dynamic type, compatible with everything in both
    directions (RDL's escape hatch)."""

    def __str__(self) -> str:
        return "%any"


@dataclass(frozen=True, repr=False)
class BoolType(Type):
    """``%bool`` — the type of booleans.

    RDL uses ``%bool`` rather than TrueClass/FalseClass; we follow suit and
    map the host language's ``bool`` values onto it.
    """

    def __str__(self) -> str:
        return "%bool"


@dataclass(frozen=True, repr=False)
class NilType(Type):
    """``nil`` — the type of ``nil`` (``None`` in the Python host).

    Following the paper's formalism, ``nil <= A`` for every class ``A``
    (unless the engine runs in strict-nil mode, an ablation).
    """

    def __str__(self) -> str:
        return "nil"


@dataclass(frozen=True, repr=False)
class BotType(Type):
    """``%bot`` — the empty type, used internally for expressions that never
    produce a value (e.g. ``raise``).  Subtype of everything."""

    def __str__(self) -> str:
        return "%bot"


@dataclass(frozen=True, repr=False)
class SelfType(Type):
    """``self`` — the type of the receiver, resolved at lookup time."""

    def __str__(self) -> str:
        return "self"


@dataclass(frozen=True, repr=False)
class NominalType(Type):
    """A class name such as ``User`` or ``String``."""

    name: str

    def __new__(cls, name: str):
        return _intern(cls, (cls, name), (name,))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class VarType(Type):
    """A type variable — a lowercase identifier such as ``t`` or ``u``.

    Type variables come from generic class declarations (``Array<t>``) and
    are instantiated by ``repro.rtypes.instantiate.substitute``.
    """

    name: str

    def __new__(cls, name: str):
        return _intern(cls, (cls, name), (name,))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class ClassObjectType(Type):
    """The type of the class object itself, written ``Class<User>``.

    ``User.new`` and other class-level (singleton) methods are looked up on
    this type rather than on instances.
    """

    name: str

    def __new__(cls, name: str):
        return _intern(cls, (cls, name), (name,))

    def __str__(self) -> str:
        return f"Class<{self.name}>"


@dataclass(frozen=True, repr=False)
class GenericType(Type):
    """An instantiated generic such as ``Array<Integer>`` or
    ``Hash<Symbol, String>``."""

    name: str
    args: Tuple[Type, ...]

    def __new__(cls, name: str, args: Tuple[Type, ...]):
        return _intern(cls, (cls, name, args), (name, args))

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"{self.name}<{args}>"


@dataclass(frozen=True, repr=False)
class TupleType(Type):
    """A heterogeneous array, written ``[Integer, String]``."""

    elems: Tuple[Type, ...]

    def __new__(cls, elems: Tuple[Type, ...]):
        return _intern(cls, (cls, elems), (elems,))

    def __str__(self) -> str:
        return "[" + ", ".join(str(e) for e in self.elems) + "]"


@dataclass(frozen=True, repr=False)
class FiniteHashType(Type):
    """A heterogeneous hash with known keys, written ``{a: Integer}``.

    Keys are symbols (identifiers); order is preserved for printing but
    ignored for equality.
    """

    fields: Tuple[Tuple[str, Type], ...]

    def __str__(self) -> str:
        inner = ", ".join(f"{k}: {v}" for k, v in self.fields)
        return "{" + inner + "}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FiniteHashType):
            return NotImplemented
        return dict(self.fields) == dict(other.fields)

    def __hash__(self) -> int:
        return hash(frozenset(self.fields))

    def field_map(self) -> dict:
        return dict(self.fields)


@dataclass(frozen=True, repr=False)
class SingletonType(Type):
    """A singleton type: a symbol ``:name`` or an integer literal ``5``.

    ``base`` names the nominal type the singleton belongs to (``Symbol`` or
    ``Integer``).
    """

    value: object
    base: str

    def __new__(cls, value: object, base: str):
        return _intern(cls, (cls, value, base), (value, base))

    def __str__(self) -> str:
        if self.base == "Symbol":
            return f":{self.value}"
        return str(self.value)


class UnionType(Type):
    """A union ``A or B``.  Arms are deduplicated and flattened; equality is
    order-insensitive.  Use :func:`union_of` to construct one."""

    __slots__ = ("arms",)

    def __init__(self, arms: Iterable[Type]):
        flat = _flatten(arms, UnionType)
        if len(flat) < 2:
            raise ValueError("UnionType requires at least two distinct arms")
        object.__setattr__(self, "arms", tuple(flat))

    def __str__(self) -> str:
        return " or ".join(_paren(a) for a in self.arms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionType):
            return NotImplemented
        return frozenset(self.arms) == frozenset(other.arms)

    def __hash__(self) -> int:
        return hash(("union", frozenset(self.arms)))

    def __repr__(self) -> str:
        return f"UnionType({self})"


class IntersectionType(Type):
    """An intersection ``A and B``.

    In practice intersections arise from repeated ``type`` calls on the same
    method (overloaded signatures, paper section 4); they can also be written
    directly.  Equality is order-insensitive.  Use :func:`intersection_of`.
    """

    __slots__ = ("arms",)

    def __init__(self, arms: Iterable[Type]):
        flat = _flatten(arms, IntersectionType)
        if len(flat) < 2:
            raise ValueError("IntersectionType requires at least two arms")
        object.__setattr__(self, "arms", tuple(flat))

    def __str__(self) -> str:
        return " and ".join(_paren(a) for a in self.arms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntersectionType):
            return NotImplemented
        return frozenset(self.arms) == frozenset(other.arms)

    def __hash__(self) -> int:
        return hash(("inter", frozenset(self.arms)))

    def __repr__(self) -> str:
        return f"IntersectionType({self})"


@dataclass(frozen=True, repr=False)
class StructuralType(Type):
    """A structural type ``[to_s: () -> String]`` — any object with the
    listed methods at the listed types.

    The paper notes Hummingbird itself skipped structural types even though
    RDL has them; we implement them as a documented extension.
    """

    methods: Tuple[Tuple[str, "MethodType"], ...]

    def __str__(self) -> str:
        inner = ", ".join(f"{k}: {v}" for k, v in self.methods)
        return "[" + inner + "]"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructuralType):
            return NotImplemented
        return dict(self.methods) == dict(other.methods)

    def __hash__(self) -> int:
        return hash(frozenset(self.methods))

    def method_map(self) -> dict:
        return dict(self.methods)


# --------------------------------------------------------------------------
# Method types and their parameters
# --------------------------------------------------------------------------


class Param:
    """Base class for formal-parameter kinds inside a method type."""

    ty: Type


@dataclass(frozen=True, repr=False)
class RequiredParam(Param):
    """A required positional parameter: ``T``."""

    ty: Type

    def __str__(self) -> str:
        return str(self.ty)

    def __repr__(self) -> str:
        return f"RequiredParam({self.ty})"


@dataclass(frozen=True, repr=False)
class OptionalParam(Param):
    """An optional parameter, written ``?T`` (may be omitted at a call)."""

    ty: Type

    def __str__(self) -> str:
        return f"?{_paren(self.ty)}"

    def __repr__(self) -> str:
        return f"OptionalParam({self.ty})"


@dataclass(frozen=True, repr=False)
class VarargParam(Param):
    """A rest parameter, written ``*T`` (zero or more arguments)."""

    ty: Type

    def __str__(self) -> str:
        return f"*{_paren(self.ty)}"

    def __repr__(self) -> str:
        return f"VarargParam({self.ty})"


@dataclass(frozen=True, repr=False)
class BlockType:
    """The type of a method's code-block argument: ``{ (T) -> U }``.

    ``optional`` marks a block the method may be called without, written
    ``?{ (T) -> U }``.
    """

    sig: "MethodType"
    optional: bool = False

    def __str__(self) -> str:
        body = "{ " + str(self.sig) + " }"
        return f"?{body}" if self.optional else body


@dataclass(frozen=True, repr=False)
class MethodType(Type):
    """A method type ``(T1, ?T2, *T3) { (B) -> R } -> Ret``."""

    params: Tuple[Param, ...]
    block: Optional[BlockType]
    ret: Type

    def __new__(cls, params: Tuple[Param, ...], block: Optional[BlockType],
                ret: Type):
        return _intern(cls, (cls, params, block, ret), (params, block, ret))

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        block = f" {self.block}" if self.block is not None else ""
        return f"({params}){block} -> {self.ret}"

    def min_arity(self) -> int:
        """Number of required positional parameters."""
        return sum(1 for p in self.params if isinstance(p, RequiredParam))

    def max_arity(self) -> Optional[int]:
        """Maximum number of positional arguments, or ``None`` if vararg."""
        if any(isinstance(p, VarargParam) for p in self.params):
            return None
        return len(self.params)

    def accepts_arity(self, n: int) -> bool:
        hi = self.max_arity()
        return self.min_arity() <= n and (hi is None or n <= hi)

    def param_type_at(self, i: int) -> Optional[Type]:
        """Type expected for the ``i``-th positional argument, or ``None``
        if the method cannot accept an ``i``-th argument."""
        fixed = [p for p in self.params if not isinstance(p, VarargParam)]
        rest = [p for p in self.params if isinstance(p, VarargParam)]
        if i < len(fixed):
            return fixed[i].ty
        if rest:
            return rest[0].ty
        return None


# --------------------------------------------------------------------------
# Constructors and helpers
# --------------------------------------------------------------------------

ANY = AnyType()
BOOL = BoolType()
NIL = NilType()
BOT = BotType()
SELF = SelfType()

OBJECT = NominalType("Object")
INTEGER = NominalType("Integer")
FLOAT = NominalType("Float")
NUMERIC = NominalType("Numeric")
STRING = NominalType("String")
SYMBOL = NominalType("Symbol")


def nominal(name: str) -> NominalType:
    """Shorthand for :class:`NominalType`."""
    return NominalType(name)


def generic(name: str, *args: Type) -> GenericType:
    """Shorthand for :class:`GenericType`."""
    return GenericType(name, tuple(args))


def array_of(elem: Type) -> GenericType:
    return GenericType("Array", (elem,))


def hash_of(key: Type, value: Type) -> GenericType:
    return GenericType("Hash", (key, value))


def symbol(name: str) -> SingletonType:
    return SingletonType(name, "Symbol")


def int_singleton(value: int) -> SingletonType:
    return SingletonType(value, "Integer")


def optional(t: Type) -> Type:
    """``t or nil`` — note that with the paper's ``nil <= A`` rule this is
    mostly documentation, but strict-nil mode gives it teeth."""
    return union_of(t, NIL)


def union_of(*types: Type) -> Type:
    """Build a union, flattening nested unions and deduplicating arms.

    Returns the single arm unchanged when only one distinct arm remains.
    """
    flat = _flatten(types, UnionType)
    if not flat:
        raise ValueError("union_of requires at least one type")
    if len(flat) == 1:
        return flat[0]
    # Hash-cons by arm *set*: equality is order-insensitive, so two
    # orderings share one canonical instance (the first one built).
    try:
        key = (UnionType, frozenset(flat))
        cached = _INTERN.get(key)
    except TypeError:
        return UnionType(flat)
    if cached is None:
        cached = UnionType(flat)
        _INTERN[key] = cached
    return cached


def intersection_of(*types: Type) -> Type:
    """Build an intersection, flattening and deduplicating arms."""
    flat = _flatten(types, IntersectionType)
    if not flat:
        raise ValueError("intersection_of requires at least one type")
    if len(flat) == 1:
        return flat[0]
    try:
        key = (IntersectionType, frozenset(flat))
        cached = _INTERN.get(key)
    except TypeError:
        return IntersectionType(flat)
    if cached is None:
        cached = IntersectionType(flat)
        _INTERN[key] = cached
    return cached


def method_type(params: Iterable[Type | Param], ret: Type,
                block: Optional[BlockType] = None) -> MethodType:
    """Build a :class:`MethodType`, wrapping bare types as required params."""
    norm = tuple(p if isinstance(p, Param) else RequiredParam(p)
                 for p in params)
    return MethodType(norm, block, ret)


def method_arms(t: Type) -> Tuple[MethodType, ...]:
    """View ``t`` as an overloaded method: the arms of an intersection of
    method types, or a single-element tuple for a plain method type."""
    if isinstance(t, MethodType):
        return (t,)
    if isinstance(t, IntersectionType):
        arms = tuple(a for a in t.arms if isinstance(a, MethodType))
        if len(arms) == len(t.arms):
            return arms
    raise TypeError(f"not a method type: {t}")


def _flatten(types: Iterable[Type], cls: type) -> Tuple[Type, ...]:
    """Flatten nested ``cls`` nodes and drop duplicate arms, keeping order."""
    out: list[Type] = []
    seen: set = set()
    for t in types:
        parts = t.arms if isinstance(t, cls) else (t,)
        for p in parts:
            if p not in seen:
                seen.add(p)
                out.append(p)
    return tuple(out)


def _paren(t: Type) -> str:
    """Parenthesize union/intersection arms so printing round-trips."""
    if isinstance(t, (UnionType, IntersectionType, MethodType)):
        return f"({t})"
    return str(t)
