"""Boxroom — a Rails implementation of a simple file-sharing interface
(paper app #2)."""

from .app import build

__all__ = ["build"]
