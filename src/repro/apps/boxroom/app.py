"""Boxroom: folders, files, shares — models, controllers, workload.

Exercises recursive checked methods (``Folder.path`` walks the parent
association), self-referential ``belongs_to``, and occurrence-typing on
nullable columns.
"""

from __future__ import annotations

from types import SimpleNamespace

from ...core import Engine
from ...rails import RailsApp
from ...rtypes import Sym
from .. import World


def build_schema(db) -> None:
    db.create_table(
        "users",
        ("name", "string", False),
        ("email", "string", False),
        ("admin", "boolean", False))
    db.create_table(
        "folders",
        ("name", "string", False),
        ("parent_id", "integer"),
        ("owner_id", "integer"))
    db.create_table(
        "user_files",
        ("filename", "string", False),
        ("size_bytes", "integer", False),
        ("folder_id", "integer"),
        ("owner_id", "integer"))
    db.create_table(
        "shares",
        ("file_id", "integer", False),
        ("user_id", "integer", False),
        ("can_edit", "boolean", False))


def build_models(app) -> SimpleNamespace:
    hb = app.hb

    @app.register_model
    class User(app.Model):
        @hb.typed("() -> String")
        def display_name(self):
            return f"{self.name} <{self.email}>"

        @hb.typed("() -> %bool")
        def can_manage(self):
            return self.admin == True  # noqa: E712

    @app.register_model
    class Folder(app.Model):
        @hb.typed("() -> String")
        def path(self):
            p = self.parent
            if p is None:
                return self.name
            return f"{p.path()}/{self.name}"

        @hb.typed("() -> Integer")
        def total_size(self):
            total = 0
            for f in self.files:
                total = total + f.size_bytes
            return total

        @hb.typed("() -> Integer")
        def file_count(self):
            return len(self.files)

        @hb.typed("() -> Array<String>")
        def child_names(self):
            return [c.name for c in self.children]

        @hb.typed("(User) -> %bool")
        def owned_by(self, user):
            return self.owner_id == user.id

    @app.register_model
    class UserFile(app.Model):
        @hb.typed("() -> String")
        def extension(self):
            parts = self.filename.split(".")
            return parts[len(parts) - 1]

        @hb.typed("() -> String")
        def human_size(self):
            b = self.size_bytes
            if b > 1048576:
                return f"{b / 1048576} MB"
            if b > 1024:
                return f"{b / 1024} KB"
            return f"{b} B"

        @hb.typed("(User) -> %bool")
        def shared_with(self, user):
            for s in Share.find_all_by_file_id(self.id):
                if s.user_id == user.id:
                    return True
            return False

        @hb.typed("() -> String")
        def location(self):
            fld = self.folder
            return f"{fld.path()}/{self.filename}"

    @app.register_model
    class Share(app.Model):
        @hb.typed("() -> %bool")
        def editable(self):
            return self.can_edit == True  # noqa: E712

    Folder.belongs_to("parent", class_name="Folder")
    Folder.belongs_to("owner", class_name="User")
    Folder.has_many("children", class_name="Folder", fk="parent_id")
    Folder.has_many("files", class_name="UserFile", fk="folder_id")
    UserFile.belongs_to("folder", class_name="Folder")
    UserFile.belongs_to("owner", class_name="User")
    Share.belongs_to("file", class_name="UserFile")
    Share.belongs_to("user")
    User.has_many("shares")

    return SimpleNamespace(User=User, Folder=Folder, UserFile=UserFile,
                           Share=Share)


def build_controllers(app, m) -> SimpleNamespace:
    hb = app.hb
    User, Folder, UserFile, Share = m.User, m.Folder, m.UserFile, m.Share

    class FoldersController(app.Controller):
        @hb.typed("() -> String")
        def index(self):
            roots: "Array<String>" = []
            for f in Folder.all():
                if f.parent_id is None:
                    roots.append(f.path())
            return self.render("folders/index", {Sym("roots"): roots})

        @hb.typed("() -> String")
        def show(self):
            folder = Folder.find(int(self.param(Sym("id"))))
            files = [f.filename for f in folder.files]
            return self.render("folders/show", {
                Sym("path"): folder.path(),
                Sym("children"): folder.child_names(),
                Sym("files"): files,
                Sym("size"): folder.total_size(),
            })

        @hb.typed("() -> String")
        def create(self):
            folder = Folder.create({
                Sym("name"): self.param(Sym("name")),
                Sym("parent_id"): int(self.param(Sym("parent_id"))),
                Sym("owner_id"): int(self.param(Sym("owner_id"))),
            })
            return self.redirect_to(f"/folders/{folder.id}")

        @hb.typed("() -> String")
        def destroy(self):
            folder = Folder.find(int(self.param(Sym("id"))))
            folder.destroy()
            return self.redirect_to("/folders")

    class FilesController(app.Controller):
        @hb.typed("() -> String")
        def index(self):
            rows = [self.file_row(f) for f in UserFile.all()]
            return self.render("files/index", {Sym("rows"): rows})

        @hb.typed("(UserFile) -> String")
        def file_row(self, f):
            return f"{f.location()} [{f.human_size()}] .{f.extension()}"

        @hb.typed("() -> String")
        def show(self):
            f = UserFile.find(int(self.param(Sym("id"))))
            u = User.find(int(self.param(Sym("viewer"))))
            shared = f.shared_with(u)
            return self.render("files/show", {
                Sym("row"): self.file_row(f),
                Sym("shared"): shared,
            })

        @hb.typed("() -> String")
        def create(self):
            f = UserFile.create({
                Sym("filename"): self.param(Sym("filename")),
                Sym("size_bytes"): int(self.param(Sym("size_bytes"))),
                Sym("folder_id"): int(self.param(Sym("folder_id"))),
                Sym("owner_id"): int(self.param(Sym("owner_id"))),
            })
            return self.redirect_to(f"/files/{f.id}")

        @hb.typed("() -> String")
        def move(self):
            f = UserFile.find(int(self.param(Sym("id"))))
            f.update({Sym("folder_id"): int(self.param(Sym("folder_id")))})
            return self.redirect_to(f"/files/{f.id}")

        @hb.typed("() -> String")
        def destroy(self):
            f = UserFile.find(int(self.param(Sym("id"))))
            f.destroy()
            return self.redirect_to("/files")

    class SessionsController(app.Controller):
        @hb.typed("() -> String")
        def create(self):
            u = User.find_by_email(self.param(Sym("email")))
            if u is None:
                return self.render("sessions/denied", {})
            return self.render("sessions/welcome",
                               {Sym("name"): u.display_name()})

        @hb.typed("() -> String")
        def destroy(self):
            return self.redirect_to("/")

    return SimpleNamespace(FoldersController=FoldersController,
                           FilesController=FilesController,
                           SessionsController=SessionsController)


def build(engine: Engine = None, *, view_cost: int = 150) -> World:
    app = RailsApp(engine, view_cost=view_cost)
    build_schema(app.db)
    models = build_models(app)
    controllers = build_controllers(app, models)

    fc, flc, sc = (controllers.FoldersController,
                   controllers.FilesController,
                   controllers.SessionsController)
    app.get("/folders", fc, "index")
    app.get("/folders/:id", fc, "show")
    app.post("/folders", fc, "create")
    app.post("/folders/:id/destroy", fc, "destroy")
    app.get("/files", flc, "index")
    app.get("/files/:id/:viewer", flc, "show")
    app.post("/files", flc, "create")
    app.post("/files/:id/move", flc, "move")
    app.post("/files/:id/destroy", flc, "destroy")
    app.post("/session", sc, "create")
    app.post("/session/destroy", sc, "destroy")

    def seed() -> None:
        app.db.reset()
        m = models
        admin = m.User.create(name="Admin", email="admin@box.example",
                              admin=True)
        dana = m.User.create(name="Dana", email="dana@box.example",
                             admin=False)
        root = m.Folder.create(name="root", owner_id=admin.id)
        docs = m.Folder.create(name="docs", parent_id=root.id,
                               owner_id=admin.id)
        pics = m.Folder.create(name="pics", parent_id=root.id,
                               owner_id=dana.id)
        deep = m.Folder.create(name="archive", parent_id=docs.id,
                               owner_id=admin.id)
        sizes = [512, 4096, 2 * 1048576, 90_000, 128, 7_340_032]
        for i, size in enumerate(sizes):
            folder = [docs, pics, deep][i % 3]
            f = m.UserFile.create(filename=f"file_{i}.v{i}.txt",
                                  size_bytes=size, folder_id=folder.id,
                                  owner_id=[admin, dana][i % 2].id)
            if i % 2 == 0:
                m.Share.create(file_id=f.id, user_id=dana.id,
                               can_edit=(i % 4 == 0))

    def workload() -> list:
        responses = []
        responses.append(app.request("GET", "/folders"))
        for fid in ("1", "2", "3", "4"):
            responses.append(app.request("GET", f"/folders/{fid}"))
        responses.append(app.request("GET", "/files"))
        for file_id in ("1", "2", "3"):
            responses.append(app.request("GET", f"/files/{file_id}/2"))
        responses.append(app.request("POST", "/session",
                                     {"email": "dana@box.example"}))
        responses.append(app.request("POST", "/session",
                                     {"email": "ghost@box.example"}))
        responses.append(app.request("POST", "/folders", {
            "name": "new", "parent_id": "1", "owner_id": "1"}))
        responses.append(app.request("POST", "/files", {
            "filename": "added.pdf", "size_bytes": "2048",
            "folder_id": "2", "owner_id": "2"}))
        responses.append(app.request("POST", "/files/7/move",
                                     {"folder_id": "3"}))
        responses.append(app.request("GET", "/files"))
        responses.append(app.request("POST", "/files/7/destroy", {}))
        responses.append(app.request("POST", "/folders/5/destroy", {}))
        responses.append(app.request("POST", "/session/destroy", {}))
        return responses

    return World(
        name="boxroom", engine=app.engine, seed=seed, workload=workload,
        uses_rails=True, uses_metaprogramming=True,
        loc_modules=["repro.apps.boxroom.app"],
        extras={"app": app, "models": models, "controllers": controllers})
