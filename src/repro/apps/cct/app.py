"""CCT: simple credit-card processing on Struct transactions.

Fig. 3 realized: ``Transaction = Struct.new(:kind, :account_name,
:amount, :card_number)`` plus ``Transaction.add_types(...)`` — the
user-written metaprogramming that makes ``process_transactions``
checkable.  Library-style app: most of its time is inside intercepted app
methods, which is why the paper's CCT shows the *largest* cached overhead
(5.7x) despite being tiny.
"""

from __future__ import annotations

from types import SimpleNamespace

from ...core import Engine
from ...rstruct import struct_new
from .. import World


def build_library(engine: Engine) -> SimpleNamespace:
    hb = engine.api()

    Transaction = struct_new(engine, "Transaction",
                             "kind", "account_name", "amount",
                             "card_number")
    # Fig. 3's elegant solution: one call types all getters and setters.
    Transaction.add_types("String", "String", "Integer", "String")

    class CardValidator:
        @hb.typed("(String) -> %bool")
        def luhn_valid(self, card):
            total = 0
            i = 0
            n = len(card)
            while i < n:
                d = int(card[i])
                if (n - i) % 2 == 0:
                    d = d * 2
                    if d > 9:
                        d = d - 9
                total = total + d
                i = i + 1
            return total % 10 == 0

        @hb.typed("(String) -> String")
        def masked(self, card):
            tail = card[len(card) - 4]
            return f"****{tail}"

    class FeeSchedule:
        @hb.typed("(Transaction) -> Integer")
        def fee_for(self, t):
            if t.kind == "credit":
                return t.amount / 50
            if t.kind == "debit":
                return t.amount / 100
            return 0

    class ApplicationRunner:
        def __init__(self, transactions):
            self.transactions = transactions
            self.validator = CardValidator()
            self.fees = FeeSchedule()

        @hb.typed("() -> Hash<String, Integer>")
        def process_transactions(self):
            totals: "Hash<String, Integer>" = {}
            for t in self.transactions:
                name = t.account_name
                if self.validator.luhn_valid(t.card_number):
                    current = totals.get(name, 0)
                    charge = t.amount + self.fees.fee_for(t)
                    totals[name] = current + charge
            return totals

        @hb.typed("() -> Integer")
        def count_valid(self):
            count = 0
            for t in self.transactions:
                if self.validator.luhn_valid(t.card_number):
                    count = count + 1
            return count

        @hb.typed("() -> Array<String>")
        def summary(self):
            totals = self.process_transactions()
            return [f"{name}: {totals[name]}" for name in totals.keys()]

        @hb.typed("() -> Array<String>")
        def audit_lines(self):
            lines: "Array<String>" = []
            for t in self.transactions:
                card = self.validator.masked(t.card_number)
                lines.append(f"{t.kind} {t.account_name} {t.amount} {card}")
            return lines

    hb.field_type(ApplicationRunner, "transactions", "Array<Transaction>")
    hb.field_type(ApplicationRunner, "validator", "CardValidator")
    hb.field_type(ApplicationRunner, "fees", "FeeSchedule")

    return SimpleNamespace(Transaction=Transaction,
                           CardValidator=CardValidator,
                           FeeSchedule=FeeSchedule,
                           ApplicationRunner=ApplicationRunner)


# Card numbers with valid and invalid Luhn checksums.
_VALID_CARDS = ["4539578763621486", "4716461583322103", "379354508162306"]
_INVALID_CARDS = ["4539578763621487", "1234567890123456"]


def build(engine: Engine = None, *, repeats: int = 100) -> World:
    engine = engine or Engine()
    lib = build_library(engine)
    state = {}

    def seed() -> None:
        t = lib.Transaction
        txs = []
        for i in range(30):
            card = (_VALID_CARDS[i % 3] if i % 5 else
                    _INVALID_CARDS[i % 2])
            txs.append(t(("credit" if i % 2 else "debit"),
                         f"account-{i % 7}", 100 + i * 13, card))
        state["runner"] = lib.ApplicationRunner(txs)

    def workload() -> list:
        """The unit-test suite, run ``repeats`` times (paper: 100x)."""
        runner = state["runner"]
        out = []
        for _ in range(repeats):
            totals = runner.process_transactions()
            out.append(len(totals))
            out.append(runner.count_valid())
            out.append(len(runner.summary()))
            out.append(len(runner.audit_lines()))
        return out

    return World(
        name="cct", engine=engine, seed=seed, workload=workload,
        uses_rails=False, uses_metaprogramming=True,
        loc_modules=["repro.apps.cct.app"],
        extras={"lib": lib, "state": state})
