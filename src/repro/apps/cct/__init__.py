"""CCT — the credit-card transactions library (paper app #5).

Uses the Struct substrate with Fig. 3's user-written ``add_types``; no
Rails, driven by a unit-test-style runner executed repeatedly."""

from .app import build

__all__ = ["build"]
