"""``repro.apps`` — the six subject applications of the evaluation.

Each app module exposes ``build(engine=None, **cfg) -> World`` and the
shared :class:`World` protocol: a built application plus ``seed()`` and
``workload()`` callables the harness and benchmarks drive.

* :mod:`~repro.apps.talks` — Rails; talk announcements (plus the
  historical type errors and the dev-mode update sequence);
* :mod:`~repro.apps.boxroom` — Rails; file-sharing interface;
* :mod:`~repro.apps.pubs` — Rails; publication lists (the hot-loop app);
* :mod:`~repro.apps.rolify_app` — Rolify integrated with Talks users;
* :mod:`~repro.apps.cct` — credit-card transactions library (Struct);
* :mod:`~repro.apps.countries` — country data (no metaprogramming).
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class World:
    """A built app: everything the harness needs to drive it."""

    name: str
    engine: object
    seed: Callable[[], None]
    workload: Callable[[], object]
    uses_rails: bool = False
    uses_metaprogramming: bool = True
    #: classes whose (checked) sources count toward the LoC column
    loc_modules: List[str] = field(default_factory=list)
    extras: Dict = field(default_factory=dict)


def all_builders() -> Dict[str, Callable]:
    """Name → build function for every subject app."""
    from .talks.app import build as talks
    from .boxroom.app import build as boxroom
    from .pubs.app import build as pubs
    from .rolify_app.app import build as rolify
    from .cct.app import build as cct
    from .countries.app import build as countries
    return {
        "talks": talks,
        "boxroom": boxroom,
        "pubs": pubs,
        "rolify": rolify,
        "cct": cct,
        "countries": countries,
    }


__all__ = ["World", "all_builders"]
