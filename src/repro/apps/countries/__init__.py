"""Countries — country data lookups (paper app #6).

The no-metaprogramming baseline: every type is a static annotation, and
the only dynamic machinery used is ``rdl_cast`` (the paper's Marshal.load
example comes from this app)."""

from .app import build

__all__ = ["build"]
