"""Countries: data lookups over a serialized dataset, with casts.

``DataStore.load_cache`` is the paper's own example (section 4): a
marshal-style loader returns data of arbitrary type, downcast with
``rdl_cast`` to the annotated hash type; ``languages`` shows the generic
cast that iterates elements at run time.
"""

from __future__ import annotations

from types import SimpleNamespace

from ...core import Engine
from .. import World

#: The "data file": (alpha2, name, region, currency, population,
#: languages).  Shipped in-package since the environment is offline.
RAW_DATA = [
    ("US", "United States", "Americas", "USD", 331_000_000, ["en"]),
    ("DE", "Germany", "Europe", "EUR", 83_000_000, ["de"]),
    ("FR", "France", "Europe", "EUR", 67_000_000, ["fr"]),
    ("JP", "Japan", "Asia", "JPY", 125_000_000, ["ja"]),
    ("BR", "Brazil", "Americas", "BRL", 213_000_000, ["pt"]),
    ("IN", "India", "Asia", "INR", 1_380_000_000, ["hi", "en"]),
    ("NG", "Nigeria", "Africa", "NGN", 206_000_000, ["en"]),
    ("EG", "Egypt", "Africa", "EGP", 102_000_000, ["ar"]),
    ("AU", "Australia", "Oceania", "AUD", 25_000_000, ["en"]),
    ("CA", "Canada", "Americas", "CAD", 38_000_000, ["en", "fr"]),
    ("CN", "China", "Asia", "CNY", 1_410_000_000, ["zh"]),
    ("ES", "Spain", "Europe", "EUR", 47_000_000, ["es"]),
    ("MX", "Mexico", "Americas", "MXN", 128_000_000, ["es"]),
    ("KE", "Kenya", "Africa", "KES", 54_000_000, ["sw", "en"]),
    ("NZ", "New Zealand", "Oceania", "NZD", 5_000_000, ["en", "mi"]),
    ("IT", "Italy", "Europe", "EUR", 59_000_000, ["it"]),
]


def build_library(engine: Engine) -> SimpleNamespace:
    hb = engine.api()
    # The run-time half of rdl_cast: the checker recognizes `cast(e, "T")`
    # syntactically; this binding makes the dynamic conformance check run.
    cast = engine.cast

    class DataStore:
        """Deserializes the country 'data file'."""

        def read_blob(self):
            # Stands in for Marshal.load(File.binread(f)): returns data
            # whose static type is unknown (%any).
            return {row[0]: {"name": row[1], "region": row[2],
                             "currency": row[3], "population": row[4],
                             "languages": list(row[5])}
                    for row in RAW_DATA}

        @hb.typed("() -> Hash<String, %any>")
        def load_cache(self):
            # The paper's load_cache: downcast the deserialized blob.
            t = self.read_blob()
            cache = cast(t, "Hash<String, %any>")
            return cache

    hb.annotate(DataStore, "read_blob", "() -> %any", app_level=True)

    class Country:
        def __init__(self, alpha2, data):
            self.alpha2 = alpha2
            self.data = data

        @hb.typed("() -> String")
        def name(self):
            return cast(self.data["name"], "String")

        @hb.typed("() -> String")
        def region(self):
            return cast(self.data["region"], "String")

        @hb.typed("() -> String")
        def currency(self):
            return cast(self.data["currency"], "String")

        @hb.typed("() -> Integer")
        def population(self):
            return cast(self.data["population"], "Integer")

        @hb.typed("() -> Array<String>")
        def languages(self):
            # Generic cast: iterates the array elements at run time.
            return cast(self.data["languages"], "Array<String>")

        @hb.typed("(String) -> %bool")
        def in_region(self, region_name):
            return self.region() == region_name

        @hb.typed("(String) -> %bool")
        def speaks(self, lang):
            return lang in self.languages()

        @hb.typed("() -> String")
        def summary_line(self):
            langs = ", ".join(self.languages())
            return (f"{self.name()} ({self.alpha2}) — {self.region()}, "
                    f"{self.currency()}, pop {self.population()}, "
                    f"[{langs}]")

    hb.field_type(Country, "alpha2", "String")
    hb.field_type(Country, "data", "Hash<String, %any>")

    class CountryStore:
        def __init__(self):
            self.countries = []
            raw = DataStore().load_cache()
            for code in raw.keys():
                self.countries.append(Country(code, raw[code]))

        @hb.typed("(String) -> Country or nil")
        def find_by_alpha2(self, code):
            for c in self.countries:
                if c.alpha2 == code:
                    return c
            return None

        @hb.typed("(String) -> Country or nil")
        def find_by_name(self, name):
            for c in self.countries:
                if c.name() == name:
                    return c
            return None

        @hb.typed("(String) -> Array<Country>")
        def in_region(self, region_name):
            return [c for c in self.countries if c.in_region(region_name)]

        @hb.typed("(String) -> Array<String>")
        def speaking(self, lang):
            out: "Array<String>" = []
            for c in self.countries:
                if c.speaks(lang):
                    out.append(c.name())
            return out

        @hb.typed("() -> Integer")
        def total_population(self):
            total = 0
            for c in self.countries:
                total = total + c.population()
            return total

        @hb.typed("(String) -> Array<String>")
        def currencies_in(self, region_name):
            out: "Array<String>" = []
            for c in self.in_region(region_name):
                cur = c.currency()
                if cur not in out:
                    out.append(cur)
            return out

        @hb.typed("() -> Array<String>")
        def report(self):
            return [c.summary_line() for c in self.countries]

    hb.field_type(CountryStore, "countries", "Array<Country>")

    return SimpleNamespace(DataStore=DataStore, Country=Country,
                           CountryStore=CountryStore)


def build(engine: Engine = None, *, repeats: int = 25) -> World:
    engine = engine or Engine()
    lib = build_library(engine)
    state = {}

    def seed() -> None:
        state["store"] = lib.CountryStore()

    def workload() -> list:
        store = state["store"]
        out = []
        for _ in range(repeats):
            for code in ("US", "DE", "JP", "KE", "NZ", "ZZ"):
                c = store.find_by_alpha2(code)
                if c is not None:
                    out.append(c.summary_line())
            out.append(store.total_population())
            for region in ("Europe", "Asia", "Africa", "Americas",
                           "Oceania"):
                out.append(len(store.in_region(region)))
                out.append(store.currencies_in(region))
            out.append(store.speaking("en"))
            found = store.find_by_name("Brazil")
            if found is not None:
                out.append(found.currency())
        return out

    return World(
        name="countries", engine=engine, seed=seed, workload=workload,
        uses_rails=False, uses_metaprogramming=False,
        loc_modules=["repro.apps.countries.app"],
        extras={"lib": lib, "state": state})
