"""Rolify integrated with a Talks-style User resource.

Fig. 2's flow, end to end: ``define_dynamic_method`` creates ``is_<role>``
methods on ``User`` at run time; the RDL pre-contract generates their
types at the same moment; the generated bodies are *user code*, so
Hummingbird statically checks their closure bodies at first call.

Because roles are defined piecemeal between calls, annotation and check
events interleave — this is the paper's only multi-phase app (Phs 12).
"""

from __future__ import annotations

from types import SimpleNamespace

from ...core import Engine
from ...rails import RailsApp
from ...rolify import build_rolify
from ...rtypes import Sym
from .. import World


def build_schema(db) -> None:
    db.create_table(
        "users",
        ("name", "string", False),
        ("email", "string", False))


def build_models(app, RolifyDynamic) -> SimpleNamespace:
    hb = app.hb

    @app.register_model
    class User(app.Model, RolifyDynamic):
        @hb.typed("() -> String")
        def display_name(self):
            return f"{self.name} <{self.email}>"

        @hb.typed("() -> String")
        def role_summary(self):
            names = self.roles_list()
            joined = ", ".join(names)
            return f"{self.display_name()}: {joined}"

        @hb.typed("(String) -> %bool")
        def grant(self, role_name):
            self.add_role(role_name)
            self.define_dynamic_method(role_name, None)
            return self.has_role(role_name)

        @hb.typed("(String) -> %bool")
        def revoke(self, role_name):
            self.remove_role(role_name)
            return self.has_role(role_name)

    return SimpleNamespace(User=User)


def build_controllers(app, models) -> SimpleNamespace:
    hb = app.hb
    User = models.User

    class RolesController(app.Controller):
        @hb.typed("() -> String")
        def index(self):
            summaries = [u.role_summary() for u in User.all()]
            return self.render("roles/index", {Sym("rows"): summaries})

        @hb.typed("() -> String")
        def grant(self):
            u = User.find(int(self.param(Sym("id"))))
            u.grant(self.param(Sym("role")))
            return self.render("roles/grant",
                               {Sym("summary"): u.role_summary()})

        @hb.typed("() -> String")
        def revoke(self):
            u = User.find(int(self.param(Sym("id"))))
            u.revoke(self.param(Sym("role")))
            return self.render("roles/revoke",
                               {Sym("summary"): u.role_summary()})

    return SimpleNamespace(RolesController=RolesController)


def build(engine: Engine = None, *, view_cost: int = 400) -> World:
    app = RailsApp(engine, view_cost=view_cost)
    build_schema(app.db)
    RolifyDynamic = build_rolify(app.engine)
    models = build_models(app, RolifyDynamic)
    controllers = build_controllers(app, models)
    User = models.User
    app.get("/roles", controllers.RolesController, "index")
    app.post("/roles/:id/grant", controllers.RolesController, "grant")
    app.post("/roles/:id/revoke", controllers.RolesController, "revoke")

    def seed() -> None:
        app.db.reset()
        User.create(name="Pat", email="pat@umd.example")
        User.create(name="Quinn", email="quinn@umd.example")
        User.create(name="Riley", email="riley@umd.example")

    def workload() -> list:
        """Unit-test-style driver plus role pages: roles are defined
        piecemeal between checks, producing the paper's multiple phases."""
        out = []
        pat, quinn, riley = User.all()
        # Roles are granted user by user; each grant's
        # define_dynamic_method generates fresh annotations mid-run.
        out.append(app.request("POST", "/roles/1/grant",
                               {"role": "professor"}))
        out.append(pat.is_professor())
        out.append(app.request("POST", "/roles/1/grant",
                               {"role": "advisor"}))
        out.append(pat.is_advisor())
        out.append(app.request("POST", "/roles/2/grant",
                               {"role": "student"}))
        out.append(quinn.is_student())
        out.append(quinn.is_student_of(pat))
        out.append(app.request("POST", "/roles/3/grant",
                               {"role": "student"}))
        out.append(app.request("POST", "/roles/3/grant",
                               {"role": "grader"}))
        out.append(riley.is_grader())
        out.append(app.request("GET", "/roles"))
        out.append(app.request("POST", "/roles/1/revoke",
                               {"role": "advisor"}))
        out.append(pat.is_advisor())
        # Browsing the role pages dominates wall-clock, like the paper's
        # unit-test driver whose time is mostly framework-side.
        for _ in range(10):
            out.append(app.request("GET", "/roles"))
        return out

    return World(
        name="rolify", engine=app.engine, seed=seed, workload=workload,
        uses_rails=True, uses_metaprogramming=True,
        loc_modules=["repro.apps.rolify_app.app"],
        extras={"app": app, "models": models, "controllers": controllers,
                "RolifyDynamic": RolifyDynamic})
