"""Rolify-on-Talks — role management integrated with the User resource
(paper app #4, the only multi-phase app)."""

from .app import build

__all__ = ["build"]
