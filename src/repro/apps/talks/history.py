"""The six historical Talks type errors (paper section 5).

Each entry reproduces one error the paper found by running Hummingbird on
old versions of Talks, as a (buggy source, fixed source) pair applied to a
fresh Talks build.  The harness defines the buggy method, forces its JIT
check, and expects a :class:`StaticTypeError` whose message matches the
paper's diagnosis; the fixed source must then check cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...core import StaticTypeError
from ...rtypes import Sym
from .app import build


@dataclass(frozen=True)
class HistoricalError:
    """One introduced-then-fixed error from the Talks git history."""

    version: str          # the paper's checkin label
    description: str
    cls_name: str
    meth: str
    sig: str
    buggy_source: str
    fixed_source: str
    error_match: str      # substring expected in the error message


HISTORICAL_ERRORS = [
    HistoricalError(
        version="1/8/12-4",
        description="misspells compute_edit_fields as copute_edit_fields; "
                    "an unbound local that is also not a valid method",
        cls_name="TalksController", meth="edit", sig="() -> String",
        buggy_source=(
            "def edit(self):\n"
            "    t = Talk.find(int(self.param(Sym('id'))))\n"
            "    fields = self.copute_edit_fields(t)\n"
            "    return self.render('talks/edit', {Sym('n'): len(fields)})\n"
        ),
        fixed_source=(
            "def edit(self):\n"
            "    t = Talk.find(int(self.param(Sym('id'))))\n"
            "    fields = self.compute_edit_fields(t)\n"
            "    return self.render('talks/edit', {Sym('n'): len(fields)})\n"
        ),
        error_match="copute_edit_fields"),
    HistoricalError(
        version="1/7/12-5",
        description="passes a block to upcoming (the .sort was dropped); "
                    "upcoming's type says it takes no block — Ruby itself "
                    "would silently ignore this",
        cls_name="ListsController", meth="sorted_upcoming",
        sig="() -> String",
        buggy_source=(
            "def sorted_upcoming(self):\n"
            "    lst = List.find(int(self.param(Sym('id'))))\n"
            "    talks = lst.upcoming(self.now(), lambda a, b: 0)\n"
            "    return self.render('lists/up', {Sym('n'): len(talks)})\n"
        ),
        fixed_source=(
            "def sorted_upcoming(self):\n"
            "    lst = List.find(int(self.param(Sym('id'))))\n"
            "    talks = lst.upcoming(self.now())\n"
            "    return self.render('lists/up', {Sym('n'): len(talks)})\n"
        ),
        error_match="block"),
    HistoricalError(
        version="1/26/12-3",
        description="calls subscribed_talks(True), but the argument is "
                    "a Symbol",
        cls_name="UsersController", meth="user_talks", sig="() -> String",
        buggy_source=(
            "def user_talks(self):\n"
            "    u = User.find(int(self.param(Sym('id'))))\n"
            "    talks = u.subscribed_talks(True)\n"
            "    return self.render('users/t', {Sym('n'): len(talks)})\n"
        ),
        fixed_source=(
            "def user_talks(self):\n"
            "    u = User.find(int(self.param(Sym('id'))))\n"
            "    talks = u.subscribed_talks(Sym('upcoming'))\n"
            "    return self.render('users/t', {Sym('n'): len(talks)})\n"
        ),
        error_match="Symbol"),
    HistoricalError(
        version="1/28/12",
        description="calls @job.handler.object, but handler returns a "
                    "String, which has no object method",
        cls_name="DelayedJob", meth="job_object", sig="() -> %any",
        buggy_source=(
            "def job_object(self):\n"
            "    h = self.handler\n"
            "    return h.object()\n"
        ),
        fixed_source=(
            "def job_object(self):\n"
            "    h = self.handler\n"
            "    return h\n"
        ),
        error_match="object"),
    HistoricalError(
        version="2/6/12-2",
        description="uses undefined variable old_talk; assumed to be a "
                    "no-argument method, whose type does not exist",
        cls_name="TalksController", meth="compare_talks",
        sig="() -> String",
        buggy_source=(
            "def compare_talks(self):\n"
            "    t = Talk.find(int(self.param(Sym('id'))))\n"
            "    if old_talk == t:\n"
            "        return self.render('talks/same', {})\n"
            "    return self.render('talks/diff', {})\n"
        ),
        fixed_source=(
            "def compare_talks(self):\n"
            "    t = Talk.find(int(self.param(Sym('id'))))\n"
            "    old_talk = Talk.find(int(self.param(Sym('other'))))\n"
            "    if old_talk == t:\n"
            "        return self.render('talks/same', {})\n"
            "    return self.render('talks/diff', {})\n"
        ),
        error_match="old_talk"),
    HistoricalError(
        version="2/6/12-3",
        description="uses undefined variable new_talk",
        cls_name="TalksController", meth="clone_talk", sig="() -> String",
        buggy_source=(
            "def clone_talk(self):\n"
            "    t = Talk.find(int(self.param(Sym('id'))))\n"
            "    title = new_talk.title\n"
            "    return self.render('talks/clone', {Sym('t'): title})\n"
        ),
        fixed_source=(
            "def clone_talk(self):\n"
            "    new_talk = Talk.find(int(self.param(Sym('id'))))\n"
            "    title = new_talk.title\n"
            "    return self.render('talks/clone', {Sym('t'): title})\n"
        ),
        error_match="new_talk"),
]


def check_historical_error(entry: HistoricalError) -> Optional[str]:
    """Apply one historical version to a fresh Talks build and JIT-check
    the buggy method.  Returns the error message Hummingbird reports (or
    None, which the test suite treats as a reproduction failure), then
    verifies the subsequent fixed version checks cleanly."""
    world = build()
    app = world.extras["app"]
    cls = _target_class(world, entry.cls_name)
    namespace = _exec_namespace(world)

    buggy = _compile(entry.buggy_source, entry.meth, namespace)
    app.engine.define_method(cls, entry.meth, buggy, sig=entry.sig,
                             check=True, source=entry.buggy_source)
    message = None
    try:
        app.engine.check_method_now(cls, entry.meth)
    except StaticTypeError as exc:
        message = str(exc)

    fixed = _compile(entry.fixed_source, entry.meth, namespace)
    app.engine.define_method(cls, entry.meth, fixed, sig=entry.sig,
                             check=True, source=entry.fixed_source)
    app.engine.check_method_now(cls, entry.meth)  # must not raise
    return message


def _target_class(world, cls_name: str):
    app = world.extras["app"]
    controllers = world.extras["controllers"]
    models = world.extras["models"]
    if cls_name == "DelayedJob":
        if not app.db.has_table("delayed_jobs"):
            app.db.create_table("delayed_jobs", ("handler", "string", False))

            @app.register_model
            class DelayedJob(app.Model):
                pass

            world.extras["DelayedJob"] = DelayedJob
        return world.extras["DelayedJob"]
    if hasattr(controllers, cls_name):
        return getattr(controllers, cls_name)
    return getattr(models, cls_name)


def _exec_namespace(world) -> dict:
    models = world.extras["models"]
    return {"Sym": Sym, "Talk": models.Talk, "List": models.List,
            "User": models.User, "Subscription": models.Subscription}


def _compile(source: str, name: str, namespace: dict):
    ns = dict(namespace)
    exec(compile(source, f"<history:{name}>", "exec"), ns)
    fn = ns[name]
    fn.__hb_source__ = source
    return fn
