"""Talks — a Rails app for publicizing talk announcements (paper app #1).

The largest subject app: models with associations, controllers, helper
mixins, a request-script workload, the six historical type errors
(:mod:`~repro.apps.talks.history`), and the seven-version dev-mode update
sequence (:mod:`~repro.apps.talks.updates`).
"""

from .app import build

__all__ = ["build"]
