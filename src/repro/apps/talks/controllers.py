"""Talks controllers and helpers — the request-handling app code."""

from __future__ import annotations

from types import SimpleNamespace

from ...rtypes import Sym


def build_controllers(app, m) -> SimpleNamespace:
    hb = app.hb
    User, List, Talk, Subscription = m.User, m.List, m.Talk, m.Subscription

    class TalksHelpers:
        """An app-level helper mixin (Rails's ApplicationHelper)."""

        __hb_module__ = True

        @hb.typed("(Time) -> String")
        def format_time(self, t):
            return t.strftime("%Y-%m-%d %H:%M")

        @hb.typed("(Talk) -> Array<String>")
        def compute_edit_fields(self, talk):
            return ["title", "abstract", "room", talk.display_title()]

        @hb.typed("(Talk) -> String")
        def edit_link(self, talk):
            fields = self.compute_edit_fields(talk)
            return f"/talks/{talk.id}/edit?fields={len(fields)}"

        @hb.typed("(String, Integer) -> String")
        def truncate(self, text, limit):
            if len(text) > limit:
                sentences = text.split(".")
                return sentences[0]
            return text

    class TalksController(app.Controller, TalksHelpers):
        @hb.typed("() -> String")
        def index(self):
            talks = Talk.all()
            entries = [self.entry(t) for t in talks]
            return self.render("talks/index", {Sym("entries"): entries})

        @hb.typed("(Talk) -> String")
        def entry(self, t):
            return f"{t.display_title()} at {self.format_time(t.starts_at)}"

        @hb.typed("() -> String")
        def show(self):
            t = Talk.find(int(self.param(Sym("id"))))
            return self.render("talks/show", {
                Sym("title"): t.display_title(),
                Sym("summary"): self.truncate(t.summary(), 60),
                Sym("edit"): self.edit_link(t),
            })

        @hb.typed("() -> String")
        def upcoming(self):
            titles: "Array<String>" = []
            for t in Talk.all():
                if t.upcoming_p(self.now()):
                    titles.append(t.display_title())
            return self.render("talks/upcoming", {Sym("titles"): titles})

        @hb.typed("() -> String")
        def by_owner(self):
            u = User.find(int(self.param(Sym("user_id"))))
            talks = Talk.find_all_by_owner_id(u.id)
            titles = [t.title for t in talks]
            return self.render("talks/by_owner", {
                Sym("owner"): u.display_name(),
                Sym("titles"): titles,
            })

        @hb.typed("() -> String")
        def create(self):
            t = Talk.create({
                Sym("title"): self.param(Sym("title")),
                Sym("abstract"): self.param_or(Sym("abstract"), ""),
                Sym("owner_id"): int(self.param(Sym("owner_id"))),
                Sym("list_id"): int(self.param(Sym("list_id"))),
                Sym("starts_at"): self.now(),
                Sym("hidden"): False,
            })
            return self.redirect_to(f"/talks/{t.id}")

        @hb.typed("() -> String")
        def update(self):
            t = Talk.find(int(self.param(Sym("id"))))
            t.update({Sym("title"): self.param(Sym("title"))})
            return self.redirect_to(f"/talks/{t.id}")

        @hb.typed("() -> String")
        def destroy(self):
            t = Talk.find(int(self.param(Sym("id"))))
            t.destroy()
            return self.redirect_to("/talks")

    class ListsController(app.Controller, TalksHelpers):
        @hb.typed("() -> String")
        def index(self):
            lists = List.all()
            names = [lst.name for lst in lists]
            return self.render("lists/index", {Sym("names"): names})

        @hb.typed("() -> String")
        def show(self):
            lst = List.find(int(self.param(Sym("id"))))
            talks = lst.upcoming(self.now())
            titles = [t.display_title() for t in talks]
            return self.render("lists/show", {
                Sym("name"): lst.name,
                Sym("count"): lst.talk_count(),
                Sym("titles"): titles,
            })

        @hb.typed("() -> String")
        def create(self):
            lst = List.create({
                Sym("name"): self.param(Sym("name")),
                Sym("owner_id"): int(self.param(Sym("owner_id"))),
            })
            return self.redirect_to(f"/lists/{lst.id}")

    class UsersController(app.Controller, TalksHelpers):
        @hb.typed("() -> String")
        def index(self):
            names = [u.display_name() for u in User.all()]
            return self.render("users/index", {Sym("names"): names})

        @hb.typed("() -> String")
        def show(self):
            u = User.find(int(self.param(Sym("id"))))
            return self.render("users/show", {
                Sym("name"): u.display_name(),
                Sym("admin"): u.admin_p(),
                Sym("lists"): len(u.owned_lists()),
            })

        @hb.typed("() -> String")
        def talks_for(self):
            u = User.find(int(self.param(Sym("id"))))
            talks = u.subscribed_talks(Sym("upcoming"))
            titles = [t.display_title() for t in talks]
            return self.render("users/talks", {Sym("titles"): titles})

        @hb.typed("() -> String")
        def create(self):
            u = User.create({
                Sym("name"): self.param(Sym("name")),
                Sym("email"): self.param(Sym("email")),
                Sym("password"): self.param(Sym("password")),
                Sym("admin"): False,
            })
            return self.redirect_to(f"/users/{u.id}")

    class SubscriptionsController(app.Controller):
        @hb.typed("() -> String")
        def create(self):
            Subscription.create({
                Sym("user_id"): int(self.param(Sym("user_id"))),
                Sym("list_id"): int(self.param(Sym("list_id"))),
            })
            return self.redirect_to("/lists")

        @hb.typed("() -> String")
        def destroy(self):
            s = Subscription.find(int(self.param(Sym("id"))))
            s.destroy()
            return self.redirect_to("/lists")

    return SimpleNamespace(
        TalksHelpers=TalksHelpers,
        TalksController=TalksController,
        ListsController=ListsController,
        UsersController=UsersController,
        SubscriptionsController=SubscriptionsController,
    )
