"""Talks models: User, List, Talk, Subscription.

Every ``@hb.typed`` method here is *app code*: statically checked just in
time at its first call.  The bodies deliberately depend on types the
framework generates at run time (association getters like ``self.owner``,
finders like ``find_all_by_user_id``) — without the typegen hooks none of
them would check, which is the paper's core claim about metaprogramming.
"""

from __future__ import annotations

from types import SimpleNamespace

from ...rtypes import Sym


def build_models(app) -> SimpleNamespace:
    hb = app.hb

    @app.register_model
    class User(app.Model):
        @hb.typed("() -> String")
        def display_name(self):
            n = self.name
            if n is None:
                return self.email
            return n

        @hb.typed("() -> %bool")
        def admin_p(self):
            return self.admin == True  # noqa: E712 — column may be nil

        @hb.typed("(List) -> %bool")
        def subscribed(self, lst):
            subs = Subscription.find_all_by_user_id(self.id)
            for s in subs:
                if s.list_id == lst.id:
                    return True
            return False

        @hb.typed("(Symbol) -> Array<Talk>")
        def subscribed_talks(self, kind):
            out: "Array<Talk>" = []
            subs = Subscription.find_all_by_user_id(self.id)
            for s in subs:
                lst = List.find(s.list_id)
                for t in lst.talks:
                    if kind == Sym("upcoming"):
                        if not t.hidden:
                            out.append(t)
                    else:
                        out.append(t)
            return out

        @hb.typed("() -> Array<List>")
        def owned_lists(self):
            return List.find_all_by_owner_id(self.id)

    @app.register_model
    class List(app.Model):
        @hb.typed("(Time) -> Array<Talk>")
        def upcoming(self, now):
            out: "Array<Talk>" = []
            for t in self.talks:
                if t.starts_at > now:
                    if not t.hidden:
                        out.append(t)
            return out

        @hb.typed("(User) -> %bool")
        def owned_by(self, user):
            return self.owner_id == user.id

        @hb.typed("() -> Integer")
        def talk_count(self):
            return len(self.talks)

    @app.register_model
    class Talk(app.Model):
        @hb.typed("(User) -> %bool")
        def owner_p(self, user):
            # Fig. 1's owner?: `owner` only exists because belongs_to
            # created it — and only checks because the pre-hook typed it.
            return self.owner == user

        @hb.typed("() -> String")
        def display_title(self):
            r = self.room
            if r is None:
                return self.title
            return f"{self.title} ({r})"

        @hb.typed("(Time) -> %bool")
        def upcoming_p(self, now):
            return self.starts_at > now

        @hb.typed("() -> String")
        def summary(self):
            a = self.abstract
            if a is None:
                return ""
            sentences = a.split(".")
            return sentences[0]

        @hb.typed("(User) -> User")
        def set_owner(self, user):
            self.owner = user
            return user

    @app.register_model
    class Subscription(app.Model):
        @hb.typed("(User) -> %bool")
        def involves(self, user):
            return self.user_id == user.id

    # Associations may be declared anywhere after (or before!) the class —
    # the paper stresses Rails only requires them to run before first use.
    Talk.belongs_to("owner", class_name="User")
    Talk.belongs_to("list", class_name="List")
    List.belongs_to("owner", class_name="User")
    List.has_many("talks", fk="list_id")
    User.has_many("talks", fk="owner_id")
    User.has_many("subscriptions")
    Subscription.belongs_to("user")
    Subscription.belongs_to("list", class_name="List")

    return SimpleNamespace(User=User, List=List, Talk=Talk,
                           Subscription=Subscription)
