"""The Table 2 experiment: consecutive Talks updates in dev mode.

Seven versions of a dev-mode Talks front end are applied through the
reloader.  After each update the database is reset, the same request
script runs (exactly the Table 2 protocol), and the ledger records:

* ``∆Meth`` — methods whose bodies/types changed vs. the previous version;
* ``Added`` — new methods (checked at first call, no invalidations);
* ``Deps`` — cached dependents invalidated alongside the changed methods;
* ``Chk'd`` — methods newly or re-checked after the update, reported both
  including and excluding the always-rechecked helper methods (the Rails
  helper-class-renaming quirk).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...rails.reloader import AppVersion, Reloader
from ...rtypes import Sym
from .app import build

Key = Tuple[str, str]

# --------------------------------------------------------------------------
# Method sources.  DevTalksController/DevListsController are the reloadable
# "files"; methods marked helper=True live in the helper file.
# --------------------------------------------------------------------------

_BASE_METHODS = {
    # (class, name): (sig, source, helper)
    ("DevTalksController", "index"): ("() -> String", (
        "def index(self):\n"
        "    rows = [self.entry(t) for t in Talk.all()]\n"
        "    return self.render('talks/index', {Sym('rows'): rows})\n"), False),
    ("DevTalksController", "entry"): ("(Talk) -> String", (
        "def entry(self, t):\n"
        "    return self.fmt_title(t)\n"), False),
    ("DevTalksController", "show"): ("() -> String", (
        "def show(self):\n"
        "    t = Talk.find(int(self.param(Sym('id'))))\n"
        "    return self.render('talks/show', "
        "{Sym('title'): self.fmt_title(t)})\n"), False),
    ("DevTalksController", "upcoming"): ("() -> String", (
        "def upcoming(self):\n"
        "    titles: 'Array<String>' = []\n"
        "    for t in Talk.all():\n"
        "        if t.starts_at > self.now():\n"
        "            titles.append(self.fmt_title(t))\n"
        "    return self.render('talks/up', {Sym('titles'): titles})\n"),
        False),
    ("DevTalksController", "by_owner"): ("() -> String", (
        "def by_owner(self):\n"
        "    u = User.find(int(self.param(Sym('user_id'))))\n"
        "    talks = Talk.find_all_by_owner_id(u.id)\n"
        "    names = [t.title for t in talks]\n"
        "    return self.render('talks/owner', {Sym('names'): names})\n"),
        False),
    ("DevTalksController", "create"): ("() -> String", (
        "def create(self):\n"
        "    t = Talk.create({Sym('title'): self.param(Sym('title')),\n"
        "                     Sym('owner_id'): 1, Sym('list_id'): 1,\n"
        "                     Sym('starts_at'): self.now(),\n"
        "                     Sym('hidden'): False})\n"
        "    return self.redirect_to(f'/dev/talks/{t.id}')\n"), False),
    ("DevListsController", "index"): ("() -> String", (
        "def index(self):\n"
        "    names = [lst.name for lst in List.all()]\n"
        "    return self.render('lists/index', {Sym('names'): names})\n"),
        False),
    ("DevListsController", "show"): ("() -> String", (
        "def show(self):\n"
        "    lst = List.find(int(self.param(Sym('id'))))\n"
        "    return self.render('lists/show', "
        "{Sym('label'): self.list_label(lst)})\n"), False),
    ("DevListsController", "list_label"): ("(List) -> String", (
        "def list_label(self, lst):\n"
        "    return f'{lst.name} ({lst.talk_count()})'\n"), False),
    # --- helper file (always re-checked after reload) ---
    ("DevTalksController", "fmt_title"): ("(Talk) -> String", (
        "def fmt_title(self, t):\n"
        "    return f'{t.title} @ {self.fmt_time(t.starts_at)}'\n"), True),
    ("DevTalksController", "fmt_time"): ("(Time) -> String", (
        "def fmt_time(self, when):\n"
        "    return when.strftime('%Y-%m-%d')\n"), True),
    ("DevTalksController", "link_to"): ("(String, String) -> String", (
        "def link_to(self, label, path):\n"
        "    return f'<a href=\"{path}\">{label}</a>'\n"), True),
}

# Each step: label, {key: new source}, {key: (sig, source, helper)} added,
# [keys removed]
_UPDATE_STEPS = [
    ("7/24/12",
     {("DevTalksController", "entry"):
        "def entry(self, t):\n"
        "    return self.link_to(self.fmt_title(t), f'/dev/talks/{t.id}')\n"},
     {}, []),
    ("8/24/12-1",
     {("DevTalksController", "show"):
        "def show(self):\n"
        "    t = Talk.find(int(self.param(Sym('id'))))\n"
        "    return self.render('talks/show', "
        "{Sym('title'): self.fmt_title(t), Sym('room'): t.display_title()})\n",
      ("DevTalksController", "upcoming"):
        "def upcoming(self):\n"
        "    titles: 'Array<String>' = []\n"
        "    for t in Talk.all():\n"
        "        if t.upcoming_p(self.now()):\n"
        "            titles.append(self.entry(t))\n"
        "    return self.render('talks/up', {Sym('titles'): titles})\n",
      ("DevTalksController", "fmt_title"):
        "def fmt_title(self, t):\n"
        "    return f'{t.display_title()} @ {self.fmt_time(t.starts_at)}'\n"},
     {("DevListsController", "counts"): ("() -> String", (
        "def counts(self):\n"
        "    totals = [self.list_label(lst) for lst in List.all()]\n"
        "    return self.render('lists/counts', {Sym('totals'): totals})\n"),
        False),
      ("DevTalksController", "fmt_room"): ("(Talk) -> String", (
        "def fmt_room(self, t):\n"
        "    r = t.room\n"
        "    if r is None:\n"
        "        return 'TBA'\n"
        "    return r\n"), True)},
     []),
    ("8/24/12-2", {},
     {("DevTalksController", "search"): ("() -> String", (
        "def search(self):\n"
        "    q = self.param(Sym('q'))\n"
        "    hits: 'Array<String>' = []\n"
        "    for t in Talk.all():\n"
        "        if q in t.title:\n"
        "            hits.append(self.entry(t))\n"
        "    return self.render('talks/search', {Sym('hits'): hits})\n"),
        False)},
     []),
    ("8/24/12-3",
     {("DevListsController", "list_label"):
        "def list_label(self, lst):\n"
        "    return f'{lst.name} — {lst.talk_count()} talks'\n"},
     {("DevListsController", "empty_p"): ("(List) -> %bool", (
        "def empty_p(self, lst):\n"
        "    return lst.talk_count() == 0\n"), False)},
     []),
    ("9/14/12",
     {("DevTalksController", "by_owner"):
        "def by_owner(self):\n"
        "    u = User.find(int(self.param(Sym('user_id'))))\n"
        "    talks = Talk.find_all_by_owner_id(u.id)\n"
        "    names = [self.entry(t) for t in talks]\n"
        "    return self.render('talks/owner', {Sym('names'): names})\n"},
     {}, []),
    ("1/4/13",
     {("DevTalksController", "index"):
        "def index(self):\n"
        "    rows = [self.entry(t) for t in Talk.all()]\n"
        "    return self.render('talks/index', "
        "{Sym('rows'): rows, Sym('count'): len(rows)})\n",
      ("DevTalksController", "create"):
        "def create(self):\n"
        "    t = Talk.create({Sym('title'): self.param(Sym('title')),\n"
        "                     Sym('owner_id'): 1, Sym('list_id'): 1,\n"
        "                     Sym('starts_at'): self.now(),\n"
        "                     Sym('hidden'): False})\n"
        "    return self.redirect_to(f'/dev/talks/{t.id}?fresh=1')\n",
      ("DevListsController", "show"):
        "def show(self):\n"
        "    lst = List.find(int(self.param(Sym('id'))))\n"
        "    return self.render('lists/show', "
        "{Sym('label'): self.list_label(lst), "
        "Sym('empty'): self.empty_p(lst)})\n",
      ("DevListsController", "counts"):
        "def counts(self):\n"
        "    totals = [self.list_label(lst) for lst in List.all()]\n"
        "    return self.render('lists/counts', "
        "{Sym('totals'): totals, Sym('n'): len(totals)})\n"},
     {}, []),
]


@dataclass
class UpdateRow:
    """One Table 2 row."""

    version: str
    delta_meth: Optional[int]
    added: Optional[int]
    deps: Optional[int]
    checked_with_helpers: int
    checked_without_helpers: int


def _versions() -> List[AppVersion]:
    """Materialize the cumulative version snapshots."""
    current: Dict[Key, tuple] = dict(_BASE_METHODS)
    versions = [_to_version("5/14/12", current)]
    for label, changes, adds, removes in _UPDATE_STEPS:
        for key, source in changes.items():
            sig, _, helper = current[key]
            current[key] = (sig, source, helper)
        current.update(adds)
        for key in removes:
            current.pop(key, None)
        versions.append(_to_version(label, current))
    return versions


def _to_version(label: str, methods: Dict[Key, tuple]) -> AppVersion:
    version = AppVersion(label)
    for (cls, name), (sig, source, helper) in methods.items():
        version.add(cls, name, sig, source, helper=helper)
    return version


def _request_script(app, talks_ctrl: type, lists_ctrl: type) -> None:
    """The fixed request script; newer endpoints are exercised once their
    methods exist (earlier versions simply do not route to them)."""
    req = app.request
    req("GET", "/dev/talks")
    req("GET", "/dev/talks/upcoming")
    req("GET", "/dev/talks/1")
    req("GET", "/dev/talks/2")
    req("GET", "/dev/talks/by_owner/1")
    req("POST", "/dev/talks", {"title": "From the curl script"})
    req("GET", "/dev/lists")
    req("GET", "/dev/lists/1")
    if hasattr(lists_ctrl, "counts"):
        req("GET", "/dev/lists/counts")
    if hasattr(talks_ctrl, "search"):
        req("GET", "/dev/talks/search_q/typing")


def run_update_experiment(view_cost: int = 30) -> List[UpdateRow]:
    """Launch Talks in development mode, apply the six consecutive
    updates, and return the Table 2 ledger."""
    world = build(view_cost=view_cost)
    app = world.extras["app"]
    engine = app.engine
    models = world.extras["models"]

    class DevTalksController(app.Controller):
        pass

    class DevListsController(app.Controller):
        pass

    app.get("/dev/talks", DevTalksController, "index")
    app.get("/dev/talks/upcoming", DevTalksController, "upcoming")
    app.get("/dev/talks/by_owner/:user_id", DevTalksController, "by_owner")
    app.get("/dev/talks/search_q/:q", DevTalksController, "search")
    app.get("/dev/talks/:id", DevTalksController, "show")
    app.post("/dev/talks", DevTalksController, "create")
    app.get("/dev/lists", DevListsController, "index")
    app.get("/dev/lists/counts", DevListsController, "counts")
    app.get("/dev/lists/:id", DevListsController, "show")

    reloader = Reloader(app)
    reloader.register_class(DevTalksController)
    reloader.register_class(DevListsController)
    reloader.expose(Sym=Sym, Talk=models.Talk, List=models.List,
                    User=models.User)

    rows: List[UpdateRow] = []
    for i, version in enumerate(_versions()):
        report = reloader.apply(version)
        before = dict(engine.stats.check_counts)
        world.seed()  # reset the database between versions
        _request_script(app, DevTalksController, DevListsController)
        after = engine.stats.check_counts
        checked = {key for key in after
                   if after[key] > before.get(key, 0)}
        helper_keys = {(m.cls_name, m.name) for m in version.methods
                       if m.helper}
        without = {k for k in checked
                   if k not in helper_keys or k in report.changed}
        if i == 0:
            rows.append(UpdateRow(version.label, None, None, None,
                                  len(checked), len(checked)))
        else:
            rows.append(UpdateRow(
                version.label, report.delta_methods, report.added_count,
                report.dependent_count, len(checked), len(without)))
    return rows
