"""Talks: schema, routes, seed data, and the request-script workload."""

from __future__ import annotations

import datetime

from ...core import Engine
from ...rails import RailsApp
from .. import World
from .controllers import build_controllers
from .models import build_models


def build_schema(db) -> None:
    db.create_table(
        "users",
        ("name", "string"),
        ("email", "string", False),
        ("password", "string", False),
        ("admin", "boolean"))
    db.create_table(
        "lists",
        ("name", "string", False),
        ("owner_id", "integer"))
    db.create_table(
        "talks",
        ("title", "string", False),
        ("abstract", "string"),
        ("room", "string"),
        ("video_url", "string"),
        ("owner_id", "integer"),
        ("list_id", "integer"),
        ("starts_at", "datetime", False),
        ("hidden", "boolean", False))
    db.create_table(
        "subscriptions",
        ("user_id", "integer", False),
        ("list_id", "integer", False))


def build(engine: Engine = None, *, view_cost: int = 150) -> World:
    app = RailsApp(engine, view_cost=view_cost)
    build_schema(app.db)
    models = build_models(app)
    controllers = build_controllers(app, models)

    tc, lc, uc, sc = (controllers.TalksController,
                      controllers.ListsController,
                      controllers.UsersController,
                      controllers.SubscriptionsController)
    app.get("/talks", tc, "index")
    app.get("/talks/upcoming", tc, "upcoming")
    app.get("/talks/by_owner/:user_id", tc, "by_owner")
    app.get("/talks/:id", tc, "show")
    app.post("/talks", tc, "create")
    app.post("/talks/:id", tc, "update")
    app.post("/talks/:id/destroy", tc, "destroy")
    app.get("/lists", lc, "index")
    app.get("/lists/:id", lc, "show")
    app.post("/lists", lc, "create")
    app.get("/users", uc, "index")
    app.get("/users/:id", uc, "show")
    app.get("/users/:id/talks", uc, "talks_for")
    app.post("/users", uc, "create")
    app.post("/subscriptions", sc, "create")
    app.post("/subscriptions/:id/destroy", sc, "destroy")

    def seed() -> None:
        app.db.reset()
        m = models
        alice = m.User.create(name="Alice", email="alice@cs.example",
                              password="pw1", admin=True)
        bob = m.User.create(name=None, email="bob@cs.example",
                            password="pw2", admin=False)
        carol = m.User.create(name="Carol", email="carol@cs.example",
                              password="pw3", admin=False)
        pl = m.List.create(name="PL Seminar", owner_id=alice.id)
        sys = m.List.create(name="Systems Lunch", owner_id=bob.id)
        base = datetime.datetime(2016, 4, 13, 12, 0, 0)
        titles = [
            ("Just-in-Time Static Type Checking", "CSIC 1115", 1),
            ("Profile-Guided Static Typing. For Dynamic Languages", None, 2),
            ("The Ruby Intermediate Language", "AVW 3258", 3),
            ("Contracts for Domain-Specific Languages", None, -1),
            ("Static Typing for Rails", "CSIC 2117", 5),
            ("Dynamic Inference of Static Types", None, 7),
            ("The Ruby Type Checker", "AVW 4424", -2),
            ("Typing the Numeric Tower", None, 9),
        ]
        for i, (title, room, day_offset) in enumerate(titles):
            m.Talk.create(
                title=title,
                abstract=f"{title}. An abstract with details number {i}.",
                room=room,
                owner_id=[alice, bob, carol][i % 3].id,
                list_id=[pl, sys][i % 2].id,
                starts_at=base + datetime.timedelta(days=day_offset),
                hidden=(i == 7))
        m.Subscription.create(user_id=alice.id, list_id=sys.id)
        m.Subscription.create(user_id=bob.id, list_id=pl.id)
        m.Subscription.create(user_id=carol.id, list_id=pl.id)

    def workload() -> list:
        """The curl script: exercises a wide range of functionality."""
        responses = []
        get, post = app.request, app.request
        responses.append(get("GET", "/talks"))
        responses.append(get("GET", "/talks/upcoming"))
        for talk_id in ("1", "2", "3", "4", "5"):
            responses.append(get("GET", f"/talks/{talk_id}"))
        responses.append(get("GET", "/talks/by_owner/1"))
        responses.append(get("GET", "/talks/by_owner/2"))
        responses.append(get("GET", "/lists"))
        responses.append(get("GET", "/lists/1"))
        responses.append(get("GET", "/lists/2"))
        responses.append(get("GET", "/users"))
        responses.append(get("GET", "/users/1"))
        responses.append(get("GET", "/users/2"))
        responses.append(get("GET", "/users/1/talks"))
        responses.append(get("GET", "/users/3/talks"))
        responses.append(post("POST", "/users", {
            "name": "Dave", "email": "dave@cs.example", "password": "pw4"}))
        responses.append(post("POST", "/lists", {
            "name": "Theory Reading", "owner_id": "1"}))
        responses.append(post("POST", "/talks", {
            "title": "A New Talk", "owner_id": "1", "list_id": "1",
            "abstract": "Fresh. New."}))
        responses.append(post("POST", "/talks/9", {"title": "Renamed Talk"}))
        responses.append(get("GET", "/talks/9"))
        responses.append(post("POST", "/subscriptions", {
            "user_id": "2", "list_id": "2"}))
        responses.append(post("POST", "/subscriptions/4/destroy", {}))
        responses.append(post("POST", "/talks/9/destroy", {}))
        responses.append(get("GET", "/talks"))
        return responses

    return World(
        name="talks", engine=app.engine, seed=seed, workload=workload,
        uses_rails=True, uses_metaprogramming=True,
        loc_modules=["repro.apps.talks.models",
                     "repro.apps.talks.controllers"],
        extras={"app": app, "models": models, "controllers": controllers})
