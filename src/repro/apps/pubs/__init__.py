"""Pubs — a Rails app for managing publication lists (paper app #3).

The hot-loop app: citation formatting runs once per publication per
request, so without caching the same methods are re-checked thousands of
times (the paper's Pubs shows the worst no-cache slowdown, 62x, with
methods checked 13,000+ times)."""

from .app import build

__all__ = ["build"]
