"""Pubs: publications, authors, venues — with a per-publication hot path."""

from __future__ import annotations

from types import SimpleNamespace

from ...core import Engine
from ...rails import RailsApp
from ...rtypes import Sym
from .. import World


def build_schema(db) -> None:
    db.create_table("authors", ("name", "string", False))
    db.create_table(
        "venues",
        ("name", "string", False),
        ("year", "integer", False))
    db.create_table(
        "publications",
        ("title", "string", False),
        ("venue_id", "integer"),
        ("pages", "string"),
        ("url", "string"),
        ("kind", "string", False))
    db.create_table(
        "authorships",
        ("publication_id", "integer", False),
        ("author_id", "integer", False),
        ("position", "integer", False))


def build_models(app) -> SimpleNamespace:
    hb = app.hb

    @app.register_model
    class Author(app.Model):
        @hb.typed("() -> String")
        def last_name(self):
            parts = self.name.split(" ")
            return parts[len(parts) - 1]

        @hb.typed("() -> String")
        def initials(self):
            out = ""
            for part in self.name.split(" "):
                out = out + part[0] + "."
            return out

    @app.register_model
    class Venue(app.Model):
        @hb.typed("() -> String")
        def label(self):
            return f"{self.name} {self.year}"

    @app.register_model
    class Publication(app.Model):
        @hb.typed("() -> Array<String>")
        def author_names(self):
            names: "Array<String>" = []
            for a in Authorship.find_all_by_publication_id(self.id):
                author = Author.find(a.author_id)
                names.append(author.last_name())
            return names

        @hb.typed("() -> String")
        def format_citation(self):
            # The hot method: called once per publication per request.
            names = self.author_names()
            joined = ", ".join(names)
            venue = self.venue
            where = venue.label()
            p = self.pages
            if p is None:
                return f"{joined}. {self.title}. In {where}."
            return f"{joined}. {self.title}. In {where}, pages {p}."

        @hb.typed("() -> String")
        def bibtex_key(self):
            first = self.author_names()
            venue = self.venue
            if len(first) == 0:
                return f"anon{venue.year}"
            return f"{first[0]}{venue.year}"

        @hb.typed("() -> String")
        def to_bibtex(self):
            kind = self.kind
            key = self.bibtex_key()
            return (f"@{kind}{{{key}, title={{{self.title}}}, "
                    f"venue={{{self.venue.label()}}}}}")

        @hb.typed("(Integer) -> %bool")
        def published_in(self, year):
            return self.venue.year == year

    @app.register_model
    class Authorship(app.Model):
        pass

    Publication.belongs_to("venue")
    Authorship.belongs_to("publication")
    Authorship.belongs_to("author")
    Author.has_many("authorships")
    Venue.has_many("publications", fk="venue_id")

    return SimpleNamespace(Author=Author, Venue=Venue,
                           Publication=Publication, Authorship=Authorship)


def build_controllers(app, m) -> SimpleNamespace:
    hb = app.hb
    Author, Venue, Publication = m.Author, m.Venue, m.Publication

    class PubsController(app.Controller):
        @hb.typed("() -> String")
        def index(self):
            citations = [p.format_citation() for p in Publication.all()]
            return self.render("pubs/index", {Sym("citations"): citations})

        @hb.typed("() -> String")
        def by_year(self):
            year = int(self.param(Sym("year")))
            rows: "Array<String>" = []
            for p in Publication.all():
                if p.published_in(year):
                    rows.append(p.format_citation())
            return self.render("pubs/by_year", {Sym("rows"): rows})

        @hb.typed("() -> String")
        def bibtex(self):
            entries = [p.to_bibtex() for p in Publication.all()]
            return self.render("pubs/bibtex", {Sym("entries"): entries})

        @hb.typed("() -> String")
        def show(self):
            p = Publication.find(int(self.param(Sym("id"))))
            return self.render("pubs/show", {
                Sym("citation"): p.format_citation(),
                Sym("bibtex"): p.to_bibtex(),
            })

    class VenuesController(app.Controller):
        @hb.typed("() -> String")
        def index(self):
            labels = [v.label() for v in Venue.all()]
            return self.render("venues/index", {Sym("labels"): labels})

    return SimpleNamespace(PubsController=PubsController,
                           VenuesController=VenuesController)


def build(engine: Engine = None, *, view_cost: int = 150,
          publications: int = 120) -> World:
    app = RailsApp(engine, view_cost=view_cost)
    build_schema(app.db)
    models = build_models(app)
    controllers = build_controllers(app, models)

    pc, vc = controllers.PubsController, controllers.VenuesController
    app.get("/pubs", pc, "index")
    app.get("/pubs/bibtex", pc, "bibtex")
    app.get("/pubs/year/:year", pc, "by_year")
    app.get("/pubs/:id", pc, "show")
    app.get("/venues", vc, "index")

    def seed() -> None:
        app.db.reset()
        m = models
        authors = [m.Author.create(name=n) for n in (
            "Brianna M Ren", "Jeffrey S Foster", "Michael Hicks",
            "David An", "T Stephen Strickland", "Avik Chaudhuri")]
        venues = [m.Venue.create(name=n, year=2008 + i)
                  for i, n in enumerate(
                      ("PLDI", "OOPSLA", "POPL", "DLS", "SAC", "ASE"))]
        for i in range(publications):
            p = m.Publication.create(
                title=f"Paper number {i} on gradual checking",
                venue_id=venues[i % len(venues)].id,
                pages=(f"{i * 3}-{i * 3 + 12}" if i % 4 else None),
                url=f"https://example.org/p{i}.pdf",
                kind=("inproceedings" if i % 3 else "article"))
            for pos in range(1 + i % 3):
                m.Authorship.create(publication_id=p.id,
                                    author_id=authors[(i + pos) % 6].id,
                                    position=pos)

    def workload() -> list:
        responses = []
        # The large-array path: each request touches every publication.
        responses.append(app.request("GET", "/pubs"))
        responses.append(app.request("GET", "/pubs/bibtex"))
        for year in ("2008", "2009", "2010", "2011", "2012", "2013"):
            responses.append(app.request("GET", f"/pubs/year/{year}"))
        show_ids = {1, 5, min(25, publications), min(50, publications)}
        for pub_id in sorted(show_ids):
            responses.append(app.request("GET", f"/pubs/{pub_id}"))
        responses.append(app.request("GET", "/venues"))
        return responses

    return World(
        name="pubs", engine=app.engine, seed=seed, workload=workload,
        uses_rails=True, uses_metaprogramming=True,
        loc_modules=["repro.apps.pubs.app"],
        extras={"app": app, "models": models, "controllers": controllers})
