"""The static type system of Figure 5, producing real derivation trees.

Judgment: ``TT ⊢ ⟨Γ, e⟩ ⇒ ⟨Γ′, τ⟩``.  The type table maps ``A.m`` to a
method type; Γ maps variables (and ``self``) to value types.  The output
environment makes the system flow-sensitive: (TAssn) rebinds the assigned
variable, (TIf) joins the branch environments pointwise and *drops*
variables bound on only one side.

Derivations record, per node, which rule applied and — for (TApp) — which
``A.m`` signature was consulted.  :func:`uses_of` collects those uses,
which is exactly what cache invalidation's Definition 1(2) needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from .syntax import (
    EAssign, ECall, EDef, EIf, ENew, ESelf, ESeq, EType, EVal, EVar, Expr,
    MTy, T_NIL, TCls, Tau, VNil, VObj, lub, subtype,
)

TypeEnv = Dict[str, Tau]
TypeTable = Dict[Tuple[str, str], MTy]


class CoreTypeError(Exception):
    """Static type checking failed (the calculus's type error)."""

    def __init__(self, message: str, expr: Expr):
        super().__init__(f"{message} in {expr}")
        self.expr = expr


@dataclass(frozen=True)
class Derivation:
    """One node of a typing derivation."""

    rule: str
    env_in: Tuple[Tuple[str, Tau], ...]
    expr: Expr
    env_out: Tuple[Tuple[str, Tau], ...]
    tau: Tau
    premises: Tuple["Derivation", ...] = ()
    tapp_use: Optional[Tuple[str, str]] = None  # (A, m) for (TApp)

    def out_env(self) -> TypeEnv:
        return dict(self.env_out)


def uses_of(deriv: Derivation) -> Set[Tuple[str, str]]:
    """All (TApp) signature uses in the derivation — Definition 1(2)."""
    out: Set[Tuple[str, str]] = set()
    stack = [deriv]
    while stack:
        d = stack.pop()
        if d.tapp_use is not None:
            out.add(d.tapp_use)
        stack.extend(d.premises)
    return out


def _freeze(env: TypeEnv) -> Tuple[Tuple[str, Tau], ...]:
    return tuple(sorted(env.items()))


def type_check(tt: TypeTable, env: TypeEnv, e: Expr) -> Derivation:
    """Prove ``TT ⊢ ⟨Γ, e⟩ ⇒ ⟨Γ′, τ⟩`` or raise :class:`CoreTypeError`."""
    env_in = _freeze(env)

    if isinstance(e, EVal):
        if isinstance(e.value, VNil):
            return Derivation("TNil", env_in, e, env_in, T_NIL)
        assert isinstance(e.value, VObj)
        return Derivation("TObject", env_in, e, env_in, TCls(e.value.cls))

    if isinstance(e, ESelf):
        if "self" not in env:
            raise CoreTypeError("self is unbound", e)
        return Derivation("TSelf", env_in, e, env_in, env["self"])

    if isinstance(e, EVar):
        if e.name not in env:
            raise CoreTypeError(f"unbound variable {e.name}", e)
        return Derivation("TVar", env_in, e, env_in, env[e.name])

    if isinstance(e, ESeq):
        d1 = type_check(tt, env, e.first)
        d2 = type_check(tt, d1.out_env(), e.second)
        return Derivation("TSeq", env_in, e, d2.env_out, d2.tau, (d1, d2))

    if isinstance(e, EAssign):
        d = type_check(tt, env, e.value)
        out = d.out_env()
        out[e.name] = d.tau
        return Derivation("TAssn", env_in, e, _freeze(out), d.tau, (d,))

    if isinstance(e, ENew):
        return Derivation("TNew", env_in, e, env_in, TCls(e.cls))

    if isinstance(e, EDef):
        # (TDef): the body is NOT checked here — that happens at run time
        # when the method is called.
        return Derivation("TDef", env_in, e, env_in, T_NIL)

    if isinstance(e, EType):
        # (TType): no static effect; the table changes only at run time.
        return Derivation("TType", env_in, e, env_in, T_NIL)

    if isinstance(e, EIf):
        d0 = type_check(tt, env, e.test)
        env_after = d0.out_env()
        d1 = type_check(tt, env_after, e.then)
        d2 = type_check(tt, env_after, e.orelse)
        tau = lub(d1.tau, d2.tau)
        if tau is None:
            raise CoreTypeError(
                f"branches have incompatible types {d1.tau} and {d2.tau}", e)
        out1, out2 = d1.out_env(), d2.out_env()
        joined: TypeEnv = {}
        for name in out1:
            if name in out2:
                j = lub(out1[name], out2[name])
                if j is not None:
                    joined[name] = j
        return Derivation("TIf", env_in, e, _freeze(joined), tau,
                          (d0, d1, d2))

    if isinstance(e, ECall):
        d0 = type_check(tt, env, e.recv)
        if not isinstance(d0.tau, TCls):
            raise CoreTypeError(
                f"receiver has type {d0.tau}, which has no methods", e)
        d1 = type_check(tt, d0.out_env(), e.arg)
        key = (d0.tau.name, e.meth)
        mty = tt.get(key)
        if mty is None:
            raise CoreTypeError(
                f"{d0.tau.name}.{e.meth} is not in the type table", e)
        if not subtype(d1.tau, mty.dom):
            raise CoreTypeError(
                f"argument has type {d1.tau}, expected {mty.dom}", e)
        return Derivation("TApp", env_in, e, d1.env_out, mty.rng, (d0, d1),
                          tapp_use=key)

    raise CoreTypeError(f"unknown expression form {type(e).__name__}", e)


def check_method_body(tt: TypeTable, cls: str, param: str, body: Expr,
                      mty: MTy) -> Tuple[Derivation, Tau]:
    """The (EAppMiss) premises: derive
    ``TT ⊢ ⟨[x↦τ1, self↦A], e⟩ ⇒ ⟨Γ′, τ⟩`` and check ``τ ≤ τ2``.

    Returns ``(DM, τ)``; the ``τ ≤ τ2`` fact is the D≤ component.
    """
    env: TypeEnv = {param: mty.dom, "self": TCls(cls)}
    deriv = type_check(tt, env, body)
    if not subtype(deriv.tau, mty.rng):
        raise CoreTypeError(
            f"body has type {deriv.tau}, declared return is {mty.rng}",
            body)
    return deriv, deriv.tau
