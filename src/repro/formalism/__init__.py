"""``repro.formalism`` — the paper's core calculus, executable.

Section 3's language (:mod:`~repro.formalism.syntax`), Figure 5's type
system with real derivations (:mod:`~repro.formalism.typecheck`),
Figure 6's small-step semantics with cache and blame
(:mod:`~repro.formalism.semantics`), Appendix A's consistency relations as
runtime-checkable invariants (:mod:`~repro.formalism.invariants`), and a
concrete syntax (:mod:`~repro.formalism.parser`).
"""

from .invariants import (
    InvariantViolation, check_all, check_blame_permitted,
    check_cache_consistency, check_env_wellformed,
)
from .parser import CoreSyntaxError, parse_expr
from .semantics import Blame, CacheEntry, Machine, StuckError, run_program
from .syntax import (
    EAssign, ECall, EDef, EIf, ENew, ESelf, ESeq, EType, EVal, EVar, Expr,
    MTy, Premethod, T_NIL, TCls, TNil, Tau, V_NIL, Value, VNil, VObj, lub,
    nil, obj, seq, subtype, type_of,
)
from .typecheck import (
    CoreTypeError, Derivation, check_method_body, type_check, uses_of,
)

__all__ = [
    "Blame", "CacheEntry", "CoreSyntaxError", "CoreTypeError", "Derivation",
    "EAssign", "ECall", "EDef", "EIf", "ENew", "ESelf", "ESeq", "EType",
    "EVal", "EVar", "Expr", "InvariantViolation", "MTy", "Machine",
    "Premethod", "StuckError", "T_NIL", "TCls", "TNil", "Tau", "V_NIL",
    "Value", "VNil", "VObj",
    "check_all", "check_blame_permitted", "check_cache_consistency",
    "check_env_wellformed", "check_method_body", "lub", "nil", "obj",
    "parse_expr", "run_program", "seq", "subtype", "type_check", "type_of",
    "uses_of",
]
