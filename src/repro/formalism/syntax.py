"""The core Ruby-like language of paper section 3 (Figure 4).

Values are ``nil`` and class instances ``[A]``.  Expressions are values,
variables, ``self``, assignment, sequencing, ``A.new``, conditionals,
method invocation, run-time method definition ``def A.m = λx.e`` and
run-time type annotation ``type A.m : τ → τ'``.  Types are class names or
``nil``.

Everything is immutable and hashable so derivations can reference
expressions directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


# -- types (val typs τ ::= A | nil) -----------------------------------------


class Tau:
    """Base class for the calculus's value types."""


@dataclass(frozen=True)
class TNil(Tau):
    def __str__(self) -> str:
        return "nil"


@dataclass(frozen=True)
class TCls(Tau):
    name: str

    def __str__(self) -> str:
        return self.name


T_NIL = TNil()


@dataclass(frozen=True)
class MTy:
    """A method type τ → τ′."""

    dom: Tau
    rng: Tau

    def __str__(self) -> str:
        return f"{self.dom} -> {self.rng}"


def subtype(a: Tau, b: Tau) -> bool:
    """nil ≤ τ and A ≤ A — exactly the paper's subtyping."""
    return isinstance(a, TNil) or a == b


def lub(a: Tau, b: Tau) -> Optional[Tau]:
    """A ⊔ A = A and nil ⊔ τ = τ ⊔ nil = τ; undefined otherwise."""
    if isinstance(a, TNil):
        return b
    if isinstance(b, TNil):
        return a
    if a == b:
        return a
    return None


# -- values ------------------------------------------------------------------


class Value:
    """Base class for run-time values."""


@dataclass(frozen=True)
class VNil(Value):
    def __str__(self) -> str:
        return "nil"


@dataclass(frozen=True)
class VObj(Value):
    cls: str

    def __str__(self) -> str:
        return f"[{self.cls}]"


V_NIL = VNil()


def type_of(v: Value) -> Tau:
    """type_of(nil) = nil and type_of([A]) = A (paper, EAppMiss)."""
    if isinstance(v, VNil):
        return T_NIL
    assert isinstance(v, VObj)
    return TCls(v.cls)


# -- expressions ---------------------------------------------------------------


class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class EVal(Expr):
    """A value in expression position."""

    value: Value

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class EVar(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ESelf(Expr):
    def __str__(self) -> str:
        return "self"


@dataclass(frozen=True)
class EAssign(Expr):
    name: str
    value: "Expr"

    def __str__(self) -> str:
        return f"{self.name} = {self.value}"


@dataclass(frozen=True)
class ESeq(Expr):
    first: "Expr"
    second: "Expr"

    def __str__(self) -> str:
        return f"({self.first}; {self.second})"


@dataclass(frozen=True)
class ENew(Expr):
    cls: str

    def __str__(self) -> str:
        return f"{self.cls}.new"


@dataclass(frozen=True)
class EIf(Expr):
    test: "Expr"
    then: "Expr"
    orelse: "Expr"

    def __str__(self) -> str:
        return f"(if {self.test} then {self.then} else {self.orelse})"


@dataclass(frozen=True)
class ECall(Expr):
    recv: "Expr"
    meth: str
    arg: "Expr"

    def __str__(self) -> str:
        return f"{self.recv}.{self.meth}({self.arg})"


@dataclass(frozen=True)
class Premethod:
    """λx.e"""

    param: str
    body: "Expr"

    def __str__(self) -> str:
        return f"({self.param}) {{ {self.body} }}"


@dataclass(frozen=True)
class EDef(Expr):
    """``def A.m = λx.e`` — run-time method (re)definition."""

    cls: str
    meth: str
    premethod: Premethod

    def __str__(self) -> str:
        return f"def {self.cls}.{self.meth}{self.premethod}"


@dataclass(frozen=True)
class EType(Expr):
    """``type A.m : τ → τ'`` — run-time type annotation."""

    cls: str
    meth: str
    mty: MTy

    def __str__(self) -> str:
        return f"type {self.cls}.{self.meth} : {self.mty}"


def is_value_expr(e: Expr) -> bool:
    return isinstance(e, EVal)


# -- convenience constructors for tests/examples --------------------------------


def nil() -> EVal:
    return EVal(V_NIL)


def obj(cls: str) -> EVal:
    return EVal(VObj(cls))


def seq(*exprs: Expr) -> Expr:
    """Right-nested sequencing of one or more expressions."""
    if not exprs:
        raise ValueError("seq of nothing")
    out = exprs[-1]
    for e in reversed(exprs[:-1]):
        out = ESeq(e, out)
    return out
