"""Concrete syntax for the core calculus, for tests and examples.

Grammar (lowest precedence first)::

    expr     := assign (';' expr)?                     -- sequencing
    assign   := IDENT '=' assign | postfix
    postfix  := primary ('.' IDENT '(' expr ')' | '.new')*
    primary  := 'nil' | 'self' | IDENT | CLASSNAME
              | 'if' expr 'then' expr 'else' expr 'end'
              | 'def' CLASSNAME '.' IDENT '(' IDENT ')' '{' expr '}'
              | 'type' CLASSNAME '.' IDENT ':' tau '->' tau
              | '(' expr ')'
    tau      := 'nil' | CLASSNAME

Class names start uppercase, variables lowercase.  ``A.new`` creates an
instance; a bare ``CLASSNAME`` is only legal before ``.new``.

Example::

    parse_expr("type A.m : nil -> A; def A.m(x) { A.new }; A.new.m(nil)")
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .syntax import (
    EAssign, ECall, EDef, EIf, ENew, ESelf, ESeq, EType, EVal, EVar, Expr,
    MTy, Premethod, T_NIL, TCls, Tau, V_NIL,
)

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<arrow>->)|(?P<punct>[();.{}:=])|(?P<word>[A-Za-z_][A-Za-z0-9_]*))")

_KEYWORDS = {"nil", "self", "if", "then", "else", "end", "def", "type",
             "new"}


class CoreSyntaxError(ValueError):
    pass


def _tokenize(text: str) -> List[str]:
    out, i = [], 0
    while i < len(text):
        m = _TOKEN_RE.match(text, i)
        if m is None or m.end() == i:
            rest = text[i:].strip()
            if not rest:
                break
            raise CoreSyntaxError(f"bad token at {rest[:10]!r}")
        tok = m.group("arrow") or m.group("punct") or m.group("word")
        out.append(tok)
        i = m.end()
    out.append("<eof>")
    return out


class _P:
    def __init__(self, text: str):
        self.toks = _tokenize(text)
        self.i = 0

    def peek(self) -> str:
        return self.toks[self.i]

    def next(self) -> str:
        tok = self.toks[self.i]
        if tok != "<eof>":
            self.i += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise CoreSyntaxError(f"expected {tok!r}, got {got!r}")

    # -- grammar ----------------------------------------------------------

    def expr(self) -> Expr:
        left = self.assign()
        if self.peek() == ";":
            self.next()
            return ESeq(left, self.expr())
        return left

    def assign(self) -> Expr:
        if (self.peek() not in _KEYWORDS and self.peek()[0].islower()
                and self.toks[self.i + 1] == "="):
            name = self.next()
            self.expect("=")
            return EAssign(name, self.assign())
        return self.postfix()

    def postfix(self) -> Expr:
        e = self.primary()
        while self.peek() == ".":
            self.next()
            name = self.next()
            if name == "new":
                if not isinstance(e, _ClassRef):
                    raise CoreSyntaxError(".new requires a class name")
                e = ENew(e.name)
                continue
            self.expect("(")
            arg = self.expr()
            self.expect(")")
            if isinstance(e, _ClassRef):
                raise CoreSyntaxError(
                    f"cannot call {name} on a bare class name")
            e = ECall(e, name, arg)
        if isinstance(e, _ClassRef):
            raise CoreSyntaxError(f"bare class name {e.name}")
        return e

    def primary(self) -> Expr:
        tok = self.next()
        if tok == "nil":
            return EVal(V_NIL)
        if tok == "self":
            return ESelf()
        if tok == "(":
            e = self.expr()
            self.expect(")")
            return e
        if tok == "if":
            test = self.expr()
            self.expect("then")
            then = self.expr()
            self.expect("else")
            orelse = self.expr()
            self.expect("end")
            return EIf(test, then, orelse)
        if tok == "def":
            cls = self.next()
            self.expect(".")
            meth = self.next()
            self.expect("(")
            param = self.next()
            self.expect(")")
            self.expect("{")
            body = self.expr()
            self.expect("}")
            return EDef(cls, meth, Premethod(param, body))
        if tok == "type":
            cls = self.next()
            self.expect(".")
            meth = self.next()
            self.expect(":")
            dom = self.tau()
            self.expect("->")
            rng = self.tau()
            return EType(cls, meth, MTy(dom, rng))
        if tok == "<eof>":
            raise CoreSyntaxError("unexpected end of input")
        if tok[0].isupper():
            return _ClassRef(tok)
        return EVar(tok)

    def tau(self) -> Tau:
        tok = self.next()
        if tok == "nil":
            return T_NIL
        if tok[0].isupper():
            return TCls(tok)
        raise CoreSyntaxError(f"expected a type, got {tok!r}")


class _ClassRef(Expr):
    """Internal: a class name awaiting ``.new``."""

    def __init__(self, name: str):
        self.name = name


def parse_expr(text: str) -> Expr:
    """Parse a core-calculus program."""
    p = _P(text)
    e = p.expr()
    if p.peek() != "<eof>":
        raise CoreSyntaxError(f"trailing input at {p.peek()!r}")
    return e
