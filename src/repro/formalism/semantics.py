"""The dynamic semantics of Figure 6, executable, with blame.

Configurations are ``⟨X, TT, DT, E, e, S⟩``.  Evaluation contexts are
represented as an explicit frame stack per activation (a zipper over the
paper's context grammar ``C``), and ``S`` is the call stack of saved
``(E, C)`` pairs pushed by (EApp*) and popped by (ERet).

The cache ``X`` maps ``A.m`` to its memoized derivations ``(DM, D≤)`` plus
the (TApp) uses of ``DM`` (Definition 1's invalidation needs them).
(EDef) invalidates ``X \\ A.m``; (EType) additionally *upgrades* the cache
to the new table (Definition 2), which here means re-pointing entries at
the new ``TT`` — sound because invalidation already removed everything
that mentioned ``A.m``.

Blame covers exactly the paper's three run-time failures:

* invoking a method on ``nil``;
* calling a method whose body does not type check at run time;
* calling a method that has a type signature but is itself undefined.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple, Union

from .syntax import (
    EAssign, ECall, EDef, EIf, ENew, ESelf, ESeq, EType, EVal, EVar, Expr,
    MTy, Premethod, T_NIL, TCls, V_NIL, Value, VNil, VObj, subtype, type_of,
)
from .typecheck import (
    CoreTypeError, Derivation, TypeTable, check_method_body, uses_of,
)

Key = Tuple[str, str]


class StuckError(Exception):
    """The machine cannot step and the state is not blame — soundness says
    this never happens for well-typed programs."""


@dataclass(frozen=True)
class Blame:
    """A run-time failure the type system deliberately permits."""

    reason: str  # "nil-receiver" | "body-ill-typed" | "method-undefined"
    detail: str

    def __str__(self) -> str:
        return f"blame({self.reason}: {self.detail})"


@dataclass(frozen=True)
class CacheEntry:
    """(DM, D≤) plus derived bookkeeping."""

    dm: Derivation
    ret_tau: object          # the τ with τ ≤ τ2 (the D≤ witness)
    uses: frozenset          # TApp uses of DM
    premethod: Premethod     # the body DM is about (consistency checks)
    mty: MTy                 # the signature DM checked against


# -- evaluation-context frames (the paper's C grammar) ------------------------


@dataclass(frozen=True)
class FAssign:
    name: str


@dataclass(frozen=True)
class FSeq:
    rest: Expr


@dataclass(frozen=True)
class FIf:
    then: Expr
    orelse: Expr


@dataclass(frozen=True)
class FCallRecv:
    """Evaluating the receiver; the argument expression waits."""

    meth: str
    arg: Expr


@dataclass(frozen=True)
class FCallArg:
    """Receiver evaluated; evaluating the argument."""

    recv: Value
    meth: str


Frame = Union[FAssign, FSeq, FIf, FCallRecv, FCallArg]


@dataclass
class Activation:
    """One activation record: its environment and its local context."""

    env: Dict[str, Value]
    frames: List[Frame] = field(default_factory=list)


@dataclass
class Machine:
    """The full configuration ⟨X, TT, DT, E, e, S⟩ plus step accounting."""

    cache: Dict[Key, CacheEntry] = field(default_factory=dict)
    tt: TypeTable = field(default_factory=dict)
    dt: Dict[Key, Premethod] = field(default_factory=dict)
    control: Optional[Expr] = None
    #: S — saved activations; the last element is the *current* activation.
    stack: List[Activation] = field(default_factory=list)
    steps: int = 0
    checks_performed: int = 0
    cache_hits: int = 0
    invalidations: int = 0
    phases: List[str] = field(default_factory=list)  # 'A'/'C' events

    # -- cache operations ------------------------------------------------------

    def invalidate(self, key: Key) -> None:
        """Definition 1: remove ``key`` and entries whose DM uses it."""
        removed = [k for k, entry in self.cache.items()
                   if k == key or key in entry.uses]
        for k in removed:
            del self.cache[k]
        self.invalidations += len(removed)

    def active_tapp_uses(self) -> Set[Key]:
        """TApp(S): signature uses of every derivation whose method is
        currently executing — (EType)'s side condition consults this."""
        out: Set[Key] = set()
        for act in self.stack:
            key = getattr(act, "checking_key", None)
            entry = self.cache.get(key) if key else None
            if entry is not None:
                out |= set(entry.uses)
        return out

    # -- running ------------------------------------------------------------------

    def load(self, program: Expr) -> "Machine":
        self.control = program
        self.stack = [Activation(env={})]
        return self

    def current(self) -> Activation:
        return self.stack[-1]

    def step(self) -> Optional[Union[Value, Blame]]:
        """One small step.  Returns a final Value, a Blame, or None to
        continue.  Raises :class:`StuckError` on a stuck state."""
        self.steps += 1
        e = self.control
        act = self.current()

        if isinstance(e, EVal):
            return self._plug(e.value)

        if isinstance(e, EVar):
            if e.name not in act.env:
                raise StuckError(f"unbound variable {e.name}")
            self.control = EVal(act.env[e.name])
            return None
        if isinstance(e, ESelf):
            if "self" not in act.env:
                raise StuckError("self unbound")
            self.control = EVal(act.env["self"])
            return None
        if isinstance(e, EAssign):
            act.frames.append(FAssign(e.name))
            self.control = e.value
            return None
        if isinstance(e, ESeq):
            act.frames.append(FSeq(e.second))
            self.control = e.first
            return None
        if isinstance(e, ENew):
            self.control = EVal(VObj(e.cls))
            return None
        if isinstance(e, EIf):
            act.frames.append(FIf(e.then, e.orelse))
            self.control = e.test
            return None
        if isinstance(e, ECall):
            act.frames.append(FCallRecv(e.meth, e.arg))
            self.control = e.recv
            return None
        if isinstance(e, EDef):
            # (EDef): update DT, invalidate A.m.
            self.dt[(e.cls, e.meth)] = e.premethod
            self.invalidate((e.cls, e.meth))
            self.control = EVal(V_NIL)
            return None
        if isinstance(e, EType):
            # (EType): requires A.m ∉ TApp(S).
            key = (e.cls, e.meth)
            if key in self.active_tapp_uses():
                raise StuckError(
                    f"type {e.cls}.{e.meth} while a dependent method is "
                    f"active (side condition of (EType))")
            self.invalidate(key)
            self.tt = dict(self.tt)
            self.tt[key] = e.mty
            # Definition 2 (upgrade): surviving entries now refer to the
            # new table; invalidation guaranteed none mention key.
            self.phases.append("A")
            self.control = EVal(V_NIL)
            return None
        raise StuckError(f"cannot step {e}")

    def _plug(self, v: Value) -> Optional[Union[Value, Blame]]:
        act = self.current()
        if not act.frames:
            if len(self.stack) == 1:
                return v  # whole program finished
            # (ERet): pop the call stack.
            self.stack.pop()
            self.control = EVal(v)
            return None
        frame = act.frames.pop()
        if isinstance(frame, FAssign):
            act.env[frame.name] = v
            self.control = EVal(v)
            return None
        if isinstance(frame, FSeq):
            self.control = frame.rest
            return None
        if isinstance(frame, FIf):
            self.control = (frame.orelse if isinstance(v, VNil)
                            else frame.then)
            return None
        if isinstance(frame, FCallRecv):
            act.frames.append(FCallArg(v, frame.meth))
            self.control = frame.arg
            return None
        if isinstance(frame, FCallArg):
            return self._apply(frame.recv, frame.meth, v)
        raise StuckError(f"unknown frame {frame}")

    def _apply(self, recv: Value, meth: str,
               arg: Value) -> Optional[Union[Value, Blame]]:
        """(EAppMiss)/(EAppHit) and the three blame rules."""
        if isinstance(recv, VNil):
            return Blame("nil-receiver", f"nil.{meth}")
        assert isinstance(recv, VObj)
        key = (recv.cls, meth)
        mty = self.tt.get(key)
        if mty is None:
            raise StuckError(f"{recv.cls}.{meth} has no type")
        premethod = self.dt.get(key)
        if premethod is None:
            return Blame("method-undefined",
                         f"{recv.cls}.{meth} is typed but undefined")
        if not subtype(type_of(arg), mty.dom):
            return Blame("argument-type",
                         f"{recv.cls}.{meth} expects {mty.dom}, "
                         f"got {type_of(arg)}")
        if key not in self.cache:
            # (EAppMiss): statically check the body NOW.
            try:
                dm, ret_tau = check_method_body(
                    self.tt, recv.cls, premethod.param, premethod.body, mty)
            except CoreTypeError as exc:
                return Blame("body-ill-typed", str(exc))
            self.cache[key] = CacheEntry(dm, ret_tau,
                                         frozenset(uses_of(dm)),
                                         premethod, mty)
            self.checks_performed += 1
            self.phases.append("C")
        else:
            self.cache_hits += 1
        callee = Activation(env={"self": recv, premethod.param: arg})
        callee.checking_key = key  # type: ignore[attr-defined]
        self.stack.append(callee)
        self.control = premethod.body
        return None

    def run(self, program: Expr, fuel: int = 100_000,
            on_step=None) -> Union[Value, Blame]:
        """Drive the machine to a value or blame (or raise on divergence
        past ``fuel`` steps / stuck states)."""
        self.load(program)
        for _ in range(fuel):
            outcome = self.step()
            if on_step is not None:
                on_step(self)
            if outcome is not None:
                return outcome
        raise TimeoutError(f"no normal form within {fuel} steps")

    def phase_count(self) -> int:
        """Phases as defined in section 5: maximal annotation-run +
        check-run blocks."""
        if not self.phases:
            return 0
        count = 1
        for prev, cur in zip(self.phases, self.phases[1:]):
            if prev == "C" and cur == "A":
                count += 1
        return count


def run_program(program: Expr, *, caching: bool = True,
                fuel: int = 100_000) -> Tuple[Union[Value, Blame], Machine]:
    """Convenience: run a closed program on a fresh machine.

    ``caching=False`` disables memoization (every call re-checks), the
    formal analog of the paper's "No$" measurements.
    """
    machine = Machine()
    if not caching:
        class _NoCache(dict):
            def __setitem__(self, key, value):  # drop all stores
                pass
        machine.cache = _NoCache()
    result = machine.run(program, fuel=fuel)
    return result, machine
