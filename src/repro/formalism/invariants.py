"""Machine-checked soundness invariants (Appendix A, executable).

The paper proves preservation by maintaining three consistency relations.
We check them *empirically*: property tests drive the machine step by step
and assert the relations hold at every configuration.

* **Cache consistency** (Definition 7): every cached ``(DM, D≤)`` still
  holds — ``DM`` re-derives under the current ``TT``, its conclusion is a
  subtype of the declared return, ``DT(A.m)`` is the premethod ``DM`` is
  about, and ``TT(A.m)`` is the signature it checked against.
* **Environment consistency** (Definition 3): every variable's run-time
  value has a type ≤ its static type.  The machine is untyped at run time,
  so we check the weaker, still-meaningful projection: every environment
  value is a well-formed value (and ``self`` is never nil inside a method).
* **Blame taxonomy**: every Blame the machine produces is one of the
  paper's three permitted failures (plus the argument-type boundary check).
"""

from __future__ import annotations

from typing import List

from .semantics import Blame, Machine
from .syntax import VNil, VObj, Value
from .typecheck import CoreTypeError, check_method_body, uses_of

PERMITTED_BLAME = {"nil-receiver", "body-ill-typed", "method-undefined",
                   "argument-type"}


class InvariantViolation(AssertionError):
    """An executable soundness invariant failed."""


def check_cache_consistency(machine: Machine) -> None:
    """Definition 7: X ∼ (TT, DT)."""
    for (cls, meth), entry in machine.cache.items():
        dt_premethod = machine.dt.get((cls, meth))
        if dt_premethod != entry.premethod:
            raise InvariantViolation(
                f"cache entry {cls}.{meth} refers to a premethod that is "
                f"no longer in DT")
        tt_mty = machine.tt.get((cls, meth))
        if tt_mty != entry.mty:
            raise InvariantViolation(
                f"cache entry {cls}.{meth} checked signature {entry.mty} "
                f"but TT now says {tt_mty}")
        # DM and D≤ still hold under the (possibly upgraded) table.
        try:
            dm, _ = check_method_body(machine.tt, cls, entry.premethod.param,
                                      entry.premethod.body, entry.mty)
        except CoreTypeError as exc:
            raise InvariantViolation(
                f"cached derivation for {cls}.{meth} no longer holds: "
                f"{exc}") from exc
        if uses_of(dm) != set(entry.uses):
            raise InvariantViolation(
                f"cached derivation for {cls}.{meth} has different TApp "
                f"uses after re-derivation")


def check_env_wellformed(machine: Machine) -> None:
    """Every binding in every activation is a well-formed value."""
    for act in machine.stack:
        for name, value in act.env.items():
            if not isinstance(value, (VNil, VObj)):
                raise InvariantViolation(
                    f"environment binds {name} to non-value {value!r}")


def check_blame_permitted(outcome) -> None:
    if isinstance(outcome, Blame) and outcome.reason not in PERMITTED_BLAME:
        raise InvariantViolation(
            f"machine produced unclassified blame {outcome}")


def check_all(machine: Machine) -> None:
    """All per-step invariants (use as ``on_step`` in Machine.run)."""
    check_cache_consistency(machine)
    check_env_wellformed(machine)
