"""The end-to-end serving harness: scenarios in, latency-graded and
differentially-verified reports out.

One :class:`ServingScenario` names an app, a request mix (read / write
/ mixed), a thread count, and a churn kind; :func:`run_scenario`:

1. builds and seeds the world, warms the schedule (annotations
   executed, bodies checked, plans built — tier promotion is left to
   happen *during* the measured run unless the scenario warms past the
   promotion threshold, because promotion waves are part of the tail
   story);
2. replays the schedule from N worker threads through
   :class:`~repro.concurrency.driver.ConcurrentDriver`, with one
   dedicated mutator thread per churn recipe, every request timed into
   the per-thread reservoirs of a
   :class:`~repro.serving.latency.LatencyRecorder`;
3. snapshots tier-transition counters (promotions, deopts, plan
   invalidations, re-annotations) at each phase boundary, so a deopt
   storm is attributable to the phase whose p999 it poisoned;
4. verifies the run differentially: the outcome multiset must equal a
   single-threaded replay on the same warm engine **and** a replay on a
   fresh cache-free oracle world (``Engine(disable_caches=True)``) —
   the acceptance bar every scale of this repo answers to.

The recipes' disjoint-resource discipline (see ``recipes``) is what
makes step 4 exact: each thunk's outcome is interleaving-independent,
so any divergence is a soundness bug, not scheduling noise.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..concurrency import (
    ConcurrentDriver, MultiProcessDriver, SupervisedDriver,
)
from ..concurrency.driver import normalize_outcome
from ..core import Engine, EngineConfig
from ..snapshot import load_snapshot
from .churn import churn_suite, count_storms
from .latency import (
    LatencyRecorder, LatencySummary, summarize_partitioned,
    summarize_samples,
)
from .recipes import build_serving_world, scenario_thunks

#: the stats attributes snapshotted at phase boundaries — the tier
#: transitions that show up as tail latency when they wave.
TRANSITION_FIELDS = (
    "promotions", "repromotions", "deopts", "elide_promotions",
    "elide_deopts", "plan_invalidations", "invalidations",
    "annotations_total",
)


@dataclass
class ServingScenario:
    """One serving measurement configuration."""

    name: str
    app: str = "boxroom"
    mix: str = "mixed"             # read | write | mixed
    threads: int = 8
    requests: int = 400
    io_wait_s: float = 0.002
    churn: str = "none"            # none | retype | full
    churn_interval_s: float = 0.005
    #: sequential passes over the schedule before timing starts.
    warm_rounds: int = 4
    cfg: Optional[dict] = None
    reservoir_capacity: int = 16384


@dataclass
class ServingReport:
    """Everything one scenario run measured and verified."""

    scenario: str
    app: str
    mix: str
    threads: int
    requests: int
    completed: int
    elapsed_s: float
    rps: float
    latency: LatencySummary
    errors: int
    crashes: List[str]
    churn_applied: int
    deopt_storms: int
    #: phase name -> {counter: delta} for TRANSITION_FIELDS.
    phases: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: threaded run vs single-threaded replay on the same warm engine.
    oracle_match: bool = False
    #: threaded run vs a fresh cache-free oracle world's replay.
    oracle_match_cache_free: bool = False

    def as_dict(self) -> dict:
        """The committed-baseline JSON shape for this scenario."""
        out = {
            "app": self.app,
            "mix": self.mix,
            "threads": self.threads,
            "requests": self.requests,
            "completed": self.completed,
            "rps": round(self.rps, 1),
            "errors": self.errors,
            "crashes": len(self.crashes),
            "churn_applied": self.churn_applied,
            "deopt_storms": self.deopt_storms,
            "oracle_match": int(self.oracle_match),
            "oracle_match_cache_free": int(self.oracle_match_cache_free),
            "phases": self.phases,
        }
        out.update(self.latency.as_ms_dict())
        return out


def _transition_snapshot(stats) -> Dict[str, int]:
    return {name: int(getattr(stats, name)) for name in TRANSITION_FIELDS}


def _transition_delta(before: Dict[str, int],
                      after: Dict[str, int]) -> Dict[str, int]:
    return {name: after[name] - before[name] for name in before}


def _warm(thunks, rounds: int) -> None:
    for _ in range(rounds):
        for thunk in thunks:
            thunk()


def _oracle_multiset(thunks, requests: int) -> Counter:
    """Single-threaded replay of the same round-robin schedule."""
    driver = ConcurrentDriver(thunks, threads=1, requests=requests)
    run = driver.run()
    if run.crashes:
        raise RuntimeError(f"oracle replay crashed: {run.crashes}")
    return run.outcome_multiset()


def run_scenario(scenario: ServingScenario, *,
                 differential: bool = True,
                 cache_free_oracle: bool = True,
                 faults=None) -> ServingReport:
    """Run one scenario end to end; see the module docstring.

    ``faults`` (a :class:`repro.faults.FaultPlan`) scripts worker-thread
    and mutator-thread failures into the measured run; injected faults
    surface as driver crashes, never as request outcomes."""
    world = build_serving_world(scenario.app, cfg=scenario.cfg)
    thunks = scenario_thunks(world, scenario.mix)
    stats = world.engine.stats

    recorder = LatencyRecorder(scenario.reservoir_capacity)
    timed = [recorder.timed(t) for t in thunks]

    phases: Dict[str, Dict[str, int]] = {}
    mark = _transition_snapshot(stats)
    _warm(thunks, scenario.warm_rounds)
    after_warm = _transition_snapshot(stats)
    phases["warmup"] = _transition_delta(mark, after_warm)

    storm_dicts = []
    churns = []
    for recipe in churn_suite(world, scenario.churn):
        storms = {"count": 0}
        storm_dicts.append(storms)
        churns.append(count_storms(recipe, stats, storms))

    driver = ConcurrentDriver(
        timed, threads=scenario.threads, requests=scenario.requests,
        io_wait_s=scenario.io_wait_s, churn=churns or None,
        churn_interval_s=scenario.churn_interval_s, faults=faults)
    run = driver.run()
    after_run = _transition_snapshot(stats)
    phases["measured"] = _transition_delta(after_warm, after_run)

    # Summarize latency before any oracle replay can touch the timed
    # thunks again.
    latency = recorder.summary()

    report = ServingReport(
        scenario=scenario.name, app=scenario.app, mix=scenario.mix,
        threads=scenario.threads, requests=scenario.requests,
        completed=run.completed, elapsed_s=run.elapsed_s,
        rps=run.throughput_rps, latency=latency,
        errors=len(run.error_outcomes), crashes=list(run.crashes),
        churn_applied=run.churn_applied,
        deopt_storms=sum(s["count"] for s in storm_dicts),
        phases=phases)

    if differential:
        # (a) Same warm engine, one thread, no churn: isolates thread
        # interleaving + churn as the only variables.
        warm_oracle = _oracle_multiset(thunks, scenario.requests)
        report.oracle_match = (run.outcome_multiset() == warm_oracle)
        phases["oracle_replay"] = _transition_delta(
            after_run, _transition_snapshot(stats))
        if cache_free_oracle:
            # (b) A fresh world on a cache-free engine: every judgment
            # recomputed from scratch — the absolute acceptance bar.
            oracle_world = build_serving_world(
                scenario.app, engine=Engine(disable_caches=True),
                cfg=scenario.cfg)
            oracle_thunks = scenario_thunks(oracle_world, scenario.mix)
            free_oracle = _oracle_multiset(oracle_thunks,
                                           scenario.requests)
            report.oracle_match_cache_free = (
                run.outcome_multiset() == free_oracle)
    return report


# -- pre-fork multi-process serving ------------------------------------------


@dataclass
class MultiProcScenario:
    """One multi-process serving measurement configuration."""

    name: str
    app: str = "boxroom"
    mix: str = "read"              # read | write | mixed
    workers: int = 4
    requests: int = 480
    io_wait_s: float = 0.002
    #: sequential passes over the schedule in the *parent* before the
    #: fork — what the children inherit copy-on-write.
    warm_rounds: int = 0
    #: a snapshot path or document to warm-start the parent engine from
    #: (children inherit the restored state); None = cold start.
    snapshot: Optional[object] = None
    cfg: Optional[dict] = None
    #: override EngineConfig.specialize_threshold (None = default).
    specialize_threshold: Optional[int] = None
    reservoir_capacity: int = 16384


@dataclass
class MultiProcReport:
    """Everything one multi-process run measured and verified."""

    scenario: str
    app: str
    mix: str
    workers: int
    requests: int
    completed: int
    #: scheduled requests that never completed (crashed workers'
    #: slices); ``completed + lost == requests`` always — a crashed
    #: worker's share can no longer silently vanish from the report.
    lost: int
    elapsed_s: float
    rps: float
    latency: LatencySummary
    errors: int
    crashes: List[str]
    #: slowest worker's first full pass — the deploy's cold-start
    #: window (near zero when snapshot-warmed).
    first_pass_s: float
    #: STATS_DELTA_FIELDS summed across workers: how much cold start
    #: (checks, misses, promotions, deopts) the fleet actually paid.
    transitions: Dict[str, int] = field(default_factory=dict)
    #: per-worker stats deltas, in worker order.
    per_worker: List[Dict[str, int]] = field(default_factory=list)
    #: the SnapshotLoad.as_dict() of the warm-start attempt ({} = cold).
    snapshot: Dict[str, object] = field(default_factory=dict)
    #: per-worker: outcome multiset == cache-free oracle replay of the
    #: worker's exact schedule slice.
    worker_oracle_matches: List[bool] = field(default_factory=list)
    #: all workers matched and none crashed.
    oracle_match_cache_free: bool = False

    def as_dict(self) -> dict:
        """The committed-baseline JSON shape for this scenario."""
        out = {
            "app": self.app,
            "mix": self.mix,
            "workers": self.workers,
            "requests": self.requests,
            "completed": self.completed,
            "lost": self.lost,
            "rps": round(self.rps, 1),
            "errors": self.errors,
            "crashes": len(self.crashes),
            "first_pass_ms": round(self.first_pass_s * 1000, 3),
            "transitions": dict(self.transitions),
            "snapshot_loaded": int(bool(self.snapshot.get("loaded"))),
            "oracle_match_cache_free": int(self.oracle_match_cache_free),
        }
        out.update(self.latency.as_ms_dict())
        return out


def run_multiproc_scenario(scenario: MultiProcScenario, *,
                           differential: bool = True,
                           faults=None) -> MultiProcReport:
    """Run one pre-fork scenario: build (and optionally snapshot-warm)
    the parent world, fork ``workers`` processes over the shared
    round-robin schedule, merge their reservoirs for exact aggregate
    percentiles, and verify each worker's outcome multiset against a
    cache-free oracle replay of that worker's exact schedule slice."""
    engine = None
    if scenario.specialize_threshold is not None:
        engine = Engine(EngineConfig(
            specialize_threshold=scenario.specialize_threshold))
    world = build_serving_world(scenario.app, engine=engine,
                                cfg=scenario.cfg)
    engine = world.engine

    snapshot_report: Dict[str, object] = {}
    if scenario.snapshot is not None:
        snapshot_report = load_snapshot(engine, scenario.snapshot).as_dict()

    thunks = scenario_thunks(world, scenario.mix)
    _warm(thunks, scenario.warm_rounds)

    driver = MultiProcessDriver(
        thunks, workers=scenario.workers, requests=scenario.requests,
        io_wait_s=scenario.io_wait_s, engine=engine,
        reservoir_capacity=scenario.reservoir_capacity, faults=faults)
    run = driver.run()

    # Accounting identity: every scheduled request either completed or
    # is explicitly counted lost — crashed slices must not vanish.
    if run.completed + run.lost != scenario.requests:
        raise RuntimeError(
            f"multiproc accounting violated: completed={run.completed} "
            f"+ lost={run.lost} != scheduled={scenario.requests}")
    if run.lost and not run.crashes:
        raise RuntimeError(
            f"{run.lost} request(s) lost with no crash recorded")

    samples, count = run.merged_samples()
    latency = summarize_samples(samples, count)

    report = MultiProcReport(
        scenario=scenario.name, app=scenario.app, mix=scenario.mix,
        workers=scenario.workers, requests=scenario.requests,
        completed=run.completed, lost=run.lost, elapsed_s=run.elapsed_s,
        rps=run.throughput_rps, latency=latency,
        errors=len(run.error_outcomes), crashes=list(run.crashes),
        first_pass_s=run.first_pass_s,
        transitions=run.stats_total(),
        per_worker=[dict(r.stats_delta) for r in run.reports],
        snapshot=snapshot_report)

    if differential:
        # Fresh cache-free world; replay each worker's exact slice so a
        # single worker gone wrong cannot hide in the aggregate.
        oracle_world = build_serving_world(
            scenario.app, engine=Engine(disable_caches=True),
            cfg=scenario.cfg)
        oracle_thunks = scenario_thunks(oracle_world, scenario.mix)
        n = len(oracle_thunks)
        matches = []
        for worker_report in run.reports:
            expected = Counter(
                normalize_outcome(oracle_thunks[index % n])
                for index in driver.schedule_indices(worker_report.worker))
            matches.append(worker_report.outcome_multiset() == expected)
        report.worker_oracle_matches = matches
        report.oracle_match_cache_free = (
            bool(matches) and all(matches) and not run.crashes
            and len(matches) == scenario.workers)
    return report


# -- supervised fault-tolerant serving ---------------------------------------


@dataclass
class SupervisedScenario:
    """One supervised (fault-tolerant) serving configuration."""

    name: str
    app: str = "boxroom"
    mix: str = "read"              # read | write | mixed
    workers: int = 4
    requests: int = 480
    io_wait_s: float = 0.002
    #: parent-side warm passes before the first fork (children and
    #: every respawn inherit the warm engine copy-on-write).
    warm_rounds: int = 0
    #: snapshot path/document to warm-start the parent from; respawned
    #: workers fork from this restored state too.
    snapshot: Optional[object] = None
    cfg: Optional[dict] = None
    specialize_threshold: Optional[int] = None
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    hang_timeout_s: float = 5.0


@dataclass
class SupervisedReport:
    """Everything one supervised run measured, recovered, and verified."""

    scenario: str
    app: str
    mix: str
    workers: int
    requests: int
    completed_first: int
    completed_retried: int
    abandoned: int
    restarts: int
    elapsed_s: float
    rps: float
    #: {"first_attempt": {...}, "replayed": {...}|None, "combined":
    #: {...}} — replay latency attributed separately so recovery cost
    #: cannot hide in the steady-state tail.
    latency: Dict[str, Optional[dict]] = field(default_factory=dict)
    crashes: List[str] = field(default_factory=list)
    restart_log: List[str] = field(default_factory=list)
    #: STATS_DELTA_FIELDS summed over attempts that finished cleanly.
    transitions: Dict[str, int] = field(default_factory=dict)
    snapshot: Dict[str, object] = field(default_factory=dict)
    #: parent-engine deltas of the fault-tolerance counters.
    workers_restarted: int = 0
    requests_replayed: int = 0
    #: scheduled == completed_first + completed_retried + abandoned.
    accounting_ok: bool = False
    #: every accepted outcome (replays included) equals the cache-free
    #: oracle's outcome for its exact schedule index.
    oracle_match_cache_free: bool = False

    @property
    def completed(self) -> int:
        return self.completed_first + self.completed_retried

    def as_dict(self) -> dict:
        """The committed-baseline JSON shape for this scenario."""
        return {
            "app": self.app,
            "mix": self.mix,
            "workers": self.workers,
            "requests": self.requests,
            "completed": self.completed,
            "completed_first": self.completed_first,
            "completed_retried": self.completed_retried,
            "abandoned": self.abandoned,
            "restarts": self.restarts,
            "workers_restarted": self.workers_restarted,
            "requests_replayed": self.requests_replayed,
            "rps": round(self.rps, 1),
            "crashes": len(self.crashes),
            "accounting_ok": int(self.accounting_ok),
            "oracle_match_cache_free": int(self.oracle_match_cache_free),
            "latency": self.latency,
        }


def run_supervised_scenario(scenario: SupervisedScenario, *,
                            differential: bool = True,
                            faults=None) -> SupervisedReport:
    """Run one supervised pre-fork scenario: build (and optionally
    snapshot-warm) the parent world, fork workers under supervision,
    recover from injected (or real) worker deaths by respawning from
    the parent's warm engine, and verify every *accepted* outcome —
    replays included — against a cache-free oracle replay of its exact
    schedule index.

    The accounting invariant is enforced, not just reported: a run
    whose buckets do not partition the schedule raises."""
    engine = None
    if scenario.specialize_threshold is not None:
        engine = Engine(EngineConfig(
            specialize_threshold=scenario.specialize_threshold))
    world = build_serving_world(scenario.app, engine=engine,
                                cfg=scenario.cfg)
    engine = world.engine

    snapshot_report: Dict[str, object] = {}
    if scenario.snapshot is not None:
        snapshot_report = load_snapshot(engine, scenario.snapshot).as_dict()

    thunks = scenario_thunks(world, scenario.mix)
    _warm(thunks, scenario.warm_rounds)

    stats = engine.stats
    restarted_before = stats.workers_restarted
    replayed_before = stats.requests_replayed

    driver = SupervisedDriver(
        thunks, workers=scenario.workers, requests=scenario.requests,
        io_wait_s=scenario.io_wait_s, engine=engine, faults=faults,
        max_retries=scenario.max_retries,
        backoff_base_s=scenario.backoff_base_s,
        backoff_cap_s=scenario.backoff_cap_s,
        hang_timeout_s=scenario.hang_timeout_s)
    run = driver.run()

    if not run.accounting_ok():
        raise RuntimeError(
            f"supervised accounting violated: "
            f"first={run.completed_first} retried={run.completed_retried} "
            f"abandoned={run.abandoned} != scheduled={scenario.requests}")

    report = SupervisedReport(
        scenario=scenario.name, app=scenario.app, mix=scenario.mix,
        workers=scenario.workers, requests=scenario.requests,
        completed_first=run.completed_first,
        completed_retried=run.completed_retried,
        abandoned=run.abandoned, restarts=run.restarts,
        elapsed_s=run.elapsed_s, rps=run.throughput_rps,
        latency=summarize_partitioned(run.first_samples,
                                      run.replay_samples),
        crashes=list(run.crashes), restart_log=list(run.restart_log),
        transitions=dict(run.stats_delta), snapshot=snapshot_report,
        workers_restarted=stats.workers_restarted - restarted_before,
        requests_replayed=stats.requests_replayed - replayed_before,
        accounting_ok=run.accounting_ok())

    if differential:
        # Per-index (not multiset) equality: each accepted outcome —
        # first attempt or replay — must equal the cache-free oracle's
        # outcome for that exact schedule index.
        oracle_world = build_serving_world(
            scenario.app, engine=Engine(disable_caches=True),
            cfg=scenario.cfg)
        oracle_thunks = scenario_thunks(oracle_world, scenario.mix)
        n = len(oracle_thunks)
        mismatches = 0
        for sched_idx, (_, _, outcome) in sorted(run.outcomes.items()):
            if normalize_outcome(oracle_thunks[sched_idx % n]) != outcome:
                mismatches += 1
        report.oracle_match_cache_free = (
            mismatches == 0 and not run.crashes
            and len(run.outcomes) == run.completed_first
            + run.completed_retried)
    return report
