"""``repro.serving`` — the end-to-end load harness (ROADMAP item 4).

The concurrency layer proved the engine sound and scalable under
read-only traffic; this package proves it under *production-shaped*
traffic: write-heavy and mixed read/write request mixes over the
boxroom / countries / rolify apps (the ``sqldb`` create/update/destroy
paths), dev-mode reload and schema-retype churn running from dedicated
mutator threads while N request threads are in flight, and per-request
latency percentiles (p50/p95/p99/p999) so promotion and deopt waves
surface as tail latency instead of averaging away.

* :mod:`~repro.serving.latency` — per-thread reservoir latency
  recorder, nearest-rank percentiles, exact merge;
* :mod:`~repro.serving.recipes` — request mixes built on a
  disjoint-resource discipline that keeps every outcome
  interleaving-independent (so the differential oracle bar stays
  absolute even for writes);
* :mod:`~repro.serving.churn` — reloader/typegen/retype mutator
  recipes plus deopt-storm accounting;
* :mod:`~repro.serving.harness` — scenario runner producing
  :class:`~repro.serving.harness.ServingReport` (rps, percentiles,
  per-phase tier transitions, oracle verdicts).

``benchmarks/bench_serving.py`` builds the committed
``BENCH_serving.json`` baseline on top of these;
``tests/serving/`` holds the differential and stress suites.
"""

from .churn import churn_suite, count_storms, reload_churn, retype_churn, typegen_churn
from .harness import (
    MultiProcReport, MultiProcScenario, ServingReport, ServingScenario,
    SupervisedReport, SupervisedScenario, run_multiproc_scenario,
    run_scenario, run_supervised_scenario,
)
from .latency import (
    DEFAULT_CAPACITY, LatencyRecorder, LatencySummary, Reservoir, nearest_rank,
    summarize_partitioned, summarize_samples,
)
from .recipes import (
    build_serving_world, mask_ids, mixed_thunks, read_thunks, scenario_thunks,
    write_heavy_thunks, write_thunks,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "LatencyRecorder",
    "LatencySummary",
    "MultiProcReport",
    "MultiProcScenario",
    "Reservoir",
    "ServingReport",
    "ServingScenario",
    "SupervisedReport",
    "SupervisedScenario",
    "build_serving_world",
    "churn_suite",
    "count_storms",
    "mask_ids",
    "mixed_thunks",
    "nearest_rank",
    "read_thunks",
    "reload_churn",
    "retype_churn",
    "run_multiproc_scenario",
    "run_scenario",
    "run_supervised_scenario",
    "scenario_thunks",
    "summarize_partitioned",
    "summarize_samples",
    "typegen_churn",
    "write_heavy_thunks",
    "write_thunks",
]
